"""Recoil: Parallel rANS Decoding with Decoder-Adaptive Scalability.

A faithful Python reproduction of the ICPP 2023 paper by Lin,
Arunruangsirilert, Sun, and Katto.  The package provides:

- :mod:`repro.rans` — the rANS entropy-coding substrate (scalar,
  32-way interleaved, adaptive per-index models).
- :mod:`repro.core` — the Recoil contribution: renormalization-point
  metadata, the split heuristic, split combining, the 3-phase parallel
  decoder, and the container format.
- :mod:`repro.baselines` — the Single-Thread and Conventional
  ("partitioning symbols", DietGPU-style) baselines.
- :mod:`repro.tans` — a tANS codec plus the *multians*
  self-synchronizing massively parallel decoder baseline.
- :mod:`repro.parallel` — numpy SIMD lane engine, executors, and the
  analytical device cost model used to project CPU/GPU throughput.
- :mod:`repro.serve` — batched content-delivery service: encode-once
  asset store, LRU shrink cache, and cross-request fusion of
  concurrent decodes into single wide-lane kernel dispatches.
- :mod:`repro.data` — dataset generators mirroring the paper's
  evaluation corpora.
- :mod:`repro.experiments` — one module per paper table and figure.

Quickstart::

    import numpy as np
    from repro import recoil_compress, recoil_decompress

    data = np.frombuffer(b"hello recoil " * 1000, dtype=np.uint8)
    blob = recoil_compress(data, num_splits=64)
    out = recoil_decompress(blob, max_parallelism=8)
    assert np.array_equal(out, data)
"""

from repro._version import __version__
from repro.core.api import (
    RecoilCodec,
    recoil_compress,
    recoil_decompress,
    recoil_service,
    recoil_shrink,
)
from repro.rans.model import SymbolModel
from repro.rans.interleaved import InterleavedEncoder, InterleavedDecoder

__all__ = [
    "__version__",
    "RecoilCodec",
    "recoil_compress",
    "recoil_decompress",
    "recoil_service",
    "recoil_shrink",
    "SymbolModel",
    "InterleavedEncoder",
    "InterleavedDecoder",
]
