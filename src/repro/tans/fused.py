"""Fused self-synchronizing tANS kernel (multians wide-lane decode).

The third fused kernel of the repo (after the rANS decode and encode
kernels in :mod:`repro.parallel.fused` / ``fused_encode``): all ``P``
speculative multians chunks advance as one ``(P,)``-wide state vector
per interpreter step, instead of one symbol per iteration per thread.

Layout (DESIGN.md §13):

- :func:`bit_windows` precomputes, for every byte offset of the
  payload, the 24-bit big-endian window starting there.  A read of
  ``nb <= 16`` bits at bit position ``p`` is then two integer ops
  against ``win24[p >> 3]`` (7 skew bits + 16 payload bits < 24) —
  vectorized, this replaces the per-bit ``(val << 1) | bits[p]``
  loops and the ``(P, 16)`` window mat-vec of the seed pass.
- :func:`fused_speculative_pass` decodes every chunk's own bit range
  as one wide state vector.  While every chunk is strictly inside its
  range the kernel runs a branch-free *safe run* (no masks, no
  reductions) whose length is planned from the minimum remaining bits
  at the maximum bits-per-symbol; stragglers finish under ``where``
  masks.  Trajectories are staged row-wise — row ``i`` holds every
  chunk's (bit position, state) before its ``i``-th symbol — and
  symbols are never materialized per step: they are one bulk
  ``dec_sym[state - T]`` gather at stitch time.
- :func:`fused_overshoot_pass` is the synchronization search, also
  run wide: every chunk keeps decoding past its boundary, probing a
  dense position -> (step, state) table of the recorded trajectories
  (last write wins, matching the reference dict semantics).  A hit
  freezes the lane; the stitch then only assembles arrays.
- :func:`fused_stitch` walks the chunk chain in order, consuming the
  wide overshoot records per boundary with ``searchsorted`` probes
  into each chunk's sorted ``traj_pos`` column; it falls back to the
  scalar walk only where the wide search gave up (the n=16 collapse,
  where nothing synchronizes and the baseline degrades by design).

:func:`staged_single_decode` is the serial single-stream counterpart:
the unavoidable state dependency chain is reduced to a straight-line
sweep that only stages the table-entry trajectory; symbol extraction
happens as one array op after the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DecodeError
from repro.tans.table import TansTable

# Packed decode-entry fields (TansTable.packed_decode_entries).
_PK_MASK = (1 << 17) - 1
_PK_NB_SHIFT = 17
_PK_BASE_SHIFT = 22

# Dense trajectory-probe packing: state (< 2**17) | step << 18.
_REC_STATE_BITS = 18
_REC_STATE_MASK = (1 << _REC_STATE_BITS) - 1

# Wide-search stopping rules.  A wide step costs roughly one scalar
# microsecond *total* regardless of how many lanes are live, while the
# stitch's scalar walk pays per symbol — so the search is only worth
# running while enough lanes still advance, and must concede quickly
# when the stream does not synchronize (the collapse regime).
#
# - below _STOP_ACTIVE live lanes, scalar walking the few stragglers
#   is cheaper than stepping the whole vector (breakeven of the
#   measured wide-step vs scalar-step costs);
# - at checkpoint t=512 with zero matches, nothing synchronizes;
# - at checkpoint t=2048 with under a quarter matched, the sync length
#   rivals the chunk length (semi-collapse) and staging the remaining
#   walks wide would cost more memory bandwidth than it saves.
_STOP_ACTIVE = 24
_ABORT_ZERO_STEP = 512
_ABORT_FRACTION_STEP = 2048
_CHECK_EVERY = 32


def bit_windows(payload: np.ndarray) -> np.ndarray:
    """24-bit big-endian windows, one per byte offset of ``payload``.

    ``bit_windows(p)[i]`` holds bytes ``i, i+1, i+2`` (zero-padded past
    the end), so any ``nb <= 16``-bit field starting at bit position
    ``q`` is ``(win[q >> 3] >> (24 - (q & 7) - nb)) & ((1 << nb) - 1)``.

    Two guard windows past the last byte are included so a cursor
    parked exactly at the end of the stream can still be gathered (a
    frozen kernel lane reads but never uses them).
    """
    payload = np.asarray(payload, dtype=np.uint8)
    padded = np.zeros(len(payload) + 5, dtype=np.uint32)
    padded[: len(payload)] = payload
    return (
        (padded[:-3] << np.uint32(16))
        | (padded[1:-2] << np.uint32(8))
        | padded[2:-1]
    )


@dataclass
class SpecTrajectory:
    """Recorded trajectories of one speculative pass.

    ``traj_pos``/``traj_state`` are ``(cap, P)`` matrices: row ``i``
    holds every chunk's (bit position, state) *before* its ``i``-th
    decoded symbol; chunk ``k``'s column is valid for
    ``i < traj_len[k]``.  ``end_pos``/``end_state`` are the cursors
    after each chunk's last decoded symbol — the exact point a stitch
    continuation resumes from (the seed recomputed these with per-bit
    loops).
    """

    traj_pos: np.ndarray
    traj_state: np.ndarray
    traj_len: np.ndarray
    end_pos: np.ndarray
    end_state: np.ndarray
    win24: np.ndarray


def fused_speculative_pass(
    table: TansTable,
    payload: np.ndarray,
    bit_count: int,
    starts: np.ndarray,
    ends: np.ndarray,
    initial_state: int,
    total_symbols: int,
    kernel: str = "numpy",
) -> SpecTrajectory:
    """Advance all ``P`` speculative chunks as one state vector.

    Chunk 0 starts from the true ``initial_state``; every other chunk
    starts from the canonical guess ``T`` and relies on
    self-synchronization.  Each active chunk decodes exactly one
    symbol per step, so a trajectory's step index is the global step
    index — trajectories are staged as full-width rows, with the
    all-chunks-active prefix run branch-free in planned safe runs and
    only the straggler tail stepped under ``where`` masks.

    ``kernel="compiled"`` runs the branch-free safe runs through the
    compiled twin (:mod:`repro.parallel.compiled`, DESIGN.md §19) —
    bit-identical trajectories, silently numpy when no toolchain is
    available.  The straggler tail and the synchronization search
    stay numpy (mask-dominated, not steady-state).
    """
    P = len(starts)
    T = table.table_size
    pk = table.packed_decode_entries()
    win24 = bit_windows(payload).astype(np.int64)

    # Step cap: symbols per chunk are bounded by the chunk's bit span
    # (plus slack for zero-bit symbols).  Same bound as the reference
    # pass so trajectories — and therefore stitch stats — stay
    # bit-identical.  Rows are ``np.empty``: untouched rows beyond the
    # longest trajectory never commit pages.
    span = int((ends - starts).max()) if P else 0
    cap = max(64, 4 * span + 64)
    traj_pos = np.empty((cap, P), dtype=np.int64)
    traj_state = np.empty((cap, P), dtype=np.int64)
    lens = np.zeros(P, dtype=np.int64)

    # Trailing chunk starts can lie past the stream end (the chunk
    # plan rounds the bit span up); those chunks never decode, and
    # advancing their cursors — even masked — would gather windows
    # out of range.  They are always a suffix of the plan, so the
    # kernel runs on the live prefix and parks the rest at the end.
    live = int(np.searchsorted(starts, bit_count, side="left"))
    pos = starts[:live].astype(np.int64).copy()
    state = np.full(live, T, dtype=np.int64)
    if live:
        state[0] = initial_state
    ends_live = ends[:live].astype(np.int64)
    # Chunk 0 must not outrun the true symbol count (trailing bits can
    # be padding).
    budget0 = min(cap, total_symbols)
    max_nb = max(1, int(table.dec_nb.max()))

    step = 0
    # Branch-free safe runs: while every chunk is strictly inside its
    # range, the minimum remaining bits over the widest symbol bound a
    # number of steps during which no lane can finish — no masks, no
    # ``any`` reductions, two fewer ``where`` passes per step.
    while step < cap and live:
        rem = ends_live - pos
        if int(rem.min()) <= 0:
            break
        safe = int((rem - 1).min()) // max_nb + 1
        safe = min(safe, cap - step, budget0 - step)
        if safe <= 0:
            break
        new_step = None
        if kernel == "compiled":
            from repro.parallel import compiled

            new_step = compiled.tans_safe_run(
                traj_pos, traj_state, pos, state, pk, T, win24,
                step, safe,
            )
        if new_step is not None:
            step = new_step
        else:
            for _ in range(safe):
                traj_pos[step, :live] = pos
                traj_state[step, :live] = state
                g = pk[state - T]
                nb = (g >> _PK_NB_SHIFT) & 31
                sh = 24 - (pos & 7) - nb
                state = (g >> _PK_BASE_SHIFT) + (
                    (win24[pos >> 3] >> sh) & (g & _PK_MASK)
                )
                pos = pos + nb
                step += 1
        lens[:live] = step

    # Straggler tail: lanes finish at different steps; a lane active at
    # step ``i`` was active at every earlier step, so its trajectory
    # index still equals the global step.
    sym_budget = np.full(live, cap, dtype=np.int64)
    if live:
        sym_budget[0] = budget0
    lens_live = lens[:live]
    while step < cap and live:
        active = (pos < ends_live) & (lens_live < sym_budget)
        if not active.any():
            break
        traj_pos[step, :live] = pos
        traj_state[step, :live] = state
        g = pk[state - T]
        nb = (g >> _PK_NB_SHIFT) & 31
        sh = 24 - (pos & 7) - nb
        val = (win24[pos >> 3] >> sh) & (g & _PK_MASK)
        state = np.where(active, (g >> _PK_BASE_SHIFT) + val, state)
        pos = pos + np.where(active, nb, 0)
        lens_live += active
        step += 1

    # Parked suffix lanes report an end cursor at the stream end with
    # the canonical guess state (they decoded nothing).
    end_pos = np.full(P, bit_count, dtype=np.int64)
    end_pos[:live] = pos
    end_state = np.full(P, T, dtype=np.int64)
    end_state[:live] = state
    return SpecTrajectory(
        traj_pos=traj_pos,
        traj_state=traj_state,
        traj_len=lens,
        end_pos=end_pos,
        end_state=end_state,
        win24=win24,
    )


@dataclass
class OvershootResult:
    """Wide synchronization search, one lane per chunk boundary.

    Lane ``k`` continues chunk ``k``'s walk past its range; columns of
    ``over_pos``/``over_state`` stage the (position, state) pairs of
    the first ``length[k]`` overshoot symbols.  ``matched`` lanes hit
    a recorded trajectory at ``match_pos`` (trajectory step
    ``match_step``, after ``match_oidx`` of their own overshoot
    symbols).  ``end_pos``/``end_state`` are the walk cursors after
    the last staged symbol — where a scalar continuation resumes if
    the wide search gave up.
    """

    over_pos: np.ndarray
    over_state: np.ndarray
    length: np.ndarray
    matched: np.ndarray
    match_pos: np.ndarray
    match_step: np.ndarray
    match_oidx: np.ndarray
    end_pos: np.ndarray
    end_state: np.ndarray
    aborted: bool


def _trajectory_probe_table(spec: SpecTrajectory, bit_count: int) -> np.ndarray:
    """Dense bitpos -> packed (step, state) over all recorded
    trajectories; -1 where nothing was recorded.  Duplicate positions
    (zero-bit symbols) keep the *last* recorded step, matching the
    reference stitch's dict construction.  Sixteen guard slots past
    the stream end let frozen cursors (parked up to one symbol's bits
    beyond it) probe without clamping."""
    ml = int(spec.traj_len.max())
    rec = np.full(bit_count + 17, -1, dtype=np.int64)
    if ml == 0:
        return rec
    valid = np.arange(ml, dtype=np.int64)[:, None] < spec.traj_len[None, :]
    packed = (
        np.arange(ml, dtype=np.int64)[:, None] << _REC_STATE_BITS
    ) | spec.traj_state[:ml]
    # Row-major flattening visits steps in increasing order, so numpy's
    # sequential fancy assignment leaves the last duplicate in place.
    rec[spec.traj_pos[:ml][valid]] = packed[valid]
    return rec


def fused_overshoot_pass(
    table: TansTable,
    spec: SpecTrajectory,
    bit_count: int,
    ends: np.ndarray,
    total_symbols: int,
) -> OvershootResult:
    """Run every boundary's synchronization search as one wide kernel.

    Lane ``k`` resumes from chunk ``k``'s end cursor and decodes
    forward, probing each position against the dense trajectory table
    *before* consuming it (reference ordering: a probe hit emits no
    overshoot symbol).  Lanes whose chunk walk was truncated by the
    step cap (cursor still inside their own range, where they would
    match their own trajectory) sit the search out and fall to the
    scalar walk.  Stop rules and their economics are documented at
    the ``_STOP_ACTIVE``/``_ABORT_*`` constants; a stopped search is
    never wrong, only smaller — the stitch scalar-walks whatever was
    not staged.
    """
    P = len(ends)
    T = table.table_size
    lanes = P - 1
    pk = table.packed_decode_entries()
    win24 = spec.win24
    rec = _trajectory_probe_table(spec, bit_count)

    span = int(ends[0]) if P else 0
    cap = min(max(64, 4 * span + 64), total_symbols + 1)
    over_pos = np.empty((cap, lanes), dtype=np.int64)
    over_state = np.empty((cap, lanes), dtype=np.int64)
    length = np.zeros(lanes, dtype=np.int64)
    matched = np.zeros(lanes, dtype=bool)
    match_pos = np.full(lanes, -1, dtype=np.int64)
    match_step = np.full(lanes, -1, dtype=np.int64)
    match_oidx = np.full(lanes, -1, dtype=np.int64)

    op = spec.end_pos[:lanes].copy()
    ox = spec.end_state[:lanes].copy()
    # Lanes whose chunk walk was cap-truncated (cursor short of their
    # range end, where they would self-match), parked lanes that never
    # decoded, and lanes already at/past the stream end (recorded
    # positions are all below it, so they can never match — and one
    # junk step would carry their cursor beyond the probe table's
    # guard slots) sit the search out.
    active = (
        (spec.end_pos[:lanes] >= ends[:lanes])
        & (spec.end_pos[:lanes] < bit_count)
        & (spec.traj_len[:lanes] > 0)
    )
    aborted = not active.any()

    for t in range(cap):
        # Probe: a miss reads -1, whose masked state (all ones) can
        # never equal a real state, so no validity test is needed.
        r = rec[op]
        hit = active & ((r & _REC_STATE_MASK) == ox)
        if hit.any():
            matched |= hit
            match_pos[hit] = op[hit]
            match_step[hit] = r[hit] >> _REC_STATE_BITS
            match_oidx[hit] = length[hit]
            active = active & ~hit
        if t % _CHECK_EVERY == 0:
            live = int(active.sum())
            if live == 0 or live < _STOP_ACTIVE:
                break
            if t >= _ABORT_ZERO_STEP and not matched.any():
                aborted = True
                break
            if (
                t >= _ABORT_FRACTION_STEP
                and int(matched.sum()) * 4 < lanes
            ):
                break
        over_pos[t] = op
        over_state[t] = ox
        g = pk[ox - T]
        nb = (g >> _PK_NB_SHIFT) & 31
        sh = 24 - (op & 7) - nb
        val = (win24[op >> 3] >> sh) & (g & _PK_MASK)
        ox = np.where(active, (g >> _PK_BASE_SHIFT) + val, ox)
        op = op + np.where(active, nb, 0)
        length += active
        # Freeze lanes that crossed the stream end before they probe
        # again: their cursor parks at most 16 bits past it, inside
        # the probe table's guard slots.
        active = active & (op < bit_count)

    return OvershootResult(
        over_pos=over_pos,
        over_state=over_state,
        length=length,
        matched=matched,
        match_pos=match_pos,
        match_step=match_step,
        match_oidx=match_oidx,
        end_pos=op,
        end_state=ox,
        aborted=aborted,
    )


def fused_stitch(
    table: TansTable,
    spec: SpecTrajectory,
    bit_count: int,
    num_symbols: int,
    initial_state: int,
    starts: np.ndarray,
    ends: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Stitch speculative trajectories into the true symbol stream.

    Chunk 0's output is correct from its true start state;
    inductively, the boundary walk continues from the last proven
    chunk's endpoint until its (position, state) cursor hits the next
    chunk's recorded trajectory, which proves that chunk's suffix.
    The walk itself was already done wide by
    :func:`fused_overshoot_pass`; here each boundary only *consumes*
    the staged records: ``searchsorted`` probes into the sorted
    ``traj_pos``/``over_pos`` columns replace the reference's
    per-position dict lookups, and proven suffixes and overshoot runs
    are emitted as array slices.  Boundaries the wide search gave up
    on (never-synchronizing chunks) fall back to the scalar walk.

    Returns ``(symbols, per-boundary overlaps, unsynced count)``.
    """
    P = len(starts)
    T = table.table_size
    N = num_symbols
    traj_pos = spec.traj_pos
    traj_state = spec.traj_state
    traj_len = spec.traj_len

    # State-trajectory pieces, symbol-gathered in one pass at the end.
    state_pieces: list[np.ndarray] = [traj_state[: int(traj_len[0]), 0]]
    emitted = int(traj_len[0])
    overlaps = np.zeros(max(P - 1, 0), dtype=np.int64)
    unsynced = 0

    # The wide search only pays for itself when enough boundaries run
    # concurrently (see _STOP_ACTIVE); small fleets scalar-walk their
    # few short overlaps directly.
    wide = None
    if P - 1 >= _STOP_ACTIVE and emitted < N:
        wide = fused_overshoot_pass(table, spec, bit_count, ends, N)
        if wide.aborted:
            wide = None

    # Scalar-walk state (only consulted when the wide search gave up);
    # the payload-sized list conversions are deferred until a scalar
    # walk actually runs — the common fully-wide-stitched decode never
    # pays them.
    scalar_tables: list[tuple] = []

    def _scalar_tables() -> tuple:
        if not scalar_tables:
            scalar_tables.append(
                (
                    table.dec_nb.tolist(),
                    table.dec_base.tolist(),
                    spec.win24.tolist(),
                )
            )
        return scalar_tables[0]

    x = int(spec.end_state[0]) if traj_len[0] else initial_state
    p = int(spec.end_pos[0]) if traj_len[0] else int(starts[0])
    scalar_mode = wide is None
    scalar_carry = 0  # overshoot symbols already consumed for boundary k

    lane = 0  # chain lane whose wide overshoot feeds the walk
    oi = 0  # next unconsumed overshoot step of that lane
    opos_col = ostate_col = None
    k = 1
    while k < P and emitted < N:
        if not scalar_mode:
            if opos_col is None:
                olen = int(wide.length[lane])
                opos_col = np.ascontiguousarray(wide.over_pos[:olen, lane])
                ostate_col = wide.over_state[:olen, lane]
            lane_matched = bool(wide.matched[lane])
            m_pos = int(wide.match_pos[lane])
            limit = int(ends[k])
            if lane_matched and m_pos < limit:
                extra = int(wide.match_oidx[lane]) - oi
                if emitted + extra >= N:
                    # Output budget exhausts before the match is
                    # reached: the reference stops probing and absorbs
                    # the boundary.
                    use = N - emitted
                    state_pieces.append(ostate_col[oi : oi + use])
                    overlaps[k - 1] = use
                    unsynced += 1
                    emitted = N
                    k += 1
                    continue
                state_pieces.append(ostate_col[oi : oi + extra])
                emitted += extra
                overlaps[k - 1] = extra
                mstep = int(wide.match_step[lane])
                L = int(traj_len[k])
                take = min(L - mstep, N - emitted)
                state_pieces.append(traj_state[mstep : mstep + take, k])
                emitted += take
                if mstep + take == L:
                    # Chunk fully proven: resume from its endpoint;
                    # its own wide overshoot carries the next
                    # boundary (the tail walk, if any, is scalar).
                    x = int(spec.end_state[k])
                    p = int(spec.end_pos[k])
                    if k < P - 1:
                        lane = k
                        oi = 0
                        opos_col = None
                    else:
                        scalar_mode = True
                k += 1
                continue
            # No match inside chunk k's range: count the overshoot
            # symbols that fell in it, then absorb the chunk.
            idx = int(np.searchsorted(opos_col, limit, side="left"))
            idx = max(idx, oi)
            n_k = idx - oi
            if emitted + n_k >= N:
                use = N - emitted
                state_pieces.append(ostate_col[oi : oi + use])
                overlaps[k - 1] = use
                unsynced += 1
                emitted = N
                k += 1
                continue
            covered = (
                idx < len(opos_col)
                or (lane_matched and m_pos >= limit)
                or int(wide.end_pos[lane]) >= limit
            )
            if covered:
                state_pieces.append(ostate_col[oi:idx])
                emitted += n_k
                overlaps[k - 1] = n_k
                unsynced += 1
                oi = idx
                k += 1
                continue
            # The wide walk gave up (step cap) before clearing chunk
            # k's range: consume what it staged and continue this
            # boundary with the scalar walk.
            state_pieces.append(ostate_col[oi:])
            scalar_carry = len(opos_col) - oi
            emitted += scalar_carry
            x = int(wide.end_state[lane])
            p = int(wide.end_pos[lane])
            scalar_mode = True
            # fall through to the scalar branch for this same k

        nb_t, base_t, win24 = _scalar_tables()
        L = int(traj_len[k])
        tp = np.ascontiguousarray(traj_pos[:L, k])
        tp_list = tp.tolist()
        ts_list = traj_state[:L, k].tolist()
        limit = int(ends[k])
        idx = int(np.searchsorted(tp, p))
        matched_step = None
        over_states: list[int] = []
        extra = scalar_carry  # wide-staged symbols already emitted
        scalar_carry = 0
        while emitted + len(over_states) < N:
            while idx < L and tp_list[idx] < p:
                idx += 1
            if idx < L and tp_list[idx] == p:
                # Zero-bit symbols can record one position twice; the
                # reference dict keeps the last write.
                j = idx
                while j + 1 < L and tp_list[j + 1] == p:
                    j += 1
                if ts_list[j] == x:
                    matched_step = j
                    break
            if p >= limit:
                break  # ran out of chunk k: it never synced
            e = x - T
            nb = nb_t[e]
            over_states.append(x)
            if nb:
                x = base_t[e] + (
                    (win24[p >> 3] >> (24 - (p & 7) - nb))
                    & ((1 << nb) - 1)
                )
                p += nb
            else:
                x = base_t[e]
            extra += 1

        state_pieces.append(np.asarray(over_states, dtype=np.int64))
        emitted += len(over_states)
        overlaps[k - 1] = extra
        if matched_step is not None:
            take = min(L - matched_step, N - emitted)
            state_pieces.append(
                traj_state[matched_step : matched_step + take, k]
            )
            emitted += take
            if matched_step + take == L:
                x = int(spec.end_state[k])
                p = int(spec.end_pos[k])
            elif take > 0:
                # Output budget cut the chunk short: resume from the
                # first unused trajectory entry.
                x = int(ts_list[matched_step + take])
                p = int(tp_list[matched_step + take])
            if wide is not None and k < P - 1:
                # Re-enter the wide records: the proven chunk's own
                # overshoot lane carries the next boundary.
                lane = k
                oi = 0
                opos_col = None
                scalar_mode = False
        else:
            unsynced += 1
        k += 1

    # Tail: if the last chunks were absorbed, finish serially.
    if emitted < N:
        if not scalar_mode:
            if opos_col is not None and oi < len(opos_col):
                # The staged overshoot continues past the last
                # boundary; consume it before walking.
                state_pieces.append(ostate_col[oi:])
                emitted += len(opos_col) - oi
            if emitted < N:
                x = int(wide.end_state[lane])
                p = int(wide.end_pos[lane])
        if emitted < N:
            nb_t, base_t, win24 = _scalar_tables()
            tail = np.empty(N - emitted, dtype=np.int64)
            for i in range(N - emitted):
                e = x - T
                nb = nb_t[e]
                tail[i] = x
                if nb:
                    x = base_t[e] + (
                        (win24[p >> 3] >> (24 - (p & 7) - nb))
                        & ((1 << nb) - 1)
                    )
                    p += nb
                else:
                    x = base_t[e]
            state_pieces.append(tail)
        emitted = N

    states = np.concatenate(state_pieces)[:N]
    if len(states) != N:
        raise DecodeError(f"multians produced {len(states)} of {N} symbols")
    out = table.dec_sym[states - T]
    return out, overlaps, unsynced


def staged_single_decode(
    table: TansTable,
    payload: np.ndarray,
    bit_count: int,
    state: int,
    bitpos: int,
    num_symbols: int,
) -> tuple[np.ndarray, int, int]:
    """Serial single-stream decode as a staged-trajectory sweep.

    The state chain is inherently sequential, so the per-iteration
    work is cut to the dependency itself (table-entry lookup, window
    read, state update) staged into a trajectory list; the symbol
    gather — the seed loop's per-iteration array store — is one bulk
    ``dec_sym`` indexing op over the staged entries.
    """
    T = table.table_size
    sym_arr = table.dec_sym
    nb_t = table.dec_nb.tolist()
    base_t = table.dec_base.tolist()
    win24 = bit_windows(payload).tolist()

    entries: list[int] = []
    stage = entries.append
    x = int(state)
    p = int(bitpos)
    for _ in range(num_symbols):
        e = x - T
        stage(e)
        nb = nb_t[e]
        if nb:
            if p + nb > bit_count:
                raise DecodeError("tANS bitstream exhausted")
            x = base_t[e] + (
                (win24[p >> 3] >> (24 - (p & 7) - nb)) & ((1 << nb) - 1)
            )
            p += nb
        else:
            x = base_t[e]
    return sym_arr[np.array(entries, dtype=np.int64)], x, p


def measure_sync_trajectory(
    table: TansTable,
    payload: np.ndarray,
    bit_count: int,
    initial_state: int,
    window_symbols: int,
) -> tuple[np.ndarray, np.ndarray, int]:
    """True (bit position, state) trajectory of a stream prefix.

    Returns ``(positions, states, end_pos)`` for ``window_symbols``
    decoded symbols — the staged sweep of
    :func:`staged_single_decode`, keeping positions instead of
    symbols.  Feeds the vectorized sync-length sampler.
    """
    T = table.table_size
    nb_t = table.dec_nb.tolist()
    base_t = table.dec_base.tolist()
    win24 = bit_windows(payload).tolist()

    positions = np.empty(window_symbols, dtype=np.int64)
    states = np.empty(window_symbols, dtype=np.int64)
    x = int(initial_state)
    p = 0
    for i in range(window_symbols):
        positions[i] = p
        states[i] = x
        e = x - T
        nb = nb_t[e]
        if nb:
            x = base_t[e] + (
                (win24[p >> 3] >> (24 - (p & 7) - nb)) & ((1 << nb) - 1)
            )
            p += nb
        else:
            x = base_t[e]
    return positions, states, p
