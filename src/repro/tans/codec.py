"""Serial tANS encoder/decoder.

The encoder processes symbols in *reverse* so the decoder reads bits
forward and emits symbols forward — the layout multians' parallel
decoder needs (threads jump to forward bit offsets).

Encoding one symbol from state ``x`` in ``[T, 2T)``: emit the low
``nb`` bits of ``x`` where ``nb`` is minimal with
``x >> nb < 2 f_s``, then ``x = enc_next[offset_s + (x >> nb) - f_s]``.
Decoding is the table walk described in :mod:`repro.tans.table`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bitio import BitWriter
from repro.errors import DecodeError, EncodeError
from repro.tans.fused import staged_single_decode
from repro.tans.table import TansTable


@dataclass
class TansEncodeResult:
    """A serial tANS bitstream."""

    payload: bytes  # packed bits, MSB-first, decoder reads forward
    bit_count: int
    initial_state: int  # decoder starts here (encoder's final state)
    num_symbols: int

    @property
    def payload_bytes(self) -> int:
        return len(self.payload)


class TansEncoder:
    """Single-state tANS encoder."""

    def __init__(self, table: TansTable) -> None:
        self.table = table

    def encode(self, data: np.ndarray) -> TansEncodeResult:
        table = self.table
        freqs = table.freqs
        if np.any(freqs[np.asarray(data)] == 0):
            raise EncodeError("data contains zero-frequency symbols")
        f_list = freqs.tolist()
        two_f = (freqs * 2).tolist()
        offs = table.enc_sub_offset.tolist()
        nxt = table.enc_next.tolist()
        T = table.table_size

        x = T  # canonical start state
        # Collected (value, nb) pairs in encode order; the bitstream is
        # written in reverse so the decoder reads forward.
        vals: list[int] = []
        nbs: list[int] = []
        for s in reversed(np.asarray(data).tolist()):
            f = f_list[s]
            tf = two_f[s]
            nb = 0
            y = x
            while y >= tf:
                y >>= 1
                nb += 1
            if nb:
                vals.append(x & ((1 << nb) - 1))
                nbs.append(nb)
            x = nxt[offs[s] + y - f]
        w = BitWriter()
        # Bulk emission: expand the variable-width chunks (reversed to
        # stream order) into one flat bit vector and pack it in a
        # single vectorized pass instead of one write_bits per symbol.
        if vals:
            vals.reverse()
            nbs.reverse()
            v = np.array(vals, dtype=np.uint64)
            widths = np.array(nbs, dtype=np.int64)
            total = int(widths.sum())
            ends = np.cumsum(widths)
            # Bit p of the stream belongs to the chunk ending at
            # ends[i] > p and holds value bit (end - 1 - p).
            shifts = (
                np.repeat(ends, widths) - 1 - np.arange(total, dtype=np.int64)
            ).astype(np.uint64)
            bits = (np.repeat(v, widths) >> shifts) & np.uint64(1)
            w.write_bits_array(bits, 1)
        bit_count = len(w)
        return TansEncodeResult(
            payload=w.to_bytes(),
            bit_count=bit_count,
            initial_state=x,
            num_symbols=len(data),
        )


class TansDecoder:
    """Single-state serial tANS decoder (the reference for tests and
    the serial fallback of multians)."""

    def __init__(self, table: TansTable) -> None:
        self.table = table

    def decode(
        self, result: TansEncodeResult, engine: str = "fused"
    ) -> np.ndarray:
        """Decode the full stream, verifying terminal conditions.

        ``engine`` selects the staged-trajectory sweep (default) or
        the ``"reference"`` seed loop for differential testing.
        """
        if engine not in ("fused", "reference"):
            raise DecodeError(f"unknown engine {engine!r}")
        decode_from = (
            self.decode_from if engine == "fused"
            else self.decode_from_reference
        )
        out, state, bitpos = decode_from(
            np.frombuffer(result.payload, dtype=np.uint8),
            result.bit_count,
            result.initial_state,
            0,
            result.num_symbols,
        )
        if bitpos != result.bit_count:
            raise DecodeError(
                f"bitstream not fully consumed ({bitpos} of "
                f"{result.bit_count} bits)"
            )
        if state != self.table.table_size:
            raise DecodeError("decoder did not land on the start state")
        return out

    def decode_from(
        self,
        payload: np.ndarray,
        bit_count: int,
        state: int,
        bitpos: int,
        num_symbols: int,
    ) -> tuple[np.ndarray, int, int]:
        """Decode ``num_symbols`` starting at ``(state, bitpos)``.

        The multians building block: starting state may be a *guess*
        (self-synchronization makes the tail of the output correct).
        Returns ``(symbols, final_state, final_bitpos)``.

        Routed through the staged-trajectory sweep
        (:func:`repro.tans.fused.staged_single_decode`); the seed loop
        is kept as :meth:`decode_from_reference`.
        """
        return staged_single_decode(
            self.table, payload, bit_count, state, bitpos, num_symbols
        )

    def decode_from_reference(
        self,
        payload: np.ndarray,
        bit_count: int,
        state: int,
        bitpos: int,
        num_symbols: int,
    ) -> tuple[np.ndarray, int, int]:
        """The seed per-symbol loop, kept as the differential twin of
        :meth:`decode_from`."""
        table = self.table
        T = table.table_size
        sym_t = table.dec_sym.tolist()
        nb_t = table.dec_nb.tolist()
        base_t = table.dec_base.tolist()
        # Vectorized bit extraction: one 24-bit big-endian window per
        # byte offset, built in a single pass.  A read of nb <= 16 bits
        # at bit position p is then two integer ops against the window
        # starting at byte p >> 3 (7 skew bits + 16 payload bits fit).
        padded = np.zeros(len(payload) + 3, dtype=np.uint32)
        padded[: len(payload)] = payload
        win24 = (
            (padded[:-3] << np.uint32(16))
            | (padded[1:-2] << np.uint32(8))
            | padded[2:-1]
        ).tolist()
        out = np.empty(num_symbols, dtype=np.int64)
        x = int(state)
        p = int(bitpos)
        for i in range(num_symbols):
            e = x - T
            nb = nb_t[e]
            if nb:
                if p + nb > bit_count:
                    raise DecodeError("tANS bitstream exhausted")
                val = (win24[p >> 3] >> (24 - (p & 7) - nb)) & (
                    (1 << nb) - 1
                )
                p += nb
            else:
                val = 0
            out[i] = sym_t[e]
            x = base_t[e] + val
        return out, x, p
