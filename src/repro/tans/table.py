"""tANS table construction (Duda's tabled ANS, FSE-style).

States live in ``[T, 2T)`` with ``T = 2**table_bits``.  Symbol
frequencies are quantized to sum ``T``; each symbol ``s`` occupies
``f_s`` table positions chosen by a zstd-style spread function.

Decoding a state ``x``: the entry at ``x - T`` yields the symbol, a
bit count ``nb`` and a base; the next state is ``base + readBits(nb)``.
Encoding is the exact inverse: emit the low ``nb`` bits of ``x`` such
that ``x >> nb`` lands in ``[f_s, 2 f_s)``, then jump through the
encode mapping.

Serialization mirrors what *multians* ships to the GPU: a packed
decode-table dump, 4 bytes per state for 8-bit alphabets
(``symbol | nb << 8 | base << 16``), which is why the n=16 variant
costs ~256 KB of side information (Table 6's multians column).
"""

from __future__ import annotations

import numpy as np

from repro.bitio.varint import decode_uvarint, encode_uvarint
from repro.errors import ContainerError, ModelError
from repro.rans.model import quantize_counts


def spread_symbols(freqs: np.ndarray, table_bits: int) -> np.ndarray:
    """zstd-style symbol spread over the table positions.

    Walks positions with the coprime stride
    ``(T >> 1) + (T >> 3) + 3`` so each symbol's occurrences are
    scattered roughly uniformly — the property that makes tANS states
    carry fractional bits (and, incidentally, self-synchronize).
    """
    T = 1 << table_bits
    freqs = np.asarray(freqs, dtype=np.int64)
    total = int(freqs.sum())
    if total != T:
        raise ModelError(
            f"frequencies must sum to table size {T}, got {total}"
        )
    # The walk visits position (j * step) & mask at step j, assigning
    # symbols in frequency-run order — both sides are closed-form, so
    # the whole spread is two vectorized ops instead of T iterations.
    step = (T >> 1) + (T >> 3) + 3
    mask = T - 1
    positions = (np.arange(T, dtype=np.int64) * step) & mask
    spread = np.empty(T, dtype=np.int64)
    spread[positions] = np.repeat(
        np.arange(len(freqs), dtype=np.int64), freqs
    )
    return spread


class TansTable:
    """Complete tANS coding tables for one distribution.

    Attributes
    ----------
    dec_sym, dec_nb, dec_base:
        Per-state decode entries (arrays of length ``T``); the decoder
        for state ``x`` uses index ``x - T``.
    enc_next, enc_sub_offset:
        Encode mapping: symbol ``s`` with sub-state ``sub`` (in
        ``[f_s, 2 f_s)``) transitions to state
        ``enc_next[enc_sub_offset[s] + sub - f_s]``.
    """

    def __init__(self, freqs: np.ndarray, table_bits: int) -> None:
        freqs = np.asarray(freqs, dtype=np.int64)
        self.table_bits = table_bits
        self.table_size = 1 << table_bits
        self.freqs = freqs
        self.alphabet_size = len(freqs)
        spread = spread_symbols(freqs, table_bits)
        self.spread = spread

        T = self.table_size
        dec_sym = spread.copy()
        enc_sub_offset = np.zeros(self.alphabet_size + 1, dtype=np.int64)
        np.cumsum(freqs, out=enc_sub_offset[1:])

        # Per-position sub-state: position p is its symbol's occ-th
        # occurrence (in increasing p, recovered via a stable argsort)
        # and walks sub = f_s + occ through [f_s, 2 f_s).
        order = np.argsort(spread, kind="stable")
        occ = np.empty(T, dtype=np.int64)
        occ[order] = np.arange(T, dtype=np.int64) - np.repeat(
            enc_sub_offset[:-1], freqs
        )
        sub = freqs[spread] + occ
        # Bits needed to lift sub back into [T, 2T):
        # nb = table_bits - (bit_length(sub) - 1), with bit_length via
        # frexp (exact for integers below 2**53).
        _, exp = np.frexp(sub.astype(np.float64))
        dec_nb = table_bits - (exp.astype(np.int64) - 1)
        dec_base = sub << dec_nb
        enc_next = np.empty(T, dtype=np.int64)
        enc_next[enc_sub_offset[spread] + occ] = T + np.arange(
            T, dtype=np.int64
        )
        self.dec_sym = dec_sym
        self.dec_nb = dec_nb
        self.dec_base = dec_base
        self.enc_next = enc_next
        self.enc_sub_offset = enc_sub_offset

    # ------------------------------------------------------------------

    @classmethod
    def from_counts(cls, counts: np.ndarray, table_bits: int) -> "TansTable":
        """Quantize raw counts to the table size and build tables."""
        return cls(
            quantize_counts(counts, table_bits).astype(np.int64), table_bits
        )

    @classmethod
    def from_data(
        cls, data: np.ndarray, table_bits: int, alphabet_size: int | None = None
    ) -> "TansTable":
        data = np.asarray(data)
        if alphabet_size is None:
            alphabet_size = int(data.max()) + 1
        counts = np.bincount(data.ravel(), minlength=alphabet_size)
        return cls.from_counts(counts, table_bits)

    # ------------------------------------------------------------------

    def packed_decode_entries(self) -> np.ndarray:
        """Fused-kernel decode table: one int64 gather per state.

        Entry ``e`` packs ``base << 22 | nb << 17 | ((1 << nb) - 1)``
        (base < 2**17, nb <= 16, mask < 2**17), so the wide kernels
        unpack three fields from a single table lookup instead of
        gathering ``dec_nb``/``dec_base`` separately and recomputing
        the bit mask per step.  Built once per table and cached.
        """
        pk = getattr(self, "_packed_decode", None)
        if pk is None:
            nb = self.dec_nb.astype(np.int64)
            pk = (
                (self.dec_base.astype(np.int64) << 22)
                | (nb << 17)
                | ((np.int64(1) << nb) - 1)
            )
            self._packed_decode = pk
        return pk

    @property
    def entropy_bits_per_symbol(self) -> float:
        p = self.freqs / self.table_size
        p = p[p > 0]
        return float(-(p * np.log2(p)).sum())

    def dump_bytes(self) -> int:
        """Size of the GPU-ready decode-table dump (what multians
        transfers): 4 bytes per state for 8-bit alphabets, 5 otherwise,
        plus a small header."""
        per_state = 4 if self.alphabet_size <= 256 else 5
        return per_state * self.table_size + 8

    def to_bytes(self) -> bytes:
        """Serialize as a decode-table dump (multians wire format)."""
        out = bytearray()
        out += encode_uvarint(self.table_bits)
        out += encode_uvarint(self.alphabet_size)
        if self.alphabet_size <= 256:
            packed = (
                self.dec_sym.astype(np.uint32)
                | (self.dec_nb.astype(np.uint32) << np.uint32(8))
                | (self.dec_base.astype(np.uint32) << np.uint32(16))
            )
            # base < 2**(table_bits+1) <= 2**17 overflows 16 bits only
            # when table_bits = 16; use explicit fields there instead.
            if self.table_bits <= 15:
                out += packed.astype("<u4").tobytes()
            else:
                out += self.dec_sym.astype("<u1").tobytes()
                out += self.dec_nb.astype("<u1").tobytes()
                out += self.dec_base.astype("<u4").tobytes()
        else:
            out += self.dec_sym.astype("<u2").tobytes()
            out += self.dec_nb.astype("<u1").tobytes()
            out += self.dec_base.astype("<u4").tobytes()
        return bytes(out)

    @classmethod
    def from_bytes(cls, blob: bytes, offset: int = 0) -> tuple["TansTable", int]:
        """Rebuild a table from its dump (frequencies are recovered by
        counting spread occupancy)."""
        table_bits, pos = decode_uvarint(blob, offset)
        alphabet, pos = decode_uvarint(blob, pos)
        T = 1 << table_bits
        if alphabet <= 256 and table_bits <= 15:
            packed = np.frombuffer(blob, dtype="<u4", count=T, offset=pos)
            pos += 4 * T
            dec_sym = (packed & 0xFF).astype(np.int64)
        elif alphabet <= 256:
            dec_sym = np.frombuffer(
                blob, dtype="<u1", count=T, offset=pos
            ).astype(np.int64)
            pos += T + T + 4 * T
        else:
            dec_sym = np.frombuffer(
                blob, dtype="<u2", count=T, offset=pos
            ).astype(np.int64)
            pos += 2 * T + T + 4 * T
        freqs = np.bincount(dec_sym, minlength=alphabet)
        table = cls(freqs.astype(np.int64), table_bits)
        if pos > len(blob):
            raise ContainerError("truncated tANS table dump")
        return table, pos
