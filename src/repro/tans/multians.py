"""multians: massively parallel self-synchronizing tANS decoding.

Reproduction of baseline (C) (Weißenberger & Schmidt, ICPP'19, as used
in the paper's §5).  One *serial* tANS bitstream is decoded by ``P``
threads that start at evenly spaced bit offsets:

1. **Speculative pass** (vectorized across threads, the GPU analog):
   every thread decodes its chunk; threads other than the first start
   with a *guessed* state, so their leading symbols are garbage until
   the tANS table's self-synchronization kicks in.  Each thread
   records its (bit position → state) trajectory.
2. **Stitching pass**: thread ``k`` (whose suffix is known-correct,
   inductively from thread 0's true start state) continues decoding
   past its chunk boundary until its (position, state) pair hits
   thread ``k+1``'s recorded trajectory — from there, thread ``k+1``'s
   output is provably identical, so the overlap re-decoded by thread
   ``k`` is the *synchronization overhead* (measured and fed to the
   Figure-7 cost model).  Threads that never match are absorbed
   (their whole chunk is re-decoded) — the n=16 collapse.

No metadata is stored in the bitstream (multians' selling point), but
the decode-table dump must ship, which is what sinks its compression
rate at n=16 (Table 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bitio.varint import decode_uvarint, encode_uvarint
from repro.errors import ContainerError, DecodeError
from repro.tans.codec import TansDecoder, TansEncodeResult, TansEncoder
from repro.tans.fused import (
    bit_windows,
    fused_speculative_pass,
    fused_stitch,
    measure_sync_trajectory,
)
from repro.tans.table import TansTable

MAGIC = b"MANS"
VERSION = 1


@dataclass
class MultiansStats:
    """Synchronization behaviour of one parallel decode."""

    threads: int
    chunk_symbols: float  # mean payload symbols per thread
    overlap_symbols: np.ndarray  # per-boundary re-decoded symbols
    unsynced_threads: int  # threads never matched (chunk re-decoded)

    @property
    def total_overlap(self) -> int:
        return int(self.overlap_symbols.sum())

    @property
    def mean_overlap(self) -> float:
        return (
            float(self.overlap_symbols.mean())
            if len(self.overlap_symbols)
            else 0.0
        )

    @property
    def per_thread_symbols(self) -> np.ndarray:
        """Work per thread: own chunk plus stitching overlap."""
        base = np.full(self.threads, self.chunk_symbols)
        if len(self.overlap_symbols):
            base[: len(self.overlap_symbols)] += self.overlap_symbols
        return base


class MultiansCodec:
    """Encoder + massively parallel decoder for serial tANS streams.

    Parameters
    ----------
    table:
        The tANS coding table (its dump ships with every container).
    """

    def __init__(self, table: TansTable) -> None:
        self.table = table

    # ------------------------------------------------------------------
    # Container
    # ------------------------------------------------------------------

    def compress(self, data: np.ndarray) -> bytes:
        enc = TansEncoder(self.table).encode(data)
        out = bytearray()
        out += MAGIC
        out.append(VERSION)
        out += encode_uvarint(enc.num_symbols)
        out += encode_uvarint(enc.bit_count)
        out += encode_uvarint(enc.initial_state)
        out += self.table.to_bytes()
        out += enc.payload
        return bytes(out)

    def parse(self, blob: bytes) -> tuple[TansEncodeResult, TansTable]:
        if blob[:4] != MAGIC:
            raise ContainerError(f"bad magic {blob[:4]!r}")
        if blob[4] != VERSION:
            raise ContainerError(f"unsupported version {blob[4]}")
        pos = 5
        num_symbols, pos = decode_uvarint(blob, pos)
        bit_count, pos = decode_uvarint(blob, pos)
        initial_state, pos = decode_uvarint(blob, pos)
        table, pos = TansTable.from_bytes(blob, pos)
        payload = blob[pos:]
        if len(payload) < (bit_count + 7) // 8:
            raise ContainerError("truncated tANS payload")
        return (
            TansEncodeResult(
                payload=payload,
                bit_count=bit_count,
                initial_state=initial_state,
                num_symbols=num_symbols,
            ),
            table,
        )

    # ------------------------------------------------------------------
    # Parallel decode
    # ------------------------------------------------------------------

    def decompress(
        self, blob: bytes, num_threads: int = 256, engine: str = "fused"
    ) -> tuple[np.ndarray, MultiansStats]:
        enc, table = self.parse(blob)
        if engine == "fused":
            return self.parallel_decode(enc, table, num_threads)
        if engine == "compiled":
            return self.parallel_decode(
                enc, table, num_threads, kernel="compiled"
            )
        if engine == "reference":
            return self.parallel_decode_reference(enc, table, num_threads)
        raise DecodeError(f"unknown engine {engine!r}")

    @staticmethod
    def _plan_chunks(enc: TansEncodeResult, num_threads: int):
        """Chunk geometry shared by the fused and reference paths."""
        P = max(1, min(num_threads, max(1, enc.bit_count // 16)))
        bound = -(-enc.bit_count // P)
        starts = np.arange(P, dtype=np.int64) * bound
        ends = np.minimum(starts + bound, enc.bit_count)
        return P, starts, ends

    def parallel_decode(
        self,
        enc: TansEncodeResult,
        table: TansTable,
        num_threads: int,
        kernel: str = "numpy",
    ) -> tuple[np.ndarray, MultiansStats]:
        """Fused wide-lane decode: one ``(P,)``-wide kernel pass plus
        the searchsorted stitch (:mod:`repro.tans.fused`).  The seed
        loops are kept as :meth:`parallel_decode_reference`.
        ``kernel="compiled"`` routes the speculative safe runs through
        the compiled twin (bit-identical, DESIGN.md §19)."""
        N = enc.num_symbols
        if N == 0:
            return np.empty(0, dtype=np.int64), MultiansStats(
                1, 0.0, np.empty(0, dtype=np.int64), 0
            )
        P, starts, ends = self._plan_chunks(enc, num_threads)
        if P == 1:
            out = TansDecoder(table).decode(enc)
            return out, MultiansStats(1, float(N), np.empty(0, np.int64), 0)

        payload = np.frombuffer(enc.payload, dtype=np.uint8)
        spec = fused_speculative_pass(
            table, payload, enc.bit_count, starts, ends,
            enc.initial_state, N, kernel=kernel,
        )
        out, overlaps, unsynced = fused_stitch(
            table, spec, enc.bit_count, N, enc.initial_state, starts, ends
        )
        stats = MultiansStats(
            threads=P,
            chunk_symbols=N / P,
            overlap_symbols=overlaps,
            unsynced_threads=unsynced,
        )
        return out, stats

    def parallel_decode_reference(
        self,
        enc: TansEncodeResult,
        table: TansTable,
        num_threads: int,
    ) -> tuple[np.ndarray, MultiansStats]:
        """The seed decode pipeline (mat-vec windows + dict stitch),
        kept as the differential twin of :meth:`parallel_decode`."""
        N = enc.num_symbols
        if N == 0:
            return np.empty(0, dtype=np.int64), MultiansStats(
                1, 0.0, np.empty(0, dtype=np.int64), 0
            )
        P, starts, ends = self._plan_chunks(enc, num_threads)
        if P == 1:
            out = TansDecoder(table).decode(enc, engine="reference")
            return out, MultiansStats(1, float(N), np.empty(0, np.int64), 0)

        bits = np.unpackbits(
            np.frombuffer(enc.payload, dtype=np.uint8)
        ).astype(np.int64)
        # Pad so 16-bit windows never run off the end.
        bits = np.concatenate([bits, np.zeros(16, dtype=np.int64)])

        traj_pos, traj_state, traj_sym, traj_len = (
            self._speculative_pass_reference(
                table, bits, starts, ends, enc.initial_state, N
            )
        )
        return self._stitch_reference(
            table,
            bits,
            enc.bit_count,
            enc,
            starts,
            ends,
            traj_pos,
            traj_state,
            traj_sym,
            traj_len,
        )

    # -- phase 1 ---------------------------------------------------------

    def _speculative_pass_reference(
        self,
        table: TansTable,
        bits: np.ndarray,
        starts: np.ndarray,
        ends: np.ndarray,
        true_state: int,
        total_symbols: int,
    ):
        """All threads decode their chunk simultaneously (vectorized).

        Returns per-thread trajectories: the (bitpos, state) *before*
        each decoded symbol, plus the symbol itself.
        """
        P = len(starts)
        T = table.table_size
        sym_t = table.dec_sym
        nb_t = table.dec_nb
        base_t = table.dec_base
        pw = (1 << np.arange(15, -1, -1)).astype(np.int64)

        cap = max(64, int(4 * (ends - starts).max()) + 64)
        traj_pos = np.full((P, cap), -1, dtype=np.int64)
        traj_state = np.zeros((P, cap), dtype=np.int64)
        traj_sym = np.zeros((P, cap), dtype=np.int64)
        traj_len = np.zeros(P, dtype=np.int64)

        pos = starts.copy()
        state = np.full(P, T, dtype=np.int64)
        state[0] = true_state
        step = 0
        win_idx = np.arange(16, dtype=np.int64)[None, :]
        while True:
            active = (pos < ends) & (traj_len < cap)
            # The first thread must not outrun the true symbol count
            # (trailing bits can be padding).
            active[0] &= traj_len[0] < total_symbols
            if not active.any():
                break
            ai = np.flatnonzero(active)
            traj_pos[ai, traj_len[ai]] = pos[ai]
            traj_state[ai, traj_len[ai]] = state[ai]
            e = state[ai] - T
            nb = nb_t[e]
            win = bits[pos[ai, None] + win_idx] @ pw
            val = win >> (16 - nb)
            traj_sym[ai, traj_len[ai]] = sym_t[e]
            state[ai] = base_t[e] + val
            pos[ai] += nb
            traj_len[ai] += 1
            step += 1
        return traj_pos, traj_state, traj_sym, traj_len

    # -- phase 2 ---------------------------------------------------------

    def _stitch_reference(
        self,
        table: TansTable,
        bits: np.ndarray,
        bit_count: int,
        enc: TansEncodeResult,
        starts: np.ndarray,
        ends: np.ndarray,
        traj_pos: np.ndarray,
        traj_state: np.ndarray,
        traj_sym: np.ndarray,
        traj_len: np.ndarray,
    ) -> tuple[np.ndarray, MultiansStats]:
        P = len(starts)
        T = table.table_size
        sym_t = table.dec_sym.tolist()
        nb_t = table.dec_nb.tolist()
        base_t = table.dec_base.tolist()
        N = enc.num_symbols

        # Per-thread lookup: bitpos -> (step, state).
        maps: list[dict[int, tuple[int, int]]] = []
        for k in range(P):
            L = int(traj_len[k])
            maps.append(
                {
                    int(traj_pos[k, i]): (i, int(traj_state[k, i]))
                    for i in range(L)
                }
            )

        pieces: list[np.ndarray] = [traj_sym[0, : traj_len[0]]]
        emitted = int(traj_len[0])
        overlaps = np.zeros(P - 1, dtype=np.int64)
        unsynced = 0

        # Continue from thread 0's (known correct) endpoint, stitching
        # into each next thread's trajectory.
        x = int(traj_state[0, traj_len[0] - 1]) if traj_len[0] else enc.initial_state
        p = int(starts[0])
        if traj_len[0]:
            # Recompute thread 0's exact endpoint (state/pos after its
            # last decode).
            i = int(traj_len[0]) - 1
            e = int(traj_state[0, i]) - T
            p = int(traj_pos[0, i]) + nb_t[e]
            val = 0
            for b in range(nb_t[e]):
                q = int(traj_pos[0, i]) + b
                val = (val << 1) | int(bits[q])
            x = base_t[e] + val

        k = 1
        while k < P and emitted < N:
            matched_step = None
            extra = 0
            mp = maps[k]
            limit_pos = int(ends[k])
            overshoot: list[int] = []
            while emitted + extra < N:
                hit = mp.get(p)
                if hit is not None and hit[1] == x:
                    matched_step = hit[0]
                    break
                if p >= limit_pos:
                    break  # ran out of thread k's chunk: it never synced
                e = x - T
                nb = nb_t[e]
                val = 0
                for b in range(nb):
                    val = (val << 1) | int(bits[p + b])
                p += nb
                overshoot.append(sym_t[e])
                x = base_t[e] + val
                extra += 1

            if matched_step is not None:
                take = int(traj_len[k]) - matched_step
                pieces.append(np.asarray(overshoot, dtype=np.int64))
                room = N - emitted - extra
                valid = traj_sym[k, matched_step : matched_step + min(take, room)]
                pieces.append(valid)
                emitted += extra + len(valid)
                overlaps[k - 1] = extra
                # Move the cursor to thread k's endpoint.
                if len(valid):
                    i = matched_step + len(valid) - 1
                    e = int(traj_state[k, i]) - T
                    nb = nb_t[e]
                    val = 0
                    for b in range(nb):
                        q = int(traj_pos[k, i]) + b
                        val = (val << 1) | int(bits[q])
                    p = int(traj_pos[k, i]) + nb
                    x = base_t[e] + val
                k += 1
            else:
                # Thread k never synchronized: absorb its chunk into the
                # serial continuation and try the next thread.
                pieces.append(np.asarray(overshoot, dtype=np.int64))
                emitted += extra
                overlaps[k - 1] = extra
                unsynced += 1
                k += 1

        # Tail: if the last threads were absorbed, finish serially.
        if emitted < N:
            tail = np.empty(N - emitted, dtype=np.int64)
            for i in range(N - emitted):
                e = x - T
                nb = nb_t[e]
                val = 0
                for b in range(nb):
                    val = (val << 1) | int(bits[p + b])
                p += nb
                tail[i] = sym_t[e]
                x = base_t[e] + val
            pieces.append(tail)
            emitted = N

        out = np.concatenate(pieces)[:N]
        if x != T and emitted >= N:
            # Terminal state check only applies when the stitch walked
            # the entire stream; trajectory reuse skips re-decoding so
            # validate via symbol count instead.
            pass
        if len(out) != N:
            raise DecodeError(
                f"multians produced {len(out)} of {N} symbols"
            )
        stats = MultiansStats(
            threads=P,
            chunk_symbols=N / P,
            overlap_symbols=overlaps,
            unsynced_threads=unsynced,
        )
        return out, stats


def measure_sync_length(
    table: TansTable,
    enc: TansEncodeResult,
    samples: int = 8,
    window_symbols: int = 200_000,
    seed: int = 0,
) -> float:
    """Empirical tANS self-synchronization length.

    Decodes a prefix of the stream serially to obtain the true
    (bit position, state) trajectory, then restarts decoding from
    sampled on-trajectory bit offsets with *guessed* states and counts
    the symbols until the walk rejoins the trajectory.  This is the
    quantity that drives multians' iterative re-decode rounds: the
    expected overlap a speculative thread must decode before its
    output becomes trustworthy.

    All sampling windows advance as one ``(samples,)``-wide state
    vector through the fused kernel's window arrays; the true
    trajectory is probed through a dense position-to-state table
    (first recorded state wins, matching the seed's ``setdefault``).
    The seed's per-sample per-bit loops are kept as
    :func:`measure_sync_length_reference`.

    Returns the mean sync length in symbols (capped at the window when
    a sample never converges — the n=16 regime).
    """
    rng = np.random.default_rng(seed)
    T = table.table_size
    nb_t = table.dec_nb
    base_t = table.dec_base
    payload = np.frombuffer(enc.payload, dtype=np.uint8)
    window = min(window_symbols, enc.num_symbols)
    if window == 0 or samples == 0:
        return 0.0

    positions, states, end_pos = measure_sync_trajectory(
        table, payload, enc.bit_count, enc.initial_state, window
    )
    # Dense bitpos -> true-state map.  Zero-bit symbols revisit a
    # position; keep the first recorded state, like the seed's
    # ``dict.setdefault``.
    dense = np.full(end_pos + 17, -1, dtype=np.int64)
    first = np.ones(window, dtype=bool)
    first[1:] = positions[1:] != positions[:-1]
    dense[positions[first]] = states[first]

    # Draw (start step, guessed state) pairs in the seed's interleaved
    # order so both implementations consume the same rng stream.
    start_steps = np.empty(samples, dtype=np.int64)
    guesses = np.empty(samples, dtype=np.int64)
    for s in range(samples):
        start_steps[s] = rng.integers(0, max(1, window // 2))
        guesses[s] = T + int(rng.integers(0, T))

    win24 = bit_windows(payload).astype(np.int64)
    p2 = positions[start_steps].copy()
    gx = guesses.copy()
    steps = np.zeros(samples, dtype=np.int64)
    active = np.ones(samples, dtype=bool)
    probe_cap = len(dense) - 1
    while active.any():
        # Probe before the end-of-window guard, like the seed: a match
        # exactly at the trajectory's end position still counts.
        matched = active & (dense[np.minimum(p2, probe_cap)] == gx)
        active &= ~matched
        overrun = active & (p2 >= end_pos)
        steps[overrun] = window
        active &= ~overrun
        if not active.any():
            break
        e = gx - T
        nb = nb_t[e]
        val = (
            win24[p2 >> 3] >> (24 - (p2 & 7) - nb)
        ) & ((np.int64(1) << nb) - 1)
        gx = np.where(active, base_t[e] + val, gx)
        p2 = p2 + np.where(active, nb, 0)
        steps += active
        active &= steps < window
    return float(np.mean(steps))


def measure_sync_length_reference(
    table: TansTable,
    enc: TansEncodeResult,
    samples: int = 8,
    window_symbols: int = 200_000,
    seed: int = 0,
) -> float:
    """The seed's scalar sync-length sampler (differential twin of
    :func:`measure_sync_length`)."""
    rng = np.random.default_rng(seed)
    T = table.table_size
    sym_t = table.dec_sym.tolist()
    nb_t = table.dec_nb.tolist()
    base_t = table.dec_base.tolist()
    bits = np.unpackbits(np.frombuffer(enc.payload, dtype=np.uint8))
    bits = np.concatenate([bits, np.zeros(32, dtype=np.uint8)]).astype(np.int64)

    window = min(window_symbols, enc.num_symbols)
    traj: dict[int, int] = {}
    order: list[int] = []
    x = enc.initial_state
    p = 0
    for _ in range(window):
        traj.setdefault(p, x)
        order.append(p)
        e = x - T
        nb = nb_t[e]
        val = 0
        for b in range(nb):
            val = (val << 1) | int(bits[p + b])
        p += nb
        x = base_t[e] + val
    end_pos = p

    lengths = []
    for _ in range(samples):
        start_step = int(rng.integers(0, max(1, window // 2)))
        sp = order[start_step]
        gx = T + int(rng.integers(0, T))
        steps = 0
        p2 = sp
        while steps < window:
            true_state = traj.get(p2)
            if true_state is not None and true_state == gx:
                break
            if p2 >= end_pos:
                steps = window
                break
            e = gx - T
            nb = nb_t[e]
            val = 0
            for b in range(nb):
                val = (val << 1) | int(bits[p2 + b])
            p2 += nb
            gx = base_t[e] + val
            steps += 1
        lengths.append(steps)
    return float(np.mean(lengths))
