"""tANS (table-variant ANS) substrate and the multians baseline.

Built to reproduce baseline (C) of the paper: *multians*
(Weißenberger & Schmidt, ICPP'19) decodes a single serial tANS
bitstream massively in parallel by exploiting tANS
self-synchronization — decoder threads start mid-stream with guessed
states and converge to the true state after some symbols.

The paper's experimental knobs are reproduced here: the tANS state
count is 2**12 for the n=11 experiments and raised to 2**16 for n=16
("we modify the state count only for the n=16 experiment"), where the
shipped decode-table dump and the self-synchronization overhead both
blow up — the effect behind multians' collapse in Tables 5/6 and
Figure 7.
"""

from repro.tans.table import TansTable
from repro.tans.codec import TansDecoder, TansEncoder, TansEncodeResult
from repro.tans.multians import MultiansCodec, MultiansStats

__all__ = [
    "TansTable",
    "TansEncoder",
    "TansDecoder",
    "TansEncodeResult",
    "MultiansCodec",
    "MultiansStats",
]
