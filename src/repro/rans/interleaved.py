"""32-way interleaved rANS (paper §2.2, Figure 1).

Symbols are assigned to lanes round-robin: 1-based symbol index ``i``
belongs to lane ``(i - 1) % K``.  Encoding walks the symbol sequence
forward; each symbol's owning lane renormalizes (emitting one 16-bit
word into the shared stream, in symbol order — equivalently, in
increasing lane order within a group) and then applies Eq. 1.  Decoding
walks backward, mirroring exactly: decode Eq. 2, then renormalize by
reading words in reverse emission order.

Because ``b >= n`` (Table 3), renormalization always completes in a
single step, so **every emitted word corresponds to exactly one
renormalization event** — the paper's "renormalization points are where
bitstreams are written".  When ``record_events`` is set, the encoder
captures per-word metadata (symbol index, lane, bounded post-renorm
state), the raw material for Recoil splits.

The hot loops are vectorized over the ``K`` lanes with numpy — the
moral equivalent of the paper's AVX implementations, where each lane
maps to a SIMD element.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DecodeError, EncodeError
from repro.rans.adaptive import AdaptiveModelProvider, StaticModelProvider
from repro.rans.constants import (
    DEFAULT_LANES,
    L_BOUND,
    RENORM_BITS,
    RENORM_MASK,
)
from repro.rans.model import SymbolModel


@dataclass
class RenormEvents:
    """Struct-of-arrays renormalization log, one entry per word.

    Entry ``k`` describes the event that emitted stream word ``k``:

    - ``symbol_index[k]`` — 1-based index of the symbol *about to be
      encoded* when the renormalization fired (the event "belongs to"
      that symbol per Eq. 3's forward-looking formulation).
    - ``lane[k]`` — the lane that renormalized.
    - ``state_after[k]`` — the post-renormalization state, ``< L``
      (Lemma 3.1), hence stored in 16 bits.

    The word position is implicit (``k`` itself) because ``b >= n``
    makes renormalization single-step.
    """

    symbol_index: np.ndarray  # uint64
    lane: np.ndarray  # uint16
    state_after: np.ndarray  # uint16

    def __len__(self) -> int:
        return len(self.symbol_index)

    def __getitem__(self, k: int) -> tuple[int, int, int]:
        return (
            int(self.symbol_index[k]),
            int(self.lane[k]),
            int(self.state_after[k]),
        )


@dataclass
class InterleavedEncodeResult:
    """Everything the encoder produces for one input sequence."""

    words: np.ndarray  # uint16 stream, emission order
    final_states: np.ndarray  # uint64, shape (lanes,)
    num_symbols: int
    lanes: int
    events: RenormEvents | None = None

    @property
    def num_words(self) -> int:
        return len(self.words)

    @property
    def payload_bytes(self) -> int:
        """Size of the word stream in bytes."""
        return 2 * len(self.words)


class InterleavedEncoder:
    """K-way interleaved rANS encoder over an adaptive model provider.

    Instances reuse scratch buffers across :meth:`encode` calls and
    must not be shared between concurrently encoding threads
    (DESIGN.md §9).
    """

    def __init__(
        self,
        provider: AdaptiveModelProvider | SymbolModel,
        lanes: int = DEFAULT_LANES,
    ) -> None:
        if isinstance(provider, SymbolModel):
            provider = StaticModelProvider(provider)
        if lanes < 1:
            raise EncodeError(f"need at least one lane, got {lanes}")
        self.provider = provider
        self.lanes = lanes
        self._arena = None  # scratch buffers, reused across encode calls

    def _get_arena(self):
        if self._arena is None:
            from repro.parallel.buffers import ScratchArena

            self._arena = ScratchArena()
        return self._arena

    def encode(
        self,
        data: np.ndarray,
        record_events: bool = False,
        kernel: str = "numpy",
    ) -> InterleavedEncodeResult:
        """Encode ``data`` (1-D integer array) into a single stream.

        Routes through the fused wide-lane encode kernel
        (:mod:`repro.parallel.fused_encode`): per-block operand
        gathers from provider-cached
        :class:`~repro.rans.adaptive.EncodeTables`, a straight-line
        sequential sweep over interleave groups, and bulk in-kernel
        word emission + split-event recording reconstructed from the
        staged state trajectory.  :meth:`encode_reference` is the
        original per-group masked loop, kept bit-identical for
        differential testing.
        """
        from repro.parallel.fused_encode import EncodeTask, fused_encode_run

        data = np.ascontiguousarray(data)
        if data.ndim != 1:
            raise EncodeError(f"data must be 1-D, got shape {data.shape}")
        task = EncodeTask(data, start_index=1, record_events=record_events)
        out = fused_encode_run(
            self.provider, self.lanes, [task], self._get_arena(),
            kernel=kernel,
        )[0]
        events = None
        if record_events:
            events = RenormEvents(
                symbol_index=out.event_symbol,
                lane=out.event_lane,
                state_after=out.event_state,
            )
        return InterleavedEncodeResult(
            words=out.words,
            final_states=out.final_states,
            num_symbols=len(data),
            lanes=self.lanes,
            events=events,
        )

    def encode_reference(
        self, data: np.ndarray, record_events: bool = False
    ) -> InterleavedEncodeResult:
        """The original per-group masked loop (differential reference).

        Bit-identical to :meth:`encode` — same words, final states and
        renormalization events; kept unoptimized on purpose.
        """
        data = np.ascontiguousarray(data)
        if data.ndim != 1:
            raise EncodeError(f"data must be 1-D, got shape {data.shape}")
        K = self.lanes
        N = len(data)
        n = self.provider.quant_bits
        shift = np.uint64(RENORM_BITS + 16 - n)  # bound = f << (32 - n)
        rb = np.uint64(RENORM_BITS)
        n64 = np.uint64(n)
        mask16 = np.uint64(RENORM_MASK)

        if N == 0:
            return InterleavedEncodeResult(
                words=np.empty(0, dtype=np.uint16),
                final_states=np.full(K, L_BOUND, dtype=np.uint64),
                num_symbols=0,
                lanes=K,
                events=RenormEvents(
                    np.empty(0, np.uint64),
                    np.empty(0, np.uint16),
                    np.empty(0, np.uint16),
                )
                if record_events
                else None,
            )

        f_all, cdf_all = self.provider.gather_freq_cdf(data, start_index=1)

        arena = self._get_arena()
        # Renormalization thresholds (Eq. 3) for the whole sequence,
        # hoisted out of the group loop.
        bound_all = arena.get_at_least("bounds", N, np.uint64)[:N]
        np.left_shift(f_all, shift, out=bound_all)
        need_buf = arena.get("need", (K,), bool)
        q_buf = arena.get("q", (K,), np.uint64)
        rem_buf = arena.get("rem", (K,), np.uint64)

        x = np.full(K, L_BOUND, dtype=np.uint64)
        words = np.empty(N + 8, dtype=np.uint16)  # <= 1 word per symbol
        if record_events:
            ev_sym = np.empty(N + 8, dtype=np.uint64)
            ev_lane = np.empty(N + 8, dtype=np.uint16)
            ev_state = np.empty(N + 8, dtype=np.uint16)
        wc = 0

        num_groups = -(-N // K)
        for g in range(num_groups):
            base = g * K
            cnt = min(K, N - base)
            f = f_all[base : base + cnt]
            cdf = cdf_all[base : base + cnt]
            xs = x[:cnt]
            # Renormalize lanes whose state would overflow (Eq. 3).
            need = need_buf[:cnt]
            np.greater_equal(xs, bound_all[base : base + cnt], out=need)
            c = int(np.count_nonzero(need))
            if c:
                overflowed = xs[need]
                words[wc : wc + c] = overflowed & mask16
                renormed = overflowed >> rb
                xs[need] = renormed
                if record_events:
                    idx = np.flatnonzero(need)
                    ev_sym[wc : wc + c] = base + idx + 1
                    ev_lane[wc : wc + c] = idx
                    ev_state[wc : wc + c] = renormed
                wc += c
            # Eq. 1 vectorized across the group's lanes, in place.
            q = q_buf[:cnt]
            rem = rem_buf[:cnt]
            np.floor_divide(xs, f, out=q)
            np.multiply(q, f, out=rem)
            np.subtract(xs, rem, out=rem)
            np.left_shift(q, n64, out=q)
            np.add(q, cdf, out=q)
            np.add(q, rem, out=xs)

        events = None
        if record_events:
            events = RenormEvents(
                symbol_index=ev_sym[:wc].copy(),
                lane=ev_lane[:wc].copy(),
                state_after=ev_state[:wc].copy(),
            )
        return InterleavedEncodeResult(
            words=words[:wc].copy(),
            final_states=x,
            num_symbols=N,
            lanes=K,
            events=events,
        )


class InterleavedDecoder:
    """K-way interleaved rANS decoder (full-stream, vectorized).

    Instances reuse scratch buffers across :meth:`decode` calls and
    must not be shared between concurrently decoding threads
    (DESIGN.md §9).
    """

    def __init__(
        self,
        provider: AdaptiveModelProvider | SymbolModel,
        lanes: int = DEFAULT_LANES,
    ) -> None:
        if isinstance(provider, SymbolModel):
            provider = StaticModelProvider(provider)
        self.provider = provider
        self.lanes = lanes
        self._engine = None

    def _get_engine(self):
        """Cached fused lane engine (lazy import: the parallel package
        imports this module's package at load time)."""
        if self._engine is None:
            from repro.parallel.simd import LaneEngine

            self._engine = LaneEngine(self.provider, self.lanes)
        return self._engine

    def _out_dtype(self) -> type:
        a = self.provider.alphabet_size
        if a <= 256:
            return np.uint8
        if a <= 65536:
            return np.uint16
        return np.uint32

    def decode(
        self,
        words: np.ndarray,
        final_states: np.ndarray,
        num_symbols: int,
        check_terminal: bool = True,
    ) -> np.ndarray:
        """Decode the full stream back to the original symbol order.

        Routes through the fused wide-lane kernel
        (:mod:`repro.parallel.fused`) as a single fully-initialized
        task: walks symbol indices ``N .. 1``; per symbol, Eq. 4
        renormalization reads then the Eq. 2 decode, reads within a
        group in decreasing lane order, exactly mirroring encode-side
        emission.  :meth:`decode_reference` is the pure-Python
        differential reference.
        """
        from repro.parallel.simd import ThreadTask

        K = self.lanes
        N = int(num_symbols)
        lbound = np.uint64(L_BOUND)

        if len(final_states) != K:
            raise DecodeError(
                f"expected {K} final states, got {len(final_states)}"
            )
        x = np.ascontiguousarray(final_states, dtype=np.uint64)
        words = np.asarray(words, dtype=np.uint16)
        out = np.empty(N, dtype=self._out_dtype())
        if N == 0:
            if check_terminal and (len(words) != 0 or np.any(x != lbound)):
                raise DecodeError("terminal check failed on empty stream")
            return out

        task = ThreadTask(
            start_pos=len(words) - 1,
            walk_hi=N,
            walk_lo=1,
            commit_hi=N,
            commit_lo=1,
            initial_states=x,
            check_terminal=check_terminal,
            terminal_pos=-1,
        )
        self._get_engine().run(words, [task], out)
        return out

    # ------------------------------------------------------------------
    # Reference (pure-Python) decoder — the paper's "variation (1)":
    # non-optimized, for debugging and differential testing.
    # ------------------------------------------------------------------

    def decode_reference(
        self,
        words: np.ndarray,
        final_states: np.ndarray,
        num_symbols: int,
        check_terminal: bool = True,
    ) -> np.ndarray:
        """Scalar-loop decoder, bit-identical to :meth:`decode`."""
        provider = self.provider
        K = self.lanes
        N = int(num_symbols)
        n = provider.quant_bits
        slot_mask = (1 << n) - 1

        states = [int(v) for v in final_states]
        if len(states) != K:
            raise DecodeError(
                f"expected {K} final states, got {len(states)}"
            )
        p = len(words) - 1
        out = np.empty(N, dtype=self._out_dtype())
        for i in range(N, 0, -1):
            lane = (i - 1) % K
            model = provider.model_for_index(i)
            xv = states[lane]
            slot = xv & slot_mask
            s = int(model.slot_to_symbol[slot])
            xv = int(model.freqs[s]) * (xv >> n) + slot - int(model.cdf[s])
            while xv < L_BOUND:
                if p < 0:
                    raise DecodeError(
                        "bitstream exhausted during renormalization"
                    )
                xv = (xv << RENORM_BITS) | int(words[p])
                p -= 1
            states[lane] = xv
            out[i - 1] = s
        if check_terminal:
            if p != -1 or any(v != L_BOUND for v in states):
                raise DecodeError("terminal check failed")
        return out
