"""Adaptive (per-symbol-index) probability modelling.

Paper §3.1 lists as a key advantage of recording symbol indices in the
split metadata that *adaptive coding* remains possible: "the
probability distribution used in every iteration is dynamic, determined
using symbol index as a key in many image codecs that use
hyperprior-based context".  This module provides that machinery:

- :class:`StaticModelProvider` — one model for every index (text and
  ``rand_*`` experiments).
- :class:`IndexedModelProvider` — an arbitrary per-index mapping into a
  bank of models (the div2k/mbt2018-mean experiments: each latent gets
  a Gaussian whose scale comes from the hyperprior).
- :class:`GaussianModelBank` — quantized zero-mean Gaussian models over
  a discrete scale table, mirroring learned-image-codec entropy
  parameter banks.

All providers expose dense tables (``freq_table``, ``cdf_table``,
``lut_table``) so the vectorized engines can gather per-symbol
parameters with single numpy fancy-indexing operations.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.rans.model import SymbolModel


@dataclass(frozen=True)
class EncodeTables:
    """Symbol-indexed gather tables for the fused encode kernel.

    One row per model, one column per symbol, everything uint64 so the
    kernel's per-group gathers land directly in the state dtype — the
    encode-side mirror of :class:`DecodeTables`:

    - ``freq_sym[m, s]``  — ``f(s)``, the Eq. 1 divisor;
    - ``comp_sym[m, s]``  — ``2**n - f(s)``, so Eq. 1 collapses to
      ``x' = x + (x // f) * comp + cdf`` (exact integer identity with
      the quotient/remainder form, one op fewer);
    - ``cdf_sym[m, s]``   — ``F(s)``;
    - ``bound_sym[m, s]`` — the Eq. 3 renormalization threshold
      ``f << (32 - n)``.

    The 2-D tables are C-contiguous; ``.ravel()`` views of them are
    used for flat gathers of ``model_id * alphabet + symbol``.
    Zero-frequency symbols keep a zero ``freq_sym`` entry; the kernel
    checks gathered frequencies and rejects them before dividing.
    """

    freq_sym: np.ndarray  # (num_models, alphabet) uint64
    comp_sym: np.ndarray  # (num_models, alphabet) uint64
    cdf_sym: np.ndarray  # (num_models, alphabet) uint64
    bound_sym: np.ndarray  # (num_models, alphabet) uint64

    @property
    def alphabet(self) -> int:
        return self.freq_sym.shape[1]


@dataclass(frozen=True)
class DecodeTables:
    """Slot-indexed gather tables for the fused decode kernel.

    One row per model, one column per slot value ``x & (2**n - 1)``.
    Everything the Eq. 2 inner loop needs is resolved by a *single*
    gather per operand — no dependent symbol→frequency lookup, no
    per-iteration dtype casts:

    - ``sym_slot[m, slot]``  — the decoded symbol, stored in the
      narrowest uint dtype that holds the alphabet (so output scatters
      need no cast);
    - ``freq_slot[m, slot]`` — ``f(sym)`` as uint64;
    - ``bias_slot[m, slot]`` — ``slot - F(sym)`` as uint64 (always in
      ``[0, f)``), so the state update collapses to
      ``x = freq_slot[slot] * (x >> n) + bias_slot[slot]``.

    The 2-D tables are C-contiguous; ``.ravel()`` views of them are
    used for flat gathers of ``model_id * 2**n + slot``.
    """

    sym_slot: np.ndarray  # (num_models, 2**n) uint8/16/32
    freq_slot: np.ndarray  # (num_models, 2**n) uint64
    bias_slot: np.ndarray  # (num_models, 2**n) uint64

    @property
    def slot_count(self) -> int:
        return self.sym_slot.shape[1]


class AdaptiveModelProvider:
    """Base class: a bank of models plus an index→model mapping.

    Subclasses must populate ``_models`` (list of :class:`SymbolModel`
    sharing one quantization level) and implement
    :meth:`model_ids_for_range`.
    """

    def __init__(self, models: list[SymbolModel]) -> None:
        if not models:
            raise ModelError("provider needs at least one model")
        quant = {m.quant_bits for m in models}
        if len(quant) != 1:
            raise ModelError(
                f"all models in a provider must share one quantization "
                f"level, got {sorted(quant)}"
            )
        alpha = {m.alphabet_size for m in models}
        if len(alpha) != 1:
            raise ModelError(
                f"all models in a provider must share one alphabet, "
                f"got {sorted(alpha)}"
            )
        self._models = list(models)
        self.quant_bits = models[0].quant_bits
        self.alphabet_size = models[0].alphabet_size
        self._freq_table: np.ndarray | None = None
        self._cdf_table: np.ndarray | None = None
        self._lut_table: np.ndarray | None = None
        self._decode_tables: DecodeTables | None = None
        self._encode_tables: EncodeTables | None = None
        self._dense_ids: np.ndarray | None = None

    # -- dense tables ---------------------------------------------------

    @property
    def num_models(self) -> int:
        return len(self._models)

    @property
    def out_dtype(self) -> np.dtype:
        """Narrowest unsigned dtype covering the alphabet — the one
        policy for decoded-output arrays, shared by every decode
        surface (core decoder, Conventional baseline, serving)."""
        a = self.alphabet_size
        return np.dtype(
            np.uint8 if a <= 256 else np.uint16 if a <= 65536 else np.uint32
        )

    @property
    def models(self) -> list[SymbolModel]:
        return self._models

    @property
    def freq_table(self) -> np.ndarray:
        """``(num_models, alphabet)`` uint32 frequency table."""
        if self._freq_table is None:
            self._freq_table = np.stack([m.freqs for m in self._models])
        return self._freq_table

    @property
    def cdf_table(self) -> np.ndarray:
        """``(num_models, alphabet + 1)`` uint32 CDF table."""
        if self._cdf_table is None:
            self._cdf_table = np.stack([m.cdf for m in self._models])
        return self._cdf_table

    @property
    def lut_table(self) -> np.ndarray:
        """``(num_models, 2**n)`` slot→symbol table."""
        if self._lut_table is None:
            self._lut_table = np.stack(
                [m.slot_to_symbol.astype(np.uint32) for m in self._models]
            )
        return self._lut_table

    @property
    def decode_tables(self) -> DecodeTables:
        """Pre-materialized slot-indexed tables (built once, cached).

        These are what the fused kernel gathers from; building them
        here keeps every per-call ``.astype`` out of the hot loop.
        """
        if self._decode_tables is None:
            n = self.quant_bits
            slot_count = 1 << n
            alphabet = self.alphabet_size
            if alphabet <= 256:
                sym_dtype = np.uint8
            elif alphabet <= 65536:
                sym_dtype = np.uint16
            else:
                sym_dtype = np.uint32
            M = self.num_models
            slots = np.arange(slot_count, dtype=np.uint64)
            sym = np.empty((M, slot_count), dtype=sym_dtype)
            freq = np.empty((M, slot_count), dtype=np.uint64)
            bias = np.empty((M, slot_count), dtype=np.uint64)
            for k, m in enumerate(self._models):
                lut = m.slot_to_symbol
                sym[k] = lut.astype(sym_dtype, copy=False)
                freq[k] = m.freqs[lut]
                bias[k] = slots - m.cdf[lut].astype(np.uint64)
            self._decode_tables = DecodeTables(sym, freq, bias)
        return self._decode_tables

    @property
    def encode_tables(self) -> EncodeTables:
        """Pre-materialized symbol-indexed tables (built once, cached).

        The fused encode kernel gathers from these; building them here
        keeps every per-call ``.astype`` and threshold shift out of the
        hot loop (the encode mirror of :attr:`decode_tables`).
        """
        if self._encode_tables is None:
            from repro.rans.constants import RENORM_BITS

            n = self.quant_bits
            shift = np.uint64(RENORM_BITS + 16 - n)  # bound = f << (32 - n)
            freq = self.freq_table.astype(np.uint64)
            cdf = self.cdf_table[:, :-1].astype(np.uint64)
            comp = np.uint64(1 << n) - freq
            bound = freq << shift
            self._encode_tables = EncodeTables(
                np.ascontiguousarray(freq),
                np.ascontiguousarray(comp),
                np.ascontiguousarray(cdf),
                np.ascontiguousarray(bound),
            )
        return self._encode_tables

    def dense_model_ids(self, total_symbols: int) -> np.ndarray:
        """Cached uint64 model id per 0-based symbol position.

        ``dense_model_ids(N)[i]`` is the model id for 1-based symbol
        index ``i + 1``; uint64 so the fused kernel can fold it into
        flat-gather arithmetic without casts.  The index→model mapping
        is length-independent, so the longest array built so far
        serves every shorter request as a prefix view (and the single
        read/replace of the cache slot keeps concurrent readers on a
        consistent array).
        """
        ids = self._dense_ids
        if ids is None or len(ids) < total_symbols:
            ids = np.ascontiguousarray(
                self.model_ids_for_range(1, total_symbols + 1),
                dtype=np.uint64,
            )
            self._dense_ids = ids
        return ids[:total_symbols]

    # -- the index mapping ----------------------------------------------

    def model_ids_for_range(self, start: int, stop: int) -> np.ndarray:
        """Model ids for 1-based symbol indices ``start..stop-1``.

        Must be overridden; returns an ``intp`` array of length
        ``stop - start``.
        """
        raise NotImplementedError

    def model_for_index(self, index: int) -> SymbolModel:
        """The model used for 1-based symbol index ``index``."""
        mid = int(self.model_ids_for_range(index, index + 1)[0])
        return self._models[mid]

    # -- vectorized gathers ----------------------------------------------

    def gather_freq_cdf(
        self, data: np.ndarray, start_index: int = 1
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-symbol ``(f, F)`` as uint64 arrays for an encode pass.

        ``data[k]`` is the symbol at 1-based index ``start_index + k``.
        """
        n = len(data)
        ids = self.model_ids_for_range(start_index, start_index + n)
        f = self.freq_table[ids, data].astype(np.uint64)
        if np.any(f == 0):
            bad = int(np.flatnonzero(f == 0)[0])
            raise ModelError(
                f"symbol {int(data[bad])} at index {start_index + bad} "
                "has zero quantized frequency"
            )
        cdf = self.cdf_table[ids, data].astype(np.uint64)
        return f, cdf

    @property
    def is_static(self) -> bool:
        return self.num_models == 1

    def table_bytes(self) -> int:
        """Serialized size of the model table(s), for size accounting."""
        return sum(len(m.to_bytes()) for m in self._models)


class StaticModelProvider(AdaptiveModelProvider):
    """Every symbol index uses the same model."""

    def __init__(self, model: SymbolModel) -> None:
        super().__init__([model])

    def model_ids_for_range(self, start: int, stop: int) -> np.ndarray:
        return np.zeros(stop - start, dtype=np.intp)


def provider_fingerprint(provider: AdaptiveModelProvider) -> bytes:
    """Content fingerprint of a static provider's model.

    Fusion keys (serve batching, multi-frame decode) must group by
    *model equality*, not provider identity: callers routinely parse
    their own :class:`StaticModelProvider` from embedded model bytes,
    so ``id(provider)`` would silently forbid fusing identical models.
    Computed once and cached on the provider instance.
    """
    fp = getattr(provider, "_model_fingerprint", None)
    if fp is None:
        model = provider.models[0]
        digest = hashlib.sha256(np.ascontiguousarray(model.freqs)).digest()
        fp = bytes([provider.quant_bits]) + digest
        provider._model_fingerprint = fp
    return fp


class IndexedModelProvider(AdaptiveModelProvider):
    """Explicit per-index model ids (1-based index ``i`` → ``ids[i-1]``)."""

    def __init__(self, models: list[SymbolModel], ids: np.ndarray) -> None:
        super().__init__(models)
        ids = np.ascontiguousarray(ids, dtype=np.intp)
        if ids.ndim != 1:
            raise ModelError("ids must be 1-D")
        if ids.size and (ids.min() < 0 or ids.max() >= len(models)):
            raise ModelError("model id out of range")
        self.ids = ids

    def model_ids_for_range(self, start: int, stop: int) -> np.ndarray:
        if start < 1 or stop - 1 > len(self.ids):
            raise ModelError(
                f"index range [{start}, {stop}) outside the modelled "
                f"sequence of length {len(self.ids)}"
            )
        return self.ids[start - 1 : stop - 1]


class GaussianModelBank:
    """Bank of quantized zero-mean Gaussian models over a scale table.

    Mirrors the entropy-parameter banks of hyperprior image codecs
    (Ballé 2018 / Minnen 2018 "mbt2018-mean"): the hyperprior assigns
    every latent a scale; the codec quantizes the scale to a table and
    codes the latent with the matching discrete Gaussian.

    Symbols are unsigned: value ``v`` represents the centred residual
    ``v - center`` where ``center = alphabet_size // 2``.
    """

    #: CompressAI-style logarithmic scale table bounds.
    SCALE_MIN = 0.11
    SCALE_MAX = 256.0

    def __init__(
        self,
        quant_bits: int,
        alphabet_size: int = 65536,
        num_scales: int = 64,
        tail_mass: float = 1e-9,
    ) -> None:
        self.quant_bits = quant_bits
        self.alphabet_size = alphabet_size
        self.center = alphabet_size // 2
        self.scales = np.exp(
            np.linspace(
                math.log(self.SCALE_MIN),
                math.log(self.SCALE_MAX),
                num_scales,
            )
        )
        self.tail_mass = tail_mass
        self._models: list[SymbolModel] | None = None

    def _pmf_for_scale(self, scale: float) -> np.ndarray:
        """Discrete Gaussian pmf over the alphabet, tails clipped."""
        from scipy.special import erf

        half_width = min(
            self.center - 1, max(4, int(math.ceil(8 * scale)) + 2)
        )
        lo = self.center - half_width
        hi = self.center + half_width
        edges = np.arange(lo, hi + 2, dtype=np.float64) - 0.5 - self.center
        z = edges / (scale * math.sqrt(2.0))
        cdf = 0.5 * (1.0 + erf(z))
        pmf_win = np.diff(cdf)
        pmf_win = np.maximum(pmf_win, 0.0)
        pmf_win[pmf_win < self.tail_mass] = 0.0
        # Always keep the centre encodable.
        if pmf_win[half_width] == 0.0:
            pmf_win[half_width] = 1.0
        pmf = np.zeros(self.alphabet_size, dtype=np.float64)
        pmf[lo : hi + 1] = pmf_win
        return pmf

    @property
    def models(self) -> list[SymbolModel]:
        """Quantized models, one per scale (built lazily, cached)."""
        if self._models is None:
            self._models = [
                SymbolModel.from_counts(
                    self._pmf_for_scale(float(s)) * 1e12, self.quant_bits
                )
                for s in self.scales
            ]
        return self._models

    def scale_to_id(self, scales: np.ndarray) -> np.ndarray:
        """Quantize continuous scales to table indices (lower bound)."""
        scales = np.asarray(scales, dtype=np.float64)
        ids = np.searchsorted(self.scales, scales, side="left")
        return np.clip(ids, 0, len(self.scales) - 1).astype(np.intp)

    def provider_for_scales(self, scales: np.ndarray) -> IndexedModelProvider:
        """Build a per-index provider from a per-symbol scale array."""
        return IndexedModelProvider(self.models, self.scale_to_id(scales))

    def provider_for_ids(self, ids: np.ndarray) -> IndexedModelProvider:
        """Build a per-index provider from precomputed scale ids."""
        return IndexedModelProvider(self.models, ids)
