"""Scalar (non-interleaved) rANS encoder and decoder.

Direct implementation of paper Equations 1–4.  This is the reference
codec: the interleaved, Recoil, and vectorized implementations are all
validated against it in the test suite.  It also backs the
proof-of-concept of paper §3 / Figure 4 (splitting a single-coder
bitstream at renormalization points), exercised in
``examples/single_coder_poc.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DecodeError, EncodeError
from repro.rans.constants import (
    L_BOUND,
    RENORM_BITS,
    RENORM_MASK,
    encoder_upper_bound,
)
from repro.rans.model import SymbolModel


@dataclass
class RenormRecord:
    """One renormalization event observed while encoding.

    Attributes
    ----------
    word_position:
        Index (in 16-bit words) of the *last* word this renormalization
        appended; a decoder starting here reads downward from it.
    symbol_index:
        1-based index of the symbol about to be encoded when the
        renormalization fired.  A decoder lane initialized from this
        record performs the renormalization read and then decodes
        symbol ``symbol_index - 1`` next (for the scalar codec) —
        i.e. the state is the one *between* symbols
        ``symbol_index - 1`` and ``symbol_index``.
    state_after:
        The post-renormalization state, provably ``< L`` (Lemma 3.1).
    """

    word_position: int
    symbol_index: int
    state_after: int


@dataclass
class ScalarEncodeResult:
    """Output of :meth:`ScalarEncoder.encode`."""

    words: list[int]
    final_state: int
    renorm_records: list[RenormRecord] = field(default_factory=list)

    @property
    def num_words(self) -> int:
        return len(self.words)

    def to_bytes(self) -> bytes:
        return np.asarray(self.words, dtype="<u2").tobytes()


class ScalarEncoder:
    """Single-state rANS encoder (Eq. 1 + Eq. 3).

    Parameters
    ----------
    model:
        The quantized symbol model shared with the decoder.
    record_renorms:
        When true, every renormalization event is recorded — the raw
        material for intermediate-position decoding (paper §3.1).
    """

    def __init__(self, model: SymbolModel, record_renorms: bool = False) -> None:
        self.model = model
        self.record_renorms = record_renorms

    def encode(self, symbols) -> ScalarEncodeResult:
        """Encode ``symbols`` front-to-back into a word stream.

        The decoder will recover them back-to-front (paper §2.1: rANS
        works like a stack).
        """
        model = self.model
        freqs = model.freqs.tolist()
        cdf = model.cdf.tolist()
        n = model.quant_bits
        record = self.record_renorms

        x = L_BOUND
        words: list[int] = []
        renorms: list[RenormRecord] = []
        for i, s in enumerate(symbols, start=1):
            s = int(s)
            if s < 0 or s >= len(freqs):
                raise EncodeError(f"symbol {s} outside alphabet at index {i}")
            f = freqs[s]
            if f == 0:
                raise EncodeError(
                    f"symbol {s} has zero quantized frequency (index {i})"
                )
            bound = encoder_upper_bound(f, n)
            emitted = False
            while x >= bound:
                words.append(x & RENORM_MASK)
                x >>= RENORM_BITS
                emitted = True
            if emitted and record:
                assert x < L_BOUND, "Lemma 3.1 violated"
                renorms.append(
                    RenormRecord(
                        word_position=len(words) - 1,
                        symbol_index=i,
                        state_after=x,
                    )
                )
            # Eq. 1: x' = 2**n * (x // f) + F(s) + x mod f
            x = ((x // f) << n) + cdf[s] + (x % f)
        return ScalarEncodeResult(
            words=words, final_state=x, renorm_records=renorms
        )


class ScalarDecoder:
    """Single-state rANS decoder (Eq. 2 + Eq. 4)."""

    def __init__(self, model: SymbolModel) -> None:
        self.model = model

    def decode(
        self,
        words,
        final_state: int,
        num_symbols: int,
        *,
        start_word: int | None = None,
        check_terminal: bool = True,
    ) -> list[int]:
        """Decode ``num_symbols`` symbols, returned in encode order.

        Parameters
        ----------
        words:
            The full word stream produced by the encoder.
        final_state:
            Either the encoder's final state (full decode) or an
            intermediate state recorded at a renormalization point
            (paper §3.1) — in the latter case pass ``start_word`` and
            ``check_terminal=False``.
        num_symbols:
            How many symbols to decode (walking backwards).
        start_word:
            Index of the first word to read (reading downward);
            defaults to the last word of the stream.
        check_terminal:
            When true, verify the decoder lands exactly on the initial
            state ``L`` with the stream fully consumed — a strong
            integrity check for full-stream decodes.
        """
        model = self.model
        # Hoist every numpy-scalar → int conversion out of the decode
        # loop: plain-int lists keep the per-symbol work native.
        freqs = model.freqs.tolist()
        cdf = model.cdf.tolist()
        lut = model.slot_to_symbol.tolist()
        ws = (
            words.tolist()
            if isinstance(words, np.ndarray)
            else [int(w) for w in words]
        )
        n = model.quant_bits
        mask = model.slot_mask

        x = int(final_state)
        p = len(ws) - 1 if start_word is None else int(start_word)
        out: list[int] = []
        for _ in range(num_symbols):
            # Eq. 2: symbol lookup then state restoration.
            slot = x & mask
            s = lut[slot]
            x = freqs[s] * (x >> n) + slot - cdf[s]
            # Eq. 4: renormalize by reading words (reverse of emission).
            while x < L_BOUND:
                if p < 0:
                    raise DecodeError(
                        "bitstream exhausted during renormalization"
                    )
                x = (x << RENORM_BITS) | ws[p]
                p -= 1
            out.append(s)
        if check_terminal and (x != L_BOUND or p != -1):
            raise DecodeError(
                f"terminal check failed: state={x:#x} (expected "
                f"{L_BOUND:#x}), next word index {p} (expected -1)"
            )
        out.reverse()
        return out

    def decode_from_record(
        self,
        words,
        record: RenormRecord,
        num_symbols: int | None = None,
    ) -> list[int]:
        """Decode starting at an intermediate renormalization record.

        This is the paper §3.1 proof of concept (Figure 4): the record's
        state is the one between symbols ``symbol_index - 1`` and
        ``symbol_index``, so decoding proceeds from
        ``symbol_index - 1`` down to symbol 1 (or fewer if
        ``num_symbols`` is given).  The pending renormalization read is
        performed first.
        """
        available = record.symbol_index - 1
        if num_symbols is None:
            num_symbols = available
        if num_symbols > available:
            raise DecodeError(
                f"only {available} symbols precede the record, "
                f"asked for {num_symbols}"
            )
        x = record.state_after
        p = record.word_position
        # Undo the recorded renormalization: read until the state is
        # back above L.  (Exactly mirrors the encoder's emission.)
        while x < L_BOUND:
            if p < 0:
                raise DecodeError("stream exhausted undoing renorm")
            x = (x << RENORM_BITS) | int(words[p])
            p -= 1
        return self.decode(
            words,
            x,
            num_symbols,
            start_word=p,
            check_terminal=num_symbols == available,
        )
