"""Quantized probability models for rANS coding.

A :class:`SymbolModel` holds the quantized PDF ``f(t)`` and CDF ``F(t)``
of paper Definition 2.1, both quantized to ``[0, 2**n]``, plus the
slot-to-symbol lookup table used by the decoder's symbol search
(Eq. 2).  Models are immutable once built.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro.bitio.varint import decode_uvarint, encode_uvarint
from repro.errors import ModelError
from repro.rans.constants import validate_quant_bits


def quantize_counts(counts: np.ndarray, quant_bits: int) -> np.ndarray:
    """Quantize raw symbol counts to frequencies summing to ``2**n``.

    Every symbol with a non-zero count receives a frequency of at least
    1 so it stays encodable; the residual after flooring is distributed
    to the symbols where rounding error costs the most bits (largest
    ``count / freq`` ratio), which is the standard minimum-redundancy
    heuristic.

    Parameters
    ----------
    counts:
        1-D array of non-negative symbol occurrence counts.
    quant_bits:
        Quantization level ``n``; frequencies sum to ``2**n``.

    Returns
    -------
    numpy.ndarray
        ``uint32`` frequency array of the same shape, summing exactly to
        ``2**n``.  Symbols with zero count get zero frequency.
    """
    validate_quant_bits(quant_bits)
    counts = np.asarray(counts, dtype=np.float64)
    if counts.ndim != 1:
        raise ModelError(f"counts must be 1-D, got shape {counts.shape}")
    if np.any(counts < 0):
        raise ModelError("counts must be non-negative")
    total = counts.sum()
    if total <= 0:
        raise ModelError("counts must contain at least one occurrence")
    target = 1 << quant_bits
    present = counts > 0
    num_present = int(present.sum())
    if num_present > target:
        raise ModelError(
            f"{num_present} distinct symbols cannot all receive a "
            f"non-zero frequency at quantization level {quant_bits} "
            f"(budget {target})"
        )

    scaled = counts * (target / total)
    freqs = np.floor(scaled).astype(np.int64)
    freqs[present & (freqs == 0)] = 1

    # Correct the residual so frequencies sum exactly to 2**n.
    residual = target - int(freqs.sum())
    if residual > 0:
        # Give extra slots to the symbols whose frequency most
        # under-represents their count (one vectorized pass).
        ratio = np.where(present, counts / np.maximum(freqs, 1), -np.inf)
        order = np.argsort(-ratio, kind="stable")
        bump, i = residual, 0
        while bump > 0:
            take = min(bump, num_present)
            freqs[order[i : i + take]] += 1
            bump -= take
            i = 0  # wrap around for pathological cases
    elif residual < 0:
        # Take slots back where it hurts least, never below 1.
        while residual < 0:
            shrinkable = present & (freqs > 1)
            count = int(shrinkable.sum())
            if count == 0:
                raise ModelError(
                    "cannot quantize: too many symbols for the budget"
                )
            ratio = np.where(shrinkable, counts / np.maximum(freqs, 1), np.inf)
            take = min(-residual, count)
            idx = np.argpartition(ratio, take - 1)[:take]
            freqs[idx] -= 1
            residual += take

    assert int(freqs.sum()) == target
    return freqs.astype(np.uint32)


class SymbolModel:
    """Immutable quantized PDF/CDF pair plus decoder lookup tables.

    Parameters
    ----------
    freqs:
        ``uint32`` array of quantized frequencies summing to ``2**n``.
        Zero entries mark symbols that cannot be encoded.
    quant_bits:
        Quantization level ``n`` (``1 <= n <= 16``).

    Notes
    -----
    The decoder's symbol search (Eq. 2: find ``t`` with
    ``F(t) <= x mod 2**n < F(t+1)``) is implemented as a direct LUT of
    size ``2**n`` mapping slot to symbol.  When the alphabet fits in
    8 bits and ``n <= 12``, :attr:`packed_lut` additionally provides the
    §4.4 optimization packing ``(symbol, f(s), F(s))`` into a single
    32-bit integer per slot.
    """

    __slots__ = ("freqs", "cdf", "quant_bits", "__dict__")

    def __init__(self, freqs: np.ndarray, quant_bits: int) -> None:
        validate_quant_bits(quant_bits)
        freqs = np.ascontiguousarray(freqs, dtype=np.uint32)
        if freqs.ndim != 1:
            raise ModelError(f"freqs must be 1-D, got shape {freqs.shape}")
        total = int(freqs.sum(dtype=np.uint64))
        if total != 1 << quant_bits:
            raise ModelError(
                f"frequencies sum to {total}, expected {1 << quant_bits}"
            )
        self.freqs = freqs
        self.freqs.setflags(write=False)
        self.quant_bits = quant_bits
        cdf = np.zeros(len(freqs) + 1, dtype=np.uint32)
        np.cumsum(freqs, out=cdf[1:])
        self.cdf = cdf
        self.cdf.setflags(write=False)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_counts(cls, counts: np.ndarray, quant_bits: int) -> "SymbolModel":
        """Build a model from raw occurrence counts (static modelling)."""
        return cls(quantize_counts(counts, quant_bits), quant_bits)

    @classmethod
    def from_data(
        cls,
        data: np.ndarray,
        quant_bits: int,
        alphabet_size: int | None = None,
    ) -> "SymbolModel":
        """Build a static model from a symbol sequence.

        ``alphabet_size`` defaults to ``max(data) + 1``; pass 256 or
        65536 explicitly to fix the alphabet irrespective of content.
        """
        data = np.asarray(data)
        if data.size == 0:
            raise ModelError("cannot model an empty sequence")
        if alphabet_size is None:
            alphabet_size = int(data.max()) + 1
        counts = np.bincount(data.ravel(), minlength=alphabet_size)
        if len(counts) > alphabet_size:
            raise ModelError(
                f"data contains symbol {int(data.max())} outside the "
                f"alphabet of size {alphabet_size}"
            )
        return cls.from_counts(counts, quant_bits)

    @classmethod
    def uniform(cls, alphabet_size: int, quant_bits: int) -> "SymbolModel":
        """A uniform model (useful for tests and worst-case data)."""
        validate_quant_bits(quant_bits)
        target = 1 << quant_bits
        if alphabet_size > target:
            raise ModelError(
                f"alphabet of {alphabet_size} needs n >= "
                f"{int(np.ceil(np.log2(alphabet_size)))}"
            )
        base = target // alphabet_size
        freqs = np.full(alphabet_size, base, dtype=np.uint32)
        freqs[: target - base * alphabet_size] += 1
        return cls(freqs, quant_bits)

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------

    @property
    def alphabet_size(self) -> int:
        return len(self.freqs)

    @property
    def slot_mask(self) -> int:
        """``2**n - 1``; extracts the slot from a state."""
        return (1 << self.quant_bits) - 1

    @cached_property
    def slot_to_symbol(self) -> np.ndarray:
        """LUT of size ``2**n`` mapping slot to decoded symbol.

        dtype is ``uint8`` for alphabets up to 256, else ``uint16``,
        else ``uint32``.
        """
        if self.alphabet_size <= 256:
            dtype = np.uint8
        elif self.alphabet_size <= 65536:
            dtype = np.uint16
        else:
            dtype = np.uint32
        lut = np.repeat(
            np.arange(self.alphabet_size, dtype=dtype),
            self.freqs.astype(np.int64),
        )
        assert len(lut) == 1 << self.quant_bits
        lut.setflags(write=False)
        return lut

    @cached_property
    def packed_lut(self) -> np.ndarray | None:
        """§4.4 packed LUT: ``symbol | f << 8 | F << 20`` per slot.

        Only available when symbols fit in 8 bits and ``n <= 12`` (so
        ``f`` and ``F`` fit in 12 bits each); otherwise ``None``.
        """
        if self.alphabet_size > 256 or self.quant_bits > 12:
            return None
        syms = self.slot_to_symbol.astype(np.uint32)
        f = self.freqs.astype(np.uint32)[syms]
        start = self.cdf[:-1].astype(np.uint32)[syms]
        packed = syms | (f << np.uint32(8)) | (start << np.uint32(20))
        packed.setflags(write=False)
        return packed

    @cached_property
    def probabilities(self) -> np.ndarray:
        """Normalized probabilities ``f / 2**n`` as float64."""
        return self.freqs.astype(np.float64) / float(1 << self.quant_bits)

    @cached_property
    def entropy_bits_per_symbol(self) -> float:
        """Shannon entropy of the *quantized* model in bits/symbol."""
        p = self.probabilities[self.probabilities > 0]
        return float(-(p * np.log2(p)).sum())

    def cost_bits(self, data: np.ndarray) -> float:
        """Ideal coded size of ``data`` under this model, in bits."""
        data = np.asarray(data)
        f = self.freqs[data]
        if np.any(f == 0):
            raise ModelError("data contains symbols with zero frequency")
        return float(
            (self.quant_bits - np.log2(f.astype(np.float64))).sum()
        )

    # ------------------------------------------------------------------
    # Serialization: frequencies as uvarints (simple, compact enough)
    # ------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize the model (quant level, alphabet, frequencies)."""
        out = bytearray()
        out += encode_uvarint(self.quant_bits)
        out += encode_uvarint(self.alphabet_size)
        # Run-length encode zero runs: common for sparse alphabets.
        i = 0
        freqs = self.freqs
        n = len(freqs)
        while i < n:
            if freqs[i] == 0:
                j = i
                while j < n and freqs[j] == 0:
                    j += 1
                out += encode_uvarint(0)
                out += encode_uvarint(j - i)
                i = j
            else:
                out += encode_uvarint(int(freqs[i]))
                i += 1
        return bytes(out)

    @classmethod
    def from_bytes(cls, blob: bytes, offset: int = 0) -> tuple["SymbolModel", int]:
        """Inverse of :meth:`to_bytes`; returns ``(model, new_offset)``."""
        quant_bits, pos = decode_uvarint(blob, offset)
        alphabet, pos = decode_uvarint(blob, pos)
        # A varint can claim a 2^60-symbol alphabet; refuse before the
        # allocation below turns a flipped bit into a MemoryError.
        if alphabet > 1 << 24:
            raise ModelError(
                f"implausible alphabet size {alphabet} in model blob"
            )
        freqs = np.zeros(alphabet, dtype=np.uint32)
        i = 0
        while i < alphabet:
            value, pos = decode_uvarint(blob, pos)
            if value == 0:
                run, pos = decode_uvarint(blob, pos)
                if run == 0 or i + run > alphabet:
                    raise ModelError("corrupt zero-run in model blob")
                i += run
            else:
                freqs[i] = value
                i += 1
        return cls(freqs, quant_bits), pos

    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SymbolModel):
            return NotImplemented
        return self.quant_bits == other.quant_bits and np.array_equal(
            self.freqs, other.freqs
        )

    def __hash__(self) -> int:
        return hash((self.quant_bits, self.freqs.tobytes()))

    def __repr__(self) -> str:
        return (
            f"SymbolModel(alphabet={self.alphabet_size}, "
            f"n={self.quant_bits}, "
            f"H={self.entropy_bits_per_symbol:.3f} bits/sym)"
        )
