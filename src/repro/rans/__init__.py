"""rANS entropy-coding substrate.

Implements the Range variant of Asymmetric Numeral Systems exactly as
formulated in paper §2 (Definitions 2.1 and 2.2), with the recommended
parameters of Table 3: 32-bit states, 16-bit renormalization words,
renormalization lower bound L = 2**16, quantization level n <= 16, and
32-way interleaving.
"""

from repro.rans.constants import (
    DEFAULT_LANES,
    L_BOUND,
    MAX_QUANT_BITS,
    RENORM_BITS,
    RENORM_MASK,
    STATE_BITS,
)
from repro.rans.model import SymbolModel
from repro.rans.scalar import ScalarEncoder, ScalarDecoder
from repro.rans.interleaved import InterleavedEncoder, InterleavedDecoder
from repro.rans.adaptive import (
    AdaptiveModelProvider,
    GaussianModelBank,
    IndexedModelProvider,
    StaticModelProvider,
)

__all__ = [
    "STATE_BITS",
    "RENORM_BITS",
    "RENORM_MASK",
    "L_BOUND",
    "MAX_QUANT_BITS",
    "DEFAULT_LANES",
    "SymbolModel",
    "ScalarEncoder",
    "ScalarDecoder",
    "InterleavedEncoder",
    "InterleavedDecoder",
    "AdaptiveModelProvider",
    "StaticModelProvider",
    "IndexedModelProvider",
    "GaussianModelBank",
]
