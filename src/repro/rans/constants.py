"""rANS coder parameters (paper Table 3).

All implementations in this repository share these constants:

====================  =========================================  =======
symbol                description                                value
====================  =========================================  =======
``STATE_BITS``        size of rANS states ``x_i``                32 bits
``RENORM_BITS``       bits written/read per renormalization b    16 bits
``L_BOUND``           renormalization lower bound L              2**16
``MAX_QUANT_BITS``    max PDF/CDF quantization level n           16
``DEFAULT_LANES``     number of interleaved codecs |E| = |D|     32
====================  =========================================  =======

The choice ``RENORM_BITS >= n`` guarantees renormalization always
completes in a single step (paper §4.4, citing Giesen), which both the
vectorized lane engine and Lemma 3.1 rely on.
"""

from __future__ import annotations

#: Size of an rANS coder state in bits.  States live in ``[L, 2**32)``
#: between symbols (the classic streaming-ANS interval ``I``).
STATE_BITS: int = 32

#: Number of bits emitted to / read from the bitstream per
#: renormalization step (``b`` in paper Definition 2.2).
RENORM_BITS: int = 16

#: Bit mask for one renormalization word.
RENORM_MASK: int = (1 << RENORM_BITS) - 1

#: Renormalization lower bound ``L = k * 2**n``.  The paper picks
#: ``L = 2**16`` so post-renormalization states fit in 16-bit numbers
#: (Lemma 3.1).
L_BOUND: int = 1 << 16

#: Maximum supported probability quantization level ``n``.  The
#: single-step renormalization requirement is ``b >= n``.
MAX_QUANT_BITS: int = 16

#: Number of interleaved coders per group (fits a GPU warp and both
#: AVX implementations in the paper).
DEFAULT_LANES: int = 32

#: Upper bound on any state value (exclusive).
STATE_MASK: int = (1 << STATE_BITS) - 1


def encoder_upper_bound(freq: int, quant_bits: int) -> int:
    """Renormalization threshold ``(2**b / 2**n) * L * f`` (Eq. 3).

    A state must be renormalized (shifted down, emitting words) until it
    is strictly below this bound before encoding a symbol of quantized
    frequency ``freq`` at quantization level ``quant_bits``.

    With the Table-3 parameters this simplifies to
    ``freq << (32 - quant_bits)``.
    """
    return freq << (RENORM_BITS + 16 - quant_bits)


def validate_quant_bits(quant_bits: int) -> None:
    """Raise ``ValueError`` unless ``1 <= n <= MAX_QUANT_BITS``."""
    if not 1 <= quant_bits <= MAX_QUANT_BITS:
        raise ValueError(
            f"quantization level n must be in [1, {MAX_QUANT_BITS}], "
            f"got {quant_bits}"
        )
