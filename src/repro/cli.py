"""``recoil`` — file-level command line interface.

Subcommands mirror the content-delivery workflow:

- ``recoil compress IN OUT --splits 2176 --quant 11``
- ``recoil shrink IN OUT --threads 16``  (per-request serving step)
- ``recoil decompress IN OUT [--max-parallelism 8]``
- ``recoil info IN [--json]``  (container inspection)
- ``recoil serve-bench``  (batched content-delivery throughput)

Only static-model containers are supported from the CLI (adaptive
model banks are API-level constructs carried by a host format).
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro._version import __version__
from repro.core import (
    parse_container,
    recoil_compress,
    recoil_decompress,
    recoil_shrink,
)
from repro.core.serialization import metadata_size_bytes
from repro.errors import ReproError


def _cmd_compress(args) -> int:
    data = np.fromfile(args.input, dtype=np.uint8)
    if data.size == 0:
        print("error: input is empty", file=sys.stderr)
        return 2
    blob = recoil_compress(
        data, num_splits=args.splits, quant_bits=args.quant
    )
    with open(args.output, "wb") as fh:
        fh.write(blob)
    ratio = len(blob) / len(data)
    print(
        f"{args.input}: {len(data):,} -> {len(blob):,} bytes "
        f"({ratio:.1%}), {args.splits} splits, n={args.quant}"
    )
    return 0


def _cmd_decompress(args) -> int:
    blob = open(args.input, "rb").read()
    out = recoil_decompress(blob, max_parallelism=args.max_parallelism)
    out.tofile(args.output)
    print(f"{args.input}: {len(blob):,} -> {out.nbytes:,} bytes")
    return 0


def _cmd_shrink(args) -> int:
    blob = open(args.input, "rb").read()
    small = recoil_shrink(blob, args.threads)
    with open(args.output, "wb") as fh:
        fh.write(small)
    print(
        f"{args.input}: {len(blob):,} -> {len(small):,} bytes "
        f"(saved {len(blob) - len(small):,}) for {args.threads} threads"
    )
    return 0


def _cmd_info(args) -> int:
    blob = open(args.input, "rb").read()
    parsed = parse_container(blob, require_model=False)
    md = parsed.metadata
    if args.json:
        stats = {
            "container_bytes": len(blob),
            "symbols": parsed.num_symbols,
            "payload_bytes": 2 * parsed.num_words,
            "payload_words": parsed.num_words,
            "lanes": parsed.lanes,
            "quant_bits": parsed.quant_bits,
            "decoder_threads": md.num_threads,
            "splits": len(md.entries),
            "metadata_bytes": metadata_size_bytes(md),
            "header_bytes": parsed.header_bytes,
            "sync_overhead_symbols": md.sync_overhead_symbols(),
        }
        print(json.dumps(stats, indent=2))
        return 0
    print(f"container:        {len(blob):,} bytes")
    print(f"symbols:          {parsed.num_symbols:,}")
    print(f"payload:          {2 * parsed.num_words:,} bytes "
          f"({parsed.num_words:,} words)")
    print(f"lanes:            {parsed.lanes}")
    print(f"quantization:     n={parsed.quant_bits}")
    print(f"decoder threads:  {md.num_threads}")
    print(f"metadata:         {metadata_size_bytes(md):,} bytes")
    if md.entries:
        sync = md.sync_overhead_symbols()
        print(
            f"sync sections:    {sync:,} symbols "
            f"({100 * sync / max(parsed.num_symbols, 1):.3f}% decode "
            "overhead)"
        )
    return 0


def _cmd_serve_bench(args) -> int:
    from repro.serve.bench import render_table, run_serve_bench

    result = run_serve_bench(
        symbols=args.symbols,
        clients=tuple(args.clients),
        repeats=args.repeats,
        backend=args.backend,
        workers=args.workers,
        faults=args.faults,
    )
    if args.json:
        print(json.dumps(result, indent=2))
    else:
        print(render_table(result))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="recoil",
        description="Recoil parallel-rANS file compressor (ICPP 2023 "
        "reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"recoil {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    c = sub.add_parser("compress", help="compress a file")
    c.add_argument("input")
    c.add_argument("output")
    c.add_argument("--splits", type=int, default=256,
                   help="max parallel decode threads to support")
    c.add_argument("--quant", type=int, default=11,
                   help="probability quantization level n (<=16)")
    c.set_defaults(func=_cmd_compress)

    d = sub.add_parser("decompress", help="decompress a container")
    d.add_argument("input")
    d.add_argument("output")
    d.add_argument("--max-parallelism", type=int, default=None,
                   help="combine splits client-side before decoding")
    d.set_defaults(func=_cmd_decompress)

    s = sub.add_parser("shrink", help="combine splits without re-encoding")
    s.add_argument("input")
    s.add_argument("output")
    s.add_argument("--threads", type=int, required=True,
                   help="target decoder parallelism")
    s.set_defaults(func=_cmd_shrink)

    i = sub.add_parser("info", help="inspect a container")
    i.add_argument("input")
    i.add_argument("--json", action="store_true",
                   help="emit machine-readable container stats")
    i.set_defaults(func=_cmd_info)

    b = sub.add_parser(
        "serve-bench",
        help="benchmark the batched content-delivery service",
    )
    b.add_argument("--symbols", type=int, default=200_000,
                   help="asset size in symbols")
    b.add_argument("--clients", type=int, nargs="+", default=[1, 8, 64],
                   help="concurrent-client counts to sweep")
    b.add_argument("--repeats", type=int, default=2,
                   help="best-of repeat count per measurement")
    b.add_argument("--backend", default="fused",
                   choices=("fused", "thread", "process"),
                   help="batch execution backend: one in-process fused "
                   "kernel call, a thread fan-out, or sharded worker "
                   "processes over shared memory")
    b.add_argument("--workers", type=int, default=8,
                   help="fan-out worker count for thread/process backends")
    b.add_argument("--faults", default=None, metavar="SPEC",
                   help="chaos spec armed during the client sweep, e.g. "
                   "'worker.crash:nth=3,shm.alloc:p=0.05:seed=7' — "
                   "measures the service under injected failures "
                   "(see repro.faults)")
    b.add_argument("--json", action="store_true",
                   help="emit the full result as JSON")
    b.set_defaults(func=_cmd_serve_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (ReproError, ValueError) as exc:
        # ValueError: a malformed --faults chaos spec.
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
