"""``recoil`` — file-level command line interface.

Subcommands mirror the content-delivery workflow:

- ``recoil compress IN OUT --splits 2176 --quant 11``
- ``recoil shrink IN OUT --threads 16``  (per-request serving step)
- ``recoil decompress IN OUT [--max-parallelism 8]``
- ``recoil info IN [--json]``  (container inspection)
- ``recoil serve-bench``  (batched content-delivery throughput)
- ``recoil serve --port 9090``  (network serving daemon; Ctrl-C drains)
- ``recoil load-bench``  (open-loop tail-latency harness over TCP)
- ``recoil trace``  (fetch or validate a Chrome trace of a live server)

Only static-model containers are supported from the CLI (adaptive
model banks are API-level constructs carried by a host format).
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro._version import __version__
from repro.core import (
    parse_container,
    recoil_compress,
    recoil_decompress,
    recoil_shrink,
)
from repro.core.serialization import metadata_size_bytes
from repro.errors import ReproError
from repro.parallel import compiled


def _cmd_compress(args) -> int:
    data = np.fromfile(args.input, dtype=np.uint8)
    if data.size == 0:
        print("error: input is empty", file=sys.stderr)
        return 2
    blob = recoil_compress(
        data, num_splits=args.splits, quant_bits=args.quant
    )
    with open(args.output, "wb") as fh:
        fh.write(blob)
    ratio = len(blob) / len(data)
    print(
        f"{args.input}: {len(data):,} -> {len(blob):,} bytes "
        f"({ratio:.1%}), {args.splits} splits, n={args.quant}"
    )
    return 0


def _cmd_decompress(args) -> int:
    blob = open(args.input, "rb").read()
    out = recoil_decompress(blob, max_parallelism=args.max_parallelism)
    out.tofile(args.output)
    print(f"{args.input}: {len(blob):,} -> {out.nbytes:,} bytes")
    return 0


def _cmd_shrink(args) -> int:
    blob = open(args.input, "rb").read()
    small = recoil_shrink(blob, args.threads)
    with open(args.output, "wb") as fh:
        fh.write(small)
    print(
        f"{args.input}: {len(blob):,} -> {len(small):,} bytes "
        f"(saved {len(blob) - len(small):,}) for {args.threads} threads"
    )
    return 0


def _cmd_info(args) -> int:
    blob = open(args.input, "rb").read()
    parsed = parse_container(blob, require_model=False)
    md = parsed.metadata
    if args.json:
        stats = {
            "container_bytes": len(blob),
            "symbols": parsed.num_symbols,
            "payload_bytes": 2 * parsed.num_words,
            "payload_words": parsed.num_words,
            "lanes": parsed.lanes,
            "quant_bits": parsed.quant_bits,
            "decoder_threads": md.num_threads,
            "splits": len(md.entries),
            "metadata_bytes": metadata_size_bytes(md),
            "header_bytes": parsed.header_bytes,
            "sync_overhead_symbols": md.sync_overhead_symbols(),
        }
        print(json.dumps(stats, indent=2))
        return 0
    print(f"container:        {len(blob):,} bytes")
    print(f"symbols:          {parsed.num_symbols:,}")
    print(f"payload:          {2 * parsed.num_words:,} bytes "
          f"({parsed.num_words:,} words)")
    print(f"lanes:            {parsed.lanes}")
    print(f"quantization:     n={parsed.quant_bits}")
    print(f"decoder threads:  {md.num_threads}")
    print(f"metadata:         {metadata_size_bytes(md):,} bytes")
    if md.entries:
        sync = md.sync_overhead_symbols()
        print(
            f"sync sections:    {sync:,} symbols "
            f"({100 * sync / max(parsed.num_symbols, 1):.3f}% decode "
            "overhead)"
        )
    return 0


def _cmd_serve_bench(args) -> int:
    from repro.serve.bench import render_table, run_serve_bench

    result = run_serve_bench(
        symbols=args.symbols,
        clients=tuple(args.clients),
        repeats=args.repeats,
        backend=args.backend,
        workers=args.workers,
        faults=args.faults,
    )
    if args.json:
        print(json.dumps(result, indent=2))
    else:
        print(render_table(result))
    return 0


def _cmd_serve(args) -> int:
    """Network serving daemon: stand up a service, listen, drain on
    SIGINT/SIGTERM.  A second signal skips the drain grace and tears
    the service down immediately (``RecoilService.close`` is
    idempotent and re-entrant, so the race with the draining main
    thread is safe)."""
    import contextlib
    import signal
    import threading

    from repro import faults, trace
    from repro.data import text_surrogate
    from repro.serve.net import NetConfig, NetServer
    from repro.serve.service import RecoilService, ServiceConfig

    if args.trace:
        trace.enable()
    config = ServiceConfig(
        decode_backend=args.backend,
        decode_workers=args.workers,
        store_dir=args.store_dir,
        resident_bytes=args.resident_bytes,
    )
    net_config = NetConfig(
        host=args.host,
        port=args.port,
        max_connections=args.max_connections,
        drain_timeout_s=args.drain_timeout,
    )
    stack = contextlib.ExitStack()
    if args.faults:
        stack.enter_context(faults.inject_spec(args.faults))
    with stack, RecoilService(config=config) as service:
        if service.store.recovery is not None:
            rec = service.store.recovery
            print(
                f"recoil serve: recovered {len(rec.recovered)} assets "
                f"from {args.store_dir} "
                f"({len(rec.quarantined)} quarantined, "
                f"{len(rec.missing)} missing)",
                flush=True,
            )
        elif args.store_dir and service.store.memory_only:
            print(
                "recoil serve: WARNING store unusable, running "
                f"memory-only ({service.store.degradation_reason})",
                file=sys.stderr,
                flush=True,
            )
        for path_spec in args.load or []:
            name, _, path = path_spec.partition("=")
            if not name or not path:
                print(
                    f"error: --load wants NAME=PATH, got {path_spec!r}",
                    file=sys.stderr,
                )
                return 2
            service.put_container(name, open(path, "rb").read())
        for i in range(args.demo_assets):
            data = text_surrogate(
                args.symbols, target_entropy=5.29, seed=11 + i
            )
            service.put_asset(f"asset{i}", data, num_splits=args.splits)

        stop = threading.Event()

        def on_signal(signum, frame):
            if stop.is_set():
                # Second signal: the user is done waiting.  close() is
                # re-entrant, so racing the draining main thread is ok.
                service.close()
            stop.set()

        signal.signal(signal.SIGINT, on_signal)
        signal.signal(signal.SIGTERM, on_signal)

        with NetServer(service, net_config) as server:
            host, port = server.address
            print(
                f"recoil serve: listening on {host}:{port} "
                f"({args.demo_assets} demo assets, "
                f"{len(args.load or [])} loaded containers, "
                f"cap {args.max_connections} connections)",
                flush=True,
            )
            stop.wait()
            print("recoil serve: draining...", flush=True)
            drain = server.shutdown()
        snap = server.metrics.snapshot()
        print(
            f"recoil serve: drained {drain['clean']} clean / "
            f"{drain['forced']} forced; served "
            f"{snap['requests']['ok']} requests over "
            f"{snap['connections']['opened']} connections "
            f"({snap['protocol_errors']} protocol errors, "
            f"{snap['deadline_kills']['total']} deadline kills)",
            flush=True,
        )
    return 0


def _cmd_store(args) -> int:
    """Offline inspection of a durable asset store.  Opening the store
    runs the same recovery pass the server runs at cold start, so a
    plain ``ls`` already quarantines torn/corrupt records."""
    import json

    from repro.serve.disk import DiskStore

    store = DiskStore(args.store_dir)
    rec = store.last_recovery
    if rec is not None and (rec.quarantined or rec.missing):
        print(
            f"recovery: {len(rec.quarantined)} quarantined, "
            f"{len(rec.missing)} missing",
            file=sys.stderr,
        )

    if args.action == "ls":
        entries = store.entries()
        if args.json:
            print(json.dumps(
                {"assets": entries, "recovery": rec.to_dict() if rec else None},
                indent=2, sort_keys=True,
            ))
        else:
            for name, entry in entries.items():
                print(f"{name}\t{entry['bytes']} B\tcrc32={entry['crc32']:08x}")
            print(f"{len(entries)} assets in {args.store_dir}")
        return 0

    if args.action == "scrub":
        result = store.scrub()
        if args.json:
            print(json.dumps(result, indent=2, sort_keys=True))
        else:
            print(
                f"scrub: {result['verified']} verified, "
                f"{len(result['quarantined'])} quarantined"
            )
            for item in result["quarantined"]:
                print(f"  quarantined {item['file']}: {item['reason']}")
        return 1 if result["quarantined"] else 0

    # stat
    if not args.name:
        print("error: store stat wants an asset NAME", file=sys.stderr)
        return 2
    info = store.stat(args.name)
    if args.json:
        print(json.dumps(info, indent=2, sort_keys=True))
    else:
        for key in sorted(info):
            print(f"{key}: {info[key]}")
    return 0 if info.get("verified") else 1


def _cmd_load_bench(args) -> int:
    from repro.serve.loadgen import render_load_table, run_load_bench

    result = run_load_bench(
        symbols=args.symbols,
        num_assets=args.assets,
        rate_hz=args.rate,
        duration_s=args.duration,
        backend=args.backend,
        workers=args.workers,
        max_connections=args.max_connections,
        faults=args.faults,
        seed=args.seed,
        trace_path=args.trace,
    )
    if args.json:
        print(json.dumps(result, indent=2))
    else:
        print(render_load_table(result))
    return 0


def _cmd_trace(args) -> int:
    """Fetch a live server's span ring as a Chrome trace (or validate
    a trace file already on disk).

    Fetch mode talks to a running ``recoil serve`` over TCP and writes
    the Perfetto-loadable document to ``--out``; ``--validate FILE``
    instead schema-checks an existing trace (the CI artifact gate)."""
    from repro.trace import validate_chrome_trace, validate_chrome_trace_file

    if args.validate is not None:
        stats = validate_chrome_trace_file(args.validate)
        print(
            f"{args.validate}: OK — {stats['events']} events, "
            f"{stats['spans']} spans, {len(stats['pids'])} pids "
            f"({len(stats['worker_pids'])} workers), "
            f"{stats['requests']} requests"
        )
        return 0
    from repro.serve.client import RecoilClient

    with RecoilClient(args.host, args.port) as client:
        doc = client.trace(clear=args.clear)
    stats = validate_chrome_trace(doc)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    print(
        f"{args.out}: {stats['events']} events, {stats['spans']} spans, "
        f"{len(stats['pids'])} pids ({len(stats['worker_pids'])} "
        f"workers), {stats['requests']} requests — load in "
        "https://ui.perfetto.dev"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="recoil",
        description="Recoil parallel-rANS file compressor (ICPP 2023 "
        "reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"recoil {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    c = sub.add_parser("compress", help="compress a file")
    c.add_argument("input")
    c.add_argument("output")
    c.add_argument("--splits", type=int, default=256,
                   help="max parallel decode threads to support")
    c.add_argument("--quant", type=int, default=11,
                   help="probability quantization level n (<=16)")
    c.set_defaults(func=_cmd_compress)

    d = sub.add_parser("decompress", help="decompress a container")
    d.add_argument("input")
    d.add_argument("output")
    d.add_argument("--max-parallelism", type=int, default=None,
                   help="combine splits client-side before decoding")
    d.set_defaults(func=_cmd_decompress)

    s = sub.add_parser("shrink", help="combine splits without re-encoding")
    s.add_argument("input")
    s.add_argument("output")
    s.add_argument("--threads", type=int, required=True,
                   help="target decoder parallelism")
    s.set_defaults(func=_cmd_shrink)

    i = sub.add_parser("info", help="inspect a container")
    i.add_argument("input")
    i.add_argument("--json", action="store_true",
                   help="emit machine-readable container stats")
    i.set_defaults(func=_cmd_info)

    b = sub.add_parser(
        "serve-bench",
        help="benchmark the batched content-delivery service",
    )
    b.add_argument("--symbols", type=int, default=200_000,
                   help="asset size in symbols")
    b.add_argument("--clients", type=int, nargs="+", default=[1, 8, 64],
                   help="concurrent-client counts to sweep")
    b.add_argument("--repeats", type=int, default=2,
                   help="best-of repeat count per measurement")
    b.add_argument("--backend", default="fused",
                   choices=compiled.backend_choices(("fused", "thread", "process")),
                   help="batch execution backend: one in-process fused "
                   "kernel call, a thread fan-out, or sharded worker "
                   "processes over shared memory")
    b.add_argument("--workers", type=int, default=8,
                   help="fan-out worker count for thread/process backends")
    b.add_argument("--faults", default=None, metavar="SPEC",
                   help="chaos spec armed during the client sweep, e.g. "
                   "'worker.crash:nth=3,shm.alloc:p=0.05:seed=7' — "
                   "measures the service under injected failures "
                   "(see repro.faults)")
    b.add_argument("--json", action="store_true",
                   help="emit the full result as JSON")
    b.set_defaults(func=_cmd_serve_bench)

    v = sub.add_parser(
        "serve",
        help="network serving daemon (drains gracefully on SIGINT/SIGTERM)",
    )
    v.add_argument("--host", default="127.0.0.1")
    v.add_argument("--port", type=int, default=9090,
                   help="TCP port (0 = OS-assigned; printed at startup)")
    v.add_argument("--max-connections", type=int, default=64,
                   help="concurrent-connection cap; excess is shed with "
                   "RETRY_AFTER")
    v.add_argument("--drain-timeout", type=float, default=5.0,
                   help="grace (s) for in-flight requests at shutdown")
    v.add_argument("--backend", default="fused",
                   choices=compiled.backend_choices(("fused", "thread", "process")),
                   help="batch execution backend")
    v.add_argument("--workers", type=int, default=2,
                   help="fan-out worker count for thread/process backends")
    v.add_argument("--demo-assets", type=int, default=2,
                   help="surrogate assets encoded at startup (asset0..N-1)")
    v.add_argument("--symbols", type=int, default=50_000,
                   help="demo asset size in symbols")
    v.add_argument("--splits", type=int, default=64,
                   help="encoded splits per demo asset")
    v.add_argument("--load", action="append", metavar="NAME=PATH",
                   help="serve an existing container file (repeatable)")
    v.add_argument("--store-dir", default=None, metavar="DIR",
                   help="durable asset store directory: PUT containers "
                   "persist crash-safely and survive restarts "
                   "(recovery + quarantine run at startup)")
    v.add_argument("--resident-bytes", type=int, default=None,
                   help="byte budget for the resident (in-memory) tier; "
                   "colder assets are evicted and re-hydrated from disk "
                   "on demand (needs --store-dir)")
    v.add_argument("--faults", default=None, metavar="SPEC",
                   help="arm fault injection for the whole run, e.g. "
                   "'disk.write:p=0.1:seed=7,disk.fsync:p=0.05' "
                   "(see repro.faults)")
    v.add_argument("--trace", action="store_true",
                   help="record request spans in the in-process ring; "
                   "fetch them live with 'recoil trace'")
    v.set_defaults(func=_cmd_serve)

    st = sub.add_parser(
        "store",
        help="inspect or scrub a durable asset store directory",
    )
    st.add_argument("action", choices=("ls", "scrub", "stat"),
                    help="ls: list recovered assets; scrub: re-verify "
                    "every record (exit 1 if any quarantined); stat: "
                    "verify one asset (exit 1 if bad)")
    st.add_argument("name", nargs="?", default=None,
                    help="asset name (stat only)")
    st.add_argument("--store-dir", required=True, metavar="DIR",
                    help="store directory (as given to serve --store-dir)")
    st.add_argument("--json", action="store_true",
                    help="emit machine-readable JSON")
    st.set_defaults(func=_cmd_store)

    lb = sub.add_parser(
        "load-bench",
        help="open-loop tail-latency harness against a local server",
    )
    lb.add_argument("--symbols", type=int, default=50_000,
                    help="asset size in symbols")
    lb.add_argument("--assets", type=int, default=4,
                    help="number of assets (Zipf-popular)")
    lb.add_argument("--rate", type=float, default=100.0,
                    help="offered request rate (Poisson arrivals, Hz)")
    lb.add_argument("--duration", type=float, default=2.0,
                    help="open-loop run length in seconds")
    lb.add_argument("--backend", default="fused",
                    choices=compiled.backend_choices(("fused", "thread", "process")),
                    help="batch execution backend")
    lb.add_argument("--workers", type=int, default=2,
                    help="fan-out worker count for thread/process backends")
    lb.add_argument("--max-connections", type=int, default=64,
                    help="server connection cap")
    lb.add_argument("--faults", default=None, metavar="SPEC",
                    help="chaos spec armed for a second, faulted run "
                    "(e.g. 'net.read:p=0.05,net.stall:p=0.1') — the "
                    "report then shows clean and faulted side by side")
    lb.add_argument("--seed", type=int, default=11,
                    help="workload seed (arrivals, popularity, personas)")
    lb.add_argument("--trace", default=None, metavar="FILE",
                    help="enable request tracing for the run and write "
                    "a Perfetto-loadable Chrome trace to FILE")
    lb.add_argument("--json", action="store_true",
                    help="emit the full result as JSON")
    lb.set_defaults(func=_cmd_load_bench)

    t = sub.add_parser(
        "trace",
        help="fetch a live server's request trace (or validate one)",
    )
    t.add_argument("--host", default="127.0.0.1")
    t.add_argument("--port", type=int, default=9090)
    t.add_argument("--out", default="trace.json", metavar="FILE",
                   help="where to write the Chrome trace-event JSON")
    t.add_argument("--clear", action="store_true",
                   help="drain the server's span ring after fetching")
    t.add_argument("--validate", default=None, metavar="FILE",
                   help="schema-check an existing trace file instead of "
                   "fetching (exit 1 on an invalid document)")
    t.set_defaults(func=_cmd_trace)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (ReproError, ValueError) as exc:
        # ValueError: a malformed --faults chaos spec.
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
