"""Shared machinery for the evaluation experiments (paper §5.1–5.2).

Builds the six bitstream variations of §5.2 for a dataset:

=====  ======================================================
(a)    Single-Thread baseline (compression-rate reference)
(b)    Conventional **Large** — 2176 partitions (GPU target)
(c)    Recoil **Large** — 2176 splits (GPU target)
(d)    Conventional **Small** — 16 partitions (CPU target)
(e)    Recoil **Small** — (c) *combined down* to 16 splits
(f)    multians tANS bitstream
=====  ======================================================

Key reproduction detail: (e) is produced by :func:`recoil_shrink` on
(c)'s container — never by re-encoding — mirroring the paper's server
workflow.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines import ConventionalCodec, SingleThreadCodec
from repro.core import RecoilCodec, recoil_shrink
from repro.data.images import LatentPlane
from repro.rans.adaptive import (
    AdaptiveModelProvider,
    StaticModelProvider,
)
from repro.rans.model import SymbolModel
from repro.tans import MultiansCodec, TansTable

#: Paper §5.2: partitions/splits "for massively parallel GPU decoding"
#: (the thread count that fills an RTX 2080 Ti) and "for parallel CPU
#: decoding" (a 16-core workstation).
LARGE_SPLITS = 2176
SMALL_SPLITS = 16


@dataclass
class VariationArtifacts:
    """Containers and sizes for all variations of one dataset."""

    dataset: str
    quant_bits: int
    uncompressed_bytes: int
    data: np.ndarray
    provider: AdaptiveModelProvider
    sizes: dict[str, int] = field(default_factory=dict)
    blobs: dict[str, bytes] = field(default_factory=dict)

    def delta(self, variation: str) -> int:
        return self.sizes[variation] - self.sizes["a"]

    def delta_percent(self, variation: str) -> float:
        return 100.0 * self.delta(variation) / self.sizes["a"]


def provider_for(data, quant_bits: int) -> tuple[np.ndarray, AdaptiveModelProvider]:
    """Model provider + raw symbols for a dataset object."""
    if isinstance(data, LatentPlane):
        return data.symbols, data.provider
    data = np.asarray(data)
    model = SymbolModel.from_data(data, quant_bits, alphabet_size=256)
    return data, StaticModelProvider(model)


def build_variations(
    name: str,
    data,
    quant_bits: int,
    large: int = LARGE_SPLITS,
    small: int = SMALL_SPLITS,
    include_multians: bool = True,
    variations: str = "abcdef",
) -> VariationArtifacts:
    """Encode every requested variation and record container sizes."""
    symbols, provider = provider_for(data, quant_bits)
    uncompressed = (
        data.uncompressed_bytes
        if isinstance(data, LatentPlane)
        else len(symbols)
    )
    art = VariationArtifacts(
        dataset=name,
        quant_bits=quant_bits,
        uncompressed_bytes=uncompressed,
        data=symbols,
        provider=provider,
    )

    if "a" in variations:
        st = SingleThreadCodec(provider)
        blob = st.compress(symbols)
        art.blobs["a"] = blob
        art.sizes["a"] = len(blob)
    if "b" in variations or "d" in variations:
        conv = ConventionalCodec(provider)
        if "b" in variations:
            blob = conv.compress(symbols, large)
            art.blobs["b"] = blob
            art.sizes["b"] = len(blob)
        if "d" in variations:
            blob = conv.compress(symbols, small)
            art.blobs["d"] = blob
            art.sizes["d"] = len(blob)
    if "c" in variations or "e" in variations:
        rc = RecoilCodec(provider)
        blob_large = rc.compress(symbols, large)
        art.blobs["c"] = blob_large
        art.sizes["c"] = len(blob_large)
        if "e" in variations:
            # Real-time combining, NOT re-encoding (paper §3.3).
            blob_small = recoil_shrink(blob_large, small)
            art.blobs["e"] = blob_small
            art.sizes["e"] = len(blob_small)
    if (
        "f" in variations
        and include_multians
        and not isinstance(data, LatentPlane)
    ):
        # multians: tANS state count 2**12 normally, 2**16 when n=16
        # (paper §5.1: "modify the state count only for the n=16
        # experiment").
        table_bits = 16 if quant_bits >= 16 else 12
        table = TansTable.from_data(symbols, table_bits, alphabet_size=256)
        mc = MultiansCodec(table)
        blob = mc.compress(symbols)
        art.blobs["f"] = blob
        art.sizes["f"] = len(blob)
    return art
