"""Figure 7: decoding throughput on CPU and GPU device profiles.

Reproduction strategy (DESIGN.md substitution table): all decode
*work* is executed for real by the batched lane engine / multians
stitcher — sync sections, cross-boundary re-decodes, workload
imbalance and self-sync overlap are measured, not assumed — and the
counted work is projected onto calibrated device profiles
(:mod:`repro.parallel.costmodel`).  Real Python wall-clock numbers are
reported alongside for transparency.

Panels (matching the paper's layout):

- **CPU**: Single-Thread (a) vs Conventional Small (d) vs Recoil Small
  (e), on AVX512 and AVX2 profiles.
- **GPU**: multians (f) vs Conventional Large (b) vs Recoil Large (c)
  on the Turing profile.

Expected shape: Recoil ≈ Conventional on both device classes; both
scale far beyond Single-Thread on CPU and far beyond multians on GPU;
multians collapses at n=16 (measured sync length >> chunk size forces
many re-decode rounds).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro.baselines import ConventionalCodec
from repro.core import RecoilCodec, parse_container
from repro.core.decoder import RecoilDecoder
from repro.data import load_dataset
from repro.data.registry import BYTE_DATASETS, IMAGE_DATASETS
from repro.errors import DecodeError
from repro.experiments.common import (
    LARGE_SPLITS,
    SMALL_SPLITS,
    build_variations,
)
from repro.parallel.costmodel import PROFILES, project_throughput
from repro.parallel.workload import WorkloadSummary
from repro.stats.report import Table
from repro.tans import MultiansCodec, TansTable
from repro.tans.multians import measure_sync_length


@dataclass
class ThroughputPoint:
    """One bar of Figure 7."""

    dataset: str
    codec: str
    device: str
    projected_gbps: float
    wall_seconds: float
    payload_bytes: int
    notes: str = ""


@dataclass
class Figure7Result:
    quant_bits: int
    points: list[ThroughputPoint] = field(default_factory=list)
    cpu_table: Table | None = None
    gpu_table: Table | None = None

    def series(self, codec: str, device: str) -> dict[str, float]:
        return {
            p.dataset: p.projected_gbps
            for p in self.points
            if p.codec == codec and p.device == device
        }


def _decode_recoil(art, blob: bytes, max_threads=None):
    parsed = parse_container(blob, provider=art.provider)
    decoder = RecoilDecoder(art.provider, lanes=parsed.lanes)
    t0 = time.perf_counter()
    res = decoder.decode(
        parsed.words(blob), parsed.final_states, parsed.metadata,
        max_threads=max_threads,
    )
    wall = time.perf_counter() - t0
    if not np.array_equal(res.symbols, art.data.astype(res.symbols.dtype)):
        raise DecodeError("recoil output mismatch in figure7 run")
    return res, wall


def _decode_conventional(art, blob: bytes):
    codec = ConventionalCodec(art.provider)
    encoded = codec.parse_container(blob)
    t0 = time.perf_counter()
    out, stats, workload = codec.decode(encoded)
    wall = time.perf_counter() - t0
    if not np.array_equal(out, art.data.astype(out.dtype)):
        raise DecodeError("conventional output mismatch in figure7 run")
    return stats, workload, wall


def _multians_workload(
    art, threads: int, sync_length: float
) -> WorkloadSummary:
    """Analytic multians workload: each thread re-decodes its chunk in
    ``1 + ceil(sync / chunk)`` iterative rounds (the parallel merge of
    the original system)."""
    n = len(art.data)
    chunk = max(1.0, n / threads)
    rounds = 1 + math.ceil(sync_length / chunk)
    per_task = np.full(threads, chunk * rounds)
    payload = n
    return WorkloadSummary(
        num_tasks=threads,
        payload_symbols=payload,
        overhead_symbols=int(per_task.sum()) - payload,
        per_task_symbols=per_task,
    )


def run(
    quant_bits: int,
    profile: str = "default",
    datasets: list[str] | None = None,
    include_multians: bool = True,
    multians_decode_cap: int = 1_000_000,
    gpu_threads: int = LARGE_SPLITS,
    cpu_threads: int = SMALL_SPLITS,
) -> Figure7Result:
    """Regenerate one quantization level's worth of Figure 7 panels."""
    if datasets is None:
        datasets = list(BYTE_DATASETS)
        if quant_bits >= 16:
            datasets += IMAGE_DATASETS
    result = Figure7Result(quant_bits=quant_bits)

    for name in datasets:
        data = load_dataset(name, profile)
        art = build_variations(
            name, data, quant_bits,
            large=gpu_threads, small=cpu_threads,
            include_multians=False,
        )
        payload = art.uncompressed_bytes
        adaptive = name in IMAGE_DATASETS

        # ---- CPU panel: (a), (d), (e) -------------------------------
        res_a, wall_a = _decode_recoil(art, art.blobs["e"], max_threads=1)
        stats_d, wl_d, wall_d = _decode_conventional(art, art.blobs["d"])
        res_e, wall_e = _decode_recoil(art, art.blobs["e"])
        cpu_runs = [
            ("Single-Thread", res_a.workload, res_a.engine_stats.words_read,
             wall_a, {"AVX512": "cpu-single-thread",
                      "AVX2": "cpu-single-thread-avx2"}),
            ("Conventional", wl_d, stats_d.words_read, wall_d,
             {"AVX512": "cpu-avx512", "AVX2": "cpu-avx2"}),
            ("Recoil", res_e.workload, res_e.engine_stats.words_read,
             wall_e, {"AVX512": "cpu-avx512", "AVX2": "cpu-avx2"}),
        ]
        for codec, wl, words_read, wall, device_map in cpu_runs:
            for simd, profile_name in device_map.items():
                gbps = project_throughput(
                    PROFILES[profile_name], wl, words_read,
                    quant_bits, payload, adaptive=adaptive,
                ) / 1e9
                result.points.append(
                    ThroughputPoint(
                        dataset=name,
                        codec=f"{codec} {simd}",
                        device="cpu",
                        projected_gbps=gbps,
                        wall_seconds=wall,
                        payload_bytes=payload,
                    )
                )

        # ---- GPU panel: (b), (c), (f) -------------------------------
        stats_b, wl_b, wall_b = _decode_conventional(art, art.blobs["b"])
        res_c, wall_c = _decode_recoil(art, art.blobs["c"])
        for codec, wl, words_read, wall in [
            ("Conventional CUDA", wl_b, stats_b.words_read, wall_b),
            ("Recoil CUDA", res_c.workload,
             res_c.engine_stats.words_read, wall_c),
        ]:
            gbps = project_throughput(
                PROFILES["gpu-turing"], wl, words_read, quant_bits,
                payload, adaptive=adaptive,
            ) / 1e9
            result.points.append(
                ThroughputPoint(
                    dataset=name, codec=codec, device="gpu",
                    projected_gbps=gbps, wall_seconds=wall,
                    payload_bytes=payload,
                )
            )

        if include_multians and name not in IMAGE_DATASETS:
            table_bits = 16 if quant_bits >= 16 else 12
            table = TansTable.from_data(
                art.data, table_bits, alphabet_size=256
            )
            mc = MultiansCodec(table)
            # Real decode on a capped slice.  Since the fused kernel
            # (repro.tans.fused) replaced the seed's per-symbol
            # stitch, the default cap covers the full stream at CI
            # scale — including the n=16 regime where most chunks
            # never synchronize.
            cap = min(len(art.data), multians_decode_cap)
            blob_small = mc.compress(art.data[:cap])
            t0 = time.perf_counter()
            out, mstats = mc.decompress(
                blob_small, num_threads=min(gpu_threads, 256)
            )
            wall_f = time.perf_counter() - t0
            if not np.array_equal(out, art.data[:cap].astype(out.dtype)):
                raise DecodeError("multians output mismatch in figure7")
            enc_small, _ = mc.parse(blob_small)
            sync = measure_sync_length(
                table, enc_small, samples=5,
                window_symbols=min(cap, 150_000),
            )
            wl_f = _multians_workload(art, gpu_threads, sync)
            words_equiv = enc_small.bit_count // 16 * (len(art.data) // cap)
            gbps = project_throughput(
                PROFILES["gpu-turing-multians"], wl_f, words_equiv,
                quant_bits, payload,
            ) / 1e9
            result.points.append(
                ThroughputPoint(
                    dataset=name, codec="multians", device="gpu",
                    projected_gbps=gbps, wall_seconds=wall_f,
                    payload_bytes=payload,
                    notes=(
                        f"sync~{sync:.0f} sym, "
                        f"unsynced {mstats.unsynced_threads}/{mstats.threads}"
                    ),
                )
            )

    # ---- tables -------------------------------------------------------
    cpu_codecs = [
        "Single-Thread AVX512", "Conventional AVX512", "Recoil AVX512",
        "Single-Thread AVX2", "Conventional AVX2", "Recoil AVX2",
    ]
    cpu = Table(
        headers=["Dataset"] + cpu_codecs,
        title=f"Figure 7 (CPU) — projected GB/s, n={quant_bits}",
    )
    gpu_codecs = ["multians", "Conventional CUDA", "Recoil CUDA"]
    gpu = Table(
        headers=["Dataset"] + gpu_codecs,
        title=f"Figure 7 (GPU) — projected GB/s, n={quant_bits}",
    )
    for name in datasets:
        cpu.add_row(
            name,
            *[
                f"{result.series(c, 'cpu').get(name, float('nan')):.2f}"
                for c in cpu_codecs
            ],
        )
        gpu.add_row(
            name,
            *[
                f"{result.series(c, 'gpu').get(name, float('nan')):.1f}"
                for c in gpu_codecs
            ],
        )
    result.cpu_table = cpu
    result.gpu_table = gpu
    return result


def main(argv: list[str] | None = None) -> int:
    """Regenerate Figure 7 from the command line.

    ``--smoke`` runs one dataset at one quantization level with a
    small multians cap — the CI tier-1 gate that the whole panel
    pipeline (both device classes, sync measurement, cost-model
    projection) stays wired together.  The default regenerates both
    paper panels (n=11 and n=16, the multians collapse) at the chosen
    profile.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="figure7",
        description="Figure 7: decoding throughput on CPU/GPU profiles.",
    )
    parser.add_argument(
        "--profile", default="ci", choices=("ci", "default", "paper"),
        help="dataset size profile",
    )
    parser.add_argument(
        "--quant", type=int, nargs="+", default=[11, 16],
        help="quantization levels to run (default: both panels)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="fast wiring check: one dataset, n=11, capped multians",
    )
    args = parser.parse_args(argv)

    t0 = time.perf_counter()
    if args.smoke:
        runs = [(11, dict(datasets=["rand_100"],
                          multians_decode_cap=120_000))]
    else:
        runs = [(n, {}) for n in args.quant]
    for quant_bits, kw in runs:
        res = run(quant_bits, args.profile, **kw)
        print(res.cpu_table)
        print()
        print(res.gpu_table)
        print()
        missing = [
            codec
            for codec in ("multians", "Recoil CUDA", "Conventional CUDA")
            if not any(p.codec == codec for p in res.points)
        ]
        if missing:
            raise SystemExit(f"figure7 panel incomplete: missing {missing}")
    print(
        f"[figure7] completed in {time.perf_counter() - t0:.1f}s "
        f"(profile={args.profile}, smoke={args.smoke})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
