"""Figure 3: compressed size vs number of symbol sub-sequences.

The paper evaluates the Conventional partitioning approach on the
first 10 MB of enwik9 (static model, n=11, 32-way interleaved base
codec) at 1, 16, and 2176 sub-sequences, observing +0.00%, +0.02% and
+3.20% file-size growth — the motivation for Recoil.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import ConventionalCodec
from repro.data import load_dataset
from repro.experiments.common import provider_for
from repro.stats.report import Table, format_bytes

PARTITION_COUNTS = (1, 16, 2176)


@dataclass
class Figure3Result:
    partition_counts: tuple
    sizes: list[int]
    deltas_percent: list[float]
    table: Table


def run(profile: str = "default", quant_bits: int = 11) -> Figure3Result:
    """Regenerate Figure 3's series."""
    data = load_dataset("enwik9", profile)
    # Paper uses the first 10 MB of enwik9; our surrogate is already a
    # prefix-stationary stream, so a prefix slice is faithful.
    data = data[: min(len(data), 10_000_000)]
    symbols, provider = provider_for(data, quant_bits)
    codec = ConventionalCodec(provider)
    sizes = []
    for p in PARTITION_COUNTS:
        sizes.append(len(codec.compress(symbols, p)))
    base = sizes[0]
    deltas = [100.0 * (s - base) / base for s in sizes]

    table = Table(
        headers=["N sub-sequences", "file size", "delta vs N=1"],
        title=(
            f"Figure 3 — Conventional partitioning on "
            f"{len(symbols):,} bytes of enwik9 surrogate (n={quant_bits})"
        ),
    )
    for p, s, d in zip(PARTITION_COUNTS, sizes, deltas):
        table.add_row(p, format_bytes(s), f"+{d:.2f}%")
    return Figure3Result(PARTITION_COUNTS, sizes, deltas, table)


if __name__ == "__main__":
    print(run().table)
