"""Encoder-side cost accounting (paper §6 discussion).

Recoil deliberately trades encoder parallelism away ("Recoil encoding
cannot be done in parallel and encoding throughput is limited") and
argues this is acceptable for content delivery.  This experiment makes
the trade-off concrete:

- wall-clock encode throughput of Single-Thread, Conventional (which
  could parallelize over partitions) and Recoil (single interleaved
  pass + event recording + split selection);
- the breakdown of Recoil's extra encode cost (event recording,
  split selection) relative to the plain interleaved pass;
- the *serving* cost it buys down: per-request shrink time vs
  per-request re-encode time for Conventional.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.baselines import ConventionalCodec
from repro.core import RecoilCodec, recoil_shrink
from repro.data import load_dataset
from repro.experiments.common import provider_for
from repro.rans.interleaved import InterleavedEncoder
from repro.stats.report import Table


@dataclass
class EncodingResult:
    dataset: str
    rows: dict[str, float] = field(default_factory=dict)
    table: Table | None = None


def run(
    dataset: str = "enwik8",
    profile: str = "ci",
    quant_bits: int = 11,
    splits: int = 256,
) -> EncodingResult:
    data = load_dataset(dataset, profile)
    symbols, provider = provider_for(data, quant_bits)
    res = EncodingResult(dataset=dataset)
    mb = len(symbols) / 1e6

    encoder = InterleavedEncoder(provider)
    # Warm one-time lazy state (provider gather/encode tables, fused
    # arena) so the timed rows compare steady-state loops, not setup.
    encoder.encode_reference(symbols[:1024])
    encoder.encode(symbols[:1024])

    t0 = time.perf_counter()
    encoder.encode_reference(symbols)
    res.rows["reference loop encode (s)"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    encoder.encode(symbols)
    plain = time.perf_counter() - t0
    res.rows["fused interleaved encode (s)"] = plain

    t0 = time.perf_counter()
    encoder.encode(symbols, record_events=True)
    with_events = time.perf_counter() - t0
    res.rows["  + in-kernel event recording (s)"] = with_events

    codec = RecoilCodec(provider)
    t0 = time.perf_counter()
    blob = codec.compress(symbols, splits)
    full = time.perf_counter() - t0
    res.rows["  + split selection + container (s)"] = full

    conv = ConventionalCodec(provider)
    t0 = time.perf_counter()
    conv.compress(symbols, splits)
    conv_time = time.perf_counter() - t0
    res.rows["conventional encode (s)"] = conv_time

    t0 = time.perf_counter()
    recoil_shrink(blob, 16)
    shrink = time.perf_counter() - t0
    res.rows["recoil per-request shrink (s)"] = shrink

    t0 = time.perf_counter()
    conv.compress(symbols, 16)
    reenc = time.perf_counter() - t0
    res.rows["conventional per-request re-encode (s)"] = reenc

    table = Table(
        headers=["operation", "seconds", "MB/s"],
        title=(
            f"Encoder-side costs on {dataset} ({mb:.1f} MB, "
            f"n={quant_bits}, {splits} splits)"
        ),
    )
    for name, sec in res.rows.items():
        table.add_row(name, f"{sec:.3f}", f"{mb / sec:.1f}" if sec else "-")
    res.table = table
    return res


if __name__ == "__main__":
    print(run().table)
