"""Table 4: dataset inventory and baseline (a) compressed sizes.

For byte datasets the baseline is the Single-Thread 32-way interleaved
rANS container at n = 11 and n = 16; image datasets are compressed at
n = 16 only (16-bit symbols need the finer quantization).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines import SingleThreadCodec
from repro.data import load_dataset
from repro.data.registry import BYTE_DATASETS, IMAGE_DATASETS
from repro.experiments.common import provider_for
from repro.stats.report import Table, format_bytes


@dataclass
class Table4Result:
    rows: dict[str, dict] = field(default_factory=dict)
    table: Table | None = None


def baseline_size(data, quant_bits: int) -> int:
    symbols, provider = provider_for(data, quant_bits)
    return len(SingleThreadCodec(provider).compress(symbols))


def run(profile: str = "default", datasets: list[str] | None = None) -> Table4Result:
    result = Table4Result()
    names = datasets or (BYTE_DATASETS + IMAGE_DATASETS)
    table = Table(
        headers=["Name", "Uncompressed", "n=11", "n=16"],
        title=f"Table 4 — baseline (a) compressed sizes [{profile} profile]",
    )
    for name in names:
        data = load_dataset(name, profile)
        is_image = name in IMAGE_DATASETS
        uncompressed = (
            data.uncompressed_bytes if is_image else len(data)
        )
        row: dict = {"uncompressed": uncompressed}
        if not is_image:
            row["n11"] = baseline_size(data, 11)
        row["n16"] = baseline_size(data, 16)
        result.rows[name] = row
        table.add_row(
            name,
            format_bytes(uncompressed),
            format_bytes(row["n11"]) if "n11" in row else "N/A",
            format_bytes(row["n16"]),
        )
    result.table = table
    return result


if __name__ == "__main__":
    print(run("ci").table)
