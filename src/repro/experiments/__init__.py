"""Experiment reproductions, one module per paper table/figure.

=================  ===========================================
module             reproduces
=================  ===========================================
``figure3``        Fig. 3 — file size vs #sub-sequences
``table4``         Table 4 — baseline compressed sizes
``tables56``       Tables 5 & 6 — variation size deltas
``figure7``        Fig. 7 — decode throughput, CPU and GPU
=================  ===========================================

``runner`` exposes the ``recoil-bench`` CLI which regenerates
everything and rewrites EXPERIMENTS.md.
"""

from repro.experiments.common import (
    VariationArtifacts,
    build_variations,
    LARGE_SPLITS,
    SMALL_SPLITS,
)

__all__ = [
    "VariationArtifacts",
    "build_variations",
    "LARGE_SPLITS",
    "SMALL_SPLITS",
]
