"""Tables 5 & 6: compressed-size deltas of variations (b)–(f) vs (a).

The paper's headline compression results:

- Recoil Large (c) beats Conventional Large (b) **on every dataset**;
- the Small variants (d), (e) cost well under a percent;
- converting Large→Small via Recoil combining (e) recovers almost all
  of the Large overhead — up to −23.41% vs serving (b);
- multians (f) is competitive at n=11 but collapses at n=16 (decode
  table dump + coarse state range).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data import load_dataset
from repro.data.registry import BYTE_DATASETS, IMAGE_DATASETS
from repro.experiments.common import (
    LARGE_SPLITS,
    SMALL_SPLITS,
    VariationArtifacts,
    build_variations,
)
from repro.stats.report import Table, format_delta

_VARIATION_LABELS = {
    "b": "(b) Conv Large",
    "c": "(c) Recoil Large",
    "d": "(d) Conv Small",
    "e": "(e) Recoil Small",
    "f": "(f) multians",
}


@dataclass
class DeltaResult:
    quant_bits: int
    artifacts: dict[str, VariationArtifacts] = field(default_factory=dict)
    table: Table | None = None

    def shape_checks(self) -> dict[str, bool]:
        """The paper's qualitative claims, as booleans per dataset."""
        checks = {}
        for name, art in self.artifacts.items():
            recoil_beats_conv = art.sizes["c"] < art.sizes["b"]
            # Scale-invariant form of "the Small variants are
            # negligible": their overhead is a small fraction of the
            # corresponding Large overhead (at the paper's 10 MB scale
            # this is the paper's <0.2% vs 3-24%).
            small_negligible = (
                art.delta("d") < 0.1 * art.delta("b")
                and art.delta("e") < 0.1 * art.delta("c")
            )
            recoil_small_beats_conv_small = art.sizes["e"] <= art.sizes["d"]
            checks[name] = (
                recoil_beats_conv
                and small_negligible
                and recoil_small_beats_conv_small
            )
        return checks


def run(
    quant_bits: int,
    profile: str = "default",
    datasets: list[str] | None = None,
    large: int = LARGE_SPLITS,
    small: int = SMALL_SPLITS,
    include_multians: bool = True,
) -> DeltaResult:
    """Regenerate Table 5 (``quant_bits=11``) or Table 6 (16)."""
    if datasets is None:
        datasets = list(BYTE_DATASETS)
        if quant_bits >= 16:
            datasets += IMAGE_DATASETS
    result = DeltaResult(quant_bits=quant_bits)
    table = Table(
        headers=["Dataset"] + list(_VARIATION_LABELS.values()),
        title=(
            f"Table {'5' if quant_bits < 16 else '6'} — size deltas vs "
            f"(a), n={quant_bits}, Large={large}, Small={small} "
            f"[{profile} profile]"
        ),
    )
    for name in datasets:
        data = load_dataset(name, profile)
        art = build_variations(
            name,
            data,
            quant_bits,
            large=large,
            small=small,
            include_multians=include_multians,
        )
        result.artifacts[name] = art
        cells = [name]
        for v in _VARIATION_LABELS:
            if v in art.sizes:
                cells.append(format_delta(art.delta(v), art.sizes["a"]))
            else:
                cells.append("N/A")
        table.add_row(*cells)
    result.table = table
    return result


def headline_saving(result: DeltaResult) -> tuple[str, float]:
    """Max overhead reduction from serving (e) instead of (b) —
    the paper's −23.41% headline (rand_500, n=16)."""
    best_name, best = "", 0.0
    for name, art in result.artifacts.items():
        if "b" not in art.sizes or "e" not in art.sizes:
            continue
        saving = 100.0 * (art.sizes["e"] - art.sizes["b"]) / art.sizes["a"]
        if saving < best:
            best, best_name = saving, name
    return best_name, best


if __name__ == "__main__":
    res = run(11, "ci")
    print(res.table)
    print("headline saving:", headline_saving(res))
