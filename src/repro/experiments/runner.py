"""``recoil-bench``: regenerate every paper table/figure in one run.

Usage::

    recoil-bench --profile ci --experiments fig3,t4,t5,t6,fig7
    recoil-bench --profile default --out EXPERIMENTS_RUN.md

Profiles control dataset sizes (see
:data:`repro.data.registry.SCALE_PROFILES`): ``ci`` finishes in about a
minute, ``default`` in tens of minutes, ``paper`` uses the paper's full
sizes (hours in pure Python).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import figure3, figure7, table4, tables56
from repro.experiments.tables56 import headline_saving

ALL = ("fig3", "t4", "t5", "t6", "fig7")


def run_all(
    profile: str,
    experiments: tuple[str, ...] = ALL,
    stream=sys.stdout,
    markdown: bool = False,
) -> dict:
    """Run the requested experiments, printing tables as they finish.

    Returns a dict of result objects keyed by experiment id.
    """
    results: dict = {}

    def emit(table) -> None:
        if table is None:
            return
        text = table.render_markdown() if markdown else table.render()
        print(text, file=stream)
        print(file=stream)

    t0 = time.perf_counter()
    if "fig3" in experiments:
        results["fig3"] = figure3.run(profile)
        emit(results["fig3"].table)
    if "t4" in experiments:
        results["t4"] = table4.run(profile)
        emit(results["t4"].table)
    if "t5" in experiments:
        results["t5"] = tables56.run(11, profile)
        emit(results["t5"].table)
        name, saving = headline_saving(results["t5"])
        print(
            f"Max overhead reduction serving (e) instead of (b), n=11: "
            f"{saving:.2f}% on {name}",
            file=stream,
        )
        print(file=stream)
    if "t6" in experiments:
        results["t6"] = tables56.run(16, profile)
        emit(results["t6"].table)
        name, saving = headline_saving(results["t6"])
        print(
            f"Max overhead reduction serving (e) instead of (b), n=16: "
            f"{saving:.2f}% on {name}",
            file=stream,
        )
        print(file=stream)
    if "fig7" in experiments:
        results["fig7_n11"] = figure7.run(11, profile)
        emit(results["fig7_n11"].cpu_table)
        emit(results["fig7_n11"].gpu_table)
        results["fig7_n16"] = figure7.run(16, profile)
        emit(results["fig7_n16"].cpu_table)
        emit(results["fig7_n16"].gpu_table)
    print(
        f"[recoil-bench] completed in {time.perf_counter() - t0:.1f}s "
        f"(profile={profile})",
        file=stream,
    )
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="recoil-bench",
        description="Regenerate the Recoil paper's tables and figures.",
    )
    parser.add_argument(
        "--profile",
        default="ci",
        choices=("ci", "default", "paper"),
        help="dataset size profile",
    )
    parser.add_argument(
        "--experiments",
        default=",".join(ALL),
        help=f"comma-separated subset of {ALL}",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="also write the report (markdown) to this file",
    )
    args = parser.parse_args(argv)
    experiments = tuple(
        e.strip() for e in args.experiments.split(",") if e.strip()
    )
    unknown = set(experiments) - set(ALL)
    if unknown:
        parser.error(f"unknown experiments: {sorted(unknown)}")

    results = run_all(args.profile, experiments)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(f"# recoil-bench report (profile={args.profile})\n\n")
            emit_report(results, fh)
        print(f"report written to {args.out}")
    return 0


def emit_report(results: dict, fh) -> None:
    """Render already-computed results as markdown (no re-running)."""
    order = ["fig3", "t4", "t5", "t6", "fig7_n11", "fig7_n16"]
    for key in order:
        res = results.get(key)
        if res is None:
            continue
        for attr in ("table", "cpu_table", "gpu_table"):
            table = getattr(res, attr, None)
            if table is not None:
                fh.write(table.render_markdown())
                fh.write("\n\n")
        if key in ("t5", "t6"):
            name, saving = headline_saving(res)
            fh.write(
                f"Max overhead reduction serving (e) instead of (b): "
                f"{saving:.2f}% on {name}\n\n"
            )


if __name__ == "__main__":
    raise SystemExit(main())
