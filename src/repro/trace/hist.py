"""Log-bucketed streaming latency histograms.

The one quantile primitive of the observability layer (DESIGN.md §17):
every per-stage latency distribution in ``metrics_snapshot()``, the
load generator's sample store, and the benchmark stage breakdowns all
go through :class:`LatencyHistogram`, so quantiles cost O(buckets)
memory no matter how long a run is — an over-saturation soak that
records ten million samples holds the same ~2 KB of counters as a
2-second smoke.

Bucketing: bucket ``i`` covers ``[MIN_S * GROWTH**i, MIN_S *
GROWTH**(i+1))`` with ``GROWTH = 2**(1/8)`` — eight buckets per octave,
so a reported quantile is within ±4.4% of the true value (half a
bucket, geometric).  ``count``/``sum``/``min``/``max`` are tracked
exactly, so means and extremes carry no bucketing error at all.

Thread safety: every mutator and reader takes the instance lock.  The
lock is a leaf — nothing under it calls out — so callers that already
hold their own lock (``ServeMetrics``) may nest it freely.
"""

from __future__ import annotations

import math
import threading

#: smallest resolvable latency (100 ns); everything below lands in
#: bucket 0.
MIN_S = 1e-7
#: geometric bucket growth: 8 buckets per octave.
GROWTH = 2.0 ** 0.125
_LOG_GROWTH = math.log(GROWTH)
#: bucket count: covers MIN_S .. MIN_S * GROWTH**NUM_BUCKETS ≈ 3.4 ks.
NUM_BUCKETS = 280


def bucket_index(seconds: float) -> int:
    """Bucket index for a latency (clamped to the histogram range)."""
    if seconds <= MIN_S:
        return 0
    idx = int(math.log(seconds / MIN_S) / _LOG_GROWTH)
    return min(idx, NUM_BUCKETS - 1)


def bucket_value(index: int) -> float:
    """Representative latency of a bucket (geometric midpoint)."""
    return MIN_S * GROWTH ** (index + 0.5)


class LatencyHistogram:
    """Bounded-memory streaming histogram of latencies in seconds."""

    __slots__ = ("_lock", "_buckets", "count", "total", "min", "max")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._buckets = [0] * NUM_BUCKETS
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0

    def record(self, seconds: float) -> None:
        """Add one sample (negative values clamp to zero)."""
        if seconds < 0.0:
            seconds = 0.0
        idx = bucket_index(seconds)
        with self._lock:
            self._buckets[idx] += 1
            self.count += 1
            self.total += seconds
            if seconds < self.min:
                self.min = seconds
            if seconds > self.max:
                self.max = seconds

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other``'s samples into this histogram."""
        with other._lock:
            buckets = list(other._buckets)
            count, total = other.count, other.total
            lo, hi = other.min, other.max
        with self._lock:
            for i, n in enumerate(buckets):
                self._buckets[i] += n
            self.count += count
            self.total += total
            if lo < self.min:
                self.min = lo
            if hi > self.max:
                self.max = hi

    # -- queries -------------------------------------------------------

    def percentile(self, q: float) -> float | None:
        """The ``q``-th percentile in seconds (``None`` when empty).

        Accurate to half a bucket (±4.4%), clamped to the exact
        observed ``[min, max]`` so p0/p100 never exceed reality.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            if not self.count:
                return None
            rank = q / 100.0 * self.count
            seen = 0
            for i, n in enumerate(self._buckets):
                seen += n
                if seen >= rank and n:
                    return min(max(bucket_value(i), self.min), self.max)
            return self.max

    @property
    def mean(self) -> float | None:
        with self._lock:
            return self.total / self.count if self.count else None

    def snapshot(self) -> dict:
        """JSON-able summary in milliseconds (the snapshot unit of
        ``metrics_snapshot()`` and the benchmark reports)."""

        def ms(seconds: float | None) -> float | None:
            if seconds is None:
                return None
            return round(seconds * 1000.0, 3)

        with self._lock:
            count = self.count
            mean_s = self.total / count if count else None
            max_s = self.max if count else None
        return {
            "count": count,
            "mean_ms": ms(mean_s),
            "p50_ms": ms(self.percentile(50)),
            "p90_ms": ms(self.percentile(90)),
            "p99_ms": ms(self.percentile(99)),
            "p999_ms": ms(self.percentile(99.9)),
            "max_ms": ms(max_s),
        }

    def __repr__(self) -> str:
        return (
            f"LatencyHistogram(count={self.count}, "
            f"mean={self.total / self.count if self.count else 0.0:.6f}s)"
        )
