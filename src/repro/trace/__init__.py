"""Cross-layer request tracing for the serving stack (DESIGN.md §17).

Three pieces:

- :mod:`repro.trace.core` — the span registry: a bounded ring buffer
  with a lock-free disabled fast path, per-request span trees, and
  cross-process stitching for shard workers.
- :mod:`repro.trace.hist` — log-bucketed streaming histograms, the one
  quantile primitive behind every per-stage latency distribution.
- :mod:`repro.trace.export` — Chrome trace-event JSON export
  (Perfetto-loadable) and the schema validator.

Quickstart::

    from repro import trace
    with trace.tracing():
        ...  # run traced work (service.submit / NetServer requests)
        spans = trace.drain()
    trace.write_chrome_trace("trace.json", spans)
"""

from .core import (
    DEFAULT_CAPACITY,
    Span,
    current_parent,
    disable,
    drain,
    dropped,
    enable,
    enabled,
    new_request,
    next_span_id,
    parent_scope,
    record_instant,
    record_span,
    reset,
    snapshot,
    tracing,
    ts,
)
from .export import (
    WORKER_CAT,
    chrome_trace,
    validate_chrome_trace,
    validate_chrome_trace_file,
    write_chrome_trace,
)
from .hist import GROWTH, MIN_S, NUM_BUCKETS, LatencyHistogram

__all__ = [
    "DEFAULT_CAPACITY",
    "GROWTH",
    "MIN_S",
    "NUM_BUCKETS",
    "LatencyHistogram",
    "Span",
    "WORKER_CAT",
    "chrome_trace",
    "current_parent",
    "disable",
    "drain",
    "dropped",
    "enable",
    "enabled",
    "new_request",
    "next_span_id",
    "parent_scope",
    "record_instant",
    "record_span",
    "reset",
    "snapshot",
    "tracing",
    "ts",
    "validate_chrome_trace",
    "validate_chrome_trace_file",
    "write_chrome_trace",
]
