"""Span registry and ring buffer for cross-layer request tracing.

Always compiled in, off by default (DESIGN.md §17).  The discipline
mirrors :mod:`repro.faults`: a single module-global flag guards every
entry point, so with tracing disabled the per-request cost is one
attribute load and one branch — no lock, no clock read, no allocation.
Enabled, spans append to a bounded ``collections.deque`` ring (CPython
deque appends are GIL-atomic, so the hot path still takes no explicit
lock; the module lock only serializes enable/disable/drain).

Span model:

- A **request id** (``new_request()``) names one client request as it
  crosses layers: the network read, the service queue, the fused
  batch, the shard workers, the response write all tag their spans
  with it, so a timeline can be filtered to one request end-to-end.
- A **span id** names one span; ``parent`` links child spans (a
  kernel dispatch inside a request, a shard execution inside a
  dispatch) into a tree.  Ids are allocated from one process-wide
  counter — worker processes never allocate ids; their spans are
  measured worker-side and *registered parent-side* when the reply
  ships back over the pipe (one registry, one id space, exactly like
  the fault-verdict discipline of DESIGN.md §15).
- Timestamps are ``time.perf_counter()``.  On Linux that is
  ``CLOCK_MONOTONIC``, which is system-wide: parent and worker
  timestamps share one clock domain, so cross-process spans stitch
  without offset correction.  (On platforms where the clock is
  per-process, worker spans still export but may be skewed; the
  serving stack targets Linux.)

Spans record as ``X`` (complete) events in the Chrome trace-event
sense — one record per finished span, never begin/end pairs — so a
crashed worker can lose only its own unreported span, never unbalance
the stream.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from contextlib import contextmanager

#: default ring capacity (spans); at ~10 spans per request this holds
#: the last ~6500 requests.
DEFAULT_CAPACITY = 65_536

#: returned by :func:`ts` when tracing is disabled — a module-level
#: constant, so the disabled fast path allocates nothing.
_ZERO = 0.0


class Span:
    """One finished span (a Chrome ``X`` event plus linkage ids)."""

    __slots__ = (
        "name", "cat", "ts", "dur", "pid", "tid", "sid", "parent",
        "req", "args",
    )

    def __init__(
        self,
        name: str,
        cat: str,
        ts: float,
        dur: float,
        pid: int,
        tid: int,
        sid: int,
        parent: int | None,
        req: int | None,
        args: dict | None,
    ) -> None:
        self.name = name
        self.cat = cat
        self.ts = ts
        self.dur = dur
        self.pid = pid
        self.tid = tid
        self.sid = sid
        self.parent = parent
        self.req = req
        self.args = args

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, ts={self.ts:.6f}, dur={self.dur:.6f}, "
            f"sid={self.sid}, parent={self.parent}, req={self.req})"
        )


_lock = threading.Lock()
_buffer: deque[Span] | None = None
#: lock-free fast-path flag: True iff tracing is collecting.
_enabled = False
#: one id space for spans AND requests, never reset — ids stay unique
#: across enable/disable cycles.
_ids = itertools.count(1)
#: spans evicted from the ring since enable() (overflow visibility).
_dropped = 0

#: per-thread implicit parent span (the serve dispatcher publishes its
#: batch span here so the shard layer can parent worker spans without
#: threading ids through every call signature).
_ctx = threading.local()


def enabled() -> bool:
    """Whether spans are being collected (lock-free)."""
    return _enabled


def enable(capacity: int = DEFAULT_CAPACITY) -> None:
    """Start collecting spans into a fresh ring of ``capacity``."""
    global _buffer, _enabled, _dropped
    if capacity < 1:
        raise ValueError(f"capacity must be >= 1, got {capacity}")
    with _lock:
        _buffer = deque(maxlen=capacity)
        _dropped = 0
        _enabled = True


def disable() -> None:
    """Stop collecting (the ring keeps its spans until re-enabled)."""
    global _enabled
    with _lock:
        _enabled = False


@contextmanager
def tracing(capacity: int = DEFAULT_CAPACITY):
    """Collect spans for the dynamic extent of the ``with`` block."""
    enable(capacity)
    try:
        yield
    finally:
        disable()


def ts() -> float:
    """A trace timestamp, or ``0.0`` (module constant — no allocation)
    when tracing is disabled."""
    if not _enabled:
        return _ZERO
    return time.perf_counter()


def new_request() -> int | None:
    """Allocate a request id (``None`` when disabled)."""
    if not _enabled:
        return None
    return next(_ids)


def next_span_id() -> int | None:
    """Reserve a span id before its span finishes, so children created
    meanwhile can name it as ``parent`` (``None`` when disabled)."""
    if not _enabled:
        return None
    return next(_ids)


def record_span(
    name: str,
    t0: float,
    t1: float | None = None,
    *,
    cat: str = "serve",
    req: int | None = None,
    parent: int | None = None,
    args: dict | None = None,
    sid: int | None = None,
    pid: int | None = None,
    tid: int | None = None,
) -> int | None:
    """Record one finished span; returns its span id.

    ``t0``/``t1`` are ``perf_counter`` seconds (``t1`` defaults to
    now).  ``sid`` registers a pre-reserved id
    (:func:`next_span_id`); ``pid``/``tid`` override the recording
    identity for spans measured in another process (shard workers).
    No-op returning ``None`` when disabled — callers never branch.
    """
    if not _enabled:
        return None
    buf = _buffer
    if buf is None:  # pragma: no cover - disable/enable race guard
        return None
    if t1 is None:
        t1 = time.perf_counter()
    if sid is None:
        sid = next(_ids)
    before = len(buf)
    buf.append(
        Span(
            name,
            cat,
            t0,
            max(t1 - t0, 0.0),
            pid if pid is not None else os.getpid(),
            tid if tid is not None else threading.get_native_id(),
            sid,
            parent,
            req,
            args,
        )
    )
    if before == buf.maxlen:
        global _dropped
        _dropped += 1  # benign race: a lower bound, not an exact count
    return sid


def record_instant(
    name: str,
    *,
    cat: str = "serve",
    req: int | None = None,
    parent: int | None = None,
    args: dict | None = None,
) -> int | None:
    """Record a zero-duration marker (a worker respawn, a shed)."""
    if not _enabled:
        return None
    now = time.perf_counter()
    return record_span(
        name, now, now, cat=cat, req=req, parent=parent, args=args
    )


# -- implicit dispatch context ----------------------------------------------


@contextmanager
def parent_scope(sid: int | None):
    """Publish ``sid`` as the current thread's implicit parent span
    (read by :func:`current_parent` in layers below the call chain)."""
    prev = getattr(_ctx, "parent", None)
    _ctx.parent = sid
    try:
        yield
    finally:
        _ctx.parent = prev


def current_parent() -> int | None:
    """The innermost :func:`parent_scope` span id on this thread."""
    if not _enabled:
        return None
    return getattr(_ctx, "parent", None)


# -- draining ---------------------------------------------------------------


def snapshot() -> list[Span]:
    """Copy of the ring's spans, oldest first (collection continues)."""
    with _lock:
        return list(_buffer) if _buffer is not None else []


def drain() -> list[Span]:
    """Remove and return every buffered span."""
    with _lock:
        if _buffer is None:
            return []
        out = list(_buffer)
        _buffer.clear()
        return out


def dropped() -> int:
    """Spans evicted by ring overflow since :func:`enable`."""
    return _dropped


def reset() -> None:
    """Disable and forget everything (test hygiene)."""
    global _buffer, _enabled, _dropped
    with _lock:
        _enabled = False
        _buffer = None
        _dropped = 0
