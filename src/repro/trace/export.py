"""Chrome trace-event export and schema validation.

Converts the span ring (:mod:`repro.trace.core`) into the Chrome
trace-event JSON format — ``{"traceEvents": [...]}`` with ``X``
(complete), ``i`` (instant) and ``M`` (metadata) events — loadable in
``chrome://tracing`` and Perfetto (https://ui.perfetto.dev).

Spans recorded in shard worker processes carry their real worker pid,
so the viewer lays each worker out as its own process track; ``M``
``process_name`` events label the parent ``recoil-serve`` and the
workers ``shard-worker``.  Parent/child span ids and the request id
ride in each event's ``args``, which is where Perfetto surfaces them
on click.

:func:`validate_chrome_trace` is the schema checker the tests and the
``recoil trace --validate`` CLI share: field presence and types, B/E
balance (per pid/tid, name-matched), non-negative ``dur``, distinct
worker pids when worker spans are present.
"""

from __future__ import annotations

import json

from ..errors import TraceError
from .core import Span

#: category assigned to spans measured inside shard worker processes.
WORKER_CAT = "shard"


def chrome_trace(spans: list[Span], *, main_pid: int | None = None) -> dict:
    """Render spans as a Chrome trace-event document (dict)."""
    events: list[dict] = []
    pids: dict[int, str] = {}
    if main_pid is None and spans:
        # heuristic: the serve process recorded the first span.
        main_pid = spans[0].pid
    for s in spans:
        role = "recoil-serve" if s.pid == main_pid else "shard-worker"
        pids.setdefault(s.pid, role)
        args = {"span_id": s.sid}
        if s.parent is not None:
            args["parent_id"] = s.parent
        if s.req is not None:
            args["request_id"] = s.req
        if s.args:
            args.update(s.args)
        ev = {
            "name": s.name,
            "cat": s.cat,
            "ph": "i" if s.dur == 0.0 else "X",
            "ts": s.ts * 1e6,  # perf_counter seconds -> microseconds
            "pid": s.pid,
            "tid": s.tid,
            "args": args,
        }
        if ev["ph"] == "X":
            ev["dur"] = s.dur * 1e6
        else:
            ev["s"] = "t"  # instant scope: thread
        events.append(ev)
    meta = []
    for pid, role in sorted(pids.items()):
        name = role if role == "recoil-serve" else f"{role}-{pid}"
        meta.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": name},
        })
    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.trace"},
    }


def write_chrome_trace(
    path: str, spans: list[Span], *, main_pid: int | None = None
) -> dict:
    """Write spans as Chrome trace JSON to ``path``; returns the doc."""
    doc = chrome_trace(spans, main_pid=main_pid)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    return doc


# -- validation -------------------------------------------------------------

_DUR_PHASES = {"X"}
_KNOWN_PHASES = {"X", "B", "E", "i", "I", "M", "C"}


def validate_chrome_trace(doc: dict) -> dict:
    """Schema-check a Chrome trace document; raise :class:`TraceError`
    on any violation.

    Checks: top-level shape, required fields per phase
    (name/ph/ts/pid/tid; dur on ``X``), numeric types, non-negative
    durations, B/E balance per (pid, tid) with matching names, and —
    when worker-category spans are present — that they run under pids
    distinct from the serve process.  Returns summary stats
    (event/span counts, pids, request ids) for callers that print.
    """
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise TraceError("trace document must be a dict with 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise TraceError("'traceEvents' must be a list")

    open_stacks: dict[tuple, list[str]] = {}
    pids: set[int] = set()
    worker_pids: set[int] = set()
    serve_pids: set[int] = set()
    requests: set[int] = set()
    spans = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise TraceError(f"event {i} is not an object")
        ph = ev.get("ph")
        if ph not in _KNOWN_PHASES:
            raise TraceError(f"event {i}: unknown phase {ph!r}")
        for field in ("name", "pid", "tid"):
            if field not in ev:
                raise TraceError(f"event {i} ({ph}): missing {field!r}")
        if not isinstance(ev["name"], str) or not ev["name"]:
            raise TraceError(f"event {i}: 'name' must be a non-empty string")
        for field in ("pid", "tid"):
            if not isinstance(ev[field], int):
                raise TraceError(f"event {i}: {field!r} must be an int")
        if ph == "M":
            continue  # metadata carries no timestamp
        if "ts" not in ev:
            raise TraceError(f"event {i} ({ph}): missing 'ts'")
        if not isinstance(ev["ts"], (int, float)) or ev["ts"] < 0:
            raise TraceError(f"event {i}: 'ts' must be a non-negative number")
        key = (ev["pid"], ev["tid"])
        pids.add(ev["pid"])
        if ph in _DUR_PHASES:
            if "dur" not in ev:
                raise TraceError(f"event {i} (X): missing 'dur'")
            if not isinstance(ev["dur"], (int, float)) or ev["dur"] < 0:
                raise TraceError(
                    f"event {i}: 'dur' must be a non-negative number"
                )
            spans += 1
        elif ph == "B":
            open_stacks.setdefault(key, []).append(ev["name"])
            spans += 1
        elif ph == "E":
            stack = open_stacks.get(key)
            if not stack:
                raise TraceError(
                    f"event {i}: 'E' for {ev['name']!r} with no open 'B' "
                    f"on pid={key[0]} tid={key[1]}"
                )
            opened = stack.pop()
            if opened != ev["name"]:
                raise TraceError(
                    f"event {i}: 'E' name {ev['name']!r} does not match "
                    f"open 'B' {opened!r}"
                )
        args = ev.get("args")
        if isinstance(args, dict) and "request_id" in args:
            requests.add(args["request_id"])
        if ev.get("cat") == WORKER_CAT:
            worker_pids.add(ev["pid"])
        else:
            serve_pids.add(ev["pid"])
    unbalanced = {
        key: stack for key, stack in open_stacks.items() if stack
    }
    if unbalanced:
        raise TraceError(
            f"unbalanced B/E events: {len(unbalanced)} thread(s) with open "
            f"spans, e.g. {next(iter(unbalanced.values()))!r}"
        )
    if worker_pids and worker_pids & serve_pids:
        raise TraceError(
            "worker spans share a pid with serve spans: "
            f"{sorted(worker_pids & serve_pids)}"
        )
    return {
        "events": len(events),
        "spans": spans,
        "pids": sorted(pids),
        "worker_pids": sorted(worker_pids),
        "requests": len(requests),
    }


def validate_chrome_trace_file(path: str) -> dict:
    """Load and validate a trace file; returns the summary stats."""
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise TraceError(f"cannot read trace file {path!r}: {exc}") from exc
    return validate_chrome_trace(doc)
