"""Measurement and reporting utilities."""

from repro.stats.entropy import (
    empirical_entropy,
    ideal_compressed_bytes,
    kl_divergence_bits,
)
from repro.stats.report import Table, format_bytes, format_delta
from repro.stats.timing import Timer, measure_throughput

__all__ = [
    "empirical_entropy",
    "ideal_compressed_bytes",
    "kl_divergence_bits",
    "Table",
    "format_bytes",
    "format_delta",
    "Timer",
    "measure_throughput",
]
