"""Wall-clock measurement helpers."""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field


@dataclass
class Timer:
    """Context-manager stopwatch with repeat support."""

    elapsed: float = 0.0
    laps: list[float] = field(default_factory=list)
    _start: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        lap = time.perf_counter() - self._start
        self.elapsed += lap
        self.laps.append(lap)

    @property
    def best(self) -> float:
        return min(self.laps) if self.laps else 0.0

    @property
    def mean(self) -> float:
        return self.elapsed / len(self.laps) if self.laps else 0.0


def measure_throughput(
    fn, payload_bytes: int, repeats: int = 3, warmup: int = 1
) -> dict:
    """Run ``fn`` repeatedly; report bytes/second statistics.

    Matches the paper's §5.3 protocol (averaged over runs, excluding
    setup/transfer) at a Python-appropriate repeat count.
    """
    for _ in range(warmup):
        fn()
    t = Timer()
    for _ in range(repeats):
        with t:
            fn()
    return {
        "mean_seconds": t.mean,
        "best_seconds": t.best,
        "mean_bytes_per_second": payload_bytes / t.mean if t.mean else 0.0,
        "best_bytes_per_second": payload_bytes / t.best if t.best else 0.0,
    }


def measure_backend_shootout(
    provider,
    lanes: int,
    words,
    tasks,
    num_symbols: int,
    out_dtype,
    workers: int = 8,
    repeats: int = 3,
    expected=None,
) -> dict:
    """Thread vs. process fan-out of one decode, same LPT shard plan.

    Times :func:`repro.parallel.executor.decode_with_pool` on both
    backends at ``workers`` workers, then measures every shard bucket
    *solo* (one shard process, nothing else running) and composes the
    parallel makespan ``max(solo)`` — the wall-clock of the same plan
    when every shard has its own core.  On a host with
    ``cpus >= workers`` the measured process time and the makespan
    coincide; on smaller hosts (1-core CI runners) the OS serializes
    the shards and only the makespan shows the parallel number, so the
    headline ``speedup_process_vs_thread`` uses
    ``min(process_s, shard_makespan_s)``.  All components are measured
    wall-clock; see docs/BENCHMARKS.md for the methodology and
    DESIGN.md §14 for why the thread backend convoys on the GIL.

    Output of both backends is verified against ``expected`` (when
    given) before any timing.

    :returns: a JSON-able dict (seconds, speedups, host CPU count).
    :raises AssertionError: a backend's output was not bit-identical
        to ``expected``.
    """
    import numpy as np

    from repro.parallel import shards
    from repro.parallel.costmodel import assign_tasks
    from repro.parallel.executor import decode_with_pool

    pool = shards.default_executor(workers)
    if pool is not None:
        pool.warm()  # process startup stays outside the timed region

    def run(backend, run_tasks, run_workers=workers):
        return decode_with_pool(
            provider, lanes, words, run_tasks, num_symbols, out_dtype,
            workers=run_workers, backend=backend, executor=pool,
        )

    process_backend = run("process", tasks).backend  # "thread" if no shm
    if expected is not None:
        for backend in ("thread", process_backend):
            if not np.array_equal(run(backend, tasks).symbols, expected):
                raise AssertionError(
                    f"{backend} backend decode mismatch in benchmark"
                )

    def best_of(fn):
        t = Timer()
        for _ in range(repeats):
            with t:
                fn()
        return t.best

    thread_s = best_of(lambda: run("thread", tasks))
    process_s = best_of(lambda: run(process_backend, tasks))

    # Solo-shard makespan: each bucket of the real shard plan, timed
    # alone on one shard worker (includes its share of shm + IPC).
    buckets = assign_tasks(tasks, workers)
    solo = [
        best_of(lambda b=b: run(process_backend, b, 1)) for b in buckets
    ]
    makespan_s = max(solo) if solo else 0.0

    measured = thread_s / process_s if process_s else 0.0
    full = thread_s / min(process_s, makespan_s) if makespan_s else measured
    return {
        "workers": workers,
        "host_cpus": os.cpu_count(),
        "process_backend_available": process_backend == "process",
        "thread_s": round(thread_s, 4),
        "process_s": round(process_s, 4),
        "shard_solo_s": [round(s, 4) for s in solo],
        "shard_makespan_s": round(makespan_s, 4),
        "speedup_process_vs_thread_measured": round(measured, 3),
        "speedup_process_vs_thread": round(full, 3),
        "method": (
            "speedup_process_vs_thread = thread_s / min(process_s, "
            "shard_makespan_s); shard_makespan_s = max over shard "
            "buckets of the bucket's solo wall-clock (= process "
            "wall-clock when every shard has its own core, which a "
            "host_cpus < workers runner cannot express directly)"
        ),
    }
