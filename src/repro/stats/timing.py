"""Wall-clock measurement helpers."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Timer:
    """Context-manager stopwatch with repeat support."""

    elapsed: float = 0.0
    laps: list[float] = field(default_factory=list)
    _start: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        lap = time.perf_counter() - self._start
        self.elapsed += lap
        self.laps.append(lap)

    @property
    def best(self) -> float:
        return min(self.laps) if self.laps else 0.0

    @property
    def mean(self) -> float:
        return self.elapsed / len(self.laps) if self.laps else 0.0


def measure_throughput(
    fn, payload_bytes: int, repeats: int = 3, warmup: int = 1
) -> dict:
    """Run ``fn`` repeatedly; report bytes/second statistics.

    Matches the paper's §5.3 protocol (averaged over runs, excluding
    setup/transfer) at a Python-appropriate repeat count.
    """
    for _ in range(warmup):
        fn()
    t = Timer()
    for _ in range(repeats):
        with t:
            fn()
    return {
        "mean_seconds": t.mean,
        "best_seconds": t.best,
        "mean_bytes_per_second": payload_bytes / t.mean if t.mean else 0.0,
        "best_bytes_per_second": payload_bytes / t.best if t.best else 0.0,
    }
