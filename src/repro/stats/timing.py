"""Wall-clock measurement helpers."""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field


@dataclass
class Timer:
    """Context-manager stopwatch with repeat support."""

    elapsed: float = 0.0
    laps: list[float] = field(default_factory=list)
    _start: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        lap = time.perf_counter() - self._start
        self.elapsed += lap
        self.laps.append(lap)

    @property
    def best(self) -> float:
        return min(self.laps) if self.laps else 0.0

    @property
    def mean(self) -> float:
        return self.elapsed / len(self.laps) if self.laps else 0.0


def measure_throughput(
    fn, payload_bytes: int, repeats: int = 3, warmup: int = 1
) -> dict:
    """Run ``fn`` repeatedly; report bytes/second statistics.

    Matches the paper's §5.3 protocol (averaged over runs, excluding
    setup/transfer) at a Python-appropriate repeat count.
    """
    for _ in range(warmup):
        fn()
    t = Timer()
    for _ in range(repeats):
        with t:
            fn()
    return {
        "mean_seconds": t.mean,
        "best_seconds": t.best,
        "mean_bytes_per_second": payload_bytes / t.mean if t.mean else 0.0,
        "best_bytes_per_second": payload_bytes / t.best if t.best else 0.0,
    }


def measure_backend_shootout(
    provider,
    lanes: int,
    words,
    tasks,
    num_symbols: int,
    out_dtype,
    workers: int = 8,
    repeats: int = 3,
    expected=None,
) -> dict:
    """Thread vs. process fan-out of one decode, same LPT shard plan.

    Times :func:`repro.parallel.executor.decode_with_pool` on both
    backends at ``workers`` workers.  The headline
    ``speedup_process_vs_thread`` is the directly measured wall-clock
    ratio ``thread_s / process_s`` on this host — nothing else.  On a
    host with fewer cores than workers the OS serializes the shards
    and that ratio sits near 1 regardless of backend quality; only a
    ``host_cpus >= workers`` run can show the parallel edge.

    Separately, every shard bucket of the plan is timed *solo* (one
    worker, nothing else running) on **both** backends, and the two
    makespans ``max(solo)`` feed ``projected_parallel_speedup`` — the
    plan's ratio if every shard had its own core, with the identical
    composition applied to both backends.  The projection is generous
    to threads (a solo thread shard pays no GIL contention, which a
    real multi-core thread run does — DESIGN.md §14), so it lower-
    bounds the process edge, but it is a projection, not a
    measurement; never quote it as one (docs/BENCHMARKS.md).

    Output of both backends is verified against ``expected`` (when
    given) before any timing.

    :returns: a JSON-able dict (seconds, speedups, host CPU count).
    :raises AssertionError: a backend's output was not bit-identical
        to ``expected``.
    """
    import numpy as np

    from repro.parallel import shards
    from repro.parallel.costmodel import assign_tasks
    from repro.parallel.executor import decode_with_pool

    pool = shards.default_executor(workers)
    if pool is not None:
        pool.warm()  # process startup stays outside the timed region

    def run(backend, run_tasks, run_workers=workers):
        return decode_with_pool(
            provider, lanes, words, run_tasks, num_symbols, out_dtype,
            workers=run_workers, backend=backend, executor=pool,
        )

    process_backend = run("process", tasks).backend  # "thread" if no shm
    if expected is not None:
        for backend in ("thread", process_backend):
            if not np.array_equal(run(backend, tasks).symbols, expected):
                raise AssertionError(
                    f"{backend} backend decode mismatch in benchmark"
                )

    def best_of(fn):
        t = Timer()
        for _ in range(repeats):
            with t:
                fn()
        return t.best

    thread_s = best_of(lambda: run("thread", tasks))
    process_s = best_of(lambda: run(process_backend, tasks))

    # Solo-shard makespans, symmetric across backends: each bucket of
    # the real shard plan, timed alone on one worker of each backend
    # (process solos include their share of shm setup + IPC).
    buckets = assign_tasks(tasks, workers)
    thread_solo = [
        best_of(lambda b=b: run("thread", b, 1)) for b in buckets
    ]
    process_solo = [
        best_of(lambda b=b: run(process_backend, b, 1)) for b in buckets
    ]
    thread_makespan = max(thread_solo) if thread_solo else 0.0
    process_makespan = max(process_solo) if process_solo else 0.0

    measured = thread_s / process_s if process_s else 0.0
    proj_thread = (
        min(thread_s, thread_makespan) if thread_makespan else thread_s
    )
    proj_process = (
        min(process_s, process_makespan) if process_makespan else process_s
    )
    projected = proj_thread / proj_process if proj_process else 0.0
    return {
        "workers": workers,
        "host_cpus": os.cpu_count(),
        "process_backend_available": process_backend == "process",
        "thread_s": round(thread_s, 4),
        "process_s": round(process_s, 4),
        "speedup_process_vs_thread": round(measured, 3),
        "thread_shard_solo_s": [round(s, 4) for s in thread_solo],
        "process_shard_solo_s": [round(s, 4) for s in process_solo],
        "thread_shard_makespan_s": round(thread_makespan, 4),
        "process_shard_makespan_s": round(process_makespan, 4),
        "projected_parallel_speedup": round(projected, 3),
        "method": (
            "speedup_process_vs_thread = thread_s / process_s, both "
            "measured wall-clock at the same worker count on this "
            "host (near 1 by construction when host_cpus < workers). "
            "projected_parallel_speedup = min(thread_s, "
            "thread_shard_makespan_s) / min(process_s, "
            "process_shard_makespan_s), each makespan the max over "
            "the plan's buckets of that bucket's solo wall-clock on "
            "that backend — a symmetric every-shard-has-a-core "
            "projection, generous to threads (solo shards pay no GIL "
            "contention); a projection, not a measurement"
        ),
    }
