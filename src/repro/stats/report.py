"""Plain-text table rendering for experiment reports.

The experiment runners print paper-style tables (Table 4/5/6, Figure 3
and 7 series) to stdout and into EXPERIMENTS.md; this module is the
tiny formatting layer they share.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def format_bytes(n: float) -> str:
    """Paper convention: 1 KB = 1000 bytes."""
    if abs(n) >= 1_000_000:
        return f"{n / 1_000_000:,.2f} MB"
    if abs(n) >= 1_000:
        return f"{n / 1_000:,.1f} KB"
    return f"{n:,.0f} B"


def format_delta(delta_bytes: float, base_bytes: float) -> str:
    """Render like the paper's Tables 5/6: '+163.67 KB +2.09%'."""
    pct = 100.0 * delta_bytes / base_bytes if base_bytes else 0.0
    sign = "+" if delta_bytes >= 0 else "-"
    return (
        f"{sign}{abs(delta_bytes) / 1000:,.2f} KB "
        f"{'+' if pct >= 0 else '-'}{abs(pct):.2f}%"
    )


@dataclass
class Table:
    """A minimal monospace table builder."""

    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)
    title: str = ""

    def add_row(self, *cells) -> None:
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        cols = len(self.headers)
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            if len(row) != cols:
                raise ValueError(
                    f"row has {len(row)} cells, expected {cols}"
                )
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(
            " | ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        )
        lines.append(sep)
        for row in self.rows:
            lines.append(
                " | ".join(c.ljust(w) for c, w in zip(row, widths))
            )
        return "\n".join(lines)

    def render_markdown(self) -> str:
        lines = []
        if self.title:
            lines.append(f"**{self.title}**")
            lines.append("")
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
