"""Entropy and rate accounting."""

from __future__ import annotations

import numpy as np


def empirical_entropy(data: np.ndarray, alphabet_size: int | None = None) -> float:
    """Order-0 entropy of a symbol sequence in bits/symbol."""
    data = np.asarray(data)
    if data.size == 0:
        return 0.0
    counts = np.bincount(data.ravel(), minlength=alphabet_size or 0)
    p = counts[counts > 0] / data.size
    return float(-(p * np.log2(p)).sum())


def ideal_compressed_bytes(data: np.ndarray) -> float:
    """Shannon lower bound for order-0 coding of ``data``."""
    return empirical_entropy(data) * len(data) / 8.0


def kl_divergence_bits(
    counts: np.ndarray, model_probs: np.ndarray
) -> float:
    """KL(empirical || model) in bits/symbol — the per-symbol rate
    penalty a quantized model pays over the empirical distribution.

    Symbols with empirical mass but zero model mass contribute
    ``inf`` (they are unencodable)."""
    counts = np.asarray(counts, dtype=np.float64)
    total = counts.sum()
    if total <= 0:
        return 0.0
    p = counts / total
    q = np.asarray(model_probs, dtype=np.float64)
    mask = p > 0
    if np.any(q[mask] <= 0):
        return float("inf")
    return float((p[mask] * np.log2(p[mask] / q[mask])).sum())
