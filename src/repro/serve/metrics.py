"""Serving metrics: per-request, per-batch, and per-connection counters.

One :class:`ServeMetrics` instance is owned by a
:class:`~repro.serve.service.RecoilService` and updated from both the
client threads (request lifecycle, admission waits) and the dispatcher
thread (batch execution), so every mutation is lock-protected.  The
benchmarks (``benchmarks/bench_serve.py``) and ``recoil serve-bench``
read :meth:`snapshot` — a plain dict, safe to serialize.

:class:`NetMetrics` is the same idea for the network front-end
(:class:`~repro.serve.net.NetServer`): connection lifecycle, protocol
errors, deadline kills, load shedding and drain outcomes, updated from
the accept loop and every connection thread.  A server attaches its
instance to the service (``service.attach_network_metrics``) so
``metrics_snapshot()`` reports one unified view under ``"network"``.
"""

from __future__ import annotations

import threading

from ..trace.hist import LatencyHistogram

#: service-side stages with their own latency distribution (DESIGN.md
#: §17): where a request's time goes between submit and completion.
SERVICE_STAGES = ("shrink", "admission", "batch_window", "kernel", "request")

#: network-side stages: the connection thread's view of one request.
NET_STAGES = ("read", "handle", "write", "e2e")


class ServeMetrics:
    """Thread-safe counters for one service instance."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: per-stage latency distributions (log-bucketed streaming
        #: histograms — bounded memory, own leaf locks).
        self.stages = {s: LatencyHistogram() for s in SERVICE_STAGES}
        # -- request lifecycle -----------------------------------------
        self.requests_submitted = 0
        self.requests_completed = 0
        self.requests_failed = 0
        self.request_latency_total_s = 0.0
        self.request_latency_max_s = 0.0
        # -- admission / backpressure ----------------------------------
        self.admission_waits = 0  # requests that had to block
        self.admission_rejected = 0  # timed out waiting (AdmissionError)
        self.peak_inflight_symbols = 0
        # -- batching --------------------------------------------------
        self.batches_dispatched = 0
        self.batched_requests = 0  # requests that shared a batch (size >= 2)
        self.largest_batch_requests = 0
        self.fused_tasks_total = 0
        self.symbols_decoded = 0
        self.kernel_seconds = 0.0
        # -- serving (shrink) ------------------------------------------
        self.shrink_cache_hits = 0
        self.shrink_cache_misses = 0
        self.bytes_served = 0
        # -- resilience (DESIGN.md §15) --------------------------------
        self.degradations = 0  # process -> thread backend falls
        self.promotions = 0  # thread -> process recoveries
        self.promotion_probes = 0  # cooldown probes attempted
        self.poison_batches = 0  # failed batches retried per-request
        self.poison_retries = 0  # solo re-runs performed
        self.poison_isolated = 0  # requests that failed alone (the poison)
        self.deadline_expired = 0  # requests failed by deadline

    # ------------------------------------------------------------------

    def record_submit(self) -> None:
        with self._lock:
            self.requests_submitted += 1

    def record_admission_wait(self) -> None:
        with self._lock:
            self.admission_waits += 1

    def record_admission_rejected(self) -> None:
        with self._lock:
            self.admission_rejected += 1

    def record_inflight(self, inflight_symbols: int) -> None:
        with self._lock:
            if inflight_symbols > self.peak_inflight_symbols:
                self.peak_inflight_symbols = inflight_symbols

    def record_completion(self, latency_s: float, ok: bool) -> None:
        with self._lock:
            if ok:
                self.requests_completed += 1
            else:
                self.requests_failed += 1
            self.request_latency_total_s += latency_s
            if latency_s > self.request_latency_max_s:
                self.request_latency_max_s = latency_s

    def record_batch(
        self,
        num_requests: int,
        num_tasks: int,
        symbols: int,
        seconds: float,
    ) -> None:
        with self._lock:
            self.batches_dispatched += 1
            if num_requests >= 2:
                self.batched_requests += num_requests
            if num_requests > self.largest_batch_requests:
                self.largest_batch_requests = num_requests
            self.fused_tasks_total += num_tasks
            self.symbols_decoded += symbols
            self.kernel_seconds += seconds

    def record_degradation(self) -> None:
        with self._lock:
            self.degradations += 1

    def record_promotion(self) -> None:
        with self._lock:
            self.promotions += 1

    def record_promotion_probe(self) -> None:
        with self._lock:
            self.promotion_probes += 1

    def record_poison_batch(self) -> None:
        with self._lock:
            self.poison_batches += 1

    def record_poison_retry(self, isolated: bool) -> None:
        with self._lock:
            self.poison_retries += 1
            if isolated:
                self.poison_isolated += 1

    def record_deadline_expired(self) -> None:
        with self._lock:
            self.deadline_expired += 1

    def record_shrink(self, nbytes: int, cache_hit: bool) -> None:
        with self._lock:
            if cache_hit:
                self.shrink_cache_hits += 1
            else:
                self.shrink_cache_misses += 1
            self.bytes_served += nbytes

    def record_stage(self, stage: str, seconds: float) -> None:
        """Add one sample to a stage's latency histogram.

        Histograms carry their own leaf lock, so this never takes the
        counter lock — stage recording stays off the counter hot path.
        """
        self.stages[stage].record(seconds)

    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """A consistent point-in-time view (plain dict, derived means
        included)."""
        with self._lock:
            done = self.requests_completed + self.requests_failed
            shrinks = self.shrink_cache_hits + self.shrink_cache_misses
            return {
                "requests": {
                    "submitted": self.requests_submitted,
                    "completed": self.requests_completed,
                    "failed": self.requests_failed,
                    "mean_latency_s": (
                        self.request_latency_total_s / done if done else 0.0
                    ),
                    "total_latency_s": self.request_latency_total_s,
                    "max_latency_s": self.request_latency_max_s,
                },
                "admission": {
                    "waits": self.admission_waits,
                    "rejected": self.admission_rejected,
                    "peak_inflight_symbols": self.peak_inflight_symbols,
                },
                "batches": {
                    "dispatched": self.batches_dispatched,
                    "batched_requests": self.batched_requests,
                    "largest_requests": self.largest_batch_requests,
                    "mean_requests": (
                        (self.requests_completed + self.requests_failed)
                        / self.batches_dispatched
                        if self.batches_dispatched
                        else 0.0
                    ),
                    "fused_tasks": self.fused_tasks_total,
                    "symbols_decoded": self.symbols_decoded,
                    "kernel_seconds": self.kernel_seconds,
                },
                "shrink": {
                    "cache_hits": self.shrink_cache_hits,
                    "cache_misses": self.shrink_cache_misses,
                    "hit_rate": (
                        self.shrink_cache_hits / shrinks if shrinks else 0.0
                    ),
                    "bytes_served": self.bytes_served,
                },
                "resilience": {
                    "degradations": self.degradations,
                    "promotions": self.promotions,
                    "promotion_probes": self.promotion_probes,
                    "poison_batches": self.poison_batches,
                    "poison_retries": self.poison_retries,
                    "poison_isolated": self.poison_isolated,
                    "deadline_expired": self.deadline_expired,
                },
                "stage_latency_ms": {
                    stage: hist.snapshot()
                    for stage, hist in self.stages.items()
                },
            }


class NetMetrics:
    """Thread-safe counters for one network front-end.

    Invariants asserted by the test suite (``tests/test_serve.py``):

    - ``connections.opened == connections.closed + connections.active``
      at every snapshot (opened/closed are recorded under one lock);
    - ``connections.active == 0`` once the server has shut down;
    - ``requests.ok + requests.failed`` never exceeds the frames a
      clean client sent (a killed connection loses at most the one
      request in flight).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: per-stage latency distributions (read/handle/write/e2e).
        self.stages = {s: LatencyHistogram() for s in NET_STAGES}
        # -- connection lifecycle --------------------------------------
        self.connections_opened = 0
        self.connections_closed = 0
        self.connections_rejected = 0  # over the cap (shed at accept)
        self.peak_active = 0
        # -- per-request -----------------------------------------------
        self.requests_ok = 0
        self.requests_failed = 0  # answered with a typed error frame
        self.bytes_read = 0
        self.bytes_written = 0
        # -- robustness ------------------------------------------------
        self.protocol_errors = 0  # malformed frames answered + closed
        self.transport_errors = 0  # peer resets / mid-frame disconnects
        self.deadline_kills_read = 0  # slow-loris / dead-peer reads
        self.deadline_kills_write = 0  # slow-reader writes
        self.retry_afters_sent = 0  # shed responses (cap + admission)
        self.stalls_injected = 0  # net.stall fault fires honored
        # -- drain (shutdown) ------------------------------------------
        self.drain_clean = 0  # connections that finished in time
        self.drain_forced = 0  # hard-closed at the drain deadline

    # ------------------------------------------------------------------

    def connection_opened(self) -> None:
        with self._lock:
            self.connections_opened += 1
            active = self.connections_opened - self.connections_closed
            if active > self.peak_active:
                self.peak_active = active

    def connection_closed(self) -> None:
        with self._lock:
            self.connections_closed += 1

    def connection_rejected(self) -> None:
        with self._lock:
            self.connections_rejected += 1
            self.retry_afters_sent += 1

    def record_request(self, ok: bool) -> None:
        with self._lock:
            if ok:
                self.requests_ok += 1
            else:
                self.requests_failed += 1

    def record_bytes(self, read: int = 0, written: int = 0) -> None:
        with self._lock:
            self.bytes_read += read
            self.bytes_written += written

    def record_protocol_error(self) -> None:
        with self._lock:
            self.protocol_errors += 1

    def record_transport_error(self) -> None:
        with self._lock:
            self.transport_errors += 1

    def record_deadline_kill(self, *, write: bool) -> None:
        with self._lock:
            if write:
                self.deadline_kills_write += 1
            else:
                self.deadline_kills_read += 1

    def record_retry_after(self) -> None:
        with self._lock:
            self.retry_afters_sent += 1

    def record_stall(self) -> None:
        with self._lock:
            self.stalls_injected += 1

    def record_drain(self, *, forced: bool) -> None:
        with self._lock:
            if forced:
                self.drain_forced += 1
            else:
                self.drain_clean += 1

    def record_stage(self, stage: str, seconds: float) -> None:
        """Add one sample to a stage's latency histogram (leaf-locked,
        never takes the counter lock)."""
        self.stages[stage].record(seconds)

    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """A consistent point-in-time view (plain dict)."""
        with self._lock:
            return {
                "connections": {
                    "opened": self.connections_opened,
                    "closed": self.connections_closed,
                    "active": (
                        self.connections_opened - self.connections_closed
                    ),
                    "rejected": self.connections_rejected,
                    "peak_active": self.peak_active,
                },
                "requests": {
                    "ok": self.requests_ok,
                    "failed": self.requests_failed,
                    "bytes_read": self.bytes_read,
                    "bytes_written": self.bytes_written,
                },
                "protocol_errors": self.protocol_errors,
                "transport_errors": self.transport_errors,
                "deadline_kills": {
                    "read": self.deadline_kills_read,
                    "write": self.deadline_kills_write,
                    "total": (
                        self.deadline_kills_read + self.deadline_kills_write
                    ),
                },
                "retry_afters_sent": self.retry_afters_sent,
                "stalls_injected": self.stalls_injected,
                "drain": {
                    "clean": self.drain_clean,
                    "forced": self.drain_forced,
                },
                "stage_latency_ms": {
                    stage: hist.snapshot()
                    for stage, hist in self.stages.items()
                },
            }
