"""Request batching: fuse concurrent decode requests into one kernel.

PRs 1–2 made independent decodes advance as a single ``(P*K,)``-wide
state vector; this module applies that *across requests*.  Concurrent
``decompress`` calls are collected over a short window (or until the
batch's lane budget fills) and dispatched as ONE
:func:`~repro.parallel.fused.fused_run_multi` invocation — ``S``
requests of ``T_i`` tasks each become one ``(sum(T_i), K)`` state
matrix, so the per-iteration interpreter overhead that dominates small
(low-capacity) decodes is paid once per batch instead of once per
request.

Fusion compatibility is expressed as a *fuse key*: requests sharing
``(provider, lanes)`` with a static model may ride in one batch
(different assets included — the kernel only sees concatenated word
streams).  Adaptive-model requests get a unique key each, because
their per-index model ids are positional and do not survive output
rebasing; they dispatch alone through the same machinery.

The batcher is a pure policy object: it holds pending requests and
decides *what* to dispatch.  Locking and the dispatch loop live in
:class:`~repro.serve.service.RecoilService`, which calls into the
batcher only under its own condition variable.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass

import numpy as np

from repro.parallel.fused import StreamSegment, geometry_bucket
from repro.rans.adaptive import provider_fingerprint
from repro.serve.store import ShrunkVariant, StoredAsset


class DecodeRequest:
    """One client decompress request travelling through the service."""

    def __init__(
        self,
        asset: StoredAsset,
        variant: ShrunkVariant,
        deadline: float | None = None,
        submitted_at: float | None = None,
    ) -> None:
        self.asset = asset
        self.variant = variant
        #: absolute ``perf_counter`` time after which the dispatcher
        #: fails the request with DeadlineError instead of running it.
        self.deadline = deadline
        self.enqueued_at = time.perf_counter()
        #: when the client's submit() began (before the shrink) — the
        #: start of the end-to-end stage clock (defaults to enqueue).
        self.submitted_at = (
            submitted_at if submitted_at is not None else self.enqueued_at
        )
        #: when admission released the request into the batcher (set by
        #: the service; batch-window residency is measured from here).
        self.admitted_at: float | None = None
        #: tracing linkage (``repro.trace``): request id, root span id,
        #: and the caller's parent span (the network front-end's
        #: request span) — all ``None`` when tracing is disabled.
        self.trace_req: int | None = None
        self.trace_root: int | None = None
        self.trace_parent: int | None = None
        self._future: Future = Future()
        self.completed_at: float | None = None
        # Requests with equal keys may share one fused kernel call.
        if asset.provider.is_static:
            self.fuse_key: tuple = (
                provider_fingerprint(asset.provider),
                asset.lanes,
                asset.out_dtype,
                geometry_bucket(variant.tasks, asset.lanes),
            )
        else:
            # Adaptive model ids are positional in the original
            # sequence: never fused across requests.
            self.fuse_key = (id(self),)

    # -- batching ------------------------------------------------------

    @property
    def task_lanes(self) -> int:
        """Lane-budget weight: decoder threads this request adds."""
        return len(self.variant.tasks)

    @property
    def cost_symbols(self) -> int:
        """Admission-control weight (estimated walked symbols)."""
        return self.variant.cost_symbols

    def segment(self) -> StreamSegment:
        return StreamSegment(
            words=self.asset.words,
            tasks=self.variant.tasks,
            num_symbols=self.asset.num_symbols,
        )

    # -- completion (a stdlib Future carries the handoff) --------------

    def set_result(self, symbols: np.ndarray) -> None:
        self.completed_at = time.perf_counter()
        self._future.set_result(symbols)

    def set_error(self, error: Exception) -> None:
        self.completed_at = time.perf_counter()
        self._future.set_exception(error)

    def result(self, timeout: float | None = None) -> np.ndarray:
        """Block until completion; raises the service-side error (or
        :class:`TimeoutError`)."""
        return self._future.result(timeout)

    @property
    def done(self) -> bool:
        return self._future.done()

    @property
    def latency_s(self) -> float:
        if self.completed_at is None:
            return 0.0
        return self.completed_at - self.enqueued_at


@dataclass
class BatchPolicy:
    """When to close a batch and hand it to the kernel.

    A batch dispatches when *either* the oldest pending request has
    waited ``window_s`` (latency bound) *or* the head fuse-group
    already saturates a cap (work bound) — whichever comes first.
    ``max_task_lanes`` is the lane budget: total decoder threads
    (tasks) a single fused call may carry, the knob that keeps one
    batch's state matrix at a width where vectorization, not memory
    traffic, dominates.
    """

    window_s: float = 0.002
    max_requests: int = 64
    max_task_lanes: int = 512

    def __post_init__(self) -> None:
        if self.max_requests < 1:
            raise ValueError(
                f"max_requests must be >= 1, got {self.max_requests}"
            )
        if self.max_task_lanes < 1:
            raise ValueError(
                f"max_task_lanes must be >= 1, got {self.max_task_lanes}"
            )


class RequestBatcher:
    """Pending-request queue with fuse-group batch selection.

    NOT thread-safe by itself — the owning service serializes access
    (its condition variable also provides the waiting).
    """

    def __init__(self, policy: BatchPolicy | None = None) -> None:
        self.policy = policy or BatchPolicy()
        self._pending: deque[DecodeRequest] = deque()

    def __len__(self) -> int:
        return len(self._pending)

    def add(self, request: DecodeRequest) -> None:
        self._pending.append(request)

    # ------------------------------------------------------------------

    def _head_group(self) -> tuple[list[DecodeRequest], bool]:
        """The dispatchable prefix of the head fuse-group.

        Returns ``(requests, saturated)`` where ``saturated`` means a
        cap was hit (more same-key work is waiting behind the batch).
        """
        p = self.policy
        head_key = self._pending[0].fuse_key
        group: list[DecodeRequest] = []
        lanes = 0
        for req in self._pending:
            if req.fuse_key != head_key:
                continue
            if group and (
                len(group) >= p.max_requests
                or lanes + req.task_lanes > p.max_task_lanes
            ):
                return group, True
            group.append(req)
            lanes += req.task_lanes
        return group, False

    def deadline(self) -> float | None:
        """perf_counter time at which the dispatcher must wake: the
        head request's window end, or the earliest pending request
        deadline if that comes sooner (an expired request must be
        failed promptly, not after a full window).  None when empty."""
        if not self._pending:
            return None
        when = self._pending[0].enqueued_at + self.policy.window_s
        for req in self._pending:
            if req.deadline is not None and req.deadline < when:
                when = req.deadline
        return when

    def pop_expired(self, now: float | None = None) -> list[DecodeRequest]:
        """Remove and return every pending request whose deadline has
        passed (the dispatcher fails them without kernel time)."""
        if now is None:
            now = time.perf_counter()
        expired = [
            r
            for r in self._pending
            if r.deadline is not None and now >= r.deadline
        ]
        if expired:
            dead = set(map(id, expired))
            self._pending = deque(
                r for r in self._pending if id(r) not in dead
            )
        return expired

    def ready(self, now: float | None = None) -> bool:
        """Should a batch dispatch right now?"""
        if not self._pending:
            return False
        if now is None:
            now = time.perf_counter()
        if now >= self.deadline():
            return True
        _, saturated = self._head_group()
        return saturated

    def pop_batch(self) -> list[DecodeRequest]:
        """Remove and return the next batch (head fuse-group, capped).

        Requests with other fuse keys keep their queue order and form
        later batches.
        """
        if not self._pending:
            return []
        group, _ = self._head_group()
        members = set(map(id, group))
        self._pending = deque(
            r for r in self._pending if id(r) not in members
        )
        return group

    def drain(self) -> list[DecodeRequest]:
        """Remove and return everything (service shutdown)."""
        drained = list(self._pending)
        self._pending.clear()
        return drained
