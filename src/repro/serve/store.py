"""Asset store: encode once, shrink per request, cache the shrinks.

The paper's serving story (§1, §3.3) is *encode once at the maximum
parallelism the server will ever support, then adapt per request by
dropping metadata*.  The store realizes both halves:

- :meth:`AssetStore.put` encodes an asset exactly once (at
  ``num_splits`` parallelism) and keeps the parsed container alongside
  the raw bytes, so serving never re-parses;
- :meth:`AssetStore.shrunk` answers ``(asset, client_capacity)``
  requests from an LRU :class:`ShrinkCache` — a repeated shrink for a
  known client class costs one dict hit, and a miss costs only the
  metadata combine + splice (the payload never moves).

A cached :class:`ShrunkVariant` carries the servable container bytes
*and* the prebuilt decoder thread tasks for that capacity, so the
request batcher can go straight to the fused kernel.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro import faults
from repro.core.container import ParsedContainer, parse_container
from repro.core.decoder import build_thread_tasks
from repro.core.metadata import RecoilMetadata
from repro.core.serialization import serialize_metadata
from repro.errors import MetadataError, ServeError
from repro.parallel.costmodel import estimate_task_symbols
from repro.parallel.simd import ThreadTask
from repro.rans.adaptive import AdaptiveModelProvider
from repro.rans.constants import DEFAULT_LANES
from repro.rans.model import SymbolModel


@dataclass(frozen=True)
class ShrunkVariant:
    """One (asset, capacity) serving variant.

    ``blob`` is what goes on the wire; ``tasks`` is what the decode
    path feeds the fused kernel — both derived from the same combined
    metadata, computed once and cached.  ``asset`` is the exact stored
    asset the variant was derived from: consumers must pair the tasks
    with *its* word stream (a later ``put`` may replace the name).
    """

    capacity: int
    blob: bytes
    metadata: RecoilMetadata
    tasks: list[ThreadTask] = field(repr=False)
    #: admission-control weight: total walked symbols of ``tasks``
    #: (:func:`repro.parallel.costmodel.estimate_task_symbols`).
    cost_symbols: int
    asset: "StoredAsset" = field(repr=False, default=None)


@dataclass
class StoredAsset:
    """A master container plus everything serving needs pre-derived."""

    name: str
    blob: bytes
    parsed: ParsedContainer
    provider: AdaptiveModelProvider
    words: np.ndarray  # payload view over ``blob`` (zero-copy)
    head: bytes  # container bytes before the metadata section
    payload: bytes  # container bytes from the payload onward
    out_dtype: np.dtype

    @property
    def num_symbols(self) -> int:
        return self.parsed.num_symbols

    @property
    def lanes(self) -> int:
        return self.parsed.lanes

    @property
    def max_capacity(self) -> int:
        """Threads supported by the master metadata."""
        return self.parsed.metadata.num_threads

    def shrink(self, capacity: int) -> ShrunkVariant:
        """Compute one serving variant (uncached; see
        :meth:`AssetStore.shrunk`).

        The blob is spliced, never re-encoded: master head + combined
        metadata + identical payload (§3.3).
        """
        if capacity < 1:
            raise MetadataError(
                f"client capacity must be >= 1, got {capacity}"
            )
        md = self.parsed.metadata.combine(capacity)
        blob = self.head + serialize_metadata(md) + self.payload
        tasks = build_thread_tasks(
            md, self.parsed.num_words, self.parsed.final_states
        )
        cost = sum(estimate_task_symbols(t) for t in tasks)
        return ShrunkVariant(
            capacity=capacity,
            blob=blob,
            metadata=md,
            tasks=tasks,
            cost_symbols=cost,
            asset=self,
        )


class ShrinkCache:
    """Thread-safe LRU of :class:`ShrunkVariant` keyed by
    ``(asset_name, capacity)``."""

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ServeError(
                f"shrink cache needs >= 1 entry, got {max_entries}"
            )
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple[str, int], ShrunkVariant] = (
            OrderedDict()
        )
        self.evictions = 0

    def get(self, key: tuple[str, int]) -> ShrunkVariant | None:
        with self._lock:
            variant = self._entries.get(key)
            if variant is not None:
                self._entries.move_to_end(key)
            return variant

    def put(self, key: tuple[str, int], variant: ShrunkVariant) -> None:
        with self._lock:
            self._entries[key] = variant
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def invalidate(self, name: str) -> None:
        with self._lock:
            for key in [k for k in self._entries if k[0] == name]:
                del self._entries[key]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class AssetStore:
    """Named compressed assets, encoded once, served many times."""

    def __init__(
        self,
        shrink_cache_entries: int = 256,
        default_num_splits: int = 1024,
        default_quant_bits: int = 11,
        lanes: int = DEFAULT_LANES,
    ) -> None:
        self.cache = ShrinkCache(shrink_cache_entries)
        self.default_num_splits = default_num_splits
        self.default_quant_bits = default_quant_bits
        self.lanes = lanes
        self._lock = threading.Lock()
        self._assets: dict[str, StoredAsset] = {}

    # -- ingest --------------------------------------------------------

    def put(
        self,
        name: str,
        data: np.ndarray,
        num_splits: int | None = None,
        quant_bits: int | None = None,
        model: SymbolModel | None = None,
    ) -> StoredAsset:
        """Encode ``data`` once at maximum parallelism and store it."""
        from repro.core.api import recoil_compress

        faults.fire(faults.STORE_ENCODE)
        blob = recoil_compress(
            np.asarray(data),
            num_splits=(
                self.default_num_splits if num_splits is None else num_splits
            ),
            quant_bits=(
                self.default_quant_bits if quant_bits is None else quant_bits
            ),
            model=model,
            lanes=self.lanes,
        )
        return self.put_container(name, blob)

    def put_container(
        self,
        name: str,
        blob: bytes,
        provider: AdaptiveModelProvider | None = None,
    ) -> StoredAsset:
        """Store an already-encoded container under ``name``."""
        parsed = parse_container(blob, provider=provider)
        md_len = len(serialize_metadata(parsed.metadata))
        md_start = parsed.payload_offset - md_len
        out_dtype = parsed.provider.out_dtype
        asset = StoredAsset(
            name=name,
            blob=blob,
            parsed=parsed,
            provider=parsed.provider,
            words=parsed.words(blob),
            head=blob[:md_start],
            payload=blob[parsed.payload_offset :],
            out_dtype=out_dtype,
        )
        with self._lock:
            replacing = name in self._assets
            self._assets[name] = asset
        if replacing:
            self.cache.invalidate(name)
        return asset

    # -- lookup --------------------------------------------------------

    def get(self, name: str) -> StoredAsset:
        with self._lock:
            try:
                return self._assets[name]
            except KeyError:
                raise ServeError(f"unknown asset {name!r}") from None

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._assets)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._assets

    def __len__(self) -> int:
        with self._lock:
            return len(self._assets)

    # -- serving -------------------------------------------------------

    def shrunk(
        self, name: str, capacity: int
    ) -> tuple[ShrunkVariant, bool]:
        """The serving variant for ``(name, capacity)``.

        Returns ``(variant, cache_hit)``.  Capacities above the
        master's parallelism are clamped to it (combine is a no-op
        there), so all "big client" capacities share one cache entry.
        The returned variant pins the asset it was derived from
        (``variant.asset``) — decode against *that*, not a fresh
        ``get(name)``, or a concurrent ``put`` replacing the name can
        pair old tasks with a new word stream.
        """
        if capacity < 1:
            raise MetadataError(
                f"client capacity must be >= 1, got {capacity}"
            )
        while True:
            asset = self.get(name)
            clamped = min(capacity, asset.max_capacity)
            key = (name, clamped)
            variant = self.cache.get(key)
            if variant is not None and variant.asset is asset:
                return variant, True
            variant = asset.shrink(clamped)
            self.cache.put(key, variant)
            # A concurrent put() may have replaced the asset after our
            # get(): its invalidation can race with the line above, so
            # re-check and recompute rather than serve stale metadata.
            if self.get(name) is asset:
                return variant, False
            self.cache.invalidate(name)
