"""Asset store: encode once, persist durably, shrink per request.

The paper's serving story (§1, §3.3) is *encode once at the maximum
parallelism the server will ever support, then adapt per request by
dropping metadata*.  The store realizes both halves, tiered across
memory and disk (DESIGN.md §18):

- :meth:`AssetStore.put` encodes an asset exactly once (at
  ``num_splits`` parallelism) and keeps the parsed container alongside
  the raw bytes, so serving never re-parses;
- with a ``store_dir``, every ingested container is also persisted
  crash-safely (:class:`~repro.serve.disk.DiskStore`) — a restarted
  store recovers its assets bit-identically, quarantining anything
  that fails verification;
- a ``resident_bytes`` budget bounds the hot tier: least-recently-used
  assets drop their parsed in-memory form and hydrate back from disk
  on demand, bit-identically (only assets that persisted cleanly are
  evictable — an unpersisted asset is pinned resident);
- :meth:`AssetStore.shrunk` answers ``(asset, client_capacity)``
  requests from an LRU :class:`ShrinkCache` — a repeated shrink for a
  known client class costs one dict hit, and a miss costs only the
  metadata combine + splice (the payload never moves).

A cached :class:`ShrunkVariant` carries the servable container bytes
*and* the prebuilt decoder thread tasks for that capacity, so the
request batcher can go straight to the fused kernel.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro import faults, trace
from repro.core.container import ParsedContainer, parse_container
from repro.core.decoder import build_thread_tasks
from repro.core.metadata import RecoilMetadata
from repro.core.serialization import serialize_metadata
from repro.errors import MetadataError, ServeError
from repro.parallel.costmodel import estimate_task_symbols
from repro.parallel.simd import ThreadTask
from repro.rans.adaptive import AdaptiveModelProvider
from repro.rans.constants import DEFAULT_LANES
from repro.rans.model import SymbolModel
from repro.serve.disk import DiskStore
from repro.serve.protocol import asset_name_problem

#: consecutive persist failures before the store stops trying the
#: disk and degrades to memory-only (a full or dying disk fails every
#: write — re-arming per put would just multiply fsync latency).
PERSIST_FAILURE_LIMIT = 3


@dataclass(frozen=True)
class ShrunkVariant:
    """One (asset, capacity) serving variant.

    ``blob`` is what goes on the wire; ``tasks`` is what the decode
    path feeds the fused kernel — both derived from the same combined
    metadata, computed once and cached.  ``asset`` is the exact stored
    asset the variant was derived from: consumers must pair the tasks
    with *its* word stream (a later ``put`` may replace the name).
    """

    capacity: int
    blob: bytes
    metadata: RecoilMetadata
    tasks: list[ThreadTask] = field(repr=False)
    #: admission-control weight: total walked symbols of ``tasks``
    #: (:func:`repro.parallel.costmodel.estimate_task_symbols`).
    cost_symbols: int
    asset: "StoredAsset" = field(repr=False, default=None)


@dataclass
class StoredAsset:
    """A master container plus everything serving needs pre-derived."""

    name: str
    blob: bytes
    parsed: ParsedContainer
    provider: AdaptiveModelProvider
    words: np.ndarray  # payload view over ``blob`` (zero-copy)
    head: bytes  # container bytes before the metadata section
    payload: bytes  # container bytes from the payload onward
    out_dtype: np.dtype
    #: not evictable from the resident tier: the asset has no durable
    #: on-disk copy (out-of-band model provider, persist failure, or
    #: no disk tier at all), so dropping it would lose it.
    pinned: bool = False

    @property
    def num_symbols(self) -> int:
        return self.parsed.num_symbols

    @property
    def lanes(self) -> int:
        return self.parsed.lanes

    @property
    def max_capacity(self) -> int:
        """Threads supported by the master metadata."""
        return self.parsed.metadata.num_threads

    def shrink(self, capacity: int) -> ShrunkVariant:
        """Compute one serving variant (uncached; see
        :meth:`AssetStore.shrunk`).

        The blob is spliced, never re-encoded: master head + combined
        metadata + identical payload (§3.3).
        """
        if capacity < 1:
            raise MetadataError(
                f"client capacity must be >= 1, got {capacity}"
            )
        md = self.parsed.metadata.combine(capacity)
        blob = self.head + serialize_metadata(md) + self.payload
        tasks = build_thread_tasks(
            md, self.parsed.num_words, self.parsed.final_states
        )
        cost = sum(estimate_task_symbols(t) for t in tasks)
        return ShrunkVariant(
            capacity=capacity,
            blob=blob,
            metadata=md,
            tasks=tasks,
            cost_symbols=cost,
            asset=self,
        )


class ShrinkCache:
    """Thread-safe LRU of :class:`ShrunkVariant` keyed by
    ``(asset_name, capacity)``, bounded by entry count *and* total
    variant bytes.

    Variants vary by orders of magnitude (a 1-thread shrink of a huge
    master vs. a tiny asset), so an entry cap alone lets a handful of
    big variants occupy unbounded memory.  ``max_bytes`` bounds the
    sum of cached blob bytes; evictions are counted separately by
    cause (``evictions_capacity`` vs. ``evictions_bytes``), with
    ``evictions`` keeping the combined total.
    """

    def __init__(
        self, max_entries: int = 256, max_bytes: int | None = None
    ) -> None:
        if max_entries < 1:
            raise ServeError(
                f"shrink cache needs >= 1 entry, got {max_entries}"
            )
        if max_bytes is not None and max_bytes < 1:
            raise ServeError(
                f"shrink cache byte bound must be >= 1, got {max_bytes}"
            )
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple[str, int], ShrunkVariant] = (
            OrderedDict()
        )
        self.bytes = 0
        self.evictions = 0
        self.evictions_capacity = 0
        self.evictions_bytes = 0

    @staticmethod
    def _cost(variant) -> int:
        # Duck-typed: tests cache sentinel values with no .blob; those
        # cost 0 bytes and are bounded by the entry cap alone.
        blob = getattr(variant, "blob", None)
        return len(blob) if blob is not None else 0

    def get(self, key: tuple[str, int]) -> ShrunkVariant | None:
        with self._lock:
            variant = self._entries.get(key)
            if variant is not None:
                self._entries.move_to_end(key)
            return variant

    def put(self, key: tuple[str, int], variant: ShrunkVariant) -> None:
        with self._lock:
            old = self._entries.get(key)
            if old is not None:
                self.bytes -= self._cost(old)
            self._entries[key] = variant
            self.bytes += self._cost(variant)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                _, evicted = self._entries.popitem(last=False)
                self.bytes -= self._cost(evicted)
                self.evictions += 1
                self.evictions_capacity += 1
            while (
                self.max_bytes is not None
                and self.bytes > self.max_bytes
                and self._entries
            ):
                _, evicted = self._entries.popitem(last=False)
                self.bytes -= self._cost(evicted)
                self.evictions += 1
                self.evictions_bytes += 1

    def invalidate(self, name: str) -> None:
        with self._lock:
            for key in [k for k in self._entries if k[0] == name]:
                self.bytes -= self._cost(self._entries.pop(key))

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self.bytes,
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
                "evictions": {
                    "total": self.evictions,
                    "capacity": self.evictions_capacity,
                    "bytes": self.evictions_bytes,
                },
            }


class AssetStore:
    """Named compressed assets, encoded once, served many times.

    Without ``store_dir`` this is the pure in-memory store of old.
    With it, ingest persists crash-safely to a
    :class:`~repro.serve.disk.DiskStore`, startup recovers whatever
    verifies there, and ``resident_bytes`` bounds the hot tier (LRU
    eviction to disk, hydrate-on-demand).  A store directory that
    cannot be opened, or :data:`PERSIST_FAILURE_LIMIT` consecutive
    persist failures (disk full mid-run), degrade the store to
    memory-only: serving continues, ``memory_only``/counters say so,
    and :meth:`repro.serve.service.RecoilService.metrics_snapshot`
    surfaces it under ``"resilience"``.
    """

    def __init__(
        self,
        shrink_cache_entries: int = 256,
        default_num_splits: int = 1024,
        default_quant_bits: int = 11,
        lanes: int = DEFAULT_LANES,
        shrink_cache_bytes: int | None = None,
        store_dir: str | None = None,
        resident_bytes: int | None = None,
    ) -> None:
        if resident_bytes is not None and resident_bytes < 1:
            raise ServeError(
                f"resident_bytes must be >= 1, got {resident_bytes}"
            )
        self.cache = ShrinkCache(
            shrink_cache_entries, max_bytes=shrink_cache_bytes
        )
        self.default_num_splits = default_num_splits
        self.default_quant_bits = default_quant_bits
        self.lanes = lanes
        self.resident_budget_bytes = resident_bytes
        self._lock = threading.Lock()
        self._assets: OrderedDict[str, StoredAsset] = OrderedDict()
        self._resident_blob_bytes = 0
        # -- tier counters ---------------------------------------------
        self.resident_hits = 0
        self.hydrations = 0
        self.evictions = 0
        self.persist_failures = 0
        self._consecutive_persist_failures = 0
        self.store_degradations = 0
        self.memory_only = False
        self.degradation_reason: str | None = None
        self.disk: DiskStore | None = None
        self.recovery = None
        if store_dir is not None:
            try:
                self.disk = DiskStore(store_dir)
            except OSError as exc:
                self._degrade_to_memory(f"store dir unusable: {exc}")
            else:
                self.recovery = self.disk.last_recovery

    # -- degradation ---------------------------------------------------

    def _degrade_to_memory(self, reason: str) -> None:
        if not self.memory_only:
            self.memory_only = True
            self.store_degradations += 1
            self.degradation_reason = reason

    # -- ingest --------------------------------------------------------

    def put(
        self,
        name: str,
        data: np.ndarray,
        num_splits: int | None = None,
        quant_bits: int | None = None,
        model: SymbolModel | None = None,
    ) -> StoredAsset:
        """Encode ``data`` once at maximum parallelism and store it."""
        from repro.core.api import recoil_compress

        self._check_name(name)
        faults.fire(faults.STORE_ENCODE)
        blob = recoil_compress(
            np.asarray(data),
            num_splits=(
                self.default_num_splits if num_splits is None else num_splits
            ),
            quant_bits=(
                self.default_quant_bits if quant_bits is None else quant_bits
            ),
            model=model,
            lanes=self.lanes,
        )
        return self.put_container(name, blob)

    @staticmethod
    def _check_name(name: str) -> None:
        problem = asset_name_problem(name)
        if problem is not None:
            raise ServeError(problem)

    def put_container(
        self,
        name: str,
        blob: bytes,
        provider: AdaptiveModelProvider | None = None,
    ) -> StoredAsset:
        """Store an already-encoded container under ``name``.

        With a disk tier, the container is persisted durably before
        the asset is published (a ``put`` that returned is crash-safe
        unless the store reports a persist failure).  Assets whose
        model travels out of band (``provider=``) cannot rehydrate
        from bytes alone and stay memory-pinned.
        """
        self._check_name(name)
        asset = self._parse_asset(name, blob, provider)
        asset.pinned = provider is not None
        if self.disk is not None and provider is None:
            if not self._persist(name, blob):
                asset.pinned = True
        else:
            asset.pinned = True
        self._install(asset)
        return asset

    def _persist(self, name: str, blob: bytes) -> bool:
        """Durable write to the disk tier; ``False`` (and counters) on
        failure instead of failing the ingest."""
        if self.memory_only:
            return False
        t0 = time.perf_counter()
        try:
            self.disk.put(name, blob)
        except OSError as exc:
            with self._lock:
                self.persist_failures += 1
                self._consecutive_persist_failures += 1
                exhausted = (
                    self._consecutive_persist_failures
                    >= PERSIST_FAILURE_LIMIT
                )
            if exhausted:
                self._degrade_to_memory(
                    f"{PERSIST_FAILURE_LIMIT} consecutive persist "
                    f"failures (last: {exc})"
                )
            return False
        with self._lock:
            self._consecutive_persist_failures = 0
        if trace.enabled():
            trace.record_span(
                "store.persist",
                t0,
                time.perf_counter(),
                cat="store",
                args={"asset": name, "bytes": len(blob)},
            )
        return True

    def _parse_asset(
        self,
        name: str,
        blob: bytes,
        provider: AdaptiveModelProvider | None,
    ) -> StoredAsset:
        parsed = parse_container(blob, provider=provider)
        md_len = len(serialize_metadata(parsed.metadata))
        md_start = parsed.payload_offset - md_len
        return StoredAsset(
            name=name,
            blob=blob,
            parsed=parsed,
            provider=parsed.provider,
            words=parsed.words(blob),
            head=blob[:md_start],
            payload=blob[parsed.payload_offset :],
            out_dtype=parsed.provider.out_dtype,
        )

    def _install(self, asset: StoredAsset) -> None:
        """Publish an asset into the resident tier (MRU position) and
        evict over-budget LRU entries that have a durable disk copy."""
        name = asset.name
        with self._lock:
            old = self._assets.pop(name, None)
            if old is not None:
                self._resident_blob_bytes -= len(old.blob)
            self._assets[name] = asset
            self._resident_blob_bytes += len(asset.blob)
            evicted = self._evict_over_budget_locked(keep=name)
        if old is not None:
            self.cache.invalidate(name)
        for evicted_name in evicted:
            self.cache.invalidate(evicted_name)

    def _evict_over_budget_locked(self, keep: str) -> list[str]:
        """Drop LRU resident assets while over the byte budget.

        Pinned assets (no durable copy) and ``keep`` (the entry being
        published/hydrated — evicting it would livelock ``shrunk``)
        never evict.  Caller holds the lock; returns evicted names so
        the caller can invalidate their cached shrinks outside it.
        """
        budget = self.resident_budget_bytes
        evicted: list[str] = []
        if budget is None:
            return evicted
        while self._resident_blob_bytes > budget:
            victim = None
            for candidate, asset in self._assets.items():
                if candidate == keep or asset.pinned:
                    continue
                victim = candidate
                break
            if victim is None:
                break
            asset = self._assets.pop(victim)
            self._resident_blob_bytes -= len(asset.blob)
            self.evictions += 1
            evicted.append(victim)
        return evicted

    # -- lookup --------------------------------------------------------

    def get(self, name: str) -> StoredAsset:
        """The resident asset for ``name``, hydrating it from the disk
        tier (bit-identically — the record CRC proves it) if it was
        evicted or belongs to a recovered cold start.

        :raises ServeError: unknown asset.
        :raises IntegrityError: the on-disk record failed verification
            (quarantined; the asset is gone until re-ingested).
        """
        with self._lock:
            asset = self._assets.get(name)
            if asset is not None:
                self._assets.move_to_end(name)
                self.resident_hits += 1
                return asset
        if self.disk is None or name not in self.disk:
            raise ServeError(f"unknown asset {name!r}")
        return self._hydrate(name)

    def _hydrate(self, name: str) -> StoredAsset:
        t0 = time.perf_counter()
        blob = self.disk.read(name)  # IntegrityError quarantines
        asset = self._parse_asset(name, blob, provider=None)
        with self._lock:
            raced = self._assets.get(name)
            if raced is not None:
                # A concurrent hydrate/put won the publish; use theirs.
                self._assets.move_to_end(name)
                return raced
            self._assets[name] = asset
            self._resident_blob_bytes += len(asset.blob)
            self.hydrations += 1
            evicted = self._evict_over_budget_locked(keep=name)
        for evicted_name in evicted:
            self.cache.invalidate(evicted_name)
        if trace.enabled():
            trace.record_span(
                "store.hydrate",
                t0,
                time.perf_counter(),
                cat="store",
                args={"asset": name, "bytes": len(blob)},
            )
        return asset

    def names(self) -> list[str]:
        with self._lock:
            resident = set(self._assets)
        if self.disk is not None:
            resident.update(self.disk.names())
        return sorted(resident)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            if name in self._assets:
                return True
        return self.disk is not None and name in self.disk

    def __len__(self) -> int:
        return len(self.names())

    # -- metrics -------------------------------------------------------

    def metrics(self) -> dict:
        """JSON-able tier statistics for ``metrics_snapshot()["store"]``."""
        with self._lock:
            resident_assets = len(self._assets)
            resident_bytes = self._resident_blob_bytes
            hits, hydrations = self.resident_hits, self.hydrations
            evictions = self.evictions
            persist_failures = self.persist_failures
        lookups = hits + hydrations
        disk = self.disk
        out = {
            "assets": len(self),
            "resident_assets": resident_assets,
            "resident_bytes": resident_bytes,
            "resident_budget_bytes": self.resident_budget_bytes,
            "resident_hits": hits,
            "hydrations": hydrations,
            "evictions": evictions,
            "tier_hit_rate": (hits / lookups if lookups else 1.0),
            "persist_failures": persist_failures,
            "memory_only": self.memory_only,
            "degradation_reason": self.degradation_reason,
            "disk": disk.counters() if disk is not None else None,
            "recovery": (
                self.recovery.to_dict() if self.recovery is not None else None
            ),
            "shrink_cache": self.cache.snapshot(),
        }
        return out

    # -- serving -------------------------------------------------------

    def shrunk(
        self, name: str, capacity: int
    ) -> tuple[ShrunkVariant, bool]:
        """The serving variant for ``(name, capacity)``.

        Returns ``(variant, cache_hit)``.  Capacities above the
        master's parallelism are clamped to it (combine is a no-op
        there), so all "big client" capacities share one cache entry.
        The returned variant pins the asset it was derived from
        (``variant.asset``) — decode against *that*, not a fresh
        ``get(name)``, or a concurrent ``put`` replacing the name can
        pair old tasks with a new word stream.
        """
        if capacity < 1:
            raise MetadataError(
                f"client capacity must be >= 1, got {capacity}"
            )
        while True:
            asset = self.get(name)
            clamped = min(capacity, asset.max_capacity)
            key = (name, clamped)
            variant = self.cache.get(key)
            if variant is not None and variant.asset is asset:
                return variant, True
            variant = asset.shrink(clamped)
            self.cache.put(key, variant)
            # A concurrent put() may have replaced the asset after our
            # get(): its invalidation can race with the line above, so
            # re-check and recompute rather than serve stale metadata.
            if self.get(name) is asset:
                return variant, False
            self.cache.invalidate(name)
