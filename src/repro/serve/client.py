"""Blocking client for the network serving front-end.

:class:`RecoilClient` speaks the :mod:`repro.serve.protocol` wire
format against a :class:`~repro.serve.net.NetServer` over one TCP
connection, reconnecting transparently when the server (or a network
fault) closed it between requests.

Shed handling is the client's half of the overload contract
(DESIGN.md §16): a ``RETRY_AFTER`` response — sent when the server is
over its connection cap or its admission control rejected the request
— is retried with **capped exponential backoff plus jitter**, never
below the server's suggested delay.  Jitter is the load-shedding
essential: without it every shed client sleeps the same delay and the
whole rejected cohort returns in one synchronized thundering herd,
re-creating the overload that shed them.  After ``max_retries``
attempts the client gives up and raises the server's
:class:`~repro.errors.AdmissionError` to the caller.

Responses are verified end to end: streamed payloads must match the
declared total length *and* the CRC-32 trailer, array responses must
carry a plausible numeric dtype whose itemsize divides the payload —
anything else raises :class:`~repro.errors.ProtocolError` rather than
handing corrupt bytes to the caller.
"""

from __future__ import annotations

import random
import socket
import time

import numpy as np

from repro.errors import AdmissionError, ProtocolError, ServeError
from repro.serve import protocol


class RecoilClient:
    """One connection to a Recoil network server.

    :param host: server host.
    :param port: server port.
    :param timeout_s: per-request response deadline (client side).
    :param connect_timeout_s: TCP connect deadline.
    :param max_retries: additional attempts after a ``RETRY_AFTER``.
    :param backoff_base_s: first backoff delay; doubles per attempt.
    :param backoff_cap_s: ceiling on one backoff delay.
    :param seed: seeds the jitter RNG (determinism in tests).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout_s: float = 30.0,
        connect_timeout_s: float = 5.0,
        max_retries: int = 6,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        seed: int | None = None,
        max_frame_bytes: int = protocol.MAX_FRAME_BYTES,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.connect_timeout_s = connect_timeout_s
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.max_frame_bytes = max_frame_bytes
        self._rng = random.Random(seed)
        self._sock: socket.socket | None = None
        #: RETRY_AFTER frames honored (visible to the load generator).
        self.retries = 0

    # -- connection management -----------------------------------------

    def _connect(self) -> socket.socket:
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout_s
        )
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def _ensure_connected(self) -> socket.socket:
        if self._sock is None:
            self._sock = self._connect()
        return self._sock

    def _drop_connection(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        self._drop_connection()

    def __enter__(self) -> "RecoilClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- raw roundtrip -------------------------------------------------

    def _recv_exact(self, sock: socket.socket, n: int, deadline: float):
        buf = bytearray()
        while len(buf) < n:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"no complete response from {self.host}:{self.port} "
                    f"within {self.timeout_s}s"
                )
            sock.settimeout(remaining)
            chunk = sock.recv(min(65536, n - len(buf)))
            if not chunk:
                raise ConnectionError("server closed the connection")
            buf += chunk
        return bytes(buf)

    def _read_frame(
        self, sock: socket.socket, deadline: float
    ) -> tuple[int, bytes]:
        header = self._recv_exact(sock, protocol.HEADER_BYTES, deadline)
        ftype, length = protocol.parse_header(
            header, protocol.RESPONSE_TYPES, self.max_frame_bytes
        )
        body = self._recv_exact(sock, length, deadline) if length else b""
        return ftype, body

    def _read_stream(
        self, sock: socket.socket, first_body: bytes, deadline: float
    ) -> tuple[int, str, int, bytes]:
        kind, dtype, total, count = protocol.parse_stream_begin(first_body)
        parts: list[bytes] = []
        received = 0
        while True:
            ftype, body = self._read_frame(sock, deadline)
            if ftype == protocol.ST_STREAM_CHUNK:
                received += len(body)
                if received > total:
                    raise ProtocolError(
                        f"stream overran its declared {total:,} bytes"
                    )
                parts.append(body)
                continue
            if ftype == protocol.ST_STREAM_END:
                break
            raise ProtocolError(
                f"unexpected frame type 0x{ftype:02x} inside a stream"
            )
        payload = b"".join(parts)
        if len(payload) != total:
            raise ProtocolError(
                f"stream ended after {len(payload):,} of {total:,} "
                "declared bytes"
            )
        if protocol.crc32(payload) != protocol.parse_stream_end(body):
            raise ProtocolError("stream payload failed its CRC-32 check")
        return kind, dtype, count, payload

    def _attempt(self, request: bytes):
        """One send/receive attempt.  Returns ``("ok", body)``,
        ``("stream", kind, dtype, count, payload)`` or
        ``("retry", delay_s)``."""
        sock = self._ensure_connected()
        deadline = time.monotonic() + self.timeout_s
        sock.settimeout(self.timeout_s)
        sock.sendall(request)
        ftype, body = self._read_frame(sock, deadline)
        if ftype == protocol.ST_OK:
            return ("ok", body)
        if ftype == protocol.ST_STREAM_BEGIN:
            return ("stream", *self._read_stream(sock, body, deadline))
        if ftype == protocol.ST_ERROR:
            raise protocol.parse_error(body)
        if ftype == protocol.ST_RETRY_AFTER:
            return ("retry", protocol.parse_retry_after(body))
        raise ProtocolError(
            f"unexpected response frame type 0x{ftype:02x}"
        )

    def _roundtrip(self, request: bytes):
        """Send with shed-retry: capped exponential backoff + jitter,
        honoring the server's suggested delay as a floor."""
        last_delay = 0.0
        for attempt in range(self.max_retries + 1):
            try:
                result = self._attempt(request)
            except ProtocolError:
                self._drop_connection()
                raise
            except TimeoutError:
                self._drop_connection()
                raise
            except OSError as exc:
                self._drop_connection()
                raise ConnectionError(
                    f"connection to {self.host}:{self.port} failed: {exc}"
                ) from exc
            if result[0] != "retry":
                return result
            # The server shed this request (or the whole connection —
            # it may have closed after the frame; reconnect lazily).
            self._drop_connection()
            self.retries += 1
            last_delay = result[1]
            backoff = min(
                self.backoff_cap_s, self.backoff_base_s * (2.0**attempt)
            )
            jittered = backoff * (0.5 + self._rng.random() / 2.0)
            time.sleep(max(jittered, last_delay))
        raise AdmissionError(
            f"server at {self.host}:{self.port} still shedding after "
            f"{self.max_retries + 1} attempts "
            f"(last suggested delay {last_delay:.3f}s)"
        )

    # -- operations ----------------------------------------------------

    def ping(self, payload: bytes = b"") -> bytes:
        """Echo roundtrip; returns the echoed payload."""
        kind, body = self._roundtrip(
            protocol.encode_frame(protocol.OP_PING, payload)
        )
        if kind != "ok":
            raise ProtocolError(f"ping answered with a {kind} response")
        if body != payload:
            raise ProtocolError("ping echo did not match the payload")
        return body

    def serve(self, name: str, capacity: int) -> bytes:
        """Shrunk container bytes for ``(name, capacity)``."""
        result = self._roundtrip(
            protocol.encode_serve_request(name, capacity)
        )
        if result[0] != "stream":
            raise ProtocolError(
                f"serve answered with a {result[0]} response"
            )
        _, kind, _, count, payload = result
        if kind != protocol.KIND_BYTES:
            raise ProtocolError(f"serve stream has kind {kind}, not bytes")
        if count != len(payload):
            raise ProtocolError(
                f"serve stream count {count} != payload size {len(payload)}"
            )
        return payload

    def decompress(
        self, name: str, capacity: int, timeout: float | None = None
    ) -> np.ndarray:
        """Decoded symbols for ``(name, capacity)`` as a numpy array."""
        result = self._roundtrip(
            protocol.encode_decode_request(name, capacity, timeout)
        )
        if result[0] != "stream":
            raise ProtocolError(
                f"decode answered with a {result[0]} response"
            )
        _, kind, dtype_str, count, payload = result
        if kind != protocol.KIND_ARRAY:
            raise ProtocolError(
                f"decode stream has kind {kind}, not array"
            )
        try:
            dtype = np.dtype(dtype_str)
        except TypeError:
            raise ProtocolError(
                f"decode stream carries invalid dtype {dtype_str!r}"
            ) from None
        if dtype.kind not in "uif" or dtype.itemsize == 0:
            raise ProtocolError(
                f"decode stream carries non-numeric dtype {dtype_str!r}"
            )
        if count * dtype.itemsize != len(payload):
            raise ProtocolError(
                f"decode stream declares {count} x {dtype.itemsize}B items "
                f"but carries {len(payload)} bytes"
            )
        return np.frombuffer(payload, dtype=dtype)

    def put_container(self, name: str, blob: bytes) -> int:
        """Store a container blob; returns its symbol count."""
        kind, body = self._roundtrip(
            protocol.encode_put_request(name, blob)
        )
        if kind != "ok":
            raise ProtocolError(f"put answered with a {kind} response")
        if len(body) != 8:
            raise ProtocolError(
                f"put response body has {len(body)} bytes, expected 8"
            )
        return int.from_bytes(body, "big")

    def trace(self, clear: bool = False) -> dict:
        """The server's span ring as a Chrome trace-event document.

        ``clear`` drains the server's ring; otherwise it keeps
        collecting.  The returned dict is Perfetto-loadable
        (``json.dump`` it to a file) and passes
        :func:`repro.trace.validate_chrome_trace`.
        """
        import json

        result = self._roundtrip(protocol.encode_trace_request(clear))
        if result[0] != "stream":
            raise ProtocolError(
                f"trace answered with a {result[0]} response"
            )
        _, kind, _, count, payload = result
        if kind != protocol.KIND_BYTES:
            raise ProtocolError(f"trace stream has kind {kind}, not bytes")
        if count != len(payload):
            raise ProtocolError(
                f"trace stream count {count} != payload size {len(payload)}"
            )
        try:
            doc = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ProtocolError(
                f"trace response is not valid JSON: {exc}"
            ) from None
        if not isinstance(doc, dict):
            raise ProtocolError("trace response is not a JSON object")
        return doc

    def metrics(self) -> dict:
        """The server's unified metrics snapshot."""
        import json

        kind, body = self._roundtrip(
            protocol.encode_frame(protocol.OP_METRICS)
        )
        if kind != "ok":
            raise ProtocolError(f"metrics answered with a {kind} response")
        try:
            snap = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ProtocolError(
                f"metrics response is not valid JSON: {exc}"
            ) from None
        if not isinstance(snap, dict):
            raise ProtocolError("metrics response is not a JSON object")
        return snap
