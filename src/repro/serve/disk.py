"""Crash-safe on-disk container store (DESIGN.md §18).

The cold tier of the tiered :class:`~repro.serve.store.AssetStore`:
every ingested container is persisted as one self-verifying record
file, written with the classic durable-write protocol so a crash —
including SIGKILL and power loss — at *any* byte leaves the store in
one of exactly two states per asset: the previous content (or
absence), or the complete new record.  Never a torn file under the
asset's final name.

Write protocol (per record, and for the manifest):

1. write the record to ``tmp/<name>.<pid>.<seq>.part`` in bounded
   chunks (each chunk is a :data:`repro.faults.DISK_WRITE` fault
   point, so chaos tests can tear the write at any offset);
2. ``fsync`` the temp file (:data:`repro.faults.DISK_FSYNC`);
3. atomically ``os.replace`` it to ``assets/<name>.rca`` — same
   filesystem, so the rename is atomic;
4. ``fsync`` the ``assets/`` directory, making the rename itself
   durable.

Record format (all integers big-endian)::

    | magic "RCA1" (4B) | name_len u16 | name utf-8 | blob_len u64 |
    | container blob | CRC-32 over everything before the footer (4B) |

The CRC covers the header *and* the blob, so a flipped bit anywhere in
the record — including in the length fields — fails verification.

Recovery (:meth:`DiskStore.recover`, run on open): leftover ``tmp/``
files are partial by construction and move to ``quarantine/``; every
``assets/*.rca`` record is read fully and verified (magic, lengths,
name/filename agreement, CRC) — verified records enter the index, bad
ones move to ``quarantine/`` with the reason appended to
``quarantine/quarantine.log``; the manifest is then rewritten from the
verified set.  Quarantined files are preserved, never deleted: an
operator can inspect them, and restoring one is ``mv`` back plus a
``recoil store scrub``.

The manifest (``manifest.json``) is advisory — per-record verification
is the source of truth.  It exists so a scan can report assets whose
files *vanished* (a record the manifest promises but the directory
lacks), which checksum-scanning alone cannot distinguish from "never
ingested".

:class:`DiskStore` raises :class:`~repro.errors.IntegrityError` when a
read fails verification (the record is quarantined first — a caller
can never observe bytes that failed their CRC) and plain ``OSError``
for transient I/O failures (nothing is quarantined: an EIO is not
evidence of rot).
"""

from __future__ import annotations

import json
import os
import struct
import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro import faults
from repro.errors import IntegrityError, ServeError
from repro.serve.protocol import asset_name_problem

#: record magic: identifies a Recoil container asset record.
RECORD_MAGIC = b"RCA1"
_HEAD = struct.Struct(">4sH")  # magic, name_len
_BLOB_LEN = struct.Struct(">Q")
_FOOTER = struct.Struct(">I")  # CRC-32
#: suffix of a complete record file under ``assets/``.
RECORD_SUFFIX = ".rca"
#: chunk size of the durable write loop (each chunk is a
#: :data:`repro.faults.DISK_WRITE` fault point).
WRITE_CHUNK_BYTES = 256 * 1024
#: manifest schema version.
MANIFEST_VERSION = 1


@dataclass
class RecoveryReport:
    """What one recovery scan found (``DiskStore.last_recovery``)."""

    #: asset names whose records verified and entered the index.
    recovered: list[str] = field(default_factory=list)
    #: ``{"file": ..., "reason": ...}`` per quarantined file.
    quarantined: list[dict] = field(default_factory=list)
    #: manifest entries whose record file is gone entirely.
    missing: list[str] = field(default_factory=list)
    #: the manifest was absent/corrupt and was rebuilt from records.
    manifest_rebuilt: bool = False

    def to_dict(self) -> dict:
        return {
            "recovered": sorted(self.recovered),
            "quarantined": list(self.quarantined),
            "missing": sorted(self.missing),
            "manifest_rebuilt": self.manifest_rebuilt,
        }


def encode_record(name: str, blob: bytes) -> bytes:
    """Serialize one self-verifying asset record."""
    raw = name.encode("utf-8")
    body = _HEAD.pack(RECORD_MAGIC, len(raw)) + raw
    body += _BLOB_LEN.pack(len(blob)) + blob
    return body + _FOOTER.pack(zlib.crc32(body))


def decode_record(data: bytes, what: str) -> tuple[str, bytes]:
    """Parse + verify one record; ``(name, blob)`` or
    :class:`IntegrityError` naming what failed."""
    head_end = _HEAD.size
    if len(data) < head_end + _BLOB_LEN.size + _FOOTER.size:
        raise IntegrityError(
            f"{what}: truncated record ({len(data)} bytes)"
        )
    magic, name_len = _HEAD.unpack_from(data)
    if magic != RECORD_MAGIC:
        raise IntegrityError(
            f"{what}: bad record magic {magic!r}"
        )
    name_end = head_end + name_len
    blob_start = name_end + _BLOB_LEN.size
    if blob_start + _FOOTER.size > len(data):
        raise IntegrityError(f"{what}: truncated record header")
    (blob_len,) = _BLOB_LEN.unpack_from(data, name_end)
    footer_start = blob_start + blob_len
    if footer_start + _FOOTER.size != len(data):
        raise IntegrityError(
            f"{what}: record length mismatch (declared {blob_len} "
            f"blob bytes in a {len(data)}-byte file)"
        )
    (stored_crc,) = _FOOTER.unpack_from(data, footer_start)
    if zlib.crc32(data[:footer_start]) != stored_crc:
        raise IntegrityError(f"{what}: CRC-32 mismatch")
    try:
        name = data[head_end:name_end].decode("utf-8")
    except UnicodeDecodeError:
        raise IntegrityError(f"{what}: undecodable record name") from None
    if asset_name_problem(name) is not None:
        raise IntegrityError(f"{what}: invalid record name {name!r}")
    return name, bytes(data[blob_start:footer_start])


def _fsync_dir(path: Path) -> None:
    faults.fire(faults.DISK_FSYNC)
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class DiskStore:
    """Crash-safe durable record store under one root directory.

    Opening a store runs :meth:`recover` (unless ``recover=False``):
    the directory is scanned, every record verified, partial/corrupt
    files quarantined, and the manifest rewritten — so a just-opened
    store only ever serves bytes that passed their CRC.

    Thread-safe: one lock serializes puts, quarantines, and manifest
    rewrites; reads only take it for index lookups.
    """

    def __init__(self, root: str | Path, recover: bool = True) -> None:
        self.root = Path(root)
        self.assets_dir = self.root / "assets"
        self.tmp_dir = self.root / "tmp"
        self.quarantine_dir = self.root / "quarantine"
        for d in (self.root, self.assets_dir, self.tmp_dir,
                  self.quarantine_dir):
            d.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._seq = 0
        #: verified records: name -> {"bytes": blob_len, "crc32": crc}.
        self._index: dict[str, dict] = {}
        # -- counters (surfaced via AssetStore.metrics()) --------------
        self.writes = 0
        self.reads = 0
        self.quarantines = 0
        self.verify_failures = 0
        self.last_recovery: RecoveryReport | None = None
        if recover:
            self.recover()

    # -- paths ---------------------------------------------------------

    def path_for(self, name: str) -> Path:
        problem = asset_name_problem(name)
        if problem is not None:
            raise ServeError(problem)
        return self.assets_dir / (name + RECORD_SUFFIX)

    def _tmp_path(self, label: str) -> Path:
        with self._lock:
            self._seq += 1
            seq = self._seq
        return self.tmp_dir / f"{label}.{os.getpid()}.{seq}.part"

    # -- durable writes ------------------------------------------------

    def _durable_write(self, data: bytes, label: str, final: Path) -> None:
        """temp file + fsync + atomic rename + directory fsync."""
        tmp = self._tmp_path(label)
        try:
            with open(tmp, "wb") as fh:
                view = memoryview(data)
                for off in range(0, max(len(view), 1), WRITE_CHUNK_BYTES):
                    faults.fire(faults.DISK_WRITE)
                    fh.write(view[off : off + WRITE_CHUNK_BYTES])
                fh.flush()
                faults.fire(faults.DISK_FSYNC)
                os.fsync(fh.fileno())
            os.replace(tmp, final)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        _fsync_dir(final.parent)

    def put(self, name: str, blob: bytes) -> None:
        """Persist ``blob`` durably under ``name`` (replacing any
        previous record), then rewrite the manifest.

        :raises ServeError: invalid asset name.
        :raises OSError: the write/fsync/rename failed — the previous
            record (if any) is intact, no partial file remains under
            the asset's final name, and the caller may retry or
            degrade to memory-only.
        """
        final = self.path_for(name)
        record = encode_record(name, blob)
        self._durable_write(record, name, final)
        with self._lock:
            self._index[name] = {
                "bytes": len(blob),
                "crc32": zlib.crc32(record[: -_FOOTER.size]),
            }
            self.writes += 1
        self._write_manifest()

    # -- reads ---------------------------------------------------------

    def read(self, name: str) -> bytes:
        """The verified container blob for ``name``.

        :raises ServeError: unknown asset.
        :raises IntegrityError: the record failed verification — it
            has been quarantined and dropped from the index before
            this raises, so a failed read can never be served and a
            retry reports the asset as unknown rather than re-serving
            rot.
        :raises OSError: transient read failure (nothing quarantined).
        """
        with self._lock:
            if name not in self._index:
                raise ServeError(f"unknown asset {name!r}")
        path = self.path_for(name)
        faults.fire(faults.DISK_READ)
        data = path.read_bytes()
        if faults.triggered(faults.DISK_CORRUPT, key=name):
            # Read-side bit rot: flip one bit mid-record.  The CRC
            # check below MUST catch it.
            flipped = bytearray(data)
            flipped[len(flipped) // 2] ^= 0x01
            data = bytes(flipped)
        try:
            record_name, blob = decode_record(data, str(path))
            if record_name != name:
                raise IntegrityError(
                    f"{path}: record names {record_name!r}, "
                    f"expected {name!r}"
                )
        except IntegrityError as exc:
            with self._lock:
                self.verify_failures += 1
            self._quarantine(path, str(exc))
            with self._lock:
                self._index.pop(name, None)
            self._write_manifest(best_effort=True)
            raise
        with self._lock:
            self.reads += 1
        return blob

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._index)

    def entries(self) -> dict[str, dict]:
        """Index snapshot ``{name: {"bytes", "crc32"}}`` (no I/O)."""
        with self._lock:
            return {n: dict(e) for n, e in sorted(self._index.items())}

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._index

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    def stat(self, name: str) -> dict:
        """Index entry + on-disk size + a fresh verification verdict."""
        with self._lock:
            entry = self._index.get(name)
        if entry is None:
            raise ServeError(f"unknown asset {name!r}")
        path = self.path_for(name)
        out = {
            "name": name,
            "file": str(path),
            "blob_bytes": entry["bytes"],
            "crc32": entry["crc32"],
            "record_bytes": path.stat().st_size,
            "verified": True,
        }
        try:
            self.read(name)
        except IntegrityError as exc:
            out["verified"] = False
            out["error"] = str(exc)
        return out

    # -- quarantine ----------------------------------------------------

    def _quarantine(self, path: Path, reason: str) -> dict:
        """Move a file out of service into ``quarantine/`` (never
        delete), log the reason, count it."""
        with self._lock:
            self._seq += 1
            dest = self.quarantine_dir / f"{path.name}.{self._seq}"
            self.quarantines += 1
        try:
            os.replace(path, dest)
        except OSError:
            # The file vanished (or the move failed): best effort —
            # the index drop is what takes it out of service.
            pass
        try:
            with open(self.quarantine_dir / "quarantine.log", "a",
                      encoding="utf-8") as fh:
                fh.write(f"{time.time():.3f}\t{dest.name}\t{reason}\n")
        except OSError:
            pass
        return {"file": str(dest), "reason": reason}

    # -- manifest ------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.root / "manifest.json"

    def _write_manifest(self, best_effort: bool = False) -> None:
        with self._lock:
            doc = {
                "version": MANIFEST_VERSION,
                "assets": {
                    name: dict(entry)
                    for name, entry in sorted(self._index.items())
                },
            }
        data = json.dumps(doc, indent=1).encode("utf-8")
        try:
            self._durable_write(data, "manifest", self.manifest_path)
        except OSError:
            if not best_effort:
                raise

    def _load_manifest(self, report: RecoveryReport) -> dict:
        """Manifest asset map, or ``{}`` (quarantining a corrupt
        manifest and flagging the rebuild)."""
        path = self.manifest_path
        if not path.exists():
            report.manifest_rebuilt = True
            return {}
        try:
            doc = json.loads(path.read_bytes())
            assets = doc["assets"]
            if doc["version"] != MANIFEST_VERSION or not isinstance(
                assets, dict
            ):
                raise ValueError("bad manifest shape")
            return assets
        except (ValueError, KeyError, TypeError, OSError) as exc:
            report.quarantined.append(
                self._quarantine(path, f"unreadable manifest: {exc}")
            )
            report.manifest_rebuilt = True
            return {}

    # -- recovery / scrub ----------------------------------------------

    def recover(self) -> RecoveryReport:
        """Scan the store, verify every record, quarantine the rest.

        Never raises for a bad *record* — recovery's whole job is to
        keep serving the survivors.  (A broken store *directory*
        still raises ``OSError``: there is nothing to recover into.)
        """
        report = RecoveryReport()
        # Leftover temp files are partial writes by construction.
        for part in sorted(self.tmp_dir.iterdir()):
            report.quarantined.append(
                self._quarantine(part, "partial write (crashed put)")
            )
        manifest = self._load_manifest(report)
        index: dict[str, dict] = {}
        quarantined_names: set[str] = set()
        for path in sorted(self.assets_dir.iterdir()):
            try:
                faults.fire(faults.DISK_READ)
                data = path.read_bytes()
                name, blob = decode_record(data, str(path))
                if path.name != name + RECORD_SUFFIX:
                    raise IntegrityError(
                        f"{path}: file name disagrees with record "
                        f"name {name!r}"
                    )
            except (IntegrityError, OSError) as exc:
                with self._lock:
                    self.verify_failures += 1
                report.quarantined.append(
                    self._quarantine(path, str(exc))
                )
                if path.name.endswith(RECORD_SUFFIX):
                    quarantined_names.add(path.name[: -len(RECORD_SUFFIX)])
                continue
            index[name] = {
                "bytes": len(blob),
                "crc32": zlib.crc32(data[: -_FOOTER.size]),
            }
            report.recovered.append(name)
        # "Missing" = the manifest promises a record the directory
        # simply lacks — distinct from one that was quarantined above.
        report.missing = sorted(
            set(manifest) - set(index) - quarantined_names
        )
        with self._lock:
            self._index = index
        self._write_manifest(best_effort=True)
        self.last_recovery = report
        return report

    def scrub(self) -> dict:
        """Re-verify every indexed record end to end (rot detection on
        a live store); corrupt records are quarantined and dropped."""
        verified, quarantined = [], []
        for name in self.names():
            try:
                self.read(name)
                verified.append(name)
            except IntegrityError as exc:
                quarantined.append({"name": name, "reason": str(exc)})
            except (OSError, ServeError) as exc:
                quarantined.append({"name": name, "reason": str(exc)})
        return {
            "verified": verified,
            "quarantined": quarantined,
            "counters": self.counters(),
        }

    def counters(self) -> dict:
        with self._lock:
            return {
                "writes": self.writes,
                "reads": self.reads,
                "quarantines": self.quarantines,
                "verify_failures": self.verify_failures,
            }
