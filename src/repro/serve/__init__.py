"""Batched content delivery: the paper's serving scenario as a system.

The paper's headline use case (§1, §3.3) is a content-delivery server
that encodes an asset *once* and serves every client class by
real-time metadata shrinking.  This package turns that from a script
into a subsystem:

- :mod:`repro.serve.store` — encode-once asset store with an LRU
  shrink cache keyed ``(asset, client_capacity)``;
- :mod:`repro.serve.batcher` — request batching policy: concurrent
  decompress requests fuse into ONE wide-lane kernel call
  (cross-request fusion over the `(P*K,)` layout, DESIGN.md §12);
- :mod:`repro.serve.service` — the :class:`RecoilService` facade:
  dispatcher thread, admission control/backpressure bounded by cost
  model estimates;
- :mod:`repro.serve.metrics` — per-request and per-batch counters;
- :mod:`repro.serve.protocol` / :mod:`repro.serve.net` /
  :mod:`repro.serve.client` — the network front-end: a
  length-prefixed wire protocol, a hardened threaded socket server
  (deadlines, shedding, graceful drain), and the backoff-aware
  client (DESIGN.md §16);
- :mod:`repro.serve.loadgen` — open-loop tail-latency harness with
  hostile client personas;
- :mod:`repro.serve.disk` — crash-safe on-disk container store with
  checksummed records, corruption quarantine, and cold-start
  recovery (DESIGN.md §18).
"""

from repro.serve.batcher import BatchPolicy, DecodeRequest, RequestBatcher
from repro.serve.client import RecoilClient
from repro.serve.disk import DiskStore, RecoveryReport
from repro.serve.metrics import NetMetrics, ServeMetrics
from repro.serve.net import NetConfig, NetServer
from repro.serve.service import RecoilService, ServiceConfig
from repro.serve.store import (
    AssetStore,
    ShrinkCache,
    ShrunkVariant,
    StoredAsset,
)

__all__ = [
    "AssetStore",
    "BatchPolicy",
    "DecodeRequest",
    "DiskStore",
    "NetConfig",
    "NetMetrics",
    "NetServer",
    "RecoilClient",
    "RecoilService",
    "RecoveryReport",
    "ServeMetrics",
    "ServiceConfig",
    "ShrinkCache",
    "ShrunkVariant",
    "StoredAsset",
]
