"""Serving benchmark harness: batched vs. unbatched delivery.

Measures end-to-end multi-client decode throughput of the
content-delivery service at several concurrency levels, against the
pre-subsystem baseline — serving each request one at a time through
:func:`repro.core.recoil_decompress` (fresh container parse, fresh
decoder, solo kernel per request), exactly what the old
``examples/content_delivery.py`` loop did.

Every batched response is verified bit-identical to the
``recoil_decompress`` reference before any timing is recorded.

Both ``recoil serve-bench`` and ``benchmarks/bench_serve.py`` (which
emits ``BENCH_serve.json``, the number CI gates on) call
:func:`run_serve_bench`.
"""

from __future__ import annotations

import contextlib
import time

import numpy as np

from repro import faults as fault_injection
from repro.core.api import recoil_decompress
from repro.data import text_surrogate
from repro.errors import ReproError
from repro.serve.service import RecoilService, ServiceConfig
from repro.stats.timing import measure_backend_shootout

#: client classes cycled across concurrent requests (advertised
#: decoder capacities, as in the paper's content-delivery scenario).
DEFAULT_CAPACITIES = (1, 4, 16)


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_serve_bench(
    symbols: int = 200_000,
    clients: tuple[int, ...] = (1, 8, 64),
    capacities: tuple[int, ...] = DEFAULT_CAPACITIES,
    num_splits: int = 256,
    repeats: int = 2,
    seed: int = 11,
    backend: str = "fused",
    workers: int = 8,
    faults: str | None = None,
) -> dict:
    """Benchmark batched vs. unbatched serving; returns a JSON-able dict.

    For each concurrency level ``C`` the same ``C`` requests (client
    capacities cycling through ``capacities``) are timed two ways:

    - ``unbatched``: one at a time via ``recoil_decompress`` on the
      served (shrunk) container bytes;
    - ``batched``: submitted concurrently to a :class:`RecoilService`
      and fused by the request batcher into wide-lane kernel calls.

    ``backend`` selects the service's batch-execution backend for the
    client sweep (``"fused"``, ``"thread"``, or ``"process"`` —
    :class:`~repro.serve.service.ServiceConfig.decode_backend`).  Two
    extra sections compare the fan-out backends at ``workers`` workers
    on the max-clients batch: ``backends`` times the end-to-end
    service with each backend, and ``backend_shootout`` measures the
    decode fan-out itself (thread vs process on the identical fused
    task set — docs/BENCHMARKS.md); CI gates on the shootout's
    measured ``speedup_process_vs_thread`` (the parallel-edge
    threshold applies only on runners with enough cores to express
    it).

    ``faults`` optionally arms a chaos spec
    (:func:`repro.faults.parse_spec` format) for the duration of the
    client sweep — the ``recoil serve-bench --faults`` knob.  With
    chaos armed, per-request :class:`~repro.errors.ReproError`
    failures are tolerated and counted (``faults.failed_requests`` in
    the result) instead of aborting the run, and correctness is still
    asserted on every request that completes; the timings then
    describe the service *under fire*, not a clean baseline.
    """
    chaos = bool(faults and faults.strip())
    if chaos:
        fault_injection.parse_spec(faults)  # fail fast on a bad spec
    failed_requests = 0
    fault_report: list[dict] = []
    data = text_surrogate(symbols, target_entropy=5.29, seed=seed)
    out_bytes = data.nbytes

    # Fork the shared shard pool NOW, while this process is still
    # single-threaded — the shootout below runs inside the service
    # context, where the dispatcher thread makes forking unsafe.
    from repro.parallel import shards

    shards.default_executor(workers)

    results: dict[str, dict] = {}
    config = ServiceConfig(decode_backend=backend, decode_workers=workers)
    with RecoilService(config=config) as service:
        service.put_asset("asset", data, num_splits=num_splits)
        served = {c: service.serve("asset", c) for c in set(capacities)}

        # Correctness first: every served variant and every batched
        # response must equal the reference decode.
        reference = recoil_decompress(served[capacities[0]])
        if not np.array_equal(reference, data):
            raise AssertionError("reference decode mismatch")
        probe_caps = [c for c in capacities for _ in range(2)]
        probes = [service.submit("asset", c) for c in probe_caps]
        for cap, probe in zip(probe_caps, probes):
            if not np.array_equal(probe.result(300), reference):
                raise AssertionError(
                    f"batched decode mismatch at capacity {cap}"
                )

        chaos_stack = (
            fault_injection.inject_spec(faults)
            if chaos
            else contextlib.nullcontext()
        )
        with chaos_stack:
            for num_clients in clients:
                caps = [
                    capacities[i % len(capacities)]
                    for i in range(num_clients)
                ]

                def unbatched() -> None:
                    for c in caps:
                        recoil_decompress(served[c])

                def batched() -> None:
                    nonlocal failed_requests
                    requests = []
                    for c in caps:
                        try:
                            requests.append(service.submit("asset", c))
                        except ReproError:
                            if not chaos:
                                raise
                            failed_requests += 1
                    for request in requests:
                        try:
                            out = request.result(600)
                        except ReproError:
                            if not chaos:
                                raise
                            failed_requests += 1
                            continue
                        if chaos and not np.array_equal(out, reference):
                            raise AssertionError(
                                "corrupt response under fault injection"
                            )

                t_unbatched = _best_of(unbatched, repeats)
                t_batched = _best_of(batched, repeats)
                total = num_clients * out_bytes
                results[str(num_clients)] = {
                    "unbatched_s": round(t_unbatched, 4),
                    "batched_s": round(t_batched, 4),
                    "unbatched_mb_s": round(total / t_unbatched / 1e6, 2),
                    "batched_mb_s": round(total / t_batched / 1e6, 2),
                    "speedup": round(t_unbatched / t_batched, 3),
                }
            if chaos:
                fault_report = fault_injection.snapshot()

        snapshot = service.metrics_snapshot()

        # -- fan-out backends on the max-clients batch -----------------
        max_caps = [
            capacities[i % len(capacities)] for i in range(max(clients))
        ]
        shootout = _serve_backend_shootout(
            service, max_caps, data, workers, repeats
        )

    backends: dict[str, dict] = {}
    for fan_backend in ("thread", "process"):
        cfg = ServiceConfig(
            decode_backend=fan_backend, decode_workers=workers
        )
        with RecoilService(config=cfg) as fan_service:
            fan_service.put_asset("asset", data, num_splits=num_splits)

            def fan_batched() -> None:
                requests = [
                    fan_service.submit("asset", c) for c in max_caps
                ]
                for request in requests:
                    request.result(600)

            fan_batched()  # warm (shrink cache, shard provider ship)
            t = _best_of(fan_batched, repeats)
            backends[fan_backend] = {
                "effective_backend": fan_service.decode_backend,
                "batched_s": round(t, 4),
                "batched_mb_s": round(
                    len(max_caps) * out_bytes / t / 1e6, 2
                ),
            }

    from repro.serve.loadgen import stage_breakdown

    tiered = _tiered_cold_warm(symbols, seed, backend, workers)

    max_clients = str(max(clients))
    chaos_section = (
        {
            "spec": faults,
            "failed_requests": failed_requests,
            "rules": fault_report,
        }
        if chaos
        else None
    )
    return {
        "workload": {
            "dataset": "enwik8-surrogate",
            "symbols": symbols,
            "num_splits": num_splits,
            "client_capacities": list(capacities),
            "repeats": repeats,
            "backend": backend,
            "fanout_workers": workers,
            "faults": faults,
        },
        "faults": chaos_section,
        "clients": results,
        "speedup_batched_vs_unbatched_max_clients": results[max_clients][
            "speedup"
        ],
        "backends": backends,
        "backend_shootout": shootout,
        "speedup_process_vs_thread": shootout["speedup_process_vs_thread"],
        "service_metrics": snapshot,
        "stage_breakdown": stage_breakdown(snapshot),
        "tiered": tiered,
    }


def _tiered_cold_warm(
    symbols: int, seed: int, backend: str, workers: int
) -> dict:
    """Cold-start vs warm serving through the durable tiered store.

    Populates a disk store with several assets, then serves the SAME
    Zipf-distributed request sequence twice against a byte-bounded
    resident tier: once starting cold (resident tier empty, every
    first touch hydrates from disk and re-verifies its checksum) and
    once warm (popular assets already resident).  The resident budget
    holds only the three largest assets, so the tail of the Zipf keeps
    churning the LRU — the contrast isolates what disk hydration
    costs, not just what an empty cache costs (docs/BENCHMARKS.md).
    """
    import shutil
    import tempfile

    from repro.serve.loadgen import stage_breakdown
    from repro.serve.metrics import ServeMetrics

    num_assets = 5
    sym_each = max(8_000, symbols // 10)
    n_requests = 48
    zipf_s = 1.1
    root = tempfile.mkdtemp(prefix="recoil-tiered-")
    try:
        names = [f"zipf{i}" for i in range(num_assets)]
        datasets: dict[str, np.ndarray] = {}
        write_cfg = ServiceConfig(
            decode_backend=backend, decode_workers=workers, store_dir=root
        )
        with RecoilService(config=write_cfg) as writer:
            for i, name in enumerate(names):
                datasets[name] = text_surrogate(
                    sym_each, target_entropy=5.29, seed=seed + 100 + i
                )
                writer.put_asset(name, datasets[name], num_splits=64)
            sizes = sorted(
                e["bytes"] for e in writer.store.disk.entries().values()
            )
            budget = sum(sizes[-3:])

        rng = np.random.default_rng(seed + 1000)
        weights = np.array(
            [1.0 / (rank + 1) ** zipf_s for rank in range(num_assets)]
        )
        sequence = list(
            rng.choice(names, size=n_requests, p=weights / weights.sum())
        )

        def phase(service: RecoilService) -> dict:
            service.metrics = ServeMetrics()
            store = service.store
            h0, r0, e0 = (
                store.hydrations, store.resident_hits, store.evictions,
            )
            t0 = time.perf_counter()
            for name in sequence:
                out = service.submit(name, 4).result(300)
                if not np.array_equal(out, datasets[name]):
                    raise AssertionError(
                        f"tiered decode mismatch for {name!r}"
                    )
            wall = time.perf_counter() - t0
            hydrations = store.hydrations - h0
            hits = store.resident_hits - r0
            return {
                "wall_s": round(wall, 4),
                "hydrations": hydrations,
                "resident_hits": hits,
                "evictions": store.evictions - e0,
                "tier_hit_rate": round(
                    hits / max(1, hits + hydrations), 4
                ),
                "stage_breakdown": stage_breakdown(
                    service.metrics_snapshot()
                ),
            }

        serve_cfg = ServiceConfig(
            decode_backend=backend,
            decode_workers=workers,
            store_dir=root,
            resident_bytes=budget,
        )
        with RecoilService(config=serve_cfg) as service:
            recovered = len(service.store.recovery.recovered)
            cold = phase(service)   # resident tier empty: compulsory
            warm = phase(service)   # popular assets already resident
        return {
            "assets": num_assets,
            "symbols_per_asset": sym_each,
            "requests": n_requests,
            "zipf_s": zipf_s,
            "resident_budget_bytes": budget,
            "recovered_at_cold_start": recovered,
            "cold": cold,
            "warm": warm,
            "speedup_warm_vs_cold": round(
                cold["wall_s"] / max(warm["wall_s"], 1e-9), 3
            ),
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def _serve_backend_shootout(
    service: RecoilService,
    caps: list[int],
    data: np.ndarray,
    workers: int,
    repeats: int,
) -> dict:
    """Thread vs process fan-out on the service's own fused batch.

    Builds exactly the task set the dispatcher would fuse for ``caps``
    concurrent clients (shrunk variants rebased onto one virtual
    stream) and hands it to
    :func:`repro.stats.timing.measure_backend_shootout`.
    """
    from repro.parallel.fused import fuse_segments
    from repro.serve.batcher import DecodeRequest

    variants = [service.store.shrunk("asset", c)[0] for c in caps]
    segments = [
        DecodeRequest(v.asset, v).segment() for v in variants
    ]
    words, tasks, _, total = fuse_segments(segments)
    first = variants[0].asset
    expected = np.concatenate([data] * len(caps)).astype(
        first.out_dtype, copy=False
    )
    return measure_backend_shootout(
        first.provider,
        first.lanes,
        words,
        tasks,
        total,
        first.out_dtype,
        workers=workers,
        repeats=repeats,
        expected=expected,
    )


def render_table(result: dict) -> str:
    """Human-readable summary of a :func:`run_serve_bench` result."""
    lines = [
        f"{'clients':>8} {'unbatched MB/s':>15} {'batched MB/s':>13} "
        f"{'speedup':>8}"
    ]
    for clients, row in result["clients"].items():
        lines.append(
            f"{clients:>8} {row['unbatched_mb_s']:>15.2f} "
            f"{row['batched_mb_s']:>13.2f} {row['speedup']:>7.2f}x"
        )
    m = result["service_metrics"]
    lines.append(
        f"batches: {m['batches']['dispatched']}, largest "
        f"{m['batches']['largest_requests']} requests; shrink-cache "
        f"hit rate {m['shrink']['hit_rate']:.0%}"
    )
    res = m.get("resilience")
    if res and (
        res["degradations"]
        or res["poison_batches"]
        or res["deadline_expired"]
    ):
        lines.append(
            f"resilience: {res['degradations']} degradations, "
            f"{res['promotions']} promotions, "
            f"{res['poison_batches']} poison batches "
            f"({res['poison_isolated']} isolated), "
            f"{res['deadline_expired']} deadline-expired"
        )
    stages = result.get("stage_breakdown")
    if stages:
        parts = [
            f"{stage} {snap['p99_ms']:.1f}"
            for stage, snap in stages.get("service", {}).items()
            if snap.get("count")
        ]
        if parts:
            lines.append(f"stage p99 ms: {', '.join(parts)}")
    chaos = result.get("faults")
    if chaos:
        fired = sum(r["fires"] for r in chaos["rules"])
        lines.append(
            f"chaos: spec {chaos['spec']!r} fired {fired} faults, "
            f"{chaos['failed_requests']} requests failed"
        )
    tiered = result.get("tiered")
    if tiered:
        lines.append(
            f"tiered ({tiered['assets']} assets, Zipf "
            f"s={tiered['zipf_s']}, budget "
            f"{tiered['resident_budget_bytes']} B): cold "
            f"{tiered['cold']['wall_s'] * 1000:.0f} ms "
            f"({tiered['cold']['hydrations']} hydrations, hit rate "
            f"{tiered['cold']['tier_hit_rate']:.0%}), warm "
            f"{tiered['warm']['wall_s'] * 1000:.0f} ms (hit rate "
            f"{tiered['warm']['tier_hit_rate']:.0%}) -> "
            f"{tiered['speedup_warm_vs_cold']:.2f}x"
        )
    shootout = result.get("backend_shootout")
    if shootout:
        lines.append(
            f"fan-out at {shootout['workers']} workers (host has "
            f"{shootout['host_cpus']} CPUs): thread "
            f"{shootout['thread_s'] * 1000:.1f} ms, process "
            f"{shootout['process_s'] * 1000:.1f} ms -> "
            f"{shootout['speedup_process_vs_thread']:.2f}x measured "
            f"({shootout['projected_parallel_speedup']:.2f}x "
            "projected at one core per shard)"
        )
    return "\n".join(lines)
