"""Serving benchmark harness: batched vs. unbatched delivery.

Measures end-to-end multi-client decode throughput of the
content-delivery service at several concurrency levels, against the
pre-subsystem baseline — serving each request one at a time through
:func:`repro.core.recoil_decompress` (fresh container parse, fresh
decoder, solo kernel per request), exactly what the old
``examples/content_delivery.py`` loop did.

Every batched response is verified bit-identical to the
``recoil_decompress`` reference before any timing is recorded.

Both ``recoil serve-bench`` and ``benchmarks/bench_serve.py`` (which
emits ``BENCH_serve.json``, the number CI gates on) call
:func:`run_serve_bench`.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.api import recoil_decompress
from repro.data import text_surrogate
from repro.serve.service import RecoilService, ServiceConfig

#: client classes cycled across concurrent requests (advertised
#: decoder capacities, as in the paper's content-delivery scenario).
DEFAULT_CAPACITIES = (1, 4, 16)


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_serve_bench(
    symbols: int = 200_000,
    clients: tuple[int, ...] = (1, 8, 64),
    capacities: tuple[int, ...] = DEFAULT_CAPACITIES,
    num_splits: int = 256,
    repeats: int = 2,
    seed: int = 11,
) -> dict:
    """Benchmark batched vs. unbatched serving; returns a JSON-able dict.

    For each concurrency level ``C`` the same ``C`` requests (client
    capacities cycling through ``capacities``) are timed two ways:

    - ``unbatched``: one at a time via ``recoil_decompress`` on the
      served (shrunk) container bytes;
    - ``batched``: submitted concurrently to a :class:`RecoilService`
      and fused by the request batcher into wide-lane kernel calls.
    """
    data = text_surrogate(symbols, target_entropy=5.29, seed=seed)
    out_bytes = data.nbytes

    results: dict[str, dict] = {}
    with RecoilService(config=ServiceConfig()) as service:
        service.put_asset("asset", data, num_splits=num_splits)
        served = {c: service.serve("asset", c) for c in set(capacities)}

        # Correctness first: every served variant and every batched
        # response must equal the reference decode.
        reference = recoil_decompress(served[capacities[0]])
        if not np.array_equal(reference, data):
            raise AssertionError("reference decode mismatch")
        probe_caps = [c for c in capacities for _ in range(2)]
        probes = [service.submit("asset", c) for c in probe_caps]
        for cap, probe in zip(probe_caps, probes):
            if not np.array_equal(probe.result(300), reference):
                raise AssertionError(
                    f"batched decode mismatch at capacity {cap}"
                )

        for num_clients in clients:
            caps = [
                capacities[i % len(capacities)] for i in range(num_clients)
            ]

            def unbatched() -> None:
                for c in caps:
                    recoil_decompress(served[c])

            def batched() -> None:
                requests = [service.submit("asset", c) for c in caps]
                for request in requests:
                    request.result(600)

            t_unbatched = _best_of(unbatched, repeats)
            t_batched = _best_of(batched, repeats)
            total = num_clients * out_bytes
            results[str(num_clients)] = {
                "unbatched_s": round(t_unbatched, 4),
                "batched_s": round(t_batched, 4),
                "unbatched_mb_s": round(total / t_unbatched / 1e6, 2),
                "batched_mb_s": round(total / t_batched / 1e6, 2),
                "speedup": round(t_unbatched / t_batched, 3),
            }

        snapshot = service.metrics_snapshot()

    max_clients = str(max(clients))
    return {
        "workload": {
            "dataset": "enwik8-surrogate",
            "symbols": symbols,
            "num_splits": num_splits,
            "client_capacities": list(capacities),
            "repeats": repeats,
        },
        "clients": results,
        "speedup_batched_vs_unbatched_max_clients": results[max_clients][
            "speedup"
        ],
        "service_metrics": snapshot,
    }


def render_table(result: dict) -> str:
    """Human-readable summary of a :func:`run_serve_bench` result."""
    lines = [
        f"{'clients':>8} {'unbatched MB/s':>15} {'batched MB/s':>13} "
        f"{'speedup':>8}"
    ]
    for clients, row in result["clients"].items():
        lines.append(
            f"{clients:>8} {row['unbatched_mb_s']:>15.2f} "
            f"{row['batched_mb_s']:>13.2f} {row['speedup']:>7.2f}x"
        )
    m = result["service_metrics"]
    lines.append(
        f"batches: {m['batches']['dispatched']}, largest "
        f"{m['batches']['largest_requests']} requests; shrink-cache "
        f"hit rate {m['shrink']['hit_rate']:.0%}"
    )
    return "\n".join(lines)
