"""Network serving front-end: a socket server over :class:`RecoilService`.

This is the daemon form of the serving subsystem (DESIGN.md §16): a
listening TCP socket speaking the length-prefixed protocol of
:mod:`repro.serve.protocol`, one OS thread per connection, over the
same in-process :class:`~repro.serve.service.RecoilService` the thread
clients use — so repeated requests skip every setup cost (encode,
parse, shrink, table builds) exactly like the Lina daemon exemplar.

**Why threads, not asyncio.**  The builder (and the common CI runner)
has one core.  The service's real work happens inside numpy kernels
that release the GIL, behind a dispatcher that already serializes
kernel execution; connection threads only parse tiny frames and block
on sockets or on the service's own admission/batching waits.  A
thread-per-connection front-end therefore adds no scheduler pressure
at the concurrency the connection cap admits, while an asyncio loop
would wrap a second scheduling abstraction around a service API that
is *blocking by design* (``decompress`` waits on a Future) and buy
nothing on one core.  The cap (``max_connections``) bounds thread
count the same way admission bounds kernel work.

Robustness layer (the point of this module, DESIGN.md §16):

- **Strict frames.**  Every malformed frame — bad magic, unknown
  type, oversized declared length, truncated body — is answered with
  a typed :class:`~repro.errors.ProtocolError` wire response
  (best-effort) and the connection is closed; the server never
  crashes and never hangs on hostile bytes (fuzzed in
  ``tests/test_fuzz.py``).
- **Deadlines.**  A started request frame must complete within
  ``read_timeout_s`` (kills slow-loris drips), an idle connection is
  closed after ``idle_timeout_s`` (kills dead peers), and a response
  write must progress within ``write_timeout_s`` (kills slow readers
  that would otherwise pin a thread and its buffers forever).
- **Overload shedding.**  Connections over ``max_connections`` get a
  ``RETRY_AFTER`` frame and are closed; an
  :class:`~repro.errors.AdmissionError` from the service's
  backpressure maps to the same frame on a live connection.  The
  bundled client honors it with capped exponential backoff + jitter.
- **Graceful drain.**  :meth:`NetServer.shutdown` stops accepting,
  wakes idle connections, lets in-flight requests finish under
  ``drain_timeout_s``, then hard-closes stragglers — every outcome
  counted (``drain.clean`` / ``drain.forced``).
- **Fault points.**  ``net.accept``, ``net.read``, ``net.write`` and
  ``net.stall`` (:mod:`repro.faults`) are instrumented on the real
  surfaces so the PR 6 chaos harness drives the network layer too.

All counters live in :class:`~repro.serve.metrics.NetMetrics`,
attached to the service so ``metrics_snapshot()["network"]`` reports
them alongside the serve/resilience sections.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from dataclasses import dataclass

from repro import faults, trace
from repro.errors import (
    AdmissionError,
    DeadlineError,
    ProtocolError,
    ReproError,
    ServeError,
)
from repro.serve import protocol
from repro.serve.metrics import NetMetrics
from repro.serve.service import RecoilService


class _Deadline(Exception):
    """Internal: a per-connection read/write deadline fired."""

    def __init__(self, *, write: bool) -> None:
        super().__init__("deadline")
        self.write = write


class _PeerClosed(Exception):
    """Internal: the peer closed the connection.

    ``midframe`` distinguishes a hostile/broken close inside a frame
    from the normal close between requests.
    """

    def __init__(self, *, midframe: bool) -> None:
        super().__init__("peer closed")
        self.midframe = midframe


@dataclass(frozen=True)
class NetConfig:
    """Tunables of one network front-end (DESIGN.md §16)."""

    host: str = "127.0.0.1"
    #: 0 = let the OS pick (read the bound port from ``address``).
    port: int = 0
    #: concurrent-connection cap; everything above is shed with a
    #: ``RETRY_AFTER`` frame (and counted).
    max_connections: int = 64
    #: how long a connection may sit between requests before it is
    #: closed as a dead peer.
    idle_timeout_s: float = 60.0
    #: how long a *started* request frame may take to arrive complete
    #: (slow-loris kill).
    read_timeout_s: float = 10.0
    #: how long one response may take to write (slow-reader kill).
    write_timeout_s: float = 10.0
    #: grace for in-flight requests at shutdown before hard-close.
    drain_timeout_s: float = 5.0
    #: streamed-response chunk size.
    chunk_bytes: int = 64 * 1024
    #: single-frame body cap (requests and non-streamed responses).
    max_frame_bytes: int = protocol.MAX_FRAME_BYTES
    #: delay suggested in ``RETRY_AFTER`` shed frames.
    retry_after_s: float = 0.05
    #: sleep injected when the ``net.stall`` fault point triggers.
    stall_inject_s: float = 0.25
    #: per-connection ``SO_SNDBUF`` override (tests use a tiny buffer
    #: to make slow-reader write kills deterministic).
    send_buffer_bytes: int | None = None
    listen_backlog: int = 128

    def __post_init__(self) -> None:
        if self.max_connections < 1:
            raise ServeError(
                f"max_connections must be >= 1, got {self.max_connections}"
            )
        for name in (
            "idle_timeout_s",
            "read_timeout_s",
            "write_timeout_s",
            "drain_timeout_s",
            "retry_after_s",
        ):
            if getattr(self, name) <= 0:
                raise ServeError(
                    f"{name} must be > 0, got {getattr(self, name)}"
                )
        if self.chunk_bytes < 1:
            raise ServeError(
                f"chunk_bytes must be >= 1, got {self.chunk_bytes}"
            )


class _Connection:
    """One accepted socket plus its lifecycle flags."""

    def __init__(self, sock: socket.socket, addr) -> None:
        self.sock = sock
        self.addr = addr
        self.thread: threading.Thread | None = None
        #: True while a request is executing (drain lets it finish).
        self.busy = False
        #: tracing context of the request in flight (``repro.trace``).
        self.trace_req: int | None = None
        self.trace_root: int | None = None
        #: seconds spent in ``_respond`` for the request in flight —
        #: subtracted from the handle stage so read/handle/write sum
        #: to the connection's end-to-end time.
        self.write_s = 0.0
        #: set by shutdown() when this connection is hard-closed.
        self.forced = False
        self._lock = threading.Lock()
        self._drain_recorded = False

    def wake(self) -> None:
        """Abort a blocked read (drain of an idle connection) without
        killing an in-progress response write."""
        try:
            self.sock.shutdown(socket.SHUT_RD)
        except OSError:
            pass

    def force_close(self) -> None:
        self.forced = True
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass

    def record_drain_once(self, metrics: NetMetrics, *, forced: bool) -> None:
        """Exactly-once drain outcome (the conn thread and shutdown()
        can race to report it)."""
        with self._lock:
            if self._drain_recorded:
                return
            self._drain_recorded = True
        metrics.record_drain(forced=forced)


class NetServer:
    """Threaded socket server exposing a :class:`RecoilService`.

    Usage::

        with RecoilService() as service:
            service.put_asset("a", data)
            with NetServer(service, NetConfig(port=0)) as server:
                host, port = server.address
                ...

    The server does **not** own the service: shutting down the server
    drains connections but leaves the service usable (and a service
    can carry several front-ends in principle).  The CLI tears both
    down in order.
    """

    def __init__(
        self, service: RecoilService, config: NetConfig | None = None
    ) -> None:
        self.service = service
        self.config = config or NetConfig()
        self.metrics = NetMetrics()
        service.attach_network_metrics(self.metrics)
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._lock = threading.Lock()
        self._conns: set[_Connection] = set()
        self._draining = threading.Event()
        self._closed = False

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "NetServer":
        """Bind, listen, and start the accept loop; returns ``self``."""
        if self._listener is not None:
            raise ServeError("server already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            listener.bind((self.config.host, self.config.port))
            listener.listen(self.config.listen_backlog)
        except OSError:
            listener.close()
            raise
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="recoil-net-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound (resolves ``port=0``)."""
        if self._listener is None:
            raise ServeError("server not started")
        host, port = self._listener.getsockname()[:2]
        return host, port

    def __enter__(self) -> "NetServer":
        if self._listener is None:
            self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def shutdown(self, drain_timeout_s: float | None = None) -> dict:
        """Graceful drain: stop accepting, finish in-flight requests,
        hard-close stragglers.  Idempotent.

        1. The listener closes (the accept loop exits; new peers get
           connection-refused).
        2. Idle connections are woken and close cleanly; busy ones
           finish their in-flight request.
        3. Whatever remains after ``drain_timeout_s`` (default: the
           config value) is hard-closed and counted ``drain.forced``.

        :returns: the drain slice of the metrics snapshot.
        """
        with self._lock:
            already = self._closed
            self._closed = True
        if not already:
            self._draining.set()
            if self._listener is not None:
                # shutdown() before close(): on Linux, close() alone
                # does not wake a thread blocked in accept() — the
                # kernel socket would stay listening until a peer
                # happened to connect.
                try:
                    self._listener.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    self._listener.close()
                except OSError:
                    pass
            if self._accept_thread is not None:
                self._accept_thread.join(5.0)
            with self._lock:
                conns = list(self._conns)
            for conn in conns:
                if not conn.busy:
                    conn.wake()
            deadline = time.monotonic() + (
                self.config.drain_timeout_s
                if drain_timeout_s is None
                else drain_timeout_s
            )
            while time.monotonic() < deadline:
                with self._lock:
                    if not self._conns:
                        break
                time.sleep(0.005)
            with self._lock:
                leftovers = list(self._conns)
            for conn in leftovers:
                conn.record_drain_once(self.metrics, forced=True)
                conn.force_close()
            for conn in leftovers:
                if conn.thread is not None:
                    conn.thread.join(2.0)
        return self.metrics.snapshot()["drain"]

    close = shutdown

    @property
    def active_connections(self) -> int:
        with self._lock:
            return len(self._conns)

    # -- accept loop ---------------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                sock, addr = self._listener.accept()
            except OSError:
                return  # listener closed: drain
            try:
                faults.fire(faults.NET_ACCEPT)
            except Exception:
                self.metrics.record_transport_error()
                self._close_quiet(sock)
                continue
            if self._draining.is_set():
                self._close_quiet(sock)
                continue
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                if self.config.send_buffer_bytes is not None:
                    sock.setsockopt(
                        socket.SOL_SOCKET,
                        socket.SO_SNDBUF,
                        self.config.send_buffer_bytes,
                    )
            except OSError:
                self._close_quiet(sock)
                continue
            with self._lock:
                over_cap = len(self._conns) >= self.config.max_connections
                if not over_cap:
                    conn = _Connection(sock, addr)
                    self._conns.add(conn)
            if over_cap:
                self.metrics.connection_rejected()
                self._shed(sock)
                continue
            self.metrics.connection_opened()
            trace.record_instant(
                "net.accept", cat="net", args={"peer_port": addr[1]}
            )
            thread = threading.Thread(
                target=self._conn_main,
                args=(conn,),
                name=f"recoil-net-conn-{addr[1]}",
                daemon=True,
            )
            conn.thread = thread
            thread.start()

    @staticmethod
    def _close_quiet(sock: socket.socket) -> None:
        try:
            sock.close()
        except OSError:
            pass

    def _shed(self, sock: socket.socket) -> None:
        """Best-effort ``RETRY_AFTER`` to an over-cap peer, then close."""
        try:
            sock.settimeout(1.0)
            sock.sendall(
                protocol.encode_retry_after(self.config.retry_after_s)
            )
        except OSError:
            pass
        finally:
            self._close_quiet(sock)

    # -- connection loop -----------------------------------------------

    def _conn_main(self, conn: _Connection) -> None:
        try:
            while not self._draining.is_set():
                try:
                    ftype, body, t_first = self._read_request(conn)
                except _PeerClosed as closed:
                    if closed.midframe:
                        self.metrics.record_transport_error()
                    return
                t_read = time.perf_counter()
                self.metrics.record_stage("read", t_read - t_first)
                conn.write_s = 0.0
                conn.trace_req = trace.new_request()
                conn.trace_root = trace.next_span_id()
                if conn.trace_req is not None:
                    trace.record_span(
                        "net.read",
                        t_first,
                        t_read,
                        cat="net",
                        req=conn.trace_req,
                        parent=conn.trace_root,
                        args={"op": ftype, "bytes": len(body)},
                    )
                conn.busy = True
                try:
                    self._handle(conn, ftype, body)
                finally:
                    conn.busy = False
                    t_done = time.perf_counter()
                    # handle excludes time spent writing frames, so
                    # read + handle + write == e2e (stage-sum rule).
                    self.metrics.record_stage(
                        "handle", max(t_done - t_read - conn.write_s, 0.0)
                    )
                    self.metrics.record_stage("e2e", t_done - t_first)
                    if conn.trace_req is not None:
                        trace.record_span(
                            "net.handle",
                            t_read,
                            t_done,
                            cat="net",
                            req=conn.trace_req,
                            parent=conn.trace_root,
                        )
                        trace.record_span(
                            "net.request",
                            t_first,
                            t_done,
                            cat="net",
                            req=conn.trace_req,
                            sid=conn.trace_root,
                            args={"op": ftype},
                        )
                        conn.trace_req = None
                        conn.trace_root = None
        except _Deadline as kill:
            self.metrics.record_deadline_kill(write=kill.write)
        except ProtocolError as exc:
            self.metrics.record_protocol_error()
            self._try_send_error(conn, exc)
        except (TimeoutError, OSError):
            if not conn.forced:
                self.metrics.record_transport_error()
        except Exception as exc:  # a bug must close one conn, not the server
            self.metrics.record_transport_error()
            self._try_send_error(
                conn, ServeError(f"internal error: {exc!r}")
            )
        finally:
            conn.close()
            with self._lock:
                self._conns.discard(conn)
            self.metrics.connection_closed()
            if self._draining.is_set():
                conn.record_drain_once(
                    self.metrics, forced=conn.forced
                )

    def _try_send_error(self, conn: _Connection, exc: BaseException) -> None:
        try:
            conn.sock.settimeout(self.config.write_timeout_s)
            conn.sock.sendall(protocol.encode_error(exc))
        except OSError:
            pass

    # -- reading -------------------------------------------------------

    def _recv_exact(
        self, conn: _Connection, n: int, deadline: float
    ) -> bytes:
        buf = bytearray()
        sock = conn.sock
        while len(buf) < n:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise _Deadline(write=False)
            sock.settimeout(remaining)
            try:
                chunk = sock.recv(min(65536, n - len(buf)))
            except TimeoutError:
                raise _Deadline(write=False) from None
            if not chunk:
                raise _PeerClosed(midframe=True)
            buf += chunk
        self.metrics.record_bytes(read=n)
        return bytes(buf)

    def _read_request(self, conn: _Connection) -> tuple[int, bytes, float]:
        """One complete request frame, plus its first-byte timestamp
        (``perf_counter``) — the start of the request's stage clock.

        Two deadline phases: the *idle* wait for the first byte of the
        next request is bounded by ``idle_timeout_s`` (dead peers);
        once the first byte arrives, header + body must complete
        within ``read_timeout_s`` (slow loris).
        """
        sock = conn.sock
        sock.settimeout(self.config.idle_timeout_s)
        try:
            first = sock.recv(1)
        except TimeoutError:
            raise _Deadline(write=False) from None
        if not first:
            raise _PeerClosed(midframe=False)
        t_first = time.perf_counter()
        faults.fire(faults.NET_READ)
        deadline = time.monotonic() + self.config.read_timeout_s
        header = first + self._recv_exact(
            conn, protocol.HEADER_BYTES - 1, deadline
        )
        ftype, length = protocol.parse_header(
            header, protocol.REQUEST_TYPES, self.config.max_frame_bytes
        )
        body = self._recv_exact(conn, length, deadline) if length else b""
        return ftype, body, t_first

    # -- writing -------------------------------------------------------

    def _respond(self, conn: _Connection, frames) -> None:
        """Send one response (one or more frames) under the write
        deadline.  ``net.write`` and ``net.stall`` fire once per
        response, not per chunk, so chaos probabilities compose
        per-request."""
        t0 = time.perf_counter()
        faults.fire(faults.NET_WRITE)
        if faults.triggered(faults.NET_STALL):
            self.metrics.record_stall()
            time.sleep(self.config.stall_inject_s)
        deadline = time.monotonic() + self.config.write_timeout_s
        sock = conn.sock
        for frame in frames:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise _Deadline(write=True)
            sock.settimeout(remaining)
            try:
                sock.sendall(frame)
            except TimeoutError:
                raise _Deadline(write=True) from None
            self.metrics.record_bytes(written=len(frame))
        elapsed = time.perf_counter() - t0
        conn.write_s += elapsed
        self.metrics.record_stage("write", elapsed)
        if conn.trace_req is not None:
            trace.record_span(
                "net.write",
                t0,
                t0 + elapsed,
                cat="net",
                req=conn.trace_req,
                parent=conn.trace_root,
            )

    def _stream_frames(
        self, kind: int, dtype: str, payload: bytes, item_count: int
    ):
        yield protocol.encode_stream_begin(
            kind, dtype, len(payload), item_count
        )
        for chunk in protocol.iter_chunks(payload, self.config.chunk_bytes):
            if len(chunk):
                yield protocol.encode_frame(
                    protocol.ST_STREAM_CHUNK, bytes(chunk)
                )
        yield protocol.encode_stream_end(protocol.crc32(payload))

    # -- dispatch ------------------------------------------------------

    def _handle(self, conn: _Connection, ftype: int, body: bytes) -> None:
        try:
            if ftype == protocol.OP_PING:
                frames = [protocol.encode_frame(protocol.ST_OK, body)]
            elif ftype == protocol.OP_METRICS:
                snap = json.dumps(self.service.metrics_snapshot())
                frames = [
                    protocol.encode_frame(
                        protocol.ST_OK, snap.encode("utf-8")
                    )
                ]
            elif ftype == protocol.OP_SERVE:
                name, capacity = protocol.parse_serve_request(body)
                blob = self.service.serve(name, capacity)
                frames = self._stream_frames(
                    protocol.KIND_BYTES, "", blob, len(blob)
                )
            elif ftype == protocol.OP_TRACE:
                clear = protocol.parse_trace_request(body)
                spans = trace.drain() if clear else trace.snapshot()
                doc = trace.chrome_trace(spans, main_pid=os.getpid())
                payload = json.dumps(doc).encode("utf-8")
                frames = self._stream_frames(
                    protocol.KIND_BYTES, "", payload, len(payload)
                )
            elif ftype == protocol.OP_DECODE:
                name, capacity, timeout = protocol.parse_decode_request(
                    body
                )
                # Trace linkage kwargs only when a request id exists:
                # the untraced hot path stays a plain 3-arg call (and
                # keeps working against monkeypatched/test doubles).
                trace_kwargs = (
                    {
                        "trace_req": conn.trace_req,
                        "trace_parent": conn.trace_root,
                    }
                    if conn.trace_req is not None
                    else {}
                )
                symbols = self.service.decompress(
                    name, capacity, timeout=timeout, **trace_kwargs
                )
                payload = symbols.tobytes()
                frames = self._stream_frames(
                    protocol.KIND_ARRAY,
                    symbols.dtype.str,
                    payload,
                    symbols.size,
                )
            elif ftype == protocol.OP_PUT:
                name, blob = protocol.parse_put_request(body)
                asset = self.service.put_container(name, blob)
                frames = [
                    protocol.encode_frame(
                        protocol.ST_OK,
                        asset.num_symbols.to_bytes(8, "big"),
                    )
                ]
            else:  # pragma: no cover - parse_header rejects these
                raise ProtocolError(f"unhandled frame type 0x{ftype:02x}")
        except ProtocolError:
            raise  # framing/body violation: the conn loop answers + closes
        except AdmissionError:
            # Load shed on a live connection: the client backs off.
            self.metrics.record_retry_after()
            self.metrics.record_request(ok=False)
            self._respond(
                conn,
                [protocol.encode_retry_after(self.config.retry_after_s)],
            )
            return
        except TimeoutError as exc:
            # service.decompress: deadline passed while already in the
            # kernel — the wire answer is the same typed DeadlineError.
            self.metrics.record_request(ok=False)
            self._respond(
                conn,
                [
                    protocol.encode_error(
                        DeadlineError(
                            str(exc) or "deadline expired in flight"
                        )
                    )
                ],
            )
            return
        except ReproError as exc:
            self.metrics.record_request(ok=False)
            self._respond(conn, [protocol.encode_error(exc)])
            return
        except MemoryError:
            self.metrics.record_request(ok=False)
            self._respond(
                conn,
                [
                    protocol.encode_error(
                        ServeError("server out of memory for this request")
                    )
                ],
            )
            return
        except Exception as exc:  # typed wire error, never a crash
            self.metrics.record_request(ok=False)
            self._respond(
                conn,
                [protocol.encode_error(ServeError(f"internal error: {exc!r}"))],
            )
            return
        self._respond(conn, frames)
        self.metrics.record_request(ok=True)
