"""`RecoilService`: in-process batched content-delivery service.

The subsystem's facade, tying together the serving pipeline of
DESIGN.md §12:

1. **Store** (:mod:`repro.serve.store`): assets are encoded once at
   maximum parallelism; per-request metadata shrinking is answered
   from an LRU cache keyed ``(asset, client_capacity)``.
2. **Batcher** (:mod:`repro.serve.batcher`): concurrent decompress
   requests collected over a short window (or until the lane budget
   fills) dispatch as ONE fused multi-task kernel call — cross-request
   fusion over the `(P*K,)` wide-lane layout of PRs 1–2.
3. **Admission** (backpressure): in-flight work is bounded by the cost
   model's walked-symbol estimates; submitters block (up to a
   timeout) when the bound is saturated, so a burst cannot queue
   unbounded kernel work.

Clients are threads in the same process: ``decompress`` blocks for the
result, ``submit`` returns a request handle for async use.  A single
dispatcher thread owns the kernel-side scratch arena (arena rule 1,
DESIGN.md §9) and executes batches serially — the fused kernel is
already the width-optimal way to spend one core's time, and numpy
releases the GIL inside the wide ops, so client threads keep running.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.errors import AdmissionError, ParallelismError, ServeError
from repro.parallel.buffers import ScratchArena
from repro.parallel.executor import decode_with_pool
from repro.parallel.fused import MultiRunResult, fuse_segments, fused_run_multi
from repro.rans.model import SymbolModel
from repro.serve.batcher import BatchPolicy, DecodeRequest, RequestBatcher
from repro.serve.metrics import ServeMetrics
from repro.serve.store import AssetStore, StoredAsset

#: decode backends a service dispatcher can fan batches out to.
DECODE_BACKENDS = ("fused", "thread", "process")


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one service instance (see DESIGN.md §12, §14)."""

    #: how long the oldest pending request may wait for companions.
    batch_window_s: float = 0.002
    #: hard cap on requests fused into one kernel call.
    max_batch_requests: int = 64
    #: lane budget: max total decoder tasks per fused call.
    max_batch_task_lanes: int = 512
    #: admission bound on in-flight estimated walked symbols.
    max_inflight_symbols: int = 32_000_000
    #: how long a submitter may block on admission before
    #: :class:`~repro.errors.AdmissionError`.
    admission_timeout_s: float = 30.0
    #: disable cross-request fusion (one request per kernel call, in
    #: arrival order) — the benchmark baseline.
    batching: bool = True
    #: LRU capacity of the shrink cache (entries).
    shrink_cache_entries: int = 256
    #: how a fused batch executes: ``"fused"`` — one in-process kernel
    #: call on the dispatcher thread (width-optimal for one core);
    #: ``"thread"`` — fan the batch across ``decode_workers`` OS
    #: threads; ``"process"`` — fan it across ``decode_workers`` shard
    #: processes (DESIGN.md §14; falls back to ``"thread"`` when
    #: shared memory is unavailable).
    decode_backend: str = "fused"
    #: worker count for the ``"thread"``/``"process"`` backends.
    decode_workers: int = 8

    def __post_init__(self) -> None:
        if self.decode_backend not in DECODE_BACKENDS:
            raise ServeError(
                f"unknown decode backend {self.decode_backend!r}; "
                f"expected one of {DECODE_BACKENDS}"
            )
        if self.decode_workers < 1:
            raise ServeError(
                f"decode_workers must be >= 1, got {self.decode_workers}"
            )

    def batch_policy(self) -> BatchPolicy:
        if not self.batching:
            return BatchPolicy(window_s=0.0, max_requests=1)
        return BatchPolicy(
            window_s=self.batch_window_s,
            max_requests=self.max_batch_requests,
            max_task_lanes=self.max_batch_task_lanes,
        )


class RecoilService:
    """Batched content-delivery service over an :class:`AssetStore`."""

    def __init__(
        self,
        store: AssetStore | None = None,
        config: ServiceConfig | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.store = store or AssetStore(
            shrink_cache_entries=self.config.shrink_cache_entries
        )
        self.metrics = ServeMetrics()
        self._cond = threading.Condition()
        self._batcher = RequestBatcher(self.config.batch_policy())
        self._inflight_symbols = 0
        self._running = True
        # The shard pool (when requested) starts BEFORE the dispatcher
        # thread: forking from a single-threaded process is the only
        # portable-safe moment.  Unavailable shared memory degrades to
        # the thread backend (``decode_backend`` reports the truth).
        self._backend = self.config.decode_backend
        self._shards = None
        if self._backend == "process":
            from repro.parallel import shards as shards_mod

            if shards_mod.sharding_available():
                try:
                    self._shards = shards_mod.ShardedExecutor(
                        self.config.decode_workers
                    )
                except ParallelismError:
                    self._shards = None
            if self._shards is None:
                self._backend = "thread"
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop,
            name="recoil-serve-dispatch",
            daemon=True,
        )
        self._dispatcher.start()

    @property
    def decode_backend(self) -> str:
        """Backend batches actually execute on.

        Reports ``"thread"`` after a graceful fallback from an
        unavailable ``"process"`` request — including mid-life, when a
        shard worker dies and the broken pool degrades the service to
        the thread fan-out (re-forking from the multi-threaded
        dispatcher is not safe, so the degradation is permanent for
        this service instance; monitor this property)."""
        return self._backend

    # -- lifecycle -----------------------------------------------------

    def __enter__(self) -> "RecoilService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Stop accepting requests and fail anything still pending.

        Idempotent.  Joins the dispatcher thread, stops the shard pool
        (process backend), and fails queued requests with
        :class:`~repro.errors.ServeError`.
        """
        with self._cond:
            if not self._running:
                return
            self._running = False
            self._cond.notify_all()
        self._dispatcher.join()
        if self._shards is not None:
            self._shards.close()
        with self._cond:
            leftovers = self._batcher.drain()
            self._inflight_symbols = 0
            self._cond.notify_all()
        for req in leftovers:
            req.set_error(ServeError("service closed"))
            self.metrics.record_completion(req.latency_s, ok=False)

    @property
    def closed(self) -> bool:
        return not self._running

    # -- ingest --------------------------------------------------------

    def put_asset(
        self,
        name: str,
        data: np.ndarray,
        num_splits: int | None = None,
        quant_bits: int | None = None,
        model: SymbolModel | None = None,
    ) -> StoredAsset:
        """Encode ``data`` once (at max parallelism) and store it.

        :param name: asset name (re-putting a name replaces the asset
            and invalidates its cached shrinks).
        :param data: symbol array to compress.
        :param num_splits: decoder parallelism to encode metadata for
            (default: the store's ``default_num_splits``).
        :param quant_bits: probability quantization level ``n``.
        :param model: explicit symbol model (default: fitted to
            ``data`` and embedded in the container).
        :returns: the stored asset with its parsed container.
        :raises EncodeError: empty/invalid data or ``num_splits < 1``.
        :raises ModelError: a malformed explicit model.
        """
        return self.store.put(
            name,
            data,
            num_splits=num_splits,
            quant_bits=quant_bits,
            model=model,
        )

    def put_container(self, name: str, blob: bytes, provider=None):
        """Store an already-encoded container under ``name``.

        :param provider: model provider for containers whose model
            travels out of band (adaptive encodes).
        :returns: the stored :class:`~repro.serve.store.StoredAsset`.
        :raises ContainerError: malformed container bytes.
        :raises MetadataError: a model is required but missing.
        """
        return self.store.put_container(name, blob, provider=provider)

    # -- serving (bytes on the wire) -----------------------------------

    def serve(self, name: str, capacity: int) -> bytes:
        """Container bytes shrunk to ``capacity`` (the per-request
        real-time operation of §3.3; cached).

        :returns: servable container bytes (same payload as the
            master, combined metadata).
        :raises ServeError: unknown asset.
        :raises MetadataError: ``capacity < 1``.
        """
        variant, hit = self.store.shrunk(name, capacity)
        self.metrics.record_shrink(len(variant.blob), cache_hit=hit)
        return variant.blob

    # -- decoding ------------------------------------------------------

    def submit(self, name: str, capacity: int) -> DecodeRequest:
        """Enqueue a decompress request; returns a waitable handle.

        Blocks (backpressure) while the in-flight work bound is
        saturated.

        :param name: stored asset to decode.
        :param capacity: the client's advertised decoder parallelism
            (selects the shrunk variant whose tasks the kernel runs).
        :returns: a handle whose :meth:`~DecodeRequest.result` blocks
            for the decoded symbols.
        :raises ServeError: unknown asset, or the service is closed.
        :raises MetadataError: ``capacity < 1``.
        :raises AdmissionError: the in-flight bound stayed saturated
            past ``admission_timeout_s``.
        """
        if not self._running:
            raise ServeError("service closed")
        variant, hit = self.store.shrunk(name, capacity)
        self.metrics.record_shrink(len(variant.blob), cache_hit=hit)
        # variant.asset, not a second store.get(): a concurrent put()
        # replacing the name must not pair old tasks with new words.
        request = DecodeRequest(variant.asset, variant)

        cost = request.cost_symbols
        deadline = time.perf_counter() + self.config.admission_timeout_s
        with self._cond:
            waited = False
            while (
                self._running
                and self._inflight_symbols > 0
                and self._inflight_symbols + cost
                > self.config.max_inflight_symbols
            ):
                if not waited:
                    waited = True
                    self.metrics.record_admission_wait()
                remaining = deadline - time.perf_counter()
                if remaining <= 0 or not self._cond.wait(remaining):
                    self.metrics.record_admission_rejected()
                    raise AdmissionError(
                        f"admission timed out after "
                        f"{self.config.admission_timeout_s:.3g}s "
                        f"({self._inflight_symbols:,} symbols in flight, "
                        f"bound {self.config.max_inflight_symbols:,})"
                    )
            if not self._running:
                raise ServeError("service closed")
            self._inflight_symbols += cost
            self.metrics.record_inflight(self._inflight_symbols)
            self._batcher.add(request)
            # Counted only once enqueued, so submitted always
            # reconciles with completed + failed.
            self.metrics.record_submit()
            self._cond.notify_all()
        return request

    def decompress(
        self, name: str, capacity: int, timeout: float | None = None
    ) -> np.ndarray:
        """Decode asset ``name`` as a ``capacity``-thread client would,
        through the batched service path.

        :param timeout: seconds to wait for the batch to complete
            (``None`` = forever).
        :returns: the decoded symbol array (bit-identical to
            :func:`repro.core.api.recoil_decompress` on the served
            bytes).
        :raises ServeError: unknown asset or closed service.
        :raises AdmissionError: admission timed out (backpressure).
        :raises DecodeError: the stored container failed to decode.
        :raises TimeoutError: ``timeout`` elapsed first.
        """
        return self.submit(name, capacity).result(timeout)

    def metrics_snapshot(self) -> dict:
        """JSON-able service counters (requests, batches, shrink cache,
        admission) plus store statistics — see
        :class:`repro.serve.metrics.ServeMetrics`."""
        snap = self.metrics.snapshot()
        snap["store"] = {
            "assets": len(self.store),
            "shrink_cache_entries": len(self.store.cache),
            "shrink_cache_evictions": self.store.cache.evictions,
        }
        return snap

    # -- dispatcher ----------------------------------------------------

    def _dispatch_loop(self) -> None:
        # The dispatcher owns the kernel scratch arena: one thread,
        # one arena (DESIGN.md §9 rule 1).
        arena = ScratchArena()
        while True:
            with self._cond:
                while self._running and not len(self._batcher):
                    self._cond.wait()
                # Hold the batch open until the window closes or the
                # lane budget fills; new arrivals notify.
                while (
                    self._running
                    and len(self._batcher)
                    and not self._batcher.ready()
                ):
                    pause = self._batcher.deadline() - time.perf_counter()
                    if pause > 0:
                        self._cond.wait(pause)
                if not self._running:
                    return
                batch = self._batcher.pop_batch()
            if batch:
                self._execute(batch, arena)
                with self._cond:
                    for req in batch:
                        self._inflight_symbols -= req.cost_symbols
                    self._cond.notify_all()

    def _run_batch(
        self, batch: list[DecodeRequest], arena: ScratchArena
    ) -> MultiRunResult:
        """Execute one fused batch on the configured backend.

        ``"fused"`` dispatches a single in-process kernel call;
        ``"thread"``/``"process"`` rebase the batch onto one virtual
        stream (:func:`~repro.parallel.fused.fuse_segments`) and fan
        the fused tasks across ``decode_workers`` — the same LPT shard
        plan either way, bit-identical output on every path.
        """
        first = batch[0].asset
        segments = [req.segment() for req in batch]
        if self._backend == "fused":
            return fused_run_multi(
                first.provider,
                first.lanes,
                segments,
                arena,
                out_dtype=first.out_dtype,
            )
        from repro.parallel.shards import combine_stats

        words, tasks, slices, total = fuse_segments(segments)
        pooled = decode_with_pool(
            first.provider,
            first.lanes,
            words,
            tasks,
            total,
            first.out_dtype,
            workers=self.config.decode_workers,
            backend=self._backend,
            executor=self._shards,
        )
        if tasks and pooled.backend != self._backend:
            # A shard worker died and decode_with_pool fell back to
            # threads: make the degradation visible to operators.
            self._backend = pooled.backend
        stats = combine_stats(pooled.per_worker_stats)
        stats.tasks = len(tasks)
        return MultiRunResult(out=pooled.symbols, slices=slices, stats=stats)

    def _execute(
        self, batch: list[DecodeRequest], arena: ScratchArena
    ) -> None:
        t0 = time.perf_counter()
        try:
            result = self._run_batch(batch, arena)
        except Exception as exc:  # fail the whole batch, keep serving
            elapsed = time.perf_counter() - t0
            for req in batch:
                req.set_error(exc)
                self.metrics.record_completion(req.latency_s, ok=False)
            self.metrics.record_batch(
                len(batch), sum(r.task_lanes for r in batch), 0, elapsed
            )
            return
        elapsed = time.perf_counter() - t0
        for req, symbols in zip(batch, result.segment_outputs()):
            req.set_result(symbols)
            self.metrics.record_completion(req.latency_s, ok=True)
        self.metrics.record_batch(
            len(batch),
            result.stats.tasks,
            result.stats.symbols_decoded,
            elapsed,
        )
