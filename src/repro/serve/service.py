"""`RecoilService`: in-process batched content-delivery service.

The subsystem's facade, tying together the serving pipeline of
DESIGN.md §12:

1. **Store** (:mod:`repro.serve.store`): assets are encoded once at
   maximum parallelism; per-request metadata shrinking is answered
   from an LRU cache keyed ``(asset, client_capacity)``.
2. **Batcher** (:mod:`repro.serve.batcher`): concurrent decompress
   requests collected over a short window (or until the lane budget
   fills) dispatch as ONE fused multi-task kernel call — cross-request
   fusion over the `(P*K,)` wide-lane layout of PRs 1–2.
3. **Admission** (backpressure): in-flight work is bounded by the cost
   model's walked-symbol estimates; submitters block (up to a
   timeout) when the bound is saturated, so a burst cannot queue
   unbounded kernel work.

Clients are threads in the same process: ``decompress`` blocks for the
result, ``submit`` returns a request handle for async use.  A single
dispatcher thread owns the kernel-side scratch arena (arena rule 1,
DESIGN.md §9) and executes batches serially — the fused kernel is
already the width-optimal way to spend one core's time, and numpy
releases the GIL inside the wide ops, so client threads keep running.

Failure semantics (DESIGN.md §15): a failed fused batch is retried
request-by-request so only the poisoned request errors; a dead shard
pool degrades the service to the thread backend and a cooldown probe
re-promotes it once the pool has healed; per-request deadlines are
enforced *before* kernel dispatch, so an expired request never
occupies kernel time.  All of it is visible in
:meth:`RecoilService.metrics_snapshot` under ``"resilience"``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from repro import faults, trace
from repro.errors import (
    AdmissionError,
    DeadlineError,
    ParallelismError,
    ServeError,
)
from repro.parallel import compiled
from repro.parallel.buffers import ScratchArena
from repro.parallel.executor import decode_with_pool
from repro.parallel.fused import MultiRunResult, fuse_segments, fused_run_multi
from repro.rans.model import SymbolModel
from repro.serve.batcher import BatchPolicy, DecodeRequest, RequestBatcher
from repro.serve.metrics import ServeMetrics
from repro.serve.store import AssetStore, StoredAsset

#: decode backends a service dispatcher can fan batches out to.
DECODE_BACKENDS = ("fused", "thread", "process")


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one service instance (see DESIGN.md §12, §14)."""

    #: how long the oldest pending request may wait for companions.
    batch_window_s: float = 0.002
    #: hard cap on requests fused into one kernel call.
    max_batch_requests: int = 64
    #: lane budget: max total decoder tasks per fused call.
    max_batch_task_lanes: int = 512
    #: admission bound on in-flight estimated walked symbols.
    max_inflight_symbols: int = 32_000_000
    #: how long a submitter may block on admission before
    #: :class:`~repro.errors.AdmissionError`.
    admission_timeout_s: float = 30.0
    #: disable cross-request fusion (one request per kernel call, in
    #: arrival order) — the benchmark baseline.
    batching: bool = True
    #: LRU capacity of the shrink cache (entries).
    shrink_cache_entries: int = 256
    #: optional byte bound on the shrink cache (total cached variant
    #: blob bytes; ``None`` = entries-only bound).
    shrink_cache_bytes: int | None = None
    #: durable store directory (DESIGN.md §18): ``OP_PUT``/``put_*``
    #: ingests persist crash-safely, startup recovers and quarantines,
    #: evicted assets hydrate back from here.  ``None`` = memory-only.
    store_dir: str | None = None
    #: resident-tier byte budget: LRU assets evict from memory past
    #: this bound (requires a ``store_dir`` to evict to; ``None`` =
    #: everything stays resident).
    resident_bytes: int | None = None
    #: how a fused batch executes: ``"fused"`` — one in-process kernel
    #: call on the dispatcher thread (width-optimal for one core);
    #: ``"thread"`` — fan the batch across ``decode_workers`` OS
    #: threads; ``"process"`` — fan it across ``decode_workers`` shard
    #: processes (DESIGN.md §14; falls back to ``"thread"`` when
    #: shared memory is unavailable).  Any of them may carry a
    #: ``"+compiled"`` suffix (bare ``"compiled"`` means
    #: ``"fused+compiled"``) to run the compiled inner-loop kernel
    #: (DESIGN.md §19); without a toolchain the service degrades to
    #: the numpy kernel and reports it under
    #: ``metrics_snapshot()["resilience"]["kernel"]``.
    decode_backend: str = "fused"
    #: worker count for the ``"thread"``/``"process"`` backends.
    decode_workers: int = 8
    #: seconds after a process→thread degradation before the service
    #: probes the shard pool for re-promotion (doubles per failed
    #: probe, capped at ``repromote_cooldown_cap_s``).
    repromote_cooldown_s: float = 5.0
    #: ceiling on the re-promotion probe backoff.
    repromote_cooldown_cap_s: float = 60.0
    #: how long :meth:`RecoilService.close` waits for the dispatcher
    #: thread before raising instead of hanging.
    close_timeout_s: float = 10.0

    def __post_init__(self) -> None:
        try:
            pool, _ = compiled.split_backend(
                self.decode_backend, default_pool="fused"
            )
        except ValueError:
            pool = self.decode_backend  # bad "+" suffix → report below
        if pool not in DECODE_BACKENDS:
            raise ServeError(
                f"unknown decode backend {self.decode_backend!r}; "
                f"expected one of "
                f"{compiled.backend_choices(DECODE_BACKENDS)}"
            )
        if self.decode_workers < 1:
            raise ServeError(
                f"decode_workers must be >= 1, got {self.decode_workers}"
            )
        if self.repromote_cooldown_s <= 0:
            raise ServeError(
                f"repromote_cooldown_s must be > 0, got "
                f"{self.repromote_cooldown_s}"
            )
        if self.repromote_cooldown_cap_s < self.repromote_cooldown_s:
            raise ServeError(
                "repromote_cooldown_cap_s must be >= repromote_cooldown_s"
            )
        if self.close_timeout_s <= 0:
            raise ServeError(
                f"close_timeout_s must be > 0, got {self.close_timeout_s}"
            )
        if self.shrink_cache_bytes is not None and self.shrink_cache_bytes < 1:
            raise ServeError(
                f"shrink_cache_bytes must be >= 1, got "
                f"{self.shrink_cache_bytes}"
            )
        if self.resident_bytes is not None and self.resident_bytes < 1:
            raise ServeError(
                f"resident_bytes must be >= 1, got {self.resident_bytes}"
            )

    def batch_policy(self) -> BatchPolicy:
        if not self.batching:
            return BatchPolicy(window_s=0.0, max_requests=1)
        return BatchPolicy(
            window_s=self.batch_window_s,
            max_requests=self.max_batch_requests,
            max_task_lanes=self.max_batch_task_lanes,
        )


class RecoilService:
    """Batched content-delivery service over an :class:`AssetStore`."""

    def __init__(
        self,
        store: AssetStore | None = None,
        config: ServiceConfig | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.store = store or AssetStore(
            shrink_cache_entries=self.config.shrink_cache_entries,
            shrink_cache_bytes=self.config.shrink_cache_bytes,
            store_dir=self.config.store_dir,
            resident_bytes=self.config.resident_bytes,
        )
        self.metrics = ServeMetrics()
        self._cond = threading.Condition()
        self._batcher = RequestBatcher(self.config.batch_policy())
        self._inflight_symbols = 0
        self._running = True
        # close() is reachable from signal handlers and racing threads
        # (the network front-end's drain path): one winner tears down,
        # everyone else waits on _close_done — and a re-entrant call
        # from a signal handler interrupting the winner returns
        # immediately instead of deadlocking on the winner's own locks.
        self._close_lock = threading.Lock()
        self._close_owner: threading.Thread | None = None
        self._close_done = threading.Event()
        self._net_metrics = None
        # The shard pool (when requested) starts BEFORE the dispatcher
        # thread: forking from a single-threaded process is the only
        # portable-safe moment.  Unavailable shared memory degrades to
        # the thread backend (``decode_backend`` reports the truth).
        pool_backend, kernel = compiled.split_backend(
            self.config.decode_backend, default_pool="fused"
        )
        self._backend = pool_backend
        #: what the operator asked for — ``decode_backend`` may differ
        #: after a degradation, and re-promotion aims back at this.
        self._configured_backend = pool_backend
        #: inner-loop kernel: requested vs what actually runs.  The
        #: warm-up also front-loads the one-time compile (DESIGN.md
        #: §19) so it never lands inside a request's timed path.
        self._configured_kernel = kernel
        self._kernel = (
            compiled.warm_up() if kernel == "compiled" else "numpy"
        )
        self._repromote_at = 0.0
        self._promote_fails = 0
        self._shards = None
        if self._backend == "process":
            from repro.parallel import shards as shards_mod

            if shards_mod.sharding_available():
                try:
                    self._shards = shards_mod.ShardedExecutor(
                        self.config.decode_workers
                    )
                except ParallelismError:
                    self._shards = None
            if self._shards is None:
                self._backend = "thread"
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop,
            name="recoil-serve-dispatch",
            daemon=True,
        )
        self._dispatcher.start()

    @property
    def decode_backend(self) -> str:
        """Backend batches actually execute on.

        Reports ``"thread"`` after a graceful fallback from an
        unavailable ``"process"`` request — including mid-life, when a
        shard worker dies and the pool degrades the service to the
        thread fan-out.  The degradation is temporary: once
        ``repromote_cooldown_s`` has elapsed the dispatcher probes the
        (self-healing) pool and promotes back to ``"process"`` when it
        answers — watch ``metrics_snapshot()["resilience"]``."""
        return self._backend

    @property
    def decode_kernel(self) -> str:
        """Inner-loop kernel batches actually run (``"numpy"`` after a
        graceful fallback from a ``"compiled"`` request on a host with
        no compilation toolchain — DESIGN.md §19)."""
        return self._kernel

    # -- lifecycle -----------------------------------------------------

    def __enter__(self) -> "RecoilService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Stop accepting requests and fail anything still pending.

        Idempotent and re-entrant: ``close()`` is reachable from
        signal handlers and from multiple threads at once (the network
        front-end's drain path, a double Ctrl-C).  Exactly one caller
        — the *winner* — performs the teardown; a racing thread blocks
        until the winner finishes (bounded by ``close_timeout_s``) and
        returns quietly; a re-entrant call on the winner's own thread
        (a signal handler interrupting the teardown) returns
        immediately, because waiting there would deadlock the very
        teardown it is waiting for.

        The winner joins the dispatcher thread (bounded by
        ``close_timeout_s``), stops the shard pool (process backend),
        and fails queued requests with
        :class:`~repro.errors.ServeError`.

        :raises ServeError: (winner only) the dispatcher thread did
            not exit within ``close_timeout_s`` (named in the message
            so operators can find it) — the service is still marked
            closed and queued requests are failed, but the wedged
            thread leaks.
        """
        if not self._close_lock.acquire(blocking=False):
            # Someone is already closing.  If that someone is *this*
            # thread (a signal handler interrupting our own teardown,
            # or a callback fired from inside it), return now — any
            # wait would deadlock.  Otherwise wait for the winner.
            if self._close_owner is threading.current_thread():
                return
            self._close_done.wait(self.config.close_timeout_s)
            return
        self._close_owner = threading.current_thread()
        try:
            if self._close_done.is_set():
                return
            with self._cond:
                self._running = False
                self._cond.notify_all()
            # A close() issued *from* the dispatcher thread (a fault
            # callback, a test) must not join itself.
            if self._dispatcher is not threading.current_thread():
                self._dispatcher.join(self.config.close_timeout_s)
            wedged = (
                self._dispatcher.is_alive()
                and self._dispatcher is not threading.current_thread()
            )
            if self._shards is not None:
                self._shards.close()
            with self._cond:
                leftovers = self._batcher.drain()
                self._inflight_symbols = 0
                self._cond.notify_all()
            for req in leftovers:
                req.set_error(ServeError("service closed"))
                self.metrics.record_completion(req.latency_s, ok=False)
            self._close_done.set()
            if wedged:
                raise ServeError(
                    f"dispatcher thread {self._dispatcher.name!r} did "
                    f"not exit within {self.config.close_timeout_s:.3g}s "
                    f"of close(); it is leaked (likely stuck in a "
                    f"kernel or a hung worker pipe)"
                )
        finally:
            # Set done even on a teardown error: waiters must not hang
            # on a winner that raised.
            self._close_done.set()
            self._close_owner = None
            self._close_lock.release()

    @property
    def closed(self) -> bool:
        return not self._running

    # -- ingest --------------------------------------------------------

    def put_asset(
        self,
        name: str,
        data: np.ndarray,
        num_splits: int | None = None,
        quant_bits: int | None = None,
        model: SymbolModel | None = None,
    ) -> StoredAsset:
        """Encode ``data`` once (at max parallelism) and store it.

        :param name: asset name (re-putting a name replaces the asset
            and invalidates its cached shrinks).
        :param data: symbol array to compress.
        :param num_splits: decoder parallelism to encode metadata for
            (default: the store's ``default_num_splits``).
        :param quant_bits: probability quantization level ``n``.
        :param model: explicit symbol model (default: fitted to
            ``data`` and embedded in the container).
        :returns: the stored asset with its parsed container.
        :raises EncodeError: empty/invalid data or ``num_splits < 1``.
        :raises ModelError: a malformed explicit model.
        """
        return self.store.put(
            name,
            data,
            num_splits=num_splits,
            quant_bits=quant_bits,
            model=model,
        )

    def put_container(self, name: str, blob: bytes, provider=None):
        """Store an already-encoded container under ``name``.

        :param provider: model provider for containers whose model
            travels out of band (adaptive encodes).
        :returns: the stored :class:`~repro.serve.store.StoredAsset`.
        :raises ContainerError: malformed container bytes.
        :raises MetadataError: a model is required but missing.
        """
        return self.store.put_container(name, blob, provider=provider)

    # -- serving (bytes on the wire) -----------------------------------

    def serve(
        self, name: str, capacity: int, timeout: float | None = None
    ) -> bytes:
        """Container bytes shrunk to ``capacity`` (the per-request
        real-time operation of §3.3; cached).

        :param timeout: optional deadline in seconds; a shrink that
            takes longer (a cold cache miss on a huge master under
            load) raises instead of returning late.
        :returns: servable container bytes (same payload as the
            master, combined metadata).
        :raises ServeError: unknown asset.
        :raises MetadataError: ``capacity < 1``.
        :raises DeadlineError: the shrink missed ``timeout``.
        """
        t0 = time.perf_counter()
        variant, hit = self.store.shrunk(name, capacity)
        if (
            timeout is not None
            and time.perf_counter() - t0 > timeout
        ):
            self.metrics.record_deadline_expired()
            raise DeadlineError(
                f"serve({name!r}, capacity={capacity}) missed its "
                f"{timeout:.3g}s deadline"
            )
        self.metrics.record_shrink(len(variant.blob), cache_hit=hit)
        return variant.blob

    # -- decoding ------------------------------------------------------

    def submit(
        self,
        name: str,
        capacity: int,
        timeout: float | None = None,
        *,
        trace_req: int | None = None,
        trace_parent: int | None = None,
    ) -> DecodeRequest:
        """Enqueue a decompress request; returns a waitable handle.

        Blocks (backpressure) while the in-flight work bound is
        saturated.

        :param name: stored asset to decode.
        :param capacity: the client's advertised decoder parallelism
            (selects the shrunk variant whose tasks the kernel runs).
        :param timeout: optional per-request deadline in seconds,
            measured from now.  A request whose deadline passes while
            it is still queued is failed by the dispatcher with
            :class:`~repro.errors.DeadlineError` *without* occupying
            kernel time; a deadline that expires during the admission
            wait raises it here.
        :returns: a handle whose :meth:`~DecodeRequest.result` blocks
            for the decoded symbols.
        :raises ServeError: unknown asset, the service is closed, or
            ``timeout <= 0``.
        :raises MetadataError: ``capacity < 1``.
        :raises AdmissionError: the in-flight bound stayed saturated
            past ``admission_timeout_s``.
        :raises DeadlineError: ``timeout`` elapsed before admission.

        ``trace_req``/``trace_parent`` adopt an already-open trace
        context (the network front-end's request id and span) so the
        service spans stitch under the connection's timeline; omitted,
        a traced submit opens its own request.
        """
        if not self._running:
            raise ServeError("service closed")
        if timeout is not None and timeout <= 0:
            raise ServeError(
                f"timeout must be positive, got {timeout}"
            )
        t_submit = time.perf_counter()
        variant, hit = self.store.shrunk(name, capacity)
        t_shrunk = time.perf_counter()
        self.metrics.record_shrink(len(variant.blob), cache_hit=hit)
        self.metrics.record_stage("shrink", t_shrunk - t_submit)
        # variant.asset, not a second store.get(): a concurrent put()
        # replacing the name must not pair old tasks with new words.
        request_deadline = (
            None if timeout is None else time.perf_counter() + timeout
        )
        request = DecodeRequest(
            variant.asset,
            variant,
            deadline=request_deadline,
            submitted_at=t_submit,
        )
        if trace.enabled():
            request.trace_req = (
                trace_req if trace_req is not None else trace.new_request()
            )
            request.trace_parent = trace_parent
            request.trace_root = trace.next_span_id()
            trace.record_span(
                "serve.shrink",
                t_submit,
                t_shrunk,
                req=request.trace_req,
                parent=request.trace_root,
                args={"asset": name, "cache_hit": hit},
            )

        cost = request.cost_symbols
        admit_by = time.perf_counter() + self.config.admission_timeout_s
        if request_deadline is not None:
            admit_by = min(admit_by, request_deadline)
        t_admission = time.perf_counter()
        with self._cond:
            waited = False
            while (
                self._running
                and self._inflight_symbols > 0
                and self._inflight_symbols + cost
                > self.config.max_inflight_symbols
            ):
                if not waited:
                    waited = True
                    self.metrics.record_admission_wait()
                remaining = admit_by - time.perf_counter()
                if remaining <= 0 or not self._cond.wait(remaining):
                    now = time.perf_counter()
                    if (
                        request_deadline is not None
                        and now >= request_deadline
                    ):
                        self.metrics.record_deadline_expired()
                        raise DeadlineError(
                            f"request deadline ({timeout:.3g}s) expired "
                            f"while blocked on admission "
                            f"({self._inflight_symbols:,} symbols in "
                            f"flight)"
                        )
                    self.metrics.record_admission_rejected()
                    raise AdmissionError(
                        f"admission timed out after "
                        f"{self.config.admission_timeout_s:.3g}s "
                        f"({self._inflight_symbols:,} symbols in flight, "
                        f"bound {self.config.max_inflight_symbols:,})"
                    )
            if not self._running:
                raise ServeError("service closed")
            self._inflight_symbols += cost
            self.metrics.record_inflight(self._inflight_symbols)
            request.admitted_at = time.perf_counter()
            self._batcher.add(request)
            # Counted only once enqueued, so submitted always
            # reconciles with completed + failed.
            self.metrics.record_submit()
            self._cond.notify_all()
        self.metrics.record_stage(
            "admission", request.admitted_at - t_admission
        )
        if request.trace_req is not None:
            trace.record_span(
                "serve.admission",
                t_admission,
                request.admitted_at,
                req=request.trace_req,
                parent=request.trace_root,
                args={"waited": waited},
            )
        return request

    def decompress(
        self,
        name: str,
        capacity: int,
        timeout: float | None = None,
        *,
        trace_req: int | None = None,
        trace_parent: int | None = None,
    ) -> np.ndarray:
        """Decode asset ``name`` as a ``capacity``-thread client would,
        through the batched service path.

        :param timeout: per-request deadline in seconds (``None`` =
            no deadline).  Enforced service-side: a request that is
            still queued when the deadline passes is failed with
            :class:`~repro.errors.DeadlineError` without occupying
            kernel time.
        :returns: the decoded symbol array (bit-identical to
            :func:`repro.core.api.recoil_decompress` on the served
            bytes).
        :raises ServeError: unknown asset or closed service.
        :raises AdmissionError: admission timed out (backpressure).
        :raises DecodeError: the stored container failed to decode.
        :raises DeadlineError: the deadline expired before the batch
            ran.
        :raises TimeoutError: the deadline passed while the batch was
            already executing (the dispatcher only enforces deadlines
            *before* kernel dispatch; an in-kernel request runs to
            completion, this client just stops waiting for it).
        """
        request = self.submit(
            name,
            capacity,
            timeout=timeout,
            trace_req=trace_req,
            trace_parent=trace_parent,
        )
        if request.deadline is None:
            return request.result()
        # Small grace past the deadline so the dispatcher's typed
        # DeadlineError (set at pop_expired) wins over a bare client
        # TimeoutError in the common still-queued case.
        remaining = request.deadline - time.perf_counter()
        return request.result(max(remaining, 0.0) + 0.1)

    def attach_network_metrics(self, net_metrics) -> None:
        """Register a front-end's :class:`~repro.serve.metrics.NetMetrics`
        so :meth:`metrics_snapshot` reports a ``"network"`` section
        (one unified operator view; called by
        :class:`~repro.serve.net.NetServer`)."""
        self._net_metrics = net_metrics

    def metrics_snapshot(self) -> dict:
        """JSON-able service counters (requests, batches, shrink cache,
        admission, resilience, and — when a network front-end is
        attached — connection/protocol/drain counters under
        ``"network"``) plus store statistics — see
        :class:`repro.serve.metrics.ServeMetrics` and
        :class:`repro.serve.metrics.NetMetrics`."""
        snap = self.metrics.snapshot()
        snap["network"] = (
            self._net_metrics.snapshot()
            if self._net_metrics is not None
            else None
        )
        snap["store"] = self.store.metrics()
        snap["resilience"]["backend"] = {
            "configured": self._configured_backend,
            "effective": self._backend,
        }
        snap["resilience"]["kernel"] = {
            "configured": self._configured_kernel,
            "effective": self._kernel,
        }
        # Flat numerics: the resilience section is all-zero on a clean
        # run (tests rely on that); the degradation reason string lives
        # in snap["store"].
        snap["resilience"]["store_degradations"] = (
            self.store.store_degradations
        )
        snap["resilience"]["store_persist_failures"] = (
            self.store.persist_failures
        )
        snap["resilience"]["store_memory_only"] = int(
            self.store.memory_only
        )
        shards = self._shards
        if shards is not None:
            snap["resilience"]["shards"] = {
                "respawns": shards.respawns,
                "dead_workers": shards.dead_workers(),
                "pool_broken": shards.broken,
            }
        return snap

    # -- dispatcher ----------------------------------------------------

    def _dispatch_loop(self) -> None:
        # The dispatcher owns the kernel scratch arena: one thread,
        # one arena (DESIGN.md §9 rule 1).
        arena = ScratchArena()
        while True:
            with self._cond:
                while self._running and not len(self._batcher):
                    self._cond.wait()
                # Hold the batch open until the window closes or the
                # lane budget fills; new arrivals notify.  The
                # batcher's deadline() also covers per-request
                # deadlines, so an expiry wakes this wait promptly.
                while (
                    self._running
                    and len(self._batcher)
                    and not self._batcher.ready()
                ):
                    pause = self._batcher.deadline() - time.perf_counter()
                    if pause > 0:
                        self._cond.wait(pause)
                if not self._running:
                    return
                # Deadline enforcement happens HERE, before dispatch:
                # an expired request is dropped from the queue and
                # never occupies kernel time.
                expired = self._batcher.pop_expired()
                if expired:
                    for req in expired:
                        self._inflight_symbols -= req.cost_symbols
                    self._cond.notify_all()
                batch = []
                if len(self._batcher) and self._batcher.ready():
                    batch = self._batcher.pop_batch()
            for req in expired:
                self.metrics.record_deadline_expired()
                req.set_error(
                    DeadlineError(
                        f"deadline expired after "
                        f"{req.latency_s:.3g}s in queue "
                        f"(asset {req.asset.name!r})"
                    )
                )
                self.metrics.record_completion(req.latency_s, ok=False)
            if batch:
                self._maybe_repromote()
                self._execute(batch, arena)
                with self._cond:
                    for req in batch:
                        self._inflight_symbols -= req.cost_symbols
                    self._cond.notify_all()

    # -- self-healing (DESIGN.md §15) ----------------------------------

    def _degrade(self) -> None:
        """Record a process→thread fall and schedule the first
        re-promotion probe (dispatcher thread only)."""
        self.metrics.record_degradation()
        self._backend = "thread"
        self._promote_fails = 0
        self._repromote_at = (
            time.perf_counter() + self.config.repromote_cooldown_s
        )

    def _maybe_repromote(self) -> None:
        """Probe the shard pool after a degradation cooldown and
        promote back to the process backend when it answers.

        Runs on the dispatcher thread just before a batch executes —
        so a promotion applies to real traffic immediately.  A failed
        probe doubles the cooldown (capped).  A terminally broken or
        closed pool is replaced with a fresh one (safe here: the
        executor spawn-guards against forking a threaded process).
        """
        if (
            self._configured_backend != "process"
            or self._backend == "process"
            or self._shards is None
            or time.perf_counter() < self._repromote_at
        ):
            return
        self.metrics.record_promotion_probe()
        try:
            if self._shards.broken or self._shards.closed:
                from repro.parallel import shards as shards_mod

                fresh = shards_mod.ShardedExecutor(
                    self.config.decode_workers
                )
                self._shards.close()
                self._shards = fresh
            self._shards.warm()
        except ParallelismError:
            self._promote_fails += 1
            cooldown = min(
                self.config.repromote_cooldown_s
                * 2**self._promote_fails,
                self.config.repromote_cooldown_cap_s,
            )
            self._repromote_at = time.perf_counter() + cooldown
            return
        self._backend = "process"
        self._promote_fails = 0
        self.metrics.record_promotion()

    def _run_batch(
        self, batch: list[DecodeRequest], arena: ScratchArena
    ) -> MultiRunResult:
        """Execute one fused batch on the configured backend.

        ``"fused"`` dispatches a single in-process kernel call;
        ``"thread"``/``"process"`` rebase the batch onto one virtual
        stream (:func:`~repro.parallel.fused.fuse_segments`) and fan
        the fused tasks across ``decode_workers`` — the same LPT shard
        plan either way, bit-identical output on every path.
        """
        faults.fire(faults.BATCH_DISPATCH)
        for req in batch:
            faults.fire(faults.SERVE_REQUEST, key=req.asset.name)
        first = batch[0].asset
        segments = [req.segment() for req in batch]
        if self._backend == "fused":
            return fused_run_multi(
                first.provider,
                first.lanes,
                segments,
                arena,
                out_dtype=first.out_dtype,
                kernel=self._kernel,
            )
        from repro.parallel.shards import combine_stats

        words, tasks, slices, total = fuse_segments(segments)
        pooled = decode_with_pool(
            first.provider,
            first.lanes,
            words,
            tasks,
            total,
            first.out_dtype,
            workers=self.config.decode_workers,
            backend=(
                self._backend + "+compiled"
                if self._kernel == "compiled"
                else self._backend
            ),
            executor=self._shards,
        )
        if (
            tasks
            and self._backend == "process"
            and pooled.backend != "process"
        ):
            # A shard worker died (or shm ran dry) and decode_with_pool
            # fell back to threads: record the degradation and schedule
            # a re-promotion probe — the output is still bit-identical.
            self._degrade()
        stats = combine_stats(pooled.per_worker_stats)
        stats.tasks = len(tasks)
        return MultiRunResult(out=pooled.symbols, slices=slices, stats=stats)

    def _traced_run_batch(
        self, batch: list[DecodeRequest], arena: ScratchArena
    ) -> MultiRunResult:
        """:meth:`_run_batch` under a ``serve.batch`` span whose id is
        published as the thread's implicit parent, so shard-worker
        spans recorded layers below attach to this dispatch.  With
        tracing disabled this is a direct call — no span, no scope."""
        sid = trace.next_span_id()
        if sid is None:
            return self._run_batch(batch, arena)
        t0 = time.perf_counter()
        try:
            with trace.parent_scope(sid):
                return self._run_batch(batch, arena)
        finally:
            trace.record_span(
                "serve.batch",
                t0,
                sid=sid,
                args={
                    "requests": len(batch),
                    "backend": self._backend,
                },
            )

    def _finish_stages(
        self,
        req: DecodeRequest,
        kernel_t0: float,
        kernel_s: float,
        ok: bool,
    ) -> None:
        """Per-request stage accounting at completion: batch-window
        residency, kernel time (the whole batch's elapsed — the time
        the request spent in dispatch), and the end-to-end ``request``
        stage, plus the matching spans when the request is traced.

        The stage decomposition is designed to sum: ``request ≈
        shrink + admission + batch_window + kernel`` (the remainder is
        result-delivery slack), which the benchmark stage-breakdown
        sections assert against end-to-end latency.
        """
        m = self.metrics
        if req.admitted_at is not None:
            m.record_stage(
                "batch_window", max(kernel_t0 - req.admitted_at, 0.0)
            )
        m.record_stage("kernel", kernel_s)
        completed = (
            req.completed_at
            if req.completed_at is not None
            else kernel_t0 + kernel_s
        )
        m.record_stage("request", completed - req.submitted_at)
        if req.trace_req is not None:
            if req.admitted_at is not None:
                trace.record_span(
                    "serve.batch_window",
                    req.admitted_at,
                    kernel_t0,
                    req=req.trace_req,
                    parent=req.trace_root,
                )
            trace.record_span(
                "serve.kernel",
                kernel_t0,
                kernel_t0 + kernel_s,
                req=req.trace_req,
                parent=req.trace_root,
            )
            trace.record_span(
                "serve.request",
                req.submitted_at,
                completed,
                req=req.trace_req,
                parent=req.trace_parent,
                sid=req.trace_root,
                args={"asset": req.asset.name, "ok": ok},
            )

    def _execute(
        self, batch: list[DecodeRequest], arena: ScratchArena
    ) -> None:
        t0 = time.perf_counter()
        try:
            result = self._traced_run_batch(batch, arena)
        except Exception as exc:
            elapsed = time.perf_counter() - t0
            self.metrics.record_batch(
                len(batch), sum(r.task_lanes for r in batch), 0, elapsed
            )
            if len(batch) == 1:
                req = batch[0]
                req.set_error(exc)
                self.metrics.record_completion(req.latency_s, ok=False)
                self._finish_stages(req, t0, elapsed, ok=False)
                return
            # Poison isolation: one bad request must not fail its
            # batchmates.  Retry each request alone through the same
            # path — innocents decode bit-identically (the kernel is
            # deterministic and each solo run sees only its own
            # segment), and only the poisoned request re-raises.
            self.metrics.record_poison_batch()
            self._retry_individually(batch, arena)
            return
        elapsed = time.perf_counter() - t0
        for req, symbols in zip(batch, result.segment_outputs()):
            req.set_result(symbols)
            self.metrics.record_completion(req.latency_s, ok=True)
            self._finish_stages(req, t0, elapsed, ok=True)
        self.metrics.record_batch(
            len(batch),
            result.stats.tasks,
            result.stats.symbols_decoded,
            elapsed,
        )

    def _retry_individually(
        self, batch: list[DecodeRequest], arena: ScratchArena
    ) -> None:
        """Re-run a failed batch one request at a time (poison
        isolation).  Requests whose deadline lapsed during the failed
        group attempt are failed without kernel time, like any other
        expired request."""
        for req in batch:
            now = time.perf_counter()
            if req.deadline is not None and now >= req.deadline:
                self.metrics.record_deadline_expired()
                req.set_error(
                    DeadlineError(
                        f"deadline expired during poison-isolation "
                        f"retry (asset {req.asset.name!r})"
                    )
                )
                self.metrics.record_completion(req.latency_s, ok=False)
                continue
            t0 = time.perf_counter()
            try:
                solo = self._traced_run_batch([req], arena)
            except Exception as exc:
                elapsed = time.perf_counter() - t0
                self.metrics.record_poison_retry(isolated=True)
                self.metrics.record_batch(1, req.task_lanes, 0, elapsed)
                req.set_error(exc)
                self.metrics.record_completion(req.latency_s, ok=False)
                self._finish_stages(req, t0, elapsed, ok=False)
                continue
            elapsed = time.perf_counter() - t0
            self.metrics.record_poison_retry(isolated=False)
            req.set_result(solo.segment_outputs()[0])
            self.metrics.record_completion(req.latency_s, ok=True)
            self._finish_stages(req, t0, elapsed, ok=True)
            self.metrics.record_batch(
                1, solo.stats.tasks, solo.stats.symbols_decoded, elapsed
            )
