"""Wire protocol for the network serving front-end.

A small length-prefixed binary request/response protocol spoken by
:class:`repro.serve.net.NetServer` and
:class:`repro.serve.client.RecoilClient` (DESIGN.md §16).  Every frame
— request or response — has the same 7-byte header::

    | magic "Rn" (2B) | frame type (u8) | body length (u32, BE) | body |

Requests are single frames.  Small responses (ping, put, metrics) are
single ``ST_OK`` frames; container bytes and decoded symbol arrays are
**streamed**: one ``ST_STREAM_BEGIN`` frame declaring kind/dtype/total
size, zero or more ``ST_STREAM_CHUNK`` frames of raw payload, and one
``ST_STREAM_END`` frame carrying the CRC-32 of the whole payload so the
receiver can verify integrity without buffering limits on the sender.

Robustness contract (both sides):

- every parser is **strict**: bad magic, an unknown frame type, a
  declared length above the frame cap, a truncated or over-long body,
  or invalid UTF-8 raises :class:`~repro.errors.ProtocolError` — never
  a builtin leaking from ``struct``/``codecs``;
- the header is validated *before* the body is read, so an implausible
  declared length can never drive an allocation;
- error responses are typed: :data:`ERROR_CODES` maps the library's
  exception hierarchy onto one-byte wire codes and back, so a client
  re-raises the same exception class the server caught.

The module is pure (bytes in, bytes/values out) — all socket I/O,
deadlines and fault points live in :mod:`repro.serve.net` and
:mod:`repro.serve.client`.
"""

from __future__ import annotations

import struct
import zlib

from repro.errors import (
    AdmissionError,
    ContainerError,
    DeadlineError,
    DecodeError,
    EncodeError,
    FaultInjected,
    IntegrityError,
    MetadataError,
    ModelError,
    ParallelismError,
    ProtocolError,
    ReproError,
    ServeError,
)

#: frame magic: cheap detection of a peer speaking something else.
MAGIC = b"Rn"
_HEADER = struct.Struct(">2sBI")
#: bytes of every frame header.
HEADER_BYTES = _HEADER.size
#: hard cap on a single frame body (requests and non-streamed
#: responses).  Streamed payloads are unbounded — their chunks are
#: individually small.
MAX_FRAME_BYTES = 16 * 1024 * 1024
#: cap on asset-name bytes inside a request.
MAX_NAME_BYTES = 1024

# -- frame types ------------------------------------------------------------

OP_PING = 0x01  #: echo body (liveness / latency probe)
OP_SERVE = 0x02  #: shrunk container bytes for (name, capacity)
OP_DECODE = 0x03  #: decoded symbols for (name, capacity[, timeout])
OP_PUT = 0x04  #: store a container blob under a name
OP_METRICS = 0x05  #: JSON metrics snapshot
OP_TRACE = 0x06  #: Chrome trace-event JSON of the server's span ring

ST_OK = 0x80  #: complete response in one frame
ST_STREAM_BEGIN = 0x81  #: streamed response follows
ST_STREAM_CHUNK = 0x82  #: raw payload bytes
ST_STREAM_END = 0x83  #: CRC-32 trailer, terminates the stream
ST_ERROR = 0x90  #: typed error (code + message)
ST_RETRY_AFTER = 0x91  #: load shed: retry after the suggested delay

REQUEST_TYPES = (
    OP_PING,
    OP_SERVE,
    OP_DECODE,
    OP_PUT,
    OP_METRICS,
    OP_TRACE,
)
RESPONSE_TYPES = (
    ST_OK,
    ST_STREAM_BEGIN,
    ST_STREAM_CHUNK,
    ST_STREAM_END,
    ST_ERROR,
    ST_RETRY_AFTER,
)

#: stream payload kinds (``ST_STREAM_BEGIN``).
KIND_BYTES = 0  #: raw bytes (container blobs)
KIND_ARRAY = 1  #: a numpy array (dtype string travels in the header)

# -- typed error codes ------------------------------------------------------

ERR_PROTOCOL = 1
ERR_SERVE = 2
ERR_ADMISSION = 3
ERR_DEADLINE = 4
ERR_DECODE = 5
ERR_METADATA = 6
ERR_CONTAINER = 7
ERR_MODEL = 8
ERR_ENCODE = 9
ERR_PARALLELISM = 10
ERR_FAULT = 11
ERR_INTERNAL = 12
ERR_INTEGRITY = 13

#: wire code -> exception class (client-side re-raise).
ERROR_CODES: dict[int, type] = {
    ERR_PROTOCOL: ProtocolError,
    ERR_SERVE: ServeError,
    ERR_ADMISSION: AdmissionError,
    ERR_DEADLINE: DeadlineError,
    ERR_DECODE: DecodeError,
    ERR_METADATA: MetadataError,
    ERR_CONTAINER: ContainerError,
    ERR_MODEL: ModelError,
    ERR_ENCODE: EncodeError,
    ERR_PARALLELISM: ParallelismError,
    ERR_FAULT: FaultInjected,
    ERR_INTERNAL: ServeError,
    ERR_INTEGRITY: IntegrityError,
}

#: exception class -> wire code, most-derived first (isinstance walk).
_CODE_FOR: tuple[tuple[type, int], ...] = (
    (ProtocolError, ERR_PROTOCOL),
    (IntegrityError, ERR_INTEGRITY),
    (AdmissionError, ERR_ADMISSION),
    (DeadlineError, ERR_DEADLINE),
    (FaultInjected, ERR_FAULT),
    (DecodeError, ERR_DECODE),
    (MetadataError, ERR_METADATA),
    (ContainerError, ERR_CONTAINER),
    (ModelError, ERR_MODEL),
    (EncodeError, ERR_ENCODE),
    (ParallelismError, ERR_PARALLELISM),
    (ServeError, ERR_SERVE),
    (ReproError, ERR_SERVE),
)


def error_code_for(exc: BaseException) -> int:
    """Wire code for an exception (``ERR_INTERNAL`` when unmapped)."""
    for cls, code in _CODE_FOR:
        if isinstance(exc, cls):
            return code
    return ERR_INTERNAL


def exception_for(code: int, message: str) -> ReproError:
    """Reconstruct the typed exception a server shipped."""
    cls = ERROR_CODES.get(code, ServeError)
    return cls(message)


crc32 = zlib.crc32

# ---------------------------------------------------------------------------
# Framing.
# ---------------------------------------------------------------------------


def encode_frame(ftype: int, body: bytes = b"") -> bytes:
    """One complete frame (header + body)."""
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame body of {len(body):,} bytes exceeds the "
            f"{MAX_FRAME_BYTES:,}-byte frame cap"
        )
    return _HEADER.pack(MAGIC, ftype, len(body)) + body


def parse_header(
    header: bytes,
    expect: tuple[int, ...],
    max_frame_bytes: int = MAX_FRAME_BYTES,
) -> tuple[int, int]:
    """Validate a 7-byte header; returns ``(frame_type, body_len)``.

    ``expect`` is the set of frame types legal in this direction —  a
    response type arriving where a request is expected (or vice versa)
    is a protocol violation, not a dispatch case.

    :raises ProtocolError: short header, bad magic, unknown/unexpected
        frame type, or a declared length above ``max_frame_bytes``
        (checked *here*, before any body allocation).
    """
    if len(header) < HEADER_BYTES:
        raise ProtocolError(
            f"truncated frame header ({len(header)} of "
            f"{HEADER_BYTES} bytes)"
        )
    magic, ftype, length = _HEADER.unpack(header[:HEADER_BYTES])
    if magic != MAGIC:
        raise ProtocolError(
            f"bad frame magic {magic!r} (expected {MAGIC!r})"
        )
    if ftype not in REQUEST_TYPES and ftype not in RESPONSE_TYPES:
        raise ProtocolError(f"unknown frame type 0x{ftype:02x}")
    if ftype not in expect:
        raise ProtocolError(
            f"unexpected frame type 0x{ftype:02x} for this direction"
        )
    if length > max_frame_bytes:
        raise ProtocolError(
            f"declared body length {length:,} exceeds the "
            f"{max_frame_bytes:,}-byte frame cap"
        )
    return ftype, length


class _Cursor:
    """Strict big-endian body reader: every field read is bounds
    checked and :meth:`done` rejects trailing junk."""

    def __init__(self, body: bytes, what: str) -> None:
        self._body = body
        self._pos = 0
        self._what = what

    def take(self, n: int) -> bytes:
        if self._pos + n > len(self._body):
            raise ProtocolError(
                f"truncated {self._what} body (wanted {n} more bytes "
                f"at offset {self._pos}, have "
                f"{len(self._body) - self._pos})"
            )
        out = self._body[self._pos : self._pos + n]
        self._pos += n
        return out

    def u8(self) -> int:
        return self.take(1)[0]

    def u16(self) -> int:
        return int.from_bytes(self.take(2), "big")

    def u32(self) -> int:
        return int.from_bytes(self.take(4), "big")

    def u64(self) -> int:
        return int.from_bytes(self.take(8), "big")

    def f64(self) -> float:
        return struct.unpack(">d", self.take(8))[0]

    def rest(self) -> bytes:
        out = self._body[self._pos :]
        self._pos = len(self._body)
        return out

    def text(self, n: int) -> str:
        raw = self.take(n)
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(
                f"invalid UTF-8 in {self._what} body: {exc}"
            ) from None

    def done(self) -> None:
        if self._pos != len(self._body):
            raise ProtocolError(
                f"{len(self._body) - self._pos} trailing bytes after "
                f"{self._what} body"
            )


def asset_name_problem(name: str) -> str | None:
    """Why ``name`` is not a valid asset name, or ``None`` if it is.

    Asset names become file names under a store directory
    (:mod:`repro.serve.disk`), so anything that could escape that
    directory or confuse a filesystem is rejected at every boundary:
    empty names, names over :data:`MAX_NAME_BYTES` UTF-8 bytes, path
    separators, ``..``, bare ``.``, and control characters.  The store
    raises :class:`~repro.errors.ServeError`, the wire parsers
    :class:`~repro.errors.ProtocolError` — both from this one rule.
    """
    if not isinstance(name, str) or not name:
        return "asset name must be a non-empty string"
    raw = name.encode("utf-8", errors="surrogatepass")
    if len(raw) > MAX_NAME_BYTES:
        return (
            f"asset name of {len(raw)} UTF-8 bytes exceeds the "
            f"{MAX_NAME_BYTES}-byte cap"
        )
    if "/" in name or "\\" in name:
        return f"asset name {name!r} contains a path separator"
    if ".." in name:
        return f"asset name {name!r} contains '..'"
    if name == ".":
        return "asset name '.' is reserved"
    if any(ord(ch) < 0x20 or ord(ch) == 0x7F for ch in name):
        return f"asset name {name!r} contains control characters"
    return None


def _name_bytes(name: str) -> bytes:
    problem = asset_name_problem(name)
    if problem is not None:
        raise ProtocolError(problem)
    return name.encode("utf-8")


def _read_name(cur: _Cursor) -> str:
    n = cur.u16()
    if not 1 <= n <= MAX_NAME_BYTES:
        raise ProtocolError(
            f"asset name length {n} outside 1..{MAX_NAME_BYTES}"
        )
    name = cur.text(n)
    problem = asset_name_problem(name)
    if problem is not None:
        raise ProtocolError(problem)
    return name


# -- request bodies ---------------------------------------------------------


def encode_serve_request(name: str, capacity: int) -> bytes:
    raw = _name_bytes(name)
    return encode_frame(
        OP_SERVE,
        len(raw).to_bytes(2, "big") + raw + int(capacity).to_bytes(4, "big"),
    )


def parse_serve_request(body: bytes) -> tuple[str, int]:
    cur = _Cursor(body, "serve request")
    name = _read_name(cur)
    capacity = cur.u32()
    cur.done()
    if capacity < 1:
        raise ProtocolError(f"capacity must be >= 1, got {capacity}")
    return name, capacity


def encode_decode_request(
    name: str, capacity: int, timeout_s: float | None = None
) -> bytes:
    raw = _name_bytes(name)
    timeout_ms = 0 if timeout_s is None else max(1, int(timeout_s * 1000))
    body = (
        len(raw).to_bytes(2, "big")
        + raw
        + int(capacity).to_bytes(4, "big")
        + timeout_ms.to_bytes(4, "big")
    )
    return encode_frame(OP_DECODE, body)


def parse_decode_request(body: bytes) -> tuple[str, int, float | None]:
    cur = _Cursor(body, "decode request")
    name = _read_name(cur)
    capacity = cur.u32()
    timeout_ms = cur.u32()
    cur.done()
    if capacity < 1:
        raise ProtocolError(f"capacity must be >= 1, got {capacity}")
    return name, capacity, (timeout_ms / 1000.0 if timeout_ms else None)


def encode_put_request(name: str, blob: bytes) -> bytes:
    raw = _name_bytes(name)
    return encode_frame(OP_PUT, len(raw).to_bytes(2, "big") + raw + blob)


def parse_put_request(body: bytes) -> tuple[str, bytes]:
    cur = _Cursor(body, "put request")
    name = _read_name(cur)
    blob = cur.rest()
    if not blob:
        raise ProtocolError("put request carries no container bytes")
    return name, blob


def encode_trace_request(clear: bool = False) -> bytes:
    """Ask the server for its span ring as Chrome trace JSON.

    ``clear`` drains the ring (the spans ship and are forgotten);
    otherwise the ring is snapshotted and keeps collecting.
    """
    return encode_frame(OP_TRACE, bytes([1 if clear else 0]))


def parse_trace_request(body: bytes) -> bool:
    cur = _Cursor(body, "trace request")
    flag = cur.u8()
    cur.done()
    if flag not in (0, 1):
        raise ProtocolError(f"trace clear flag must be 0 or 1, got {flag}")
    return bool(flag)


# -- response bodies --------------------------------------------------------


def encode_stream_begin(
    kind: int, dtype: str, total_bytes: int, item_count: int
) -> bytes:
    raw = dtype.encode("ascii")
    body = (
        bytes([kind])
        + len(raw).to_bytes(2, "big")
        + raw
        + total_bytes.to_bytes(8, "big")
        + item_count.to_bytes(8, "big")
    )
    return encode_frame(ST_STREAM_BEGIN, body)


def parse_stream_begin(body: bytes) -> tuple[int, str, int, int]:
    """``(kind, dtype, total_bytes, item_count)`` of a stream header."""
    cur = _Cursor(body, "stream-begin")
    kind = cur.u8()
    if kind not in (KIND_BYTES, KIND_ARRAY):
        raise ProtocolError(f"unknown stream kind {kind}")
    n = cur.u16()
    if n > 32:
        raise ProtocolError(f"implausible dtype string length {n}")
    dtype = cur.text(n)
    total = cur.u64()
    count = cur.u64()
    cur.done()
    return kind, dtype, total, count


def encode_stream_end(checksum: int) -> bytes:
    return encode_frame(ST_STREAM_END, checksum.to_bytes(4, "big"))


def parse_stream_end(body: bytes) -> int:
    cur = _Cursor(body, "stream-end")
    checksum = cur.u32()
    cur.done()
    return checksum


def encode_error(exc: BaseException) -> bytes:
    code = error_code_for(exc)
    message = str(exc).encode("utf-8")[: MAX_FRAME_BYTES - 1]
    return encode_frame(ST_ERROR, bytes([code]) + message)


def parse_error(body: bytes) -> ReproError:
    cur = _Cursor(body, "error")
    code = cur.u8()
    message = cur.rest().decode("utf-8", errors="replace")
    return exception_for(code, message)


def encode_retry_after(delay_s: float) -> bytes:
    return encode_frame(ST_RETRY_AFTER, struct.pack(">d", delay_s))


def parse_retry_after(body: bytes) -> float:
    cur = _Cursor(body, "retry-after")
    delay = cur.f64()
    cur.done()
    if not 0.0 <= delay <= 3600.0:
        raise ProtocolError(f"implausible retry-after delay {delay}")
    return delay


def iter_chunks(payload: bytes | memoryview, chunk_bytes: int):
    """Yield ``payload`` as ``<= chunk_bytes`` memoryview slices."""
    view = memoryview(payload)
    for off in range(0, len(view), chunk_bytes):
        yield view[off : off + chunk_bytes]
    if not len(view):
        yield view
