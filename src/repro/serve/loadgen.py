"""Open-loop load generator and tail-latency harness (DESIGN.md §16).

Closed-loop clients (issue request, wait, repeat) hide overload: when
the server slows down, a closed loop *offers less load*, so measured
latency stays flat exactly when real users would be queueing —
coordinated omission.  This harness is **open-loop**: request arrival
times are drawn up front from a Poisson process at the offered rate
and each request runs on its own thread at its scheduled instant,
whether or not earlier requests have finished.  Latency is measured
from the *scheduled* arrival, so scheduler lag and server queueing
both count against the tail.

Workload shape follows the paper's content-delivery scenario:

- **Zipf asset popularity** — request ``k`` assets with weight
  ``1/rank^s`` (a few hot assets dominate, the shrink cache is
  exercised realistically);
- **mixed client capacities** — each request advertises a decoder
  capacity drawn from ``capacities``, as heterogeneous clients would;
- **hostile personas** — a configurable fraction of clients misbehave:
  ``slow`` readers drain responses a few hundred bytes at a time with
  sleeps in between (write-deadline bait), ``kill`` clients disconnect
  with an RST mid-response (a kill -9'd peer).  The server must shrug
  both off while the well-behaved cohort's responses stay
  bit-identical.

Percentile note: ``p999`` degrades to the sample maximum below 1000
samples — short smoke runs report it, but only runs with thousands of
requests make it meaningful (docs/BENCHMARKS.md).

:func:`run_load` drives one run against an already-listening server;
:func:`run_load_bench` is the self-contained harness (service + server
+ clean and faulted runs) behind ``recoil load-bench`` and
``benchmarks/bench_latency.py``.
"""

from __future__ import annotations

import contextlib
import socket
import struct
import threading
import time
from collections import Counter
from random import Random

import numpy as np

from repro import faults as fault_injection
from repro import trace
from repro.errors import (
    AdmissionError,
    ProtocolError,
    ReproError,
)
from repro.serve import protocol
from repro.serve.client import RecoilClient
from repro.trace.hist import LatencyHistogram

#: default persona mix: mostly honest, a pinch of hostile.
DEFAULT_PERSONAS = {"normal": 0.90, "slow": 0.05, "kill": 0.05}


def zipf_weights(n: int, s: float) -> list[float]:
    """Normalized Zipf popularity weights for ``n`` ranked items."""
    raw = [1.0 / (rank**s) for rank in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]


# ---------------------------------------------------------------------------
# Personas.
# ---------------------------------------------------------------------------


def _normal_request(
    host: str,
    port: int,
    name: str,
    capacity: int,
    expected: np.ndarray | None,
    timeout_s: float,
    seed: int,
) -> str:
    try:
        with RecoilClient(
            host, port, timeout_s=timeout_s, seed=seed
        ) as client:
            out = client.decompress(name, capacity)
    except AdmissionError:
        return "shed"
    except ProtocolError:
        return "protocol_error"
    except ReproError as exc:
        return f"error_{type(exc).__name__}"
    except TimeoutError:
        return "timeout"
    except OSError:
        return "transport"
    if expected is not None and not np.array_equal(out, expected):
        return "mismatch"
    return "ok"


def _parse_buffered_response(buf: bytes) -> bytes | None:
    """Parse a fully buffered streamed response; ``None`` if the
    buffer ends mid-response (the server killed the connection)."""
    pos = 0
    payload_parts: list[bytes] = []
    total = None
    while True:
        if pos + protocol.HEADER_BYTES > len(buf):
            return None
        ftype, length = protocol.parse_header(
            buf[pos : pos + protocol.HEADER_BYTES],
            protocol.RESPONSE_TYPES,
        )
        pos += protocol.HEADER_BYTES
        if pos + length > len(buf):
            return None
        body = buf[pos : pos + length]
        pos += length
        if ftype == protocol.ST_STREAM_BEGIN:
            _, _, total, _ = protocol.parse_stream_begin(body)
        elif ftype == protocol.ST_STREAM_CHUNK:
            payload_parts.append(body)
        elif ftype == protocol.ST_STREAM_END:
            payload = b"".join(payload_parts)
            if total is None or len(payload) != total:
                raise ProtocolError("stream bookkeeping mismatch")
            if protocol.crc32(payload) != protocol.parse_stream_end(body):
                raise ProtocolError("stream payload failed CRC-32")
            return payload
        elif ftype == protocol.ST_ERROR:
            raise protocol.parse_error(body)
        elif ftype == protocol.ST_RETRY_AFTER:
            raise AdmissionError("shed while reading slowly")
        else:
            raise ProtocolError(f"unexpected frame 0x{ftype:02x}")


def _slow_request(
    host: str,
    port: int,
    name: str,
    capacity: int,
    expected: np.ndarray | None,
    timeout_s: float,
    chunk_bytes: int,
    sleep_s: float,
) -> str:
    """A slow reader: drains the response a dribble at a time.  Either
    it limps to a complete (still bit-identical) response or the
    server's write deadline kills it — both are acceptable."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        # A tiny receive buffer makes the server feel the backpressure.
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
        sock.settimeout(timeout_s)
        sock.connect((host, port))
        sock.sendall(protocol.encode_decode_request(name, capacity))
        buf = bytearray()
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            try:
                chunk = sock.recv(chunk_bytes)
            except (TimeoutError, OSError):
                break
            if not chunk:
                break
            buf += chunk
            # The server keeps the connection open after a complete
            # response — stop as soon as the buffer parses complete
            # instead of waiting out the read timeout.
            try:
                if _parse_buffered_response(bytes(buf)) is not None:
                    break
            except (ProtocolError, ReproError):
                break  # classified below
            time.sleep(sleep_s)
    except OSError:
        return "slow_killed"
    finally:
        try:
            sock.close()
        except OSError:
            pass
    try:
        payload = _parse_buffered_response(bytes(buf))
    except (ProtocolError, ReproError):
        return "slow_error"
    if payload is None:
        return "slow_killed"
    if expected is not None and payload != expected.tobytes():
        return "mismatch"
    return "slow_ok"


def _kill_request(
    host: str, port: int, name: str, capacity: int, timeout_s: float
) -> str:
    """A kill -9'd client: request, read a little, then RST the
    connection mid-response (``SO_LINGER`` zero makes close() send a
    reset, the closest a live process gets to dying abruptly)."""
    try:
        sock = socket.create_connection((host, port), timeout=timeout_s)
        sock.sendall(protocol.encode_decode_request(name, capacity))
        with contextlib.suppress(TimeoutError, OSError):
            sock.settimeout(min(timeout_s, 1.0))
            sock.recv(256)
        sock.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
        )
        sock.close()
    except OSError:
        pass
    return "killed"


# ---------------------------------------------------------------------------
# The open loop.
# ---------------------------------------------------------------------------


def run_load(
    host: str,
    port: int,
    assets: dict[str, np.ndarray | None],
    *,
    rate_hz: float = 100.0,
    duration_s: float = 2.0,
    capacities: tuple[int, ...] = (1, 4, 16),
    zipf_s: float = 1.1,
    personas: dict[str, float] | None = None,
    request_timeout_s: float = 30.0,
    seed: int = 0,
    slow_chunk_bytes: int = 512,
    slow_sleep_s: float = 0.02,
) -> dict:
    """One open-loop run against a listening server; returns stats.

    :param assets: ``name -> expected symbols`` (``None`` skips the
        bit-identity check for that asset, e.g. against a remote
        server whose contents this process doesn't know).
    :returns: dict with offered load, outcome counts, ``latency_ms``
        percentiles over successful *normal* requests (measured from
        each request's scheduled arrival — coordinated-omission-free),
        and the achieved goodput.
    """
    if not assets:
        raise ValueError("run_load needs at least one asset")
    personas = dict(personas or DEFAULT_PERSONAS)
    for name_, weight in personas.items():
        if name_ not in ("normal", "slow", "kill"):
            raise ValueError(f"unknown persona {name_!r}")
        if weight < 0:
            raise ValueError(f"persona weight {name_}={weight} < 0")
    rng = Random(seed)
    names = sorted(assets)
    weights = zipf_weights(len(names), zipf_s)

    # The whole arrival schedule is drawn up front (open loop).
    arrivals: list[float] = []
    t = 0.0
    while True:
        t += rng.expovariate(rate_hz)
        if t >= duration_s:
            break
        arrivals.append(t)
    plan = [
        (
            sched,
            rng.choices(names, weights)[0],
            rng.choice(capacities),
            rng.choices(
                list(personas), list(personas.values())
            )[0],
        )
        for sched in arrivals
    ]

    outcomes: list[str] = []
    # Streaming histogram, not a list: an over-saturation soak records
    # millions of samples in O(buckets) memory, with identical
    # percentile fields (±half a bucket — see repro/trace/hist.py).
    latencies = LatencyHistogram()
    record_lock = threading.Lock()

    def worker(
        idx: int, sched: float, name: str, cap: int, persona: str
    ) -> None:
        sched_abs = start + sched
        if persona == "normal":
            outcome = _normal_request(
                host,
                port,
                name,
                cap,
                assets[name],
                request_timeout_s,
                seed=seed * 100_003 + idx,
            )
        elif persona == "slow":
            outcome = _slow_request(
                host,
                port,
                name,
                cap,
                assets[name],
                request_timeout_s,
                slow_chunk_bytes,
                slow_sleep_s,
            )
        else:
            outcome = _kill_request(host, port, name, cap, request_timeout_s)
        latency = time.monotonic() - sched_abs
        with record_lock:
            outcomes.append(outcome)
        if outcome == "ok":
            latencies.record(latency)

    threads: list[threading.Thread] = []
    start = time.monotonic()
    for idx, (sched, name, cap, persona) in enumerate(plan):
        delay = start + sched - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        thread = threading.Thread(
            target=worker,
            args=(idx, sched, name, cap, persona),
            name=f"loadgen-{idx}",
            daemon=True,
        )
        thread.start()
        threads.append(thread)
    join_deadline = time.monotonic() + request_timeout_s + 30.0
    for thread in threads:
        thread.join(max(0.0, join_deadline - time.monotonic()))
    wall_s = time.monotonic() - start

    counts = Counter(outcomes)
    unfinished = len(plan) - len(outcomes)
    if unfinished:
        counts["unfinished"] = unfinished

    def pct(q: float) -> float | None:
        seconds = latencies.percentile(q)
        return None if seconds is None else round(seconds * 1000.0, 3)

    mean_s = latencies.mean
    ok = counts.get("ok", 0) + counts.get("slow_ok", 0)
    return {
        "offered": {
            "rate_hz": rate_hz,
            "duration_s": duration_s,
            "requests": len(plan),
            "capacities": list(capacities),
            "zipf_s": zipf_s,
            "personas": personas,
            "seed": seed,
        },
        "outcomes": dict(sorted(counts.items())),
        "ok": ok,
        "mismatches": counts.get("mismatch", 0),
        "protocol_errors": counts.get("protocol_error", 0),
        "latency_ms": {
            "p50": pct(50),
            "p90": pct(90),
            "p99": pct(99),
            "p999": pct(99.9),
            "mean": (
                round(mean_s * 1000.0, 3) if mean_s is not None else None
            ),
            "max": (
                round(latencies.max * 1000.0, 3)
                if latencies.count
                else None
            ),
            "samples": latencies.count,
        },
        "achieved_rps": round(ok / wall_s, 2) if wall_s > 0 else 0.0,
        "wall_s": round(wall_s, 3),
    }


# ---------------------------------------------------------------------------
# Self-contained harness (CLI + benchmarks/bench_latency.py).
# ---------------------------------------------------------------------------


def stage_breakdown(
    service_metrics: dict, network_metrics: dict | None = None
) -> dict:
    """Per-stage latency attribution from metrics snapshots.

    Pulls the ``stage_latency_ms`` histograms out of a service (and
    optionally network) snapshot and adds a consistency check: the sum
    of the component-stage means must approximate the end-to-end mean
    (service: ``shrink + admission + batch_window + kernel ≈ request``;
    network: ``read + handle + write ≈ e2e``).  The residual is
    result-delivery/scheduling slack — small positive values are
    normal, large ones mean a stage is missing from the decomposition.
    """

    def mean_ms(section: dict, stage: str) -> float:
        value = section.get(stage, {}).get("mean_ms")
        return value if value is not None else 0.0

    svc = service_metrics.get("stage_latency_ms", {})
    out: dict = {"service": svc}
    svc_sum = sum(
        mean_ms(svc, s)
        for s in ("shrink", "admission", "batch_window", "kernel")
    )
    consistency = {
        "service_stage_mean_sum_ms": round(svc_sum, 3),
        "service_e2e_mean_ms": svc.get("request", {}).get("mean_ms"),
    }
    if network_metrics is not None:
        net = network_metrics.get("stage_latency_ms", {})
        out["network"] = net
        net_sum = sum(mean_ms(net, s) for s in ("read", "handle", "write"))
        consistency["net_stage_mean_sum_ms"] = round(net_sum, 3)
        consistency["net_e2e_mean_ms"] = net.get("e2e", {}).get("mean_ms")
    out["consistency"] = consistency
    return out


def run_load_bench(
    symbols: int = 50_000,
    num_assets: int = 4,
    num_splits: int = 64,
    rate_hz: float = 100.0,
    duration_s: float = 2.0,
    capacities: tuple[int, ...] = (1, 4, 16),
    personas: dict[str, float] | None = None,
    backend: str = "fused",
    workers: int = 2,
    max_connections: int = 64,
    faults: str | None = None,
    seed: int = 11,
    request_timeout_s: float = 30.0,
    trace_path: str | None = None,
) -> dict:
    """Stand up a service + network server, drive an open-loop run
    clean and (optionally) under a chaos spec, and report both.

    Every verified response in both runs must be bit-identical to the
    stored symbols; a single mismatch raises ``AssertionError`` — a
    latency number for a server that corrupts data is worthless.

    :param trace_path: when set, the whole bench runs with
        :mod:`repro.trace` enabled and the span ring is written there
        as Chrome trace-event JSON (Perfetto-loadable, schema-checked
        before the function returns); the result gains a ``"trace"``
        section.
    """
    from repro.data import text_surrogate
    from repro.serve.net import NetConfig, NetServer
    from repro.serve.service import RecoilService, ServiceConfig

    chaos = bool(faults and faults.strip())
    if chaos:
        fault_injection.parse_spec(faults)  # fail fast on a bad spec

    if backend == "process":
        # Fork the shared pool while still single-threaded.
        from repro.parallel import shards

        shards.default_executor(workers)

    config = ServiceConfig(decode_backend=backend, decode_workers=workers)
    assets: dict[str, np.ndarray] = {}
    fault_report: list[dict] = []
    if trace_path is not None:
        trace.enable()
    with RecoilService(config=config) as service:
        for i in range(num_assets):
            name = f"asset{i}"
            data = text_surrogate(
                symbols, target_entropy=5.29, seed=seed + i
            )
            service.put_asset(name, data, num_splits=num_splits)
            assets[name] = data
        net_config = NetConfig(port=0, max_connections=max_connections)
        with NetServer(service, net_config) as server:
            host, port = server.address
            clean = run_load(
                host,
                port,
                assets,
                rate_hz=rate_hz,
                duration_s=duration_s,
                capacities=capacities,
                personas=personas,
                request_timeout_s=request_timeout_s,
                seed=seed,
            )
            faulted = None
            if chaos:
                with fault_injection.inject_spec(faults):
                    faulted = run_load(
                        host,
                        port,
                        assets,
                        rate_hz=rate_hz,
                        duration_s=duration_s,
                        capacities=capacities,
                        personas=personas,
                        request_timeout_s=request_timeout_s,
                        seed=seed + 1,
                    )
                    fault_report = fault_injection.snapshot()
            network = server.metrics.snapshot()
        service_metrics = service.metrics_snapshot()

    trace_report = None
    if trace_path is not None:
        import os

        spans = trace.drain()
        trace.disable()
        doc = trace.write_chrome_trace(
            trace_path, spans, main_pid=os.getpid()
        )
        trace_report = {
            "path": trace_path,
            "spans": len(spans),
            "dropped": trace.dropped(),
            "validation": trace.validate_chrome_trace(doc),
        }

    for label, run in (("clean", clean), ("faulted", faulted)):
        if run and run["mismatches"]:
            raise AssertionError(
                f"{run['mismatches']} corrupt responses in the "
                f"{label} run — bit-identity is the acceptance bar"
            )
    return {
        "workload": {
            "dataset": "enwik8-surrogate",
            "symbols": symbols,
            "num_assets": num_assets,
            "num_splits": num_splits,
            "rate_hz": rate_hz,
            "duration_s": duration_s,
            "capacities": list(capacities),
            "personas": dict(personas or DEFAULT_PERSONAS),
            "backend": backend,
            "workers": workers,
            "max_connections": max_connections,
            "seed": seed,
        },
        "clean": clean,
        "faulted": faulted,
        "faults": (
            {"spec": faults, "rules": fault_report} if chaos else None
        ),
        "network_metrics": network,
        "service_metrics": service_metrics,
        "stage_breakdown": stage_breakdown(service_metrics, network),
        "trace": trace_report,
    }


def render_load_table(result: dict) -> str:
    """Human-readable summary of a :func:`run_load_bench` result."""
    lines = []
    for label in ("clean", "faulted"):
        run = result.get(label)
        if not run:
            continue
        lm = run["latency_ms"]
        lines.append(
            f"{label:>8}: {run['offered']['requests']} requests at "
            f"{run['offered']['rate_hz']:.0f}/s, {run['ok']} ok "
            f"({run['achieved_rps']:.1f} rps goodput)"
        )
        if lm["samples"]:
            lines.append(
                f"          p50 {lm['p50']:.1f} ms, p99 {lm['p99']:.1f} ms, "
                f"p999 {lm['p999']:.1f} ms, max {lm['max']:.1f} ms "
                f"({lm['samples']} samples)"
            )
        hostile = {
            k: v
            for k, v in run["outcomes"].items()
            if k not in ("ok", "slow_ok")
        }
        if hostile:
            lines.append(f"          other outcomes: {hostile}")
    net = result["network_metrics"]
    lines.append(
        f"network: {net['connections']['opened']} conns "
        f"(peak {net['connections']['peak_active']} active, "
        f"{net['connections']['rejected']} shed), "
        f"{net['protocol_errors']} protocol errors, "
        f"{net['deadline_kills']['total']} deadline kills, "
        f"{net['retry_afters_sent']} retry-afters, drain "
        f"{net['drain']['clean']} clean / {net['drain']['forced']} forced"
    )
    stages = result.get("stage_breakdown")
    if stages:
        parts = []
        for section in ("service", "network"):
            for stage, snap in stages.get(section, {}).items():
                if snap.get("count"):
                    parts.append(f"{stage} {snap['p99_ms']:.1f}")
        if parts:
            lines.append(f"stage p99 ms: {', '.join(parts)}")
    tr = result.get("trace")
    if tr:
        lines.append(
            f"trace: {tr['spans']} spans -> {tr['path']} "
            f"({len(tr['validation']['worker_pids'])} worker pids, "
            f"{tr['dropped']} dropped)"
        )
    chaos = result.get("faults")
    if chaos:
        fired = sum(r["fires"] for r in chaos["rules"])
        lines.append(f"chaos: spec {chaos['spec']!r} fired {fired} faults")
    return "\n".join(lines)
