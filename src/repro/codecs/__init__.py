"""Higher-level codecs composed from the Recoil core.

- :mod:`repro.codecs.image_pipeline` — a complete hyperprior image
  entropy-coding pipeline (mbt2018-mean structure): the per-symbol
  scale field is itself entropy-coded as a Recoil stream, then used to
  build the adaptive models for the latent stream.
- :mod:`repro.codecs.framing` — bounded-memory multi-frame
  compression (zstd-frame analog) where every frame is an independent
  Recoil container.
"""

from repro.codecs.framing import (
    FrameInfo,
    compress_frames,
    decompress_frames,
    frame_info,
)
from repro.codecs.image_pipeline import HyperpriorImageCodec

__all__ = [
    "HyperpriorImageCodec",
    "compress_frames",
    "decompress_frames",
    "frame_info",
    "FrameInfo",
]
