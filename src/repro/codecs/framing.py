"""Multi-frame Recoil compression (bounded-memory streaming).

Large inputs are compressed as a sequence of *independent* Recoil
containers ("frames", zstd-frame analog): encoding holds one frame in
memory at a time; frames decode independently (and in parallel at two
levels — frames x splits).  Each frame carries its own model fitted to
its content, so framing also gives coarse adaptivity to
non-stationary data.

Layout (``RCLF``)::

    magic   b"RCLF"
    u8      version (=1)
    uvarint num_frames
    repeated:
        uvarint frame length
        bytes   RCL1 container

Frame-level shrinking applies :func:`repro.core.shrink_container` to
every frame.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bitio.varint import decode_uvarint, encode_uvarint
from repro.core.api import recoil_compress
from repro.core.container import parse_container, shrink_container
from repro.errors import ContainerError, EncodeError

MAGIC = b"RCLF"
VERSION = 1


@dataclass
class FrameInfo:
    """Geometry of one frame inside a multi-frame blob."""

    index: int
    byte_offset: int
    byte_length: int
    num_symbols: int
    num_threads: int


def compress_frames(
    data: np.ndarray,
    frame_symbols: int = 4_000_000,
    num_splits: int = 256,
    quant_bits: int = 11,
    shared_model: bool = False,
) -> bytes:
    """Compress ``data`` in independent frames of ``frame_symbols``.

    With ``shared_model`` one model is fitted to the whole input and
    embedded in every frame.  That trades per-frame adaptivity for
    decode fusion: frames sharing a model decode as *one* wide-lane
    kernel call in :func:`decompress_frames` instead of one call per
    frame (stationary data loses nothing and decodes much faster).
    """
    data = np.ascontiguousarray(data)
    if data.ndim != 1:
        raise EncodeError("framing expects a 1-D symbol array")
    if frame_symbols < 1:
        raise EncodeError(f"frame_symbols must be >= 1, got {frame_symbols}")
    model = None
    if shared_model and len(data):
        from repro.core.api import _default_model

        model = _default_model(data, quant_bits)
    frames: list[bytes] = []
    for start in range(0, max(len(data), 1), frame_symbols):
        chunk = data[start : start + frame_symbols]
        if len(chunk) == 0:
            break
        frames.append(
            recoil_compress(
                chunk, num_splits=num_splits, quant_bits=quant_bits,
                model=model,
            )
        )
    out = bytearray()
    out += MAGIC
    out.append(VERSION)
    out += encode_uvarint(len(frames))
    for f in frames:
        out += encode_uvarint(len(f))
        out += f
    return bytes(out)


def _iter_frames(blob: bytes):
    if blob[:4] != MAGIC:
        raise ContainerError(f"bad magic {blob[:4]!r}")
    if blob[4] != VERSION:
        raise ContainerError(f"unsupported version {blob[4]}")
    count, pos = decode_uvarint(blob, 5)
    for k in range(count):
        length, pos = decode_uvarint(blob, pos)
        frame = blob[pos : pos + length]
        if len(frame) != length:
            raise ContainerError(f"truncated frame {k}")
        yield k, pos, frame
        pos += length


def decompress_frames(
    blob: bytes, max_parallelism: int | None = None
) -> np.ndarray:
    """Decode every frame as one fused multi-buffer kernel call.

    Frames are independent streams, which is exactly the shape of
    :func:`repro.parallel.fused.fused_run_multi` (PR 3's cross-request
    entry point): every frame contributes a
    :class:`~repro.parallel.fused.StreamSegment` and all their decoder
    threads advance together in a single wide kernel dispatch, instead
    of paying the per-call kernel setup once per frame.  Multi-segment
    fusion requires a shared static model (see
    ``compress_frames(shared_model=True)``); frames are grouped by
    model fingerprint, so mixed-model blobs degrade gracefully to one
    dispatch per group and nothing is ever re-encoded.
    """
    from repro.core.decoder import build_thread_tasks
    from repro.parallel.buffers import ScratchArena
    from repro.parallel.fused import (
        StreamSegment,
        fused_run_multi,
        geometry_bucket,
    )
    from repro.rans.adaptive import provider_fingerprint

    frames = [frame for _, _, frame in _iter_frames(blob)]
    if not frames:
        return np.empty(0, dtype=np.uint8)

    # Group frame indices by fused-compatibility key.  Frames carry
    # embedded (static) models, so fingerprint-equal frames are safe
    # to fuse; the walk-geometry bucket keeps a short final frame from
    # collapsing the batch's steady-state window (same rule as the
    # serve batcher).
    parts: list[np.ndarray | None] = [None] * len(frames)
    groups: dict[tuple, list[int]] = {}
    parsed_frames = []
    segments = []
    for i, frame in enumerate(frames):
        parsed = parse_container(frame)
        parsed_frames.append(parsed)
        metadata = parsed.metadata
        if max_parallelism is not None:
            metadata = metadata.combine(max_parallelism)
        words = parsed.words(frame)
        tasks = build_thread_tasks(metadata, len(words), parsed.final_states)
        segments.append(
            StreamSegment(
                words=words, tasks=tasks,
                num_symbols=metadata.num_symbols,
            )
        )
        key = (
            provider_fingerprint(parsed.provider),
            parsed.lanes,
            np.dtype(parsed.provider.out_dtype).str,
            geometry_bucket(tasks, parsed.lanes),
        )
        groups.setdefault(key, []).append(i)

    arena = ScratchArena()
    for members in groups.values():
        result = fused_run_multi(
            parsed_frames[members[0]].provider,
            parsed_frames[members[0]].lanes,
            [segments[i] for i in members],
            arena,
        )
        for i, out in zip(members, result.segment_outputs()):
            parts[i] = out
    return np.concatenate(parts)


def frame_info(blob: bytes) -> list[FrameInfo]:
    """Inspect a multi-frame blob without decoding payloads."""
    infos = []
    for k, offset, frame in _iter_frames(blob):
        parsed = parse_container(frame, require_model=False)
        infos.append(
            FrameInfo(
                index=k,
                byte_offset=offset,
                byte_length=len(frame),
                num_symbols=parsed.num_symbols,
                num_threads=parsed.metadata.num_threads,
            )
        )
    return infos


def shrink_frames(blob: bytes, target_threads: int) -> bytes:
    """Per-request combining across every frame."""
    frames = [
        shrink_container(frame, target_threads)
        for _, _, frame in _iter_frames(blob)
    ]
    out = bytearray()
    out += MAGIC
    out.append(VERSION)
    out += encode_uvarint(len(frames))
    for f in frames:
        out += encode_uvarint(len(f))
        out += f
    return bytes(out)
