"""Multi-frame Recoil compression (bounded-memory streaming).

Large inputs are compressed as a sequence of *independent* Recoil
containers ("frames", zstd-frame analog): encoding holds one frame in
memory at a time; frames decode independently (and in parallel at two
levels — frames x splits).  Each frame carries its own model fitted to
its content, so framing also gives coarse adaptivity to
non-stationary data.

Layout (``RCLF``)::

    magic   b"RCLF"
    u8      version (=1)
    uvarint num_frames
    repeated:
        uvarint frame length
        bytes   RCL1 container

Frame-level shrinking applies :func:`repro.core.shrink_container` to
every frame.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bitio.varint import decode_uvarint, encode_uvarint
from repro.core.api import recoil_compress, recoil_decompress
from repro.core.container import parse_container, shrink_container
from repro.errors import ContainerError, EncodeError

MAGIC = b"RCLF"
VERSION = 1


@dataclass
class FrameInfo:
    """Geometry of one frame inside a multi-frame blob."""

    index: int
    byte_offset: int
    byte_length: int
    num_symbols: int
    num_threads: int


def compress_frames(
    data: np.ndarray,
    frame_symbols: int = 4_000_000,
    num_splits: int = 256,
    quant_bits: int = 11,
) -> bytes:
    """Compress ``data`` in independent frames of ``frame_symbols``."""
    data = np.ascontiguousarray(data)
    if data.ndim != 1:
        raise EncodeError("framing expects a 1-D symbol array")
    if frame_symbols < 1:
        raise EncodeError(f"frame_symbols must be >= 1, got {frame_symbols}")
    frames: list[bytes] = []
    for start in range(0, max(len(data), 1), frame_symbols):
        chunk = data[start : start + frame_symbols]
        if len(chunk) == 0:
            break
        frames.append(
            recoil_compress(
                chunk, num_splits=num_splits, quant_bits=quant_bits
            )
        )
    out = bytearray()
    out += MAGIC
    out.append(VERSION)
    out += encode_uvarint(len(frames))
    for f in frames:
        out += encode_uvarint(len(f))
        out += f
    return bytes(out)


def _iter_frames(blob: bytes):
    if blob[:4] != MAGIC:
        raise ContainerError(f"bad magic {blob[:4]!r}")
    if blob[4] != VERSION:
        raise ContainerError(f"unsupported version {blob[4]}")
    count, pos = decode_uvarint(blob, 5)
    for k in range(count):
        length, pos = decode_uvarint(blob, pos)
        frame = blob[pos : pos + length]
        if len(frame) != length:
            raise ContainerError(f"truncated frame {k}")
        yield k, pos, frame
        pos += length


def decompress_frames(
    blob: bytes, max_parallelism: int | None = None
) -> np.ndarray:
    """Decode every frame and concatenate."""
    parts = [
        recoil_decompress(frame, max_parallelism=max_parallelism)
        for _, _, frame in _iter_frames(blob)
    ]
    if not parts:
        return np.empty(0, dtype=np.uint8)
    return np.concatenate(parts)


def frame_info(blob: bytes) -> list[FrameInfo]:
    """Inspect a multi-frame blob without decoding payloads."""
    infos = []
    for k, offset, frame in _iter_frames(blob):
        parsed = parse_container(frame, require_model=False)
        infos.append(
            FrameInfo(
                index=k,
                byte_offset=offset,
                byte_length=len(frame),
                num_symbols=parsed.num_symbols,
                num_threads=parsed.metadata.num_threads,
            )
        )
    return infos


def shrink_frames(blob: bytes, target_threads: int) -> bytes:
    """Per-request combining across every frame."""
    frames = [
        shrink_container(frame, target_threads)
        for _, _, frame in _iter_frames(blob)
    ]
    out = bytearray()
    out += MAGIC
    out.append(VERSION)
    out += encode_uvarint(len(frames))
    for f in frames:
        out += encode_uvarint(len(f))
        out += f
    return bytes(out)
