"""Hyperprior image entropy-coding pipeline (mbt2018-mean structure).

Learned image codecs transmit two entropy-coded tensors:

- the **hyperprior** ``z`` — here, the per-symbol scale ids; small,
  coded with a static model;
- the **latents** ``y`` — the 16-bit symbols, coded *adaptively*: each
  symbol's Gaussian is selected by the decoded hyperprior.

Both streams are Recoil containers, so the whole image decodes with
decoder-adaptive parallelism: the tiny hyperprior stream first (its
decode yields the model ids), then the latent stream massively in
parallel.  This is the paper's target application (§1, §5.1) realized
end to end, and the "Recoil as drop-in within a coding format" story
of §6.

Container layout (``RIMG``)::

    magic   b"RIMG"
    u8      version (=1)
    uvarint num_scales
    uvarint hyper blob length     | Recoil container (static model
    bytes   hyper blob            |   over scale ids, embedded)
    bytes   latent blob           | Recoil container (adaptive, no
                                  |   embedded model)
"""

from __future__ import annotations

import numpy as np

from repro.bitio.varint import decode_uvarint, encode_uvarint
from repro.core.api import RecoilCodec
from repro.core.container import build_container, parse_container
from repro.core.decoder import RecoilDecoder
from repro.core.encoder import RecoilEncoder
from repro.errors import ContainerError, EncodeError
from repro.rans.adaptive import GaussianModelBank, StaticModelProvider
from repro.rans.constants import DEFAULT_LANES
from repro.rans.model import SymbolModel

MAGIC = b"RIMG"
VERSION = 1

#: Scale-id streams are small and low-entropy; n=11 is plenty.
_HYPER_QUANT = 11


class HyperpriorImageCodec:
    """Two-stream (hyperprior + latents) Recoil image codec.

    Parameters
    ----------
    bank:
        The Gaussian model bank shared by encoder and decoder (in a
        learned codec this is part of the trained model, not the
        bitstream).
    lanes:
        Interleave width for both streams.
    """

    def __init__(
        self, bank: GaussianModelBank, lanes: int = DEFAULT_LANES
    ) -> None:
        self.bank = bank
        self.lanes = lanes

    # ------------------------------------------------------------------

    def compress(
        self,
        symbols: np.ndarray,
        scale_ids: np.ndarray,
        num_splits: int = 256,
        hyper_splits: int = 16,
    ) -> bytes:
        """Encode latents + their hyperprior into one container."""
        symbols = np.ascontiguousarray(symbols)
        scale_ids = np.ascontiguousarray(scale_ids, dtype=np.int64)
        if len(symbols) != len(scale_ids):
            raise EncodeError(
                f"{len(symbols)} symbols but {len(scale_ids)} scale ids"
            )
        n_scales = len(self.bank.scales)
        if scale_ids.size and (
            scale_ids.min() < 0 or scale_ids.max() >= n_scales
        ):
            raise EncodeError("scale id outside the bank's table")

        # Hyperprior stream: the scale field is spatially smooth, so a
        # first-order predictive transform (zigzagged deltas) removes
        # most of its redundancy before the static entropy model —
        # mirroring how real codecs keep z at a few percent of the
        # total rate.
        deltas = np.diff(scale_ids, prepend=0)
        zz = np.where(deltas < 0, -2 * deltas - 1, 2 * deltas).astype(
            np.int64
        )
        counts = np.bincount(zz, minlength=2 * n_scales + 1)
        hyper_model = SymbolModel.from_counts(
            np.maximum(counts, 1), _HYPER_QUANT
        )
        hyper_blob = RecoilCodec(hyper_model, lanes=self.lanes).compress(
            zz, hyper_splits
        )

        # Latent stream: adaptive models keyed by the ids.
        provider = self.bank.provider_for_ids(scale_ids)
        latent_enc = RecoilEncoder(provider, lanes=self.lanes).encode(
            symbols, num_splits
        )
        latent_blob = build_container(latent_enc, embed_model=False)

        out = bytearray()
        out += MAGIC
        out.append(VERSION)
        out += encode_uvarint(n_scales)
        out += encode_uvarint(len(hyper_blob))
        out += hyper_blob
        out += latent_blob
        return bytes(out)

    # ------------------------------------------------------------------

    def decompress(
        self,
        blob: bytes,
        max_parallelism: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Decode; returns ``(symbols, scale_ids)``."""
        if blob[:4] != MAGIC:
            raise ContainerError(f"bad magic {blob[:4]!r}")
        if blob[4] != VERSION:
            raise ContainerError(f"unsupported version {blob[4]}")
        pos = 5
        n_scales, pos = decode_uvarint(blob, pos)
        if n_scales != len(self.bank.scales):
            raise ContainerError(
                f"container expects a {n_scales}-scale bank, codec has "
                f"{len(self.bank.scales)}"
            )
        hyper_len, pos = decode_uvarint(blob, pos)
        hyper_blob = blob[pos : pos + hyper_len]
        if len(hyper_blob) != hyper_len:
            raise ContainerError("truncated hyperprior stream")
        latent_blob = blob[pos + hyper_len :]

        # Stage 1: hyperprior (static model embedded in its container);
        # invert the zigzag-delta transform.
        hyper = parse_container(hyper_blob)
        zz = RecoilDecoder(hyper.provider, lanes=hyper.lanes).decode(
            hyper.words(hyper_blob),
            hyper.final_states,
            hyper.metadata,
            max_threads=max_parallelism,
        ).symbols.astype(np.int64)
        deltas = np.where(zz & 1, -(zz + 1) // 2, zz // 2)
        ids = np.cumsum(deltas)

        # Stage 2: latents, with models derived from the decoded ids.
        provider = self.bank.provider_for_ids(ids)
        latent = parse_container(latent_blob, provider=provider)
        symbols = RecoilDecoder(provider, lanes=latent.lanes).decode(
            latent.words(latent_blob),
            latent.final_states,
            latent.metadata,
            max_threads=max_parallelism,
        ).symbols
        return symbols, ids

    # ------------------------------------------------------------------

    def shrink(self, blob: bytes, target_threads: int) -> bytes:
        """Per-request combining for both streams (§3.3)."""
        from repro.core.container import shrink_container

        if blob[:4] != MAGIC:
            raise ContainerError(f"bad magic {blob[:4]!r}")
        pos = 5
        n_scales, pos = decode_uvarint(blob, pos)
        hyper_len, pos = decode_uvarint(blob, pos)
        hyper_blob = blob[pos : pos + hyper_len]
        latent_blob = blob[pos + hyper_len :]
        hyper_small = shrink_container(hyper_blob, target_threads)
        latent_small = shrink_container(latent_blob, target_threads)
        out = bytearray()
        out += MAGIC
        out.append(VERSION)
        out += encode_uvarint(n_scales)
        out += encode_uvarint(len(hyper_small))
        out += hyper_small
        out += latent_small
        return bytes(out)
