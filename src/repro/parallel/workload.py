"""Work accounting for decode runs.

The cost model converts *counted work* into projected wall-clock time;
this module does the counting.  The key quantities, per decoder
thread/task:

- payload symbols (committed output),
- overhead symbols (Synchronization + Cross-Boundary re-decodes —
  Recoil's runtime overhead, paper §4.2),
- the makespan proxy: with ``P`` hardware workers executing ``T``
  tasks, time scales with the max per-worker total after longest-
  processing-time (LPT) assignment.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.parallel.simd import ThreadTask


@dataclass
class WorkloadSummary:
    """Symbol counts describing one decode workload."""

    num_tasks: int
    payload_symbols: int
    overhead_symbols: int
    per_task_symbols: np.ndarray  # total walked symbols per task

    @property
    def total_symbols(self) -> int:
        return self.payload_symbols + self.overhead_symbols

    @property
    def overhead_fraction(self) -> float:
        if self.payload_symbols == 0:
            return 0.0
        return self.overhead_symbols / self.payload_symbols

    @property
    def imbalance(self) -> float:
        """max/mean of per-task work (1.0 = perfectly balanced)."""
        if len(self.per_task_symbols) == 0:
            return 1.0
        mean = self.per_task_symbols.mean()
        return float(self.per_task_symbols.max() / mean) if mean else 1.0

    def makespan_symbols(self, workers: int) -> float:
        """Max per-worker symbols after LPT assignment of tasks.

        Models a pool of ``workers`` cores/warps executing the tasks;
        equals total/workers for balanced work, and the longest task
        when tasks >> workers does not hold.
        """
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        w = self.per_task_symbols
        if len(w) == 0:
            return 0.0
        if workers == 1:
            return float(w.sum())
        if len(w) <= workers:
            return float(w.max())
        heap = [0.0] * workers
        for v in sorted(w.tolist(), reverse=True):
            least = heapq.heappop(heap)
            heapq.heappush(heap, least + v)
        return max(heap)


def summarize_tasks(tasks: list[ThreadTask]) -> WorkloadSummary:
    """Count payload and overhead symbols across a task list."""
    per = np.array(
        [max(0, t.walk_hi - t.walk_lo + 1) for t in tasks], dtype=np.int64
    )
    payload = sum(
        max(0, t.commit_hi - t.commit_lo + 1) for t in tasks
    )
    total = int(per.sum())
    return WorkloadSummary(
        num_tasks=len(tasks),
        payload_symbols=payload,
        overhead_symbols=total - payload,
        per_task_symbols=per,
    )
