"""Scratch-buffer arena for the hot decode/encode loops.

The vectorized kernels run thousands of short numpy operations over
small ``(tasks, lanes)`` arrays; allocating fresh temporaries on every
iteration makes the allocator — not the arithmetic — the bottleneck.
An arena hands out named preallocated buffers that are reused across
iterations *and* across calls (DESIGN.md §9: buffer-reuse rules).

Rules:

- An arena is owned by exactly one engine/encoder instance and is
  **not** thread-safe; pooled decoding gives each worker its own
  engine (and therefore its own arena).
- Arena buffers never escape the owning kernel: anything returned to
  a caller is freshly allocated or an explicit compacting copy.
- Buffers are keyed by name; a request with a different shape or
  dtype reallocates that slot (streams of varying size simply reuse
  the largest-seen allocation via ``get_at_least``).
"""

from __future__ import annotations

import numpy as np


class ScratchArena:
    """Named, reusable scratch buffers (uninitialized contents)."""

    def __init__(self) -> None:
        self._bufs: dict[str, np.ndarray] = {}

    def get(self, name: str, shape: tuple[int, ...], dtype) -> np.ndarray:
        """An uninitialized buffer of exactly ``shape`` / ``dtype``.

        Contents are unspecified — callers must fully overwrite before
        reading.
        """
        dtype = np.dtype(dtype)
        buf = self._bufs.get(name)
        if buf is None or buf.shape != shape or buf.dtype != dtype:
            buf = np.empty(shape, dtype)
            self._bufs[name] = buf
        return buf

    def get_at_least(self, name: str, length: int, dtype) -> np.ndarray:
        """A 1-D buffer of at least ``length`` elements (grown
        geometrically so repeated calls with drifting sizes do not
        reallocate every time).  Returns the full backing buffer;
        callers slice to the length they need."""
        dtype = np.dtype(dtype)
        buf = self._bufs.get(name)
        if buf is None or buf.dtype != dtype or buf.shape[0] < length:
            cap = max(length, 2 * (buf.shape[0] if buf is not None else 0))
            buf = np.empty(cap, dtype)
            self._bufs[name] = buf
        return buf

    def clear(self) -> None:
        self._bufs.clear()
