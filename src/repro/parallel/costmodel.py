"""Analytical device cost model for throughput projection.

Pure Python cannot hit the paper's 90 GB/s, so Figure 7 is reproduced
in two layers (DESIGN.md substitution table):

1. the *work* is executed for real by :class:`~repro.parallel.simd.LaneEngine`
   (so sync overhead, workload imbalance and stragglers are measured,
   not assumed), and
2. this module converts the counted work into projected wall-clock
   seconds for calibrated device profiles resembling the paper's
   testbed (Xeon W-3245 16C for AVX2/AVX512, RTX 2080 Ti for CUDA).

The profile constants were calibrated once against the paper's
Single-Thread and Conventional numbers (order-of-magnitude fits); the
*relative* behaviour between codecs on a device — which is what the
experiments assert — comes entirely from the measured work.

Model: a device has ``workers`` independent execution units, each
processing one decoder task at a time at ``symbols_per_cycle``
(amortized across its SIMD lanes), with a per-task fixed startup cost
and a per-word memory cost.  Time is the LPT makespan over workers.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.parallel.simd import ThreadTask
from repro.parallel.workload import WorkloadSummary


@dataclass(frozen=True)
class DeviceProfile:
    """One execution target for throughput projection."""

    name: str
    workers: int  # physical cores or concurrently resident warps
    clock_hz: float
    symbols_per_cycle: float  # per worker, amortized over SIMD lanes
    task_startup_cycles: float  # per-task launch / sync barrier cost
    word_read_cycles: float  # memory cost per 16-bit stream word
    lut_penalty_16: float = 1.0  # slowdown factor when n = 16 LUTs
    # spill out of L1/texture cache (the packed-LUT optimization of
    # §4.4 no longer applies)
    adaptive_penalty: float = 1.0  # slowdown for per-index adaptive
    # models (scattered 2-D table gathers instead of one hot LUT; the
    # paper's div2k rows decode ~4-6x slower per symbol than text)

    def cycles_for(
        self,
        summary: WorkloadSummary,
        words_read: int,
        quant_bits: int,
        adaptive: bool = False,
    ) -> float:
        """Projected cycles for a decode described by ``summary``."""
        per_symbol = 1.0 / self.symbols_per_cycle
        if quant_bits > 12:
            per_symbol *= self.lut_penalty_16
        if adaptive:
            per_symbol *= self.adaptive_penalty
        # Distribute tasks over workers; each worker's cycle count is
        # its symbols * per_symbol plus startup per task.  The word
        # reads are proportional to symbols, fold them in on average.
        words_per_symbol = words_read / max(summary.total_symbols, 1)
        per_symbol += words_per_symbol * self.word_read_cycles
        makespan = summary.makespan_symbols(self.workers)
        tasks_per_worker = max(1.0, summary.num_tasks / self.workers)
        return makespan * per_symbol + tasks_per_worker * self.task_startup_cycles

    def seconds_for(
        self,
        summary: WorkloadSummary,
        words_read: int,
        quant_bits: int,
        adaptive: bool = False,
    ) -> float:
        return (
            self.cycles_for(summary, words_read, quant_bits, adaptive)
            / self.clock_hz
        )


#: Profiles loosely calibrated to the paper's testbed.  ``AVX512`` and
#: ``AVX2`` differ in amortized symbols/cycle (16- vs 8-wide vectors,
#: §4.4 unroll factors); the GPU profile models 68 SMs x 16 resident
#: warps on a Turing part.
PROFILES: dict[str, DeviceProfile] = {
    "cpu-avx512": DeviceProfile(
        name="cpu-avx512",
        workers=16,
        clock_hz=3.9e9,
        symbols_per_cycle=0.20,
        task_startup_cycles=2.0e4,
        word_read_cycles=0.5,
        lut_penalty_16=1.35,
        adaptive_penalty=4.0,
    ),
    "cpu-avx2": DeviceProfile(
        name="cpu-avx2",
        workers=16,
        clock_hz=3.9e9,
        symbols_per_cycle=0.135,
        task_startup_cycles=2.0e4,
        word_read_cycles=0.5,
        lut_penalty_16=1.35,
        adaptive_penalty=4.0,
    ),
    "cpu-single-thread": DeviceProfile(
        name="cpu-single-thread",
        workers=1,
        clock_hz=3.9e9,
        symbols_per_cycle=0.20,
        task_startup_cycles=2.0e4,
        word_read_cycles=0.5,
        lut_penalty_16=1.35,
        adaptive_penalty=4.0,
    ),
    "cpu-single-thread-avx2": DeviceProfile(
        name="cpu-single-thread-avx2",
        workers=1,
        clock_hz=3.9e9,
        symbols_per_cycle=0.135,
        task_startup_cycles=2.0e4,
        word_read_cycles=0.5,
        lut_penalty_16=1.35,
        adaptive_penalty=4.0,
    ),
    "gpu-turing": DeviceProfile(
        name="gpu-turing",
        workers=1088,  # 68 SMs x 16 resident warps
        clock_hz=1.545e9,
        symbols_per_cycle=0.05,  # per warp (32 lanes, memory-bound)
        task_startup_cycles=4.0e3,
        word_read_cycles=0.1,
        lut_penalty_16=1.25,
        adaptive_penalty=5.0,
    ),
    # multians decodes one symbol per thread-step through a scattered
    # table walk (bit-granular renormalization, no packed-LUT trick,
    # poor coalescing — §2.4), so its per-warp rate is far below the
    # rANS decoders'.  Its n=16 pain is additionally carried by the
    # measured synchronization rounds, not this constant.
    "gpu-turing-multians": DeviceProfile(
        name="gpu-turing-multians",
        workers=1088,
        clock_hz=1.545e9,
        symbols_per_cycle=0.0078,
        task_startup_cycles=4.0e3,
        word_read_cycles=0.1,
        lut_penalty_16=1.25,
    ),
}


def estimate_task_symbols(task: ThreadTask) -> int:
    """Estimated cost of one decode task, in walked symbols.

    The walk length (sync + committed + cross-boundary symbols) is the
    dominant cost term of the device model above — word reads are
    proportional to it and the startup cost is per-task constant — so
    it doubles as the scheduling weight for real-thread execution.
    """
    return max(0, task.walk_hi - task.walk_lo + 1)


def assign_tasks(
    tasks: list[ThreadTask], workers: int, strategy: str = "cost"
) -> list[list[ThreadTask]]:
    """Partition ``tasks`` across at most ``workers`` buckets.

    ``strategy="cost"`` (default) performs a longest-processing-time
    greedy assignment weighted by :func:`estimate_task_symbols` — the
    same makespan model :meth:`WorkloadSummary.makespan_symbols` uses
    to project device time — so stragglers (long cross-boundary walks,
    uneven splits) are spread instead of landing on one worker.
    ``strategy="round_robin"`` deals tasks cyclically (the historical
    behaviour, kept for comparison).  Empty buckets are dropped.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if strategy == "round_robin":
        buckets: list[list[ThreadTask]] = [[] for _ in range(workers)]
        for i, t in enumerate(tasks):
            buckets[i % workers].append(t)
        return [b for b in buckets if b]
    if strategy != "cost":
        raise ValueError(f"unknown assignment strategy {strategy!r}")
    buckets = [[] for _ in range(workers)]
    heap = [(0, w) for w in range(workers)]
    order = sorted(
        range(len(tasks)),
        key=lambda i: (-estimate_task_symbols(tasks[i]), i),
    )
    for i in order:
        load, w = heapq.heappop(heap)
        buckets[w].append(tasks[i])
        heapq.heappush(heap, (load + estimate_task_symbols(tasks[i]), w))
    return [b for b in buckets if b]


def project_throughput(
    profile: DeviceProfile | str,
    summary: WorkloadSummary,
    words_read: int,
    quant_bits: int,
    payload_bytes: int,
    adaptive: bool = False,
) -> float:
    """Projected decode throughput in bytes/second (of *uncompressed*
    output, matching the paper's GB/s convention)."""
    if isinstance(profile, str):
        profile = PROFILES[profile]
    seconds = profile.seconds_for(summary, words_read, quant_bits, adaptive)
    return payload_bytes / seconds if seconds > 0 else float("inf")
