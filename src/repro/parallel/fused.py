"""Fused wide-lane rANS decode kernel.

This is the hot path of the whole reproduction (DESIGN.md §8).  The
reference engine (:meth:`~repro.parallel.simd.LaneEngine.run_reference`)
models the paper's SIMD/CUDA decoders faithfully but spends most of its
time in Python/numpy *dispatch*: every iteration rebuilds participation
masks, reallocates temporaries and re-casts tables for arrays of only
``tasks x 32`` elements.  The fused kernel keeps the exact same walk
semantics (DESIGN.md §7) while restructuring the work so that the
common case — every partition mid-stream, all lanes live, full groups,
everything committed — runs a minimal straight-line sequence of
in-place vectorized operations over one flat ``(M*K,)`` state vector.
This is the paper's decoder-adaptive scalability claim made real in
Python: combining M partitions widens the effective vector M-fold and
the per-symbol interpreter overhead drops accordingly.

Structure of one run:

1. **Head** (generic masked iterations): partial first groups, lane
   activations (the Synchronization Phase), commit-range boundaries.
2. **Steady state**: every task is alive, fully activated, walking
   full interleave groups that are entirely inside its commit range.
   No masks, no ``np.where``, no allocation — all operands live in a
   :class:`~repro.parallel.buffers.ScratchArena` and every Eq. 2
   table access is a single gather into a pre-materialized
   slot-indexed uint64 table (:class:`~repro.rans.adaptive.DecodeTables`).
3. **Tail** (generic again): the final, possibly partial, group of
   each task plus the terminal drain.

Phase boundaries are computed analytically from the task geometry
before the loop starts, so the steady loop carries no per-iteration
phase checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro import faults
from repro.errors import DecodeError
from repro.parallel.buffers import ScratchArena
from repro.parallel.simd import EngineStats, ThreadTask
from repro.rans.adaptive import AdaptiveModelProvider
from repro.rans.constants import L_BOUND, RENORM_BITS


def _group(index: int, lanes: int) -> int:
    """0-based interleave group of a 1-based symbol index."""
    return (index - 1) // lanes


def _plan_phases(
    tasks: list[ThreadTask], lanes: int
) -> tuple[np.ndarray, int, int, int]:
    """Analytic iteration geometry for a task batch.

    Returns ``(R, R_total, H, S)`` where ``R[t]`` is task ``t``'s total
    iteration count, ``R_total`` the global loop length, and
    ``[H, S)`` the global steady-state window (empty when ``H >= S``).

    Task ``t`` is *steady* at iteration ``r`` (walking group
    ``g = g_hi - r``) when:

    - every lane is active: ``r >= act_end`` (all activations
      installed; tasks whose lanes can never all activate are never
      steady),
    - the group is full and fully committed:
      ``g*K + 1 >= max(walk_lo, commit_lo)`` and
      ``g*K + K <= min(walk_hi, commit_hi)``.
    """
    K = lanes
    T = len(tasks)
    R = np.zeros(T, dtype=np.int64)
    starts = np.zeros(T, dtype=np.int64)
    ends = np.zeros(T, dtype=np.int64)
    for ti, t in enumerate(tasks):
        if t.walk_hi < t.walk_lo:
            continue  # degenerate: dead on arrival, empty window
        g_hi = _group(t.walk_hi, K)
        g_lo = _group(t.walk_lo, K)
        R[ti] = g_hi - g_lo + 1

        act_end = 0
        covered = t.initial_states is not None
        if not covered:
            covered = len({lane for _, lane, _ in t.activations}) >= K
        if not covered:
            continue  # some lane never activates: no steady window
        if t.activations:
            act_end = max(
                g_hi - _group(idx, K) for idx, _, _ in t.activations
            ) + 1

        hi_lim = min(t.walk_hi, t.commit_hi)
        lo_lim = max(t.walk_lo, t.commit_lo)
        g_max = (hi_lim - K) // K  # last group fully below hi_lim
        g_min = (lo_lim + K - 2) // K  # first group fully above lo_lim
        if g_max < g_min:
            continue
        starts[ti] = max(act_end, g_hi - g_max)
        ends[ti] = g_hi - g_min + 1

    R_total = int(R.max()) if T else 0
    if T and np.all(ends > starts):
        H = int(starts.max())
        S = int(ends.min())
    else:
        H, S = 0, 0  # at least one task never reaches steady state
    return R, R_total, H, S


def fused_run(
    provider: AdaptiveModelProvider,
    lanes: int,
    words: np.ndarray,
    tasks: list[ThreadTask],
    out: np.ndarray,
    arena: ScratchArena,
    kernel: str = "numpy",
) -> EngineStats:
    """Decode every task into ``out`` (same contract as
    :meth:`~repro.parallel.simd.LaneEngine.run`).

    :param provider: model provider shared by all tasks.
    :param lanes: interleaved lanes per task (``K``).
    :param words: the 16-bit word stream all tasks read from.
    :param tasks: decode tasks with disjoint commit ranges.
    :param out: preallocated output of the full sequence length; each
        position is written by exactly one task.
    :param arena: caller-owned scratch buffers (not thread-safe —
        one arena per concurrently running kernel, DESIGN.md §9).
    :param kernel: ``"numpy"`` (default) or ``"compiled"`` — run the
        steady-state window through the compiled twin
        (:mod:`repro.parallel.compiled`) when a toolchain is up;
        bit-identical either way, silently numpy otherwise.
    :returns: work counters (iterations, symbols, words read).
    :raises DecodeError: task geometry inconsistent with the stream
        (start/activation out of range), the bitstream exhausting
        mid-walk, or a terminal drain that does not return every lane
        to the initial state ``L``.
    """
    K = lanes
    T = len(tasks)
    stats = EngineStats(tasks=T)
    if T == 0:
        return stats

    n = provider.quant_bits
    n64 = np.uint64(n)
    rb = np.uint64(RENORM_BITS)
    slot_mask = np.uint64((1 << n) - 1)
    lbound = np.uint64(L_BOUND)
    words = np.asarray(words, dtype=np.uint16)
    W = len(words)

    tables = provider.decode_tables
    slot_count = np.uint64(tables.slot_count)
    static = provider.is_static
    if static:
        s1 = tables.sym_slot[0]
        f1 = tables.freq_slot[0]
        b1 = tables.bias_slot[0]
    else:
        s_flat = tables.sym_slot.ravel()
        f_flat = tables.freq_slot.ravel()
        b_flat = tables.bias_slot.ravel()
        ids_dense = provider.dense_model_ids(len(out))

    # One uint64 copy of the stream, made once per run, so every
    # renormalization gather lands directly in the state dtype.
    words_u64 = arena.get_at_least("words_u64", W, np.uint64)[:W]
    words_u64[:] = words

    # ---- task state -----------------------------------------------------
    for ti, t in enumerate(tasks):
        if t.start_pos >= W:
            raise DecodeError(
                f"task {ti}: start position {t.start_pos} beyond "
                f"stream of {W} words"
            )
    pos = np.array([t.start_pos for t in tasks], dtype=np.int64)
    cur = np.array([t.walk_hi for t in tasks], dtype=np.int64)
    lo = np.array([t.walk_lo for t in tasks], dtype=np.int64)
    c_hi = np.array([t.commit_hi for t in tasks], dtype=np.int64)
    c_lo = np.array([t.commit_lo for t in tasks], dtype=np.int64)
    offs = np.array([t.global_offset for t in tasks], dtype=np.int64)

    x = arena.get("x", (T, K), np.uint64)
    x[:] = L_BOUND
    active = arena.get("active", (T, K), bool)
    active[:] = False
    for ti, t in enumerate(tasks):
        if t.initial_states is not None:
            st = np.asarray(t.initial_states, dtype=np.uint64)
            if st.shape != (K,):
                raise DecodeError(
                    f"task {ti}: initial_states must have shape ({K},)"
                )
            x[ti] = st
            active[ti] = True

    # ---- activation schedule -------------------------------------------
    act_task: list[int] = []
    act_lane: list[int] = []
    act_state: list[int] = []
    act_iter: list[int] = []
    for ti, t in enumerate(tasks):
        g0 = _group(t.walk_hi, K)
        for idx, lane, state in t.activations:
            if not t.walk_lo <= idx <= t.walk_hi:
                raise DecodeError(
                    f"task {ti}: activation index {idx} outside walk "
                    f"range [{t.walk_lo}, {t.walk_hi}]"
                )
            act_task.append(ti)
            act_lane.append(lane)
            act_state.append(state)
            act_iter.append(g0 - _group(idx, K))
    if act_task:
        a_iter = np.array(act_iter)
        order = np.argsort(a_iter, kind="stable")
        a_iter = a_iter[order]
        a_task = np.array(act_task)[order]
        a_lane = np.array(act_lane)[order]
        a_state = np.array(act_state, dtype=np.uint64)[order]
    else:
        a_iter = np.empty(0, dtype=np.int64)
        a_task = a_lane = np.empty(0, dtype=np.int64)
        a_state = np.empty(0, dtype=np.uint64)
    a_ptr = 0

    _, R_total, H, S = _plan_phases(tasks, K)

    lane_col = np.arange(K, dtype=np.int64)[None, :]
    out_dtype = out.dtype
    per_task_iters = np.zeros(T, dtype=np.int64)
    symbols_decoded = 0
    words_read = 0
    r = 0

    # ---- generic masked iteration (head and tail phases) ---------------
    def generic_until(r: int, r_stop: int) -> int:
        nonlocal a_ptr, symbols_decoded, words_read
        while r < r_stop:
            alive = cur >= lo
            if not alive.any():
                return r_stop  # all dead; skip straight to the end
            while a_ptr < len(a_iter) and a_iter[a_ptr] <= r:
                end = a_ptr
                while end < len(a_iter) and a_iter[end] <= r:
                    end += 1
                x[a_task[a_ptr:end], a_lane[a_ptr:end]] = a_state[a_ptr:end]
                active[a_task[a_ptr:end], a_lane[a_ptr:end]] = True
                a_ptr = end

            base = ((cur - 1) // K) * K
            sl = np.maximum(lo, base + 1)
            la = (sl - base - 1)[:, None]
            lb = (cur - base - 1)[:, None]
            part = (
                (lane_col >= la)
                & (lane_col <= lb)
                & alive[:, None]
                & active
            )

            # Eq. 4 reads before decoding, descending lane order.
            need = part & (x < lbound)
            counts = need.sum(axis=1)
            if counts.any():
                rank = need[:, ::-1].cumsum(axis=1)[:, ::-1] - need
                rpos = pos[:, None] - rank
                src = rpos[need]
                if src.min() < 0 or src.max() >= W:
                    raise DecodeError(
                        "stream read out of range during renormalization "
                        "(corrupt metadata or truncated payload)"
                    )
                x[need] = (x[need] << rb) | words_u64[src]
                np.subtract(pos, counts, out=pos)
                words_read += int(counts.sum())

            # Eq. 2 via the slot-indexed tables.
            slot = x & slot_mask
            if static:
                sym = s1[slot]
                new_x = f1[slot] * (x >> n64) + b1[slot]
            else:
                g_idx = offs[:, None] + base[:, None] + lane_col
                np.clip(g_idx, 0, max(len(ids_dense) - 1, 0), out=g_idx)
                flat = ids_dense[g_idx] * slot_count + slot
                sym = s_flat[flat]
                new_x = f_flat[flat] * (x >> n64) + b_flat[flat]
            np.copyto(x, new_x, where=part)

            local_index = base[:, None] + lane_col + 1
            commit = (
                part
                & (local_index >= c_lo[:, None])
                & (local_index <= c_hi[:, None])
            )
            if commit.any():
                out_pos = offs[:, None] + local_index - 1
                out[out_pos[commit]] = sym[commit].astype(
                    out_dtype, copy=False
                )

            symbols_decoded += int(part.sum())
            per_task_iters[alive] += 1
            np.copyto(cur, sl - 1, where=alive)
            r += 1
        return r

    r = generic_until(r, min(H, R_total) if H < S else R_total)

    # ---- steady state ---------------------------------------------------
    if H < S and r == H:
        steady_iters = S - H
        out_idx = arena.get("out_idx", (T, K), np.int64)

        # cur is a multiple of K for every task here (groups are full);
        # output positions advance by exactly -K per iteration.
        out_idx[:] = (offs + cur - K)[:, None] + lane_col
        pos_sum_before = int(pos.sum())

        ran_compiled = False
        if kernel == "compiled":
            from repro.parallel import compiled

            if static:
                ran_compiled = compiled.rans_steady(
                    x, pos, words_u64, f1, b1, s1, None,
                    int(slot_count), int(slot_mask), n, RENORM_BITS,
                    L_BOUND, out, out_idx, steady_iters,
                )
            else:
                ran_compiled = compiled.rans_steady(
                    x, pos, words_u64, f_flat, b_flat, s_flat,
                    ids_dense, int(slot_count), int(slot_mask), n,
                    RENORM_BITS, L_BOUND, out, out_idx, steady_iters,
                )
        if not ran_compiled:
            _numpy_steady(
                arena, x, pos, out, out_idx, words_u64, steady_iters,
                static, tables, slot_mask, lbound, n64, rb, slot_count,
                None if static else ids_dense,
                (f1, b1, s1) if static else (f_flat, b_flat, s_flat),
                T, K,
            )

        words_read += pos_sum_before - int(pos.sum())
        symbols_decoded += steady_iters * T * K
        per_task_iters += steady_iters
        cur -= K * steady_iters
        r = S

    r = generic_until(r, R_total)

    stats.iterations = r
    stats.symbols_decoded = symbols_decoded
    stats.words_read = words_read
    stats.max_task_iterations = int(per_task_iters.max()) if T else 0

    # ---- terminal drain & checks ---------------------------------------
    for ti, t in enumerate(tasks):
        if not t.check_terminal:
            continue
        p = int(pos[ti])
        for lane in range(K - 1, -1, -1):
            xv = int(x[ti, lane])
            while xv < L_BOUND:
                if p <= t.terminal_pos:
                    raise DecodeError(
                        f"task {ti}: stream exhausted in terminal drain"
                    )
                xv = (xv << RENORM_BITS) | int(words[p])
                p -= 1
                stats.words_read += 1
            x[ti, lane] = xv
        if p != t.terminal_pos:
            raise DecodeError(
                f"task {ti}: stream region not fully consumed "
                f"(pos {p}, expected {t.terminal_pos})"
            )
        if np.any(x[ti] != L_BOUND):
            raise DecodeError(
                f"task {ti}: lanes did not return to the initial state L"
            )
    return stats


def _numpy_steady(
    arena, x, pos, out, out_idx, words_u64, steady_iters,
    static, tables, slot_mask, lbound, n64, rb, slot_count,
    ids_dense, gather_tables, T, K,
):
    """The numpy steady-state loop (the compiled twin's reference).

    Mutates ``x``, ``pos``, ``out`` and ``out_idx`` in place, exactly
    like :func:`repro.parallel.compiled.rans_steady` does.
    """
    need = arena.get("need", (T, K), bool)
    cbuf = arena.get("cbuf", (T, K), np.int64)
    rankb = arena.get("rankb", (T, K), np.int64)
    rposb = arena.get("rposb", (T, K), np.int64)
    wbuf = arena.get("wbuf", (T, K), np.uint64)
    tmp = arena.get("tmp", (T, K), np.uint64)
    slot = arena.get("slot", (T, K), np.uint64)
    fbuf = arena.get("fbuf", (T, K), np.uint64)
    bbuf = arena.get("bbuf", (T, K), np.uint64)
    symb = arena.get("symb", (T, K), tables.sym_slot.dtype)
    if not static:
        idsb = arena.get("idsb", (T, K), np.uint64)
        flatb = arena.get("flatb", (T, K), np.uint64)

    # Hoist everything hoistable: bound methods skip numpy's
    # Python-level dispatch wrappers, and the column views stay
    # valid because every buffer is written in place.
    counts = cbuf[:, K - 1]
    counts_col = cbuf[:, K - 1 :]
    pos_col = pos[:, None]
    need_any = need.any
    need_cumsum = need.cumsum
    pos_min = pos.min
    take_words = words_u64.take
    if static:
        f1, b1, s1 = gather_tables
        take_f, take_b, take_s = f1.take, b1.take, s1.take
    else:
        f_flat, b_flat, s_flat = gather_tables
        take_ids = ids_dense.take
        take_f, take_b, take_s = f_flat.take, b_flat.take, s_flat.take

    for _ in range(steady_iters):
        # Eq. 4: renormalization reads, descending lane order.
        np.less(x, lbound, out=need)
        if need_any():
            need_cumsum(axis=1, out=cbuf)
            np.subtract(counts_col, cbuf, out=rankb)
            np.subtract(pos_col, rankb, out=rposb)
            np.subtract(pos, counts, out=pos)
            if pos_min() < -1:
                raise DecodeError(
                    "bitstream exhausted during renormalization"
                )
            take_words(rposb, out=wbuf, mode="clip")
            np.left_shift(x, rb, out=tmp)
            np.bitwise_or(tmp, wbuf, out=tmp)
            np.copyto(x, tmp, where=need)
        # Eq. 2: decode all M*K lanes with single-gather tables.
        np.bitwise_and(x, slot_mask, out=slot)
        np.right_shift(x, n64, out=tmp)
        if static:
            take_f(slot, out=fbuf)
            take_b(slot, out=bbuf)
            take_s(slot, out=symb)
        else:
            take_ids(out_idx, out=idsb)
            np.multiply(idsb, slot_count, out=flatb)
            np.add(flatb, slot, out=flatb)
            take_f(flatb, out=fbuf)
            take_b(flatb, out=bbuf)
            take_s(flatb, out=symb)
        np.multiply(fbuf, tmp, out=x)
        np.add(x, bbuf, out=x)
        # Commit the whole group of every task.
        out[out_idx] = symb
        np.subtract(out_idx, K, out=out_idx)


# ---------------------------------------------------------------------------
# Multi-buffer fusion: tasks spanning several independent word streams.
# ---------------------------------------------------------------------------


def geometry_bucket(tasks, lanes: int) -> int:
    """Walk-geometry bucket for fusion grouping.

    The fused kernel's steady-state fast path covers the intersection
    of all tasks' steady windows (DESIGN.md §8): fusing a
    capacity-1 decode (one task walking the whole sequence) with a
    capacity-64 decode (64 short tasks) collapses that intersection
    and — worse — keeps the batch at full width long after the short
    tasks die.  Decodes therefore only fuse when their longest task
    walks a similar number of interleave groups; this returns the
    power-of-two band of that length (≤2x spread within a bucket), so
    same-shape decodes always share a bucket while pathologically
    unequal ones never do.  Used by the serve batcher and the
    multi-frame decoder.
    """
    longest = max(
        (t.walk_hi - t.walk_lo) // lanes + 1 for t in tasks
    )
    return longest.bit_length()


@dataclass
class StreamSegment:
    """One independent decode joining a fused multi-buffer run.

    A segment is exactly the argument triple of :func:`fused_run` —
    a word stream, the tasks walking it, and the output length — for
    one logical request.  :func:`fused_run_multi` concatenates many
    segments into a single virtual stream/output so their tasks
    advance together in one ``(sum(T_i) * K,)``-wide kernel call
    (DESIGN.md §12: cross-request fusion).
    """

    words: np.ndarray
    tasks: list[ThreadTask] = field(repr=False)
    num_symbols: int

    @property
    def lane_count(self) -> int:
        """Task-lanes this segment contributes to a fused batch."""
        return len(self.tasks)


@dataclass
class MultiRunResult:
    """Output of :func:`fused_run_multi`."""

    out: np.ndarray  # one flat output covering every segment
    slices: list[slice]  # per-segment views into ``out``
    stats: EngineStats

    def segment_outputs(self) -> list[np.ndarray]:
        return [self.out[s] for s in self.slices]


def fuse_segments(
    segments: list[StreamSegment],
) -> tuple[np.ndarray, list[ThreadTask], list[slice], int]:
    """Rebase many segments onto one concatenated stream and output.

    Word streams are stacked back to back and every task's stream
    positions (``start_pos``, ``terminal_pos``) shift by its segment's
    word base; output positions shift via ``global_offset``.  Local
    walk/commit indices and activation entries are untouched — the
    walk is defined in task-local coordinates (DESIGN.md §7), so a
    rebased task is indistinguishable from a native one.

    Segments sharing one word-buffer *object* (the dominant serving
    case: many concurrent requests for the same asset) share one copy
    in the concatenation — their tasks simply rebase onto the same
    word base, like multiple tasks of a single stream.

    Returns ``(words, tasks, out_slices, total_symbols)``.
    """
    word_arrays: list[np.ndarray] = []
    word_bases: dict[int, int] = {}  # id(words) -> assigned base
    fused_tasks: list[ThreadTask] = []
    out_slices: list[slice] = []
    next_base = 0
    sym_base = 0
    for seg in segments:
        word_base = word_bases.get(id(seg.words))
        if word_base is None:
            w = np.asarray(seg.words, dtype=np.uint16)
            word_arrays.append(w)
            word_bases[id(seg.words)] = word_base = next_base
            next_base += len(w)
        for t in seg.tasks:
            fused_tasks.append(
                replace(
                    t,
                    start_pos=t.start_pos + word_base,
                    global_offset=t.global_offset + sym_base,
                    terminal_pos=t.terminal_pos + word_base,
                )
            )
        out_slices.append(slice(sym_base, sym_base + seg.num_symbols))
        sym_base += seg.num_symbols
    if word_arrays:
        words = np.concatenate(word_arrays)
    else:
        words = np.empty(0, dtype=np.uint16)
    return words, fused_tasks, out_slices, sym_base


def fused_run_multi(
    provider: AdaptiveModelProvider,
    lanes: int,
    segments: list[StreamSegment],
    arena: ScratchArena,
    out_dtype=None,
    kernel: str = "numpy",
) -> MultiRunResult:
    """Decode many independent (words, tasks) segments as ONE kernel run.

    This is the serving-side payoff of the fused layout: ``S``
    requests of ``T_i`` tasks each become a single ``(sum(T_i), K)``
    state matrix, so per-iteration interpreter overhead is paid once
    per *batch* instead of once per request.  All segments must share
    ``provider`` and ``lanes``; multi-segment fusion requires a
    *static* provider (adaptive model ids are positional in the
    original sequence and do not survive output rebasing — dispatch
    those one segment at a time).

    Stream-underflow detection is per concatenated stream: a corrupt
    segment that under-reads past its own region is caught by the
    terminal drain (``terminal_pos`` check) rather than immediately at
    the read, exactly like a corrupt task inside a single stream.

    :param segments: independent decodes to fuse; shared word-buffer
        objects are concatenated only once.
    :param arena: caller-owned scratch buffers (DESIGN.md §9).
    :param out_dtype: output dtype (default: the provider's).
    :returns: one freshly allocated flat output plus per-segment
        slices and aggregate work counters.
    :raises DecodeError: more than one segment with a non-static
        provider (positional model ids do not survive rebasing), or
        any corruption :func:`fused_run` detects.
    :raises FaultInjected: the ``kernel.exec`` fault point is armed
        and fired (chaos runs only; :mod:`repro.faults`).
    """
    faults.fire(faults.KERNEL_EXEC)
    if len(segments) > 1 and not provider.is_static:
        raise DecodeError(
            "multi-segment fusion requires a static model provider; "
            "adaptive-model decodes must be dispatched individually"
        )
    words, tasks, out_slices, total_symbols = fuse_segments(segments)
    if out_dtype is None:
        out_dtype = provider.out_dtype
    # Results escape to callers, so the output is a fresh allocation
    # (arena rule 2, DESIGN.md §9); segment views share this buffer.
    out = np.empty(total_symbols, dtype=out_dtype)
    stats = fused_run(
        provider, lanes, words, tasks, out, arena, kernel=kernel
    )
    return MultiRunResult(out=out, slices=out_slices, stats=stats)
