"""Sharded multi-process execution of the fused kernels.

The thread pool of :mod:`repro.parallel.executor` runs the fused
wide-lane kernel on real OS threads, but every numpy call still takes
the GIL for its Python-level dispatch.  At serving widths the arrays
per worker are small (a handful of tasks x 32 lanes), so dispatch —
not arithmetic — dominates and the workers convoy on the GIL: on a
one-core host, 8 threads decode ~7x *slower* than 1 (see
docs/BENCHMARKS.md).  Recoil's split decoders are completely
independent (paper §3.1: no shared states, no shared offsets), which
makes partition-level sharding across OS *processes* safe: each worker
owns disjoint tasks and writes disjoint slices of the output, so
nothing needs a lock and nothing needs the same interpreter.

Layout (DESIGN.md §14):

- A :class:`ShardedExecutor` keeps a persistent pool of worker
  processes, each holding a long-lived :class:`~repro.parallel.simd.LaneEngine`
  (scratch arena reused across jobs) and a provider cache keyed by
  model fingerprint, so steady-state jobs ship **no model data**.
- Input word buffers and the output symbol array live in
  ``multiprocessing.shared_memory`` segments; workers map them and run
  the existing fused kernels zero-copy against disjoint slices.  Only
  small task descriptors (:class:`~repro.parallel.simd.ThreadTask`)
  and segment names cross the pipe.
- Shard planning reuses :func:`repro.parallel.costmodel.assign_tasks`
  (LPT over estimated walked symbols) so stragglers balance across
  processes exactly as they do across threads.
- A worker crash fails the in-flight job with
  :class:`~repro.errors.ParallelismError` and the parent unlinks every
  shared-memory segment it created (workers never own segments).  The
  pool then **self-heals**: the dead worker is respawned before the
  next dispatch, under capped exponential backoff, and the pool only
  goes terminally ``broken`` after a worker crash-loops past
  ``max_respawn_attempts`` consecutive deaths (DESIGN.md §15).
- The real failure surfaces are instrumented as :mod:`repro.faults`
  points (``shm.alloc``/``shm.attach``, ``pipe.send``/``pipe.recv``,
  ``worker.job``/``worker.crash``) so the chaos suite can drive every
  one of them deterministically.  Worker-side verdicts are evaluated
  in the parent and ship with the job.

When shared memory is unavailable (no writable ``/dev/shm``, missing
platform support), :func:`sharding_available` is ``False`` and callers
fall back to the thread backend — see
:func:`repro.parallel.executor.decode_with_pool`.
"""

from __future__ import annotations

import atexit
import os
import pickle
import secrets
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro import faults, trace
from repro.errors import FaultInjected, ParallelismError, ReproError
from repro.parallel.costmodel import assign_tasks
from repro.parallel.executor import PoolDecodeResult
from repro.parallel.fused import (
    MultiRunResult,
    StreamSegment,
    fuse_segments,
)
from repro.parallel.simd import EngineStats, LaneEngine, ThreadTask
from repro.rans.adaptive import AdaptiveModelProvider, provider_fingerprint

_SHM_PREFIX = "rcl_"


def combine_stats(per_worker: list[EngineStats]) -> EngineStats:
    """Aggregate per-shard stats into one :class:`EngineStats`.

    Work counters (symbols, words, tasks) add; iteration counters take
    the maximum, since shards run concurrently.
    """
    total = EngineStats()
    for s in per_worker:
        total.tasks += s.tasks
        total.symbols_decoded += s.symbols_decoded
        total.words_read += s.words_read
        total.iterations = max(total.iterations, s.iterations)
        total.max_task_iterations = max(
            total.max_task_iterations, s.max_task_iterations
        )
    return total


# ---------------------------------------------------------------------------
# Shared-memory plumbing.
# ---------------------------------------------------------------------------


def sharding_available() -> bool:
    """Whether POSIX shared memory works here (cached probe)."""
    global _AVAILABLE
    if _AVAILABLE is None:
        try:
            from multiprocessing import shared_memory

            # Random suffix (like _new_shm): a fixed pid-based name
            # could collide with a stale segment from a crashed
            # process whose pid was reused, caching a false negative.
            probe = shared_memory.SharedMemory(
                create=True,
                size=16,
                name=f"{_SHM_PREFIX}probe_{secrets.token_hex(6)}",
            )
            probe.close()
            probe.unlink()
            _AVAILABLE = True
        except Exception:
            _AVAILABLE = False
    return _AVAILABLE


_AVAILABLE: bool | None = None


def _new_shm(size: int):
    faults.fire(faults.SHM_ALLOC)
    from multiprocessing import shared_memory

    name = f"{_SHM_PREFIX}{os.getpid()}_{secrets.token_hex(6)}"
    return shared_memory.SharedMemory(create=True, size=max(size, 1), name=name)


def _attach_shm(name: str):
    """Attach to a parent-owned segment.

    Workers share the parent's resource-tracker daemon (fork keeps the
    pipe), and the tracker's registry is a set — the duplicate
    registration an attach performs is harmless, and the parent's
    single ``unlink`` clears it.  Workers must never unregister or
    unlink: the parent alone owns segment lifetime.
    """
    from multiprocessing import shared_memory

    return shared_memory.SharedMemory(name=name)


def _release_shm(shm, unlink: bool) -> None:
    try:
        shm.close()
    except Exception:
        pass
    if unlink:
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
        except Exception:
            pass


# ---------------------------------------------------------------------------
# Worker process.
# ---------------------------------------------------------------------------


def _strip_tracebacks(exc: BaseException, depth: int = 8) -> BaseException:
    """Drop traceback chains before shipping an exception to the parent.

    Tracebacks pin the worker's stack frames, whose locals include the
    numpy views over the shared-memory segments — keeping them alive
    would make the post-job ``shm.close()`` raise ``BufferError``.
    """
    while exc is not None and depth > 0:
        exc.__traceback__ = None
        if exc.__cause__ is not None and exc.__cause__ is not exc.__context__:
            _strip_tracebacks(exc.__cause__, depth - 1)
        exc = exc.__context__
        depth -= 1
    return None


def _worker_run_job(
    job: dict,
    providers: dict[bytes, AdaptiveModelProvider],
    engines: dict[tuple[bytes, int, str], LaneEngine],
) -> tuple:
    """Execute one decode job against its shared-memory segments.

    Returns the reply tuple to send.  Guarantees that no numpy view
    over the segments survives the call (views and tracebacks are
    dropped before returning), so the caller can safely close the
    maps.
    """
    # Injected-fault verdicts are evaluated in the PARENT at dispatch
    # time (one registry, one seed — deterministic across processes);
    # the worker merely executes what shipped with the job.
    verdict = job.get("fault")
    if verdict == "crash":  # simulated segfault: no reply, no cleanup
        os._exit(13)
    words_shm = out_shm = None
    try:
        try:
            if verdict == "raise":
                raise FaultInjected("injected fault at worker.job")
            key = job["provider_key"]
            kernel = job.get("kernel", "numpy")
            if key is None:
                # Adaptive providers ship with every job (their
                # per-index ids have no cheap content key) and are
                # never cached — a stale id-keyed hit would silently
                # decode with the wrong model.
                engine = LaneEngine(job["provider"], job["lanes"], kernel=kernel)
            else:
                if job["provider"] is not None:
                    providers[key] = job["provider"]
                engine = engines.get((key, job["lanes"], kernel))
                if engine is None:
                    engine = LaneEngine(
                        providers[key], job["lanes"], kernel=kernel
                    )
                    engines[(key, job["lanes"], kernel)] = engine

            if verdict == "attach":
                raise OSError("injected fault at shm.attach")
            words_shm = _attach_shm(job["words_name"])
            out_shm = _attach_shm(job["out_name"])
            words = np.ndarray(
                (job["num_words"],), dtype=np.uint16, buffer=words_shm.buf
            )
            out = np.ndarray(
                (job["num_symbols"],),
                dtype=np.dtype(job["out_dtype"]),
                buffer=out_shm.buf,
            )
            # Traced jobs measure the kernel here and ship the raw
            # perf_counter interval back with the reply; span ids are
            # allocated parent-side only (one id space — DESIGN.md
            # §17), so the worker sends measurements, never Span
            # objects.  perf_counter is CLOCK_MONOTONIC on Linux:
            # system-wide, so parent and worker timestamps compare.
            w0 = time.perf_counter() if job.get("trace") else 0.0
            try:
                stats = engine.run(words, job["tasks"], out)
            finally:
                # Views must die before the maps close (CPython raises
                # BufferError on close with exported buffers).
                del words, out
            span = None
            if job.get("trace"):
                span = (
                    w0,
                    time.perf_counter(),
                    os.getpid(),
                    threading.get_native_id(),
                )
            return ("ok", stats, span)
        except BaseException as exc:
            _strip_tracebacks(exc)
            try:
                pickle.dumps(exc)
            except Exception:
                exc = ParallelismError(f"shard worker failed: {exc!r}")
            return ("err", exc)
    finally:
        for shm in (words_shm, out_shm):
            if shm is not None:
                _release_shm(shm, unlink=False)


def _worker_main(conn) -> None:
    """Job loop of one shard worker (runs in a child process).

    State that persists across jobs: decode engines (and their scratch
    arenas) plus providers, keyed by model fingerprint, so repeat jobs
    against the same static model ship only task descriptors.
    """
    providers: dict[bytes, AdaptiveModelProvider] = {}
    engines: dict[tuple[bytes, int, str], LaneEngine] = {}
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        cmd = msg[0]
        if cmd == "close":
            conn.close()
            return
        if cmd == "ping":
            conn.send(("pong",))
            continue
        if cmd != "decode":  # pragma: no cover - protocol guard
            conn.send(("err", ParallelismError(f"unknown command {cmd!r}")))
            continue
        reply = _worker_run_job(msg[1], providers, engines)
        try:
            conn.send(reply)
        except (OSError, BrokenPipeError):  # parent went away
            return


# ---------------------------------------------------------------------------
# Parent-side executor.
# ---------------------------------------------------------------------------


@dataclass
class _Worker:
    proc: object
    conn: object
    known_providers: set
    #: the worker died (or its pipe broke) and awaits respawn.
    dead: bool = False
    #: consecutive deaths without an intervening successful dispatch —
    #: drives the respawn backoff and the crash-loop give-up.
    fails: int = 0
    #: earliest monotonic time a respawn may be attempted.
    next_respawn_at: float = field(default=0.0, repr=False)


class ShardedExecutor:
    """Persistent, self-healing pool of shard processes.

    The executor is provider-agnostic: any decode may be submitted,
    and workers cache providers/engines by model fingerprint.  It is
    **not** thread-safe — one dispatching thread at a time (the serve
    dispatcher, or the caller of
    :func:`~repro.parallel.executor.decode_with_pool`).

    A worker death fails the in-flight dispatch with
    :class:`~repro.errors.ParallelismError` (its shard's output is
    lost), but does not end the pool: the dead worker is **respawned**
    before the next dispatch, after a capped exponential backoff
    (``respawn_backoff_s * 2**(deaths-1)``, capped at
    ``respawn_backoff_cap_s``).  Consecutive-death counters reset on
    any fully successful dispatch; a worker that crash-loops past
    ``max_respawn_attempts`` consecutive deaths marks the pool
    terminally ``broken``.  Pass ``respawn=False`` for the pre-§15
    fail-fast behavior (first death breaks the pool).

    :param workers: pool size (shards per decode are capped by this).
    :param start_method: ``multiprocessing`` start method; defaults to
        ``fork`` where available (fast, no re-import) and ``spawn``
        elsewhere — except that a process with live non-main threads
        defaults to ``spawn`` even where ``fork`` exists, because
        forking a multithreaded parent can deadlock the children on
        locks the other threads hold (allocator, BLAS).  Respawns
        re-evaluate this rule at respawn time, so a pool forked while
        single-threaded respawns via ``spawn`` once a dispatcher
        thread is alive.  ``spawn`` carries Python's usual requirement
        that the calling script be importable
        (``if __name__ == "__main__":`` guard).  Override with
        ``REPRO_SHARD_START_METHOD``.
    :param respawn: whether dead workers are respawned (default) or
        the first death permanently breaks the pool.
    :param max_respawn_attempts: consecutive deaths of one worker
        slot after which the pool gives up and goes ``broken``.
    :param respawn_backoff_s: base backoff before the first respawn.
    :param respawn_backoff_cap_s: backoff ceiling.
    :raises ParallelismError: if ``workers < 1`` or the pool cannot
        start (callers that want the graceful path should check
        :func:`sharding_available` first).
    """

    def __init__(
        self,
        workers: int,
        start_method: str | None = None,
        respawn: bool = True,
        max_respawn_attempts: int = 5,
        respawn_backoff_s: float = 0.05,
        respawn_backoff_cap_s: float = 2.0,
    ) -> None:
        if workers < 1:
            raise ParallelismError(f"workers must be >= 1, got {workers}")
        if max_respawn_attempts < 1:
            raise ParallelismError(
                f"max_respawn_attempts must be >= 1, got "
                f"{max_respawn_attempts}"
            )
        if start_method is None:
            start_method = os.environ.get("REPRO_SHARD_START_METHOD")
        self.workers = workers
        self.respawn = respawn
        self.max_respawn_attempts = max_respawn_attempts
        self.respawn_backoff_s = respawn_backoff_s
        self.respawn_backoff_cap_s = respawn_backoff_cap_s
        #: total workers respawned over the pool's lifetime.
        self.respawns = 0
        self.broken = False
        self.closed = False
        self._workers: list[_Worker] = []
        try:
            import multiprocessing as mp

            if start_method is None:
                methods = mp.get_all_start_methods()
                start_method = "fork" if "fork" in methods else "spawn"
            self._start_method = start_method
            for _ in range(workers):
                self._workers.append(self._spawn_worker())
        except ParallelismError:
            raise
        except Exception as exc:
            self.close()
            raise ParallelismError(
                f"could not start shard worker pool: {exc}"
            ) from exc

    def _ctx(self):
        import multiprocessing as mp

        method = self._start_method
        if method == "fork" and threading.active_count() > 1:
            # fork() with live non-main threads can deadlock the
            # children on locks held mid-fork by the other threads;
            # pay spawn's startup cost instead.
            method = "spawn"
        return mp.get_context(method)

    def _spawn_worker(self) -> _Worker:
        ctx = self._ctx()
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=_worker_main, args=(child_conn,), daemon=True
        )
        proc.start()
        child_conn.close()
        return _Worker(proc=proc, conn=parent_conn, known_providers=set())

    # -- lifecycle -----------------------------------------------------

    def __enter__(self) -> "ShardedExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing
        try:
            self.close()
        except Exception:
            pass

    def close(self) -> None:
        """Stop every worker (idempotent).  In-flight work is lost."""
        if self.closed:
            return
        self.closed = True
        for w in self._workers:
            try:
                w.conn.send(("close",))
            except Exception:
                pass
        for w in self._workers:
            try:
                w.proc.join(timeout=2.0)
                if w.proc.is_alive():
                    w.proc.terminate()
                    w.proc.join(timeout=1.0)
                if w.proc.is_alive():  # pragma: no cover - last resort
                    w.proc.kill()
            except Exception:
                pass
            try:
                w.conn.close()
            except Exception:
                pass

    def warm(self) -> None:
        """Round-trip a ping through every worker (pool health check;
        benchmarks call this so process startup is outside the timed
        region).  Respawns dead workers first, so this doubles as the
        serve layer's re-promotion probe.

        :raises ParallelismError: if the pool is closed/broken, a
            respawn is still backing off, or a worker does not answer.
        """
        self._ensure_workers()
        failure: BaseException | None = None
        pinged: list[int] = []
        for wid, w in enumerate(self._workers):
            try:
                w.conn.send(("ping",))
                pinged.append(wid)
            except Exception as exc:
                self._mark_dead(wid)
                if failure is None:
                    failure = ParallelismError(
                        f"shard worker {wid} unreachable"
                    )
                    failure.__cause__ = exc
        # Drain every pong (even after a failure) so no stale reply is
        # left in a pipe to desynchronize the next dispatch.
        for wid in pinged:
            if self._workers[wid].dead:
                continue
            try:
                self._recv(wid)
            except ParallelismError as exc:
                if failure is None:
                    failure = exc
        if failure is not None:
            raise failure

    # -- health --------------------------------------------------------

    def _check_usable(self) -> None:
        if self.closed:
            raise ParallelismError("sharded executor is closed")
        if self.broken:
            raise ParallelismError(
                "sharded executor is broken (a worker crash-looped "
                "past the respawn budget); create a fresh executor"
            )

    def _mark_dead(self, wid: int) -> None:
        """Record a worker death: schedule its respawn (with backoff)
        and reap the process so a half-dead worker cannot wedge us."""
        w = self._workers[wid]
        if w.dead:
            return
        # cat "serve", not "shard": this marker records in the PARENT
        # (worker pids are reserved for worker-measured spans).
        trace.record_instant("shard.dead", args={"worker": wid})
        w.dead = True
        w.fails += 1
        delay = min(
            self.respawn_backoff_s * (2 ** (w.fails - 1)),
            self.respawn_backoff_cap_s,
        )
        w.next_respawn_at = time.monotonic() + delay
        try:
            w.conn.close()
        except Exception:
            pass
        try:
            if w.proc.is_alive():
                w.proc.terminate()
                w.proc.join(timeout=1.0)
                if w.proc.is_alive():  # pragma: no cover - last resort
                    w.proc.kill()
        except Exception:
            pass
        if not self.respawn or w.fails > self.max_respawn_attempts:
            self.broken = True

    def dead_workers(self) -> int:
        """Workers currently awaiting respawn."""
        return sum(1 for w in self._workers if w.dead)

    def _ensure_workers(self) -> None:
        """Respawn dead workers whose backoff has elapsed.

        :raises ParallelismError: pool closed/terminally broken, a
            worker is still backing off, or a respawn attempt failed
            (callers fall back to the thread backend and retry later).
        """
        self._check_usable()
        for wid, w in enumerate(self._workers):
            if not w.dead and not w.proc.is_alive():
                # Died between jobs (e.g. OOM-killed while idle).
                self._mark_dead(wid)
        self._check_usable()
        now = time.monotonic()
        for wid, w in enumerate(self._workers):
            if not w.dead:
                continue
            if now < w.next_respawn_at:
                raise ParallelismError(
                    f"shard worker {wid} respawn is backing off "
                    f"({w.next_respawn_at - now:.3f}s remaining)"
                )
            try:
                fresh = self._spawn_worker()
            except Exception as exc:
                w.fails += 1
                w.next_respawn_at = now + min(
                    self.respawn_backoff_s * (2 ** (w.fails - 1)),
                    self.respawn_backoff_cap_s,
                )
                if w.fails > self.max_respawn_attempts:
                    self.broken = True
                raise ParallelismError(
                    f"could not respawn shard worker {wid}: {exc}"
                ) from exc
            # Carry the crash-loop history so a worker that dies right
            # after every respawn keeps backing off harder.
            fresh.fails = w.fails
            self._workers[wid] = fresh
            self.respawns += 1
            trace.record_instant("shard.respawn", args={"worker": wid})

    # -- dispatch ------------------------------------------------------

    def _recv(self, wid: int):
        w = self._workers[wid]
        try:
            faults.fire(faults.PIPE_RECV)
            while not w.conn.poll(0.05):
                if not w.proc.is_alive():
                    self._mark_dead(wid)
                    raise ParallelismError(
                        f"shard worker {wid} died (exit code "
                        f"{w.proc.exitcode})"
                    )
            return w.conn.recv()
        except (EOFError, OSError) as exc:
            self._mark_dead(wid)
            raise ParallelismError(
                f"shard worker {wid} hung up mid-job"
            ) from exc

    def _provider_for_wire(
        self, wid: int, provider: AdaptiveModelProvider
    ) -> tuple[bytes | None, AdaptiveModelProvider | None]:
        """``(provider_key, provider-or-None)`` for one worker.

        Static providers are fingerprinted by model content and shipped
        at most once per worker.  Adaptive providers have positional
        per-index model ids that no cheap content key covers, so they
        ship with every job (key ``None``: the worker uses them
        ephemerally and caches nothing).
        """
        if provider.is_static:
            key = b"s" + provider_fingerprint(provider)
            known = self._workers[wid].known_providers
            if key in known:
                return key, None
            known.add(key)
            return key, provider
        return None, provider

    def _dispatch(
        self,
        provider: AdaptiveModelProvider,
        lanes: int,
        words: np.ndarray,
        tasks: list[ThreadTask],
        num_symbols: int,
        out_dtype,
        workers: int,
        strategy: str,
        kernel: str = "numpy",
    ) -> tuple[np.ndarray, list[EngineStats]]:
        """Shard ``tasks``, run them in the pool, return (out, stats).

        ``workers`` is the *shard count* (mirroring the thread
        backend); when it exceeds the pool size, shards are queued
        round-robin onto the pool's workers and each worker drains its
        queue in order.
        """
        self._ensure_workers()
        trace_on = trace.enabled()
        # The serve dispatcher publishes its batch span as the thread's
        # implicit parent; worker spans recorded below attach to it.
        trace_parent = trace.current_parent() if trace_on else None
        out_dtype = np.dtype(out_dtype)
        buckets = assign_tasks(tasks, workers, strategy=strategy)
        out = np.empty(num_symbols, dtype=out_dtype)
        if not buckets:
            return out, []

        words = np.ascontiguousarray(words, dtype=np.uint16)
        words_shm = out_shm = None
        pool_size = len(self._workers)
        try:
            try:
                words_shm = _new_shm(words.nbytes)
                out_shm = _new_shm(num_symbols * out_dtype.itemsize)
            except Exception as exc:
                # Exhausted /dev/shm is an infrastructure failure, not
                # a decode failure: surface it as ParallelismError so
                # callers retry the identical plan on threads.
                raise ParallelismError(
                    f"could not allocate shared memory: {exc}"
                ) from exc
            np.ndarray(words.shape, np.uint16, buffer=words_shm.buf)[:] = words
            sent = [0] * pool_size
            failure: BaseException | None = None
            for i, bucket in enumerate(buckets):
                if failure is not None:
                    break  # don't queue more work onto a failing run
                wid = i % pool_size
                key, wire_provider = self._provider_for_wire(wid, provider)
                verdict = None
                if faults.enabled():
                    if faults.triggered(faults.WORKER_CRASH):
                        verdict = "crash"
                    elif faults.triggered(faults.WORKER_JOB):
                        verdict = "raise"
                    elif faults.triggered(faults.SHM_ATTACH):
                        verdict = "attach"
                try:
                    faults.fire(faults.PIPE_SEND)
                    self._workers[wid].conn.send(
                        (
                            "decode",
                            {
                                "provider_key": key,
                                "provider": wire_provider,
                                "lanes": lanes,
                                "words_name": words_shm.name,
                                "num_words": len(words),
                                "out_name": out_shm.name,
                                "num_symbols": num_symbols,
                                "out_dtype": out_dtype.str,
                                "tasks": bucket,
                                "kernel": kernel,
                                "fault": verdict,
                                "trace": trace_on,
                            },
                        )
                    )
                    sent[wid] += 1
                except (OSError, BrokenPipeError) as exc:
                    self._mark_dead(wid)
                    failure = ParallelismError(
                        f"shard worker {wid} unreachable"
                    )
                    failure.__cause__ = exc
            # Drain every reply owed by every still-live worker, even
            # after a failure: a reply left in a pipe would be read as
            # the next dispatch's answer.
            stats: list[EngineStats] = []
            for wid in range(pool_size):
                for _ in range(sent[wid]):
                    if self._workers[wid].dead:
                        break  # its replies died with it
                    try:
                        reply = self._recv(wid)
                    except ParallelismError as exc:
                        if failure is None:
                            failure = exc
                        break
                    if reply[0] == "ok":
                        stats.append(reply[1])
                        wspan = reply[2] if len(reply) > 2 else None
                        if wspan is not None:
                            # Register the worker-measured interval in
                            # the parent's ring under the worker's real
                            # pid/tid, parented to the dispatch span.
                            trace.record_span(
                                "shard.worker",
                                wspan[0],
                                wspan[1],
                                cat=trace.WORKER_CAT,
                                parent=trace_parent,
                                pid=wspan[2],
                                tid=wspan[3],
                                args={"worker": wid},
                            )
                        continue
                    exc = reply[1]
                    if not isinstance(exc, ReproError):
                        # A worker-side infrastructure error (attach
                        # failure, numpy misbehavior): the worker is
                        # healthy but the job is lost — retryable.
                        exc = ParallelismError(
                            f"shard worker {wid} job failed: {exc!r}"
                        )
                    if failure is None:
                        failure = exc
            if failure is not None:
                raise failure
            if len(stats) != len(buckets):  # pragma: no cover - guard
                raise ParallelismError(
                    f"shard dispatch lost replies "
                    f"({len(stats)}/{len(buckets)})"
                )
            # A fully successful dispatch clears crash-loop history.
            for w in self._workers:
                if not w.dead:
                    w.fails = 0
            out[:] = np.ndarray(
                (num_symbols,), out_dtype, buffer=out_shm.buf
            )
            return out, stats
        finally:
            if words_shm is not None:
                _release_shm(words_shm, unlink=True)
            if out_shm is not None:
                _release_shm(out_shm, unlink=True)

    # -- public entry points -------------------------------------------

    def decode(
        self,
        provider: AdaptiveModelProvider,
        lanes: int,
        words: np.ndarray,
        tasks: list[ThreadTask],
        num_symbols: int,
        out_dtype,
        workers: int | None = None,
        strategy: str = "cost",
        kernel: str = "numpy",
    ) -> PoolDecodeResult:
        """Decode ``tasks`` across shard processes.

        Same contract (and bit-identical output) as
        :func:`repro.parallel.executor.decode_with_pool`: tasks are
        LPT-balanced into at most ``workers`` shards, every shard runs
        the fused kernel over the shared word buffer and writes its
        disjoint commit ranges into the shared output.

        :param workers: shards for this decode (default: pool size).
        :param strategy: ``"cost"`` (LPT) or ``"round_robin"``.
        :param kernel: inner-loop kernel (``"numpy"`` or
            ``"compiled"``) each worker's engine runs — callers must
            pass an *effective* kernel
            (:func:`repro.parallel.compiled.effective_kernel`); the
            worker builds/loads the compiled library on first use.
        :returns: :class:`~repro.parallel.executor.PoolDecodeResult`
            with ``backend="process"``.
        :raises ParallelismError: pool closed/broken, worker crash, or
            ``workers < 1``.
        :raises DecodeError: corrupt stream/metadata, re-raised from
            the worker that hit it.
        """
        if workers is None:
            workers = self.workers
        if workers < 1:
            raise ParallelismError(f"workers must be >= 1, got {workers}")
        out, stats = self._dispatch(
            provider, lanes, words, tasks, num_symbols, out_dtype,
            workers, strategy, kernel=kernel,
        )
        return PoolDecodeResult(
            symbols=out,
            per_worker_stats=stats,
            workers=len(stats),
            backend="process",
            kernel=kernel,
        )

    def run_multi(
        self,
        provider: AdaptiveModelProvider,
        lanes: int,
        segments: list[StreamSegment],
        out_dtype=None,
        workers: int | None = None,
        strategy: str = "cost",
        kernel: str = "numpy",
    ) -> MultiRunResult:
        """Sharded counterpart of :func:`repro.parallel.fused.fused_run_multi`.

        Segments are rebased onto one concatenated virtual stream
        (:func:`~repro.parallel.fused.fuse_segments`, deduping shared
        word buffers), then the fused tasks are sharded across the
        pool.  Output is bit-identical to the single-process fused
        path; stats are aggregated via :func:`combine_stats`.

        :raises DecodeError: multi-segment fusion with a non-static
            provider (same rule as ``fused_run_multi``), or a corrupt
            stream.
        :raises ParallelismError: pool closed/broken or worker crash.
        """
        if len(segments) > 1 and not provider.is_static:
            from repro.errors import DecodeError

            raise DecodeError(
                "multi-segment fusion requires a static model provider; "
                "adaptive-model decodes must be dispatched individually"
            )
        if out_dtype is None:
            out_dtype = provider.out_dtype
        words, tasks, slices, total = fuse_segments(segments)
        out, stats = self._dispatch(
            provider, lanes, words, tasks, total, out_dtype,
            workers or self.workers, strategy, kernel=kernel,
        )
        combined = combine_stats(stats)
        combined.tasks = len(tasks)
        return MultiRunResult(out=out, slices=slices, stats=combined)


# ---------------------------------------------------------------------------
# Module-level default pool (lazy, grown on demand, closed at exit).
# ---------------------------------------------------------------------------

_default: ShardedExecutor | None = None

#: ceiling on the default pool's process count — shard counts above it
#: over-subscribe (round-robin queueing), they never fork more workers.
POOL_CAP = max(8, os.cpu_count() or 1)


def default_executor(workers: int) -> ShardedExecutor | None:
    """The shared process pool behind ``decode_with_pool(backend="process")``.

    Lazily created, kept across calls (pool startup is the expensive
    part), regrown when a caller asks for more workers than it has
    (up to :data:`POOL_CAP` processes — larger shard counts
    over-subscribe the pool), and replaced if broken.  Returns ``None``
    when sharding is unavailable on this host — callers fall back to
    the thread backend.
    """
    global _default
    if not sharding_available():
        return None
    size = min(workers, POOL_CAP)
    if _default is not None and (_default.broken or _default.closed):
        _default.close()
        _default = None
    if _default is None or _default.workers < size:
        if _default is not None:
            _default.close()
        try:
            _default = ShardedExecutor(size)
        except ParallelismError:
            return None
    return _default


@atexit.register
def _close_default() -> None:  # pragma: no cover - interpreter exit
    global _default
    if _default is not None:
        _default.close()
        _default = None
