"""Sharded multi-process execution of the fused kernels.

The thread pool of :mod:`repro.parallel.executor` runs the fused
wide-lane kernel on real OS threads, but every numpy call still takes
the GIL for its Python-level dispatch.  At serving widths the arrays
per worker are small (a handful of tasks x 32 lanes), so dispatch —
not arithmetic — dominates and the workers convoy on the GIL: on a
one-core host, 8 threads decode ~7x *slower* than 1 (see
docs/BENCHMARKS.md).  Recoil's split decoders are completely
independent (paper §3.1: no shared states, no shared offsets), which
makes partition-level sharding across OS *processes* safe: each worker
owns disjoint tasks and writes disjoint slices of the output, so
nothing needs a lock and nothing needs the same interpreter.

Layout (DESIGN.md §14):

- A :class:`ShardedExecutor` keeps a persistent pool of worker
  processes, each holding a long-lived :class:`~repro.parallel.simd.LaneEngine`
  (scratch arena reused across jobs) and a provider cache keyed by
  model fingerprint, so steady-state jobs ship **no model data**.
- Input word buffers and the output symbol array live in
  ``multiprocessing.shared_memory`` segments; workers map them and run
  the existing fused kernels zero-copy against disjoint slices.  Only
  small task descriptors (:class:`~repro.parallel.simd.ThreadTask`)
  and segment names cross the pipe.
- Shard planning reuses :func:`repro.parallel.costmodel.assign_tasks`
  (LPT over estimated walked symbols) so stragglers balance across
  processes exactly as they do across threads.
- A worker crash fails the in-flight job with
  :class:`~repro.errors.ParallelismError`, marks the pool broken, and
  the parent unlinks every shared-memory segment it created (workers
  never own segments).

When shared memory is unavailable (no writable ``/dev/shm``, missing
platform support), :func:`sharding_available` is ``False`` and callers
fall back to the thread backend — see
:func:`repro.parallel.executor.decode_with_pool`.
"""

from __future__ import annotations

import atexit
import os
import pickle
import secrets
import threading
from dataclasses import dataclass

import numpy as np

from repro.errors import ParallelismError
from repro.parallel.costmodel import assign_tasks
from repro.parallel.executor import PoolDecodeResult
from repro.parallel.fused import (
    MultiRunResult,
    StreamSegment,
    fuse_segments,
)
from repro.parallel.simd import EngineStats, LaneEngine, ThreadTask
from repro.rans.adaptive import AdaptiveModelProvider, provider_fingerprint

_SHM_PREFIX = "rcl_"


def combine_stats(per_worker: list[EngineStats]) -> EngineStats:
    """Aggregate per-shard stats into one :class:`EngineStats`.

    Work counters (symbols, words, tasks) add; iteration counters take
    the maximum, since shards run concurrently.
    """
    total = EngineStats()
    for s in per_worker:
        total.tasks += s.tasks
        total.symbols_decoded += s.symbols_decoded
        total.words_read += s.words_read
        total.iterations = max(total.iterations, s.iterations)
        total.max_task_iterations = max(
            total.max_task_iterations, s.max_task_iterations
        )
    return total


# ---------------------------------------------------------------------------
# Shared-memory plumbing.
# ---------------------------------------------------------------------------


def sharding_available() -> bool:
    """Whether POSIX shared memory works here (cached probe)."""
    global _AVAILABLE
    if _AVAILABLE is None:
        try:
            from multiprocessing import shared_memory

            # Random suffix (like _new_shm): a fixed pid-based name
            # could collide with a stale segment from a crashed
            # process whose pid was reused, caching a false negative.
            probe = shared_memory.SharedMemory(
                create=True,
                size=16,
                name=f"{_SHM_PREFIX}probe_{secrets.token_hex(6)}",
            )
            probe.close()
            probe.unlink()
            _AVAILABLE = True
        except Exception:
            _AVAILABLE = False
    return _AVAILABLE


_AVAILABLE: bool | None = None


def _new_shm(size: int):
    from multiprocessing import shared_memory

    name = f"{_SHM_PREFIX}{os.getpid()}_{secrets.token_hex(6)}"
    return shared_memory.SharedMemory(create=True, size=max(size, 1), name=name)


def _attach_shm(name: str):
    """Attach to a parent-owned segment.

    Workers share the parent's resource-tracker daemon (fork keeps the
    pipe), and the tracker's registry is a set — the duplicate
    registration an attach performs is harmless, and the parent's
    single ``unlink`` clears it.  Workers must never unregister or
    unlink: the parent alone owns segment lifetime.
    """
    from multiprocessing import shared_memory

    return shared_memory.SharedMemory(name=name)


def _release_shm(shm, unlink: bool) -> None:
    try:
        shm.close()
    except Exception:
        pass
    if unlink:
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
        except Exception:
            pass


# ---------------------------------------------------------------------------
# Worker process.
# ---------------------------------------------------------------------------


def _strip_tracebacks(exc: BaseException, depth: int = 8) -> BaseException:
    """Drop traceback chains before shipping an exception to the parent.

    Tracebacks pin the worker's stack frames, whose locals include the
    numpy views over the shared-memory segments — keeping them alive
    would make the post-job ``shm.close()`` raise ``BufferError``.
    """
    while exc is not None and depth > 0:
        exc.__traceback__ = None
        if exc.__cause__ is not None and exc.__cause__ is not exc.__context__:
            _strip_tracebacks(exc.__cause__, depth - 1)
        exc = exc.__context__
        depth -= 1
    return None


def _worker_run_job(
    job: dict,
    providers: dict[bytes, AdaptiveModelProvider],
    engines: dict[tuple[bytes, int], LaneEngine],
) -> tuple:
    """Execute one decode job against its shared-memory segments.

    Returns the reply tuple to send.  Guarantees that no numpy view
    over the segments survives the call (views and tracebacks are
    dropped before returning), so the caller can safely close the
    maps.
    """
    words_shm = out_shm = None
    try:
        try:
            key = job["provider_key"]
            if key is None:
                # Adaptive providers ship with every job (their
                # per-index ids have no cheap content key) and are
                # never cached — a stale id-keyed hit would silently
                # decode with the wrong model.
                engine = LaneEngine(job["provider"], job["lanes"])
            else:
                if job["provider"] is not None:
                    providers[key] = job["provider"]
                engine = engines.get((key, job["lanes"]))
                if engine is None:
                    engine = LaneEngine(providers[key], job["lanes"])
                    engines[(key, job["lanes"])] = engine

            words_shm = _attach_shm(job["words_name"])
            out_shm = _attach_shm(job["out_name"])
            words = np.ndarray(
                (job["num_words"],), dtype=np.uint16, buffer=words_shm.buf
            )
            out = np.ndarray(
                (job["num_symbols"],),
                dtype=np.dtype(job["out_dtype"]),
                buffer=out_shm.buf,
            )
            try:
                stats = engine.run(words, job["tasks"], out)
            finally:
                # Views must die before the maps close (CPython raises
                # BufferError on close with exported buffers).
                del words, out
            return ("ok", stats)
        except BaseException as exc:
            _strip_tracebacks(exc)
            try:
                pickle.dumps(exc)
            except Exception:
                exc = ParallelismError(f"shard worker failed: {exc!r}")
            return ("err", exc)
    finally:
        for shm in (words_shm, out_shm):
            if shm is not None:
                _release_shm(shm, unlink=False)


def _worker_main(conn) -> None:
    """Job loop of one shard worker (runs in a child process).

    State that persists across jobs: decode engines (and their scratch
    arenas) plus providers, keyed by model fingerprint, so repeat jobs
    against the same static model ship only task descriptors.
    """
    providers: dict[bytes, AdaptiveModelProvider] = {}
    engines: dict[tuple[bytes, int], LaneEngine] = {}
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        cmd = msg[0]
        if cmd == "close":
            conn.close()
            return
        if cmd == "ping":
            conn.send(("pong",))
            continue
        if cmd != "decode":  # pragma: no cover - protocol guard
            conn.send(("err", ParallelismError(f"unknown command {cmd!r}")))
            continue
        reply = _worker_run_job(msg[1], providers, engines)
        try:
            conn.send(reply)
        except (OSError, BrokenPipeError):  # parent went away
            return


# ---------------------------------------------------------------------------
# Parent-side executor.
# ---------------------------------------------------------------------------


@dataclass
class _Worker:
    proc: object
    conn: object
    known_providers: set


class ShardedExecutor:
    """Persistent pool of shard processes running the fused kernels.

    The executor is provider-agnostic: any decode may be submitted,
    and workers cache providers/engines by model fingerprint.  It is
    **not** thread-safe — one dispatching thread at a time (the serve
    dispatcher, or the caller of
    :func:`~repro.parallel.executor.decode_with_pool`).

    :param workers: pool size (shards per decode are capped by this).
    :param start_method: ``multiprocessing`` start method; defaults to
        ``fork`` where available (fast, no re-import) and ``spawn``
        elsewhere — except that a process with live non-main threads
        defaults to ``spawn`` even where ``fork`` exists, because
        forking a multithreaded parent can deadlock the children on
        locks the other threads hold (allocator, BLAS).  ``spawn``
        carries Python's usual requirement that the calling script be
        importable (``if __name__ == "__main__":`` guard).  Override
        with ``REPRO_SHARD_START_METHOD``.
    :raises ParallelismError: if ``workers < 1`` or the pool cannot
        start (callers that want the graceful path should check
        :func:`sharding_available` first).
    """

    def __init__(self, workers: int, start_method: str | None = None) -> None:
        if workers < 1:
            raise ParallelismError(f"workers must be >= 1, got {workers}")
        if start_method is None:
            start_method = os.environ.get("REPRO_SHARD_START_METHOD")
        self.workers = workers
        self.broken = False
        self.closed = False
        self._workers: list[_Worker] = []
        try:
            import multiprocessing as mp

            if start_method is None:
                methods = mp.get_all_start_methods()
                start_method = "fork" if "fork" in methods else "spawn"
                if start_method == "fork" and threading.active_count() > 1:
                    # fork() with live non-main threads can deadlock
                    # the children on locks held mid-fork by the other
                    # threads; pay spawn's startup cost instead.
                    start_method = "spawn"
            ctx = mp.get_context(start_method)
            for _ in range(workers):
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main, args=(child_conn,), daemon=True
                )
                proc.start()
                child_conn.close()
                self._workers.append(
                    _Worker(proc=proc, conn=parent_conn, known_providers=set())
                )
        except ParallelismError:
            raise
        except Exception as exc:
            self.close()
            raise ParallelismError(
                f"could not start shard worker pool: {exc}"
            ) from exc

    # -- lifecycle -----------------------------------------------------

    def __enter__(self) -> "ShardedExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing
        try:
            self.close()
        except Exception:
            pass

    def close(self) -> None:
        """Stop every worker (idempotent).  In-flight work is lost."""
        if self.closed:
            return
        self.closed = True
        for w in self._workers:
            try:
                w.conn.send(("close",))
            except Exception:
                pass
        for w in self._workers:
            try:
                w.proc.join(timeout=2.0)
                if w.proc.is_alive():
                    w.proc.terminate()
                    w.proc.join(timeout=1.0)
                if w.proc.is_alive():  # pragma: no cover - last resort
                    w.proc.kill()
            except Exception:
                pass
            try:
                w.conn.close()
            except Exception:
                pass

    def warm(self) -> None:
        """Round-trip a ping through every worker (pool health check;
        benchmarks call this so process startup is outside the timed
        region).

        :raises ParallelismError: if the pool is closed/broken or a
            worker does not answer.
        """
        self._check_usable()
        for wid, w in enumerate(self._workers):
            try:
                w.conn.send(("ping",))
            except Exception as exc:
                self.broken = True
                raise ParallelismError(
                    f"shard worker {wid} unreachable"
                ) from exc
        for wid, w in enumerate(self._workers):
            self._recv(wid)

    # -- dispatch ------------------------------------------------------

    def _check_usable(self) -> None:
        if self.closed:
            raise ParallelismError("sharded executor is closed")
        if self.broken:
            raise ParallelismError(
                "sharded executor is broken (a worker died); create a "
                "fresh executor"
            )

    def _recv(self, wid: int):
        w = self._workers[wid]
        while not w.conn.poll(0.05):
            if not w.proc.is_alive():
                self.broken = True
                raise ParallelismError(
                    f"shard worker {wid} died (exit code "
                    f"{w.proc.exitcode})"
                )
        try:
            return w.conn.recv()
        except (EOFError, OSError) as exc:
            self.broken = True
            raise ParallelismError(
                f"shard worker {wid} hung up mid-job"
            ) from exc

    def _provider_for_wire(
        self, wid: int, provider: AdaptiveModelProvider
    ) -> tuple[bytes | None, AdaptiveModelProvider | None]:
        """``(provider_key, provider-or-None)`` for one worker.

        Static providers are fingerprinted by model content and shipped
        at most once per worker.  Adaptive providers have positional
        per-index model ids that no cheap content key covers, so they
        ship with every job (key ``None``: the worker uses them
        ephemerally and caches nothing).
        """
        if provider.is_static:
            key = b"s" + provider_fingerprint(provider)
            known = self._workers[wid].known_providers
            if key in known:
                return key, None
            known.add(key)
            return key, provider
        return None, provider

    def _dispatch(
        self,
        provider: AdaptiveModelProvider,
        lanes: int,
        words: np.ndarray,
        tasks: list[ThreadTask],
        num_symbols: int,
        out_dtype,
        workers: int,
        strategy: str,
    ) -> tuple[np.ndarray, list[EngineStats]]:
        """Shard ``tasks``, run them in the pool, return (out, stats).

        ``workers`` is the *shard count* (mirroring the thread
        backend); when it exceeds the pool size, shards are queued
        round-robin onto the pool's workers and each worker drains its
        queue in order.
        """
        self._check_usable()
        out_dtype = np.dtype(out_dtype)
        buckets = assign_tasks(tasks, workers, strategy=strategy)
        out = np.empty(num_symbols, dtype=out_dtype)
        if not buckets:
            return out, []

        words = np.ascontiguousarray(words, dtype=np.uint16)
        words_shm = _new_shm(words.nbytes)
        out_shm = _new_shm(num_symbols * out_dtype.itemsize)
        pool_size = len(self._workers)
        try:
            np.ndarray(words.shape, np.uint16, buffer=words_shm.buf)[:] = words
            for i, bucket in enumerate(buckets):
                wid = i % pool_size
                key, wire_provider = self._provider_for_wire(wid, provider)
                try:
                    self._workers[wid].conn.send(
                        (
                            "decode",
                            {
                                "provider_key": key,
                                "provider": wire_provider,
                                "lanes": lanes,
                                "words_name": words_shm.name,
                                "num_words": len(words),
                                "out_name": out_shm.name,
                                "num_symbols": num_symbols,
                                "out_dtype": out_dtype.str,
                                "tasks": bucket,
                            },
                        )
                    )
                except (OSError, BrokenPipeError) as exc:
                    self.broken = True
                    raise ParallelismError(
                        f"shard worker {wid} unreachable"
                    ) from exc
            stats: list[EngineStats] = []
            failure: BaseException | None = None
            for i in range(len(buckets)):
                reply = self._recv(i % pool_size)
                if reply[0] == "ok":
                    stats.append(reply[1])
                elif failure is None:
                    failure = reply[1]
            if failure is not None:
                raise failure
            out[:] = np.ndarray(
                (num_symbols,), out_dtype, buffer=out_shm.buf
            )
            return out, stats
        finally:
            _release_shm(words_shm, unlink=True)
            _release_shm(out_shm, unlink=True)

    # -- public entry points -------------------------------------------

    def decode(
        self,
        provider: AdaptiveModelProvider,
        lanes: int,
        words: np.ndarray,
        tasks: list[ThreadTask],
        num_symbols: int,
        out_dtype,
        workers: int | None = None,
        strategy: str = "cost",
    ) -> PoolDecodeResult:
        """Decode ``tasks`` across shard processes.

        Same contract (and bit-identical output) as
        :func:`repro.parallel.executor.decode_with_pool`: tasks are
        LPT-balanced into at most ``workers`` shards, every shard runs
        the fused kernel over the shared word buffer and writes its
        disjoint commit ranges into the shared output.

        :param workers: shards for this decode (default: pool size).
        :param strategy: ``"cost"`` (LPT) or ``"round_robin"``.
        :returns: :class:`~repro.parallel.executor.PoolDecodeResult`
            with ``backend="process"``.
        :raises ParallelismError: pool closed/broken, worker crash, or
            ``workers < 1``.
        :raises DecodeError: corrupt stream/metadata, re-raised from
            the worker that hit it.
        """
        if workers is None:
            workers = self.workers
        if workers < 1:
            raise ParallelismError(f"workers must be >= 1, got {workers}")
        out, stats = self._dispatch(
            provider, lanes, words, tasks, num_symbols, out_dtype,
            workers, strategy,
        )
        return PoolDecodeResult(
            symbols=out,
            per_worker_stats=stats,
            workers=len(stats),
            backend="process",
        )

    def run_multi(
        self,
        provider: AdaptiveModelProvider,
        lanes: int,
        segments: list[StreamSegment],
        out_dtype=None,
        workers: int | None = None,
        strategy: str = "cost",
    ) -> MultiRunResult:
        """Sharded counterpart of :func:`repro.parallel.fused.fused_run_multi`.

        Segments are rebased onto one concatenated virtual stream
        (:func:`~repro.parallel.fused.fuse_segments`, deduping shared
        word buffers), then the fused tasks are sharded across the
        pool.  Output is bit-identical to the single-process fused
        path; stats are aggregated via :func:`combine_stats`.

        :raises DecodeError: multi-segment fusion with a non-static
            provider (same rule as ``fused_run_multi``), or a corrupt
            stream.
        :raises ParallelismError: pool closed/broken or worker crash.
        """
        if len(segments) > 1 and not provider.is_static:
            from repro.errors import DecodeError

            raise DecodeError(
                "multi-segment fusion requires a static model provider; "
                "adaptive-model decodes must be dispatched individually"
            )
        if out_dtype is None:
            out_dtype = provider.out_dtype
        words, tasks, slices, total = fuse_segments(segments)
        out, stats = self._dispatch(
            provider, lanes, words, tasks, total, out_dtype,
            workers or self.workers, strategy,
        )
        combined = combine_stats(stats)
        combined.tasks = len(tasks)
        return MultiRunResult(out=out, slices=slices, stats=combined)


# ---------------------------------------------------------------------------
# Module-level default pool (lazy, grown on demand, closed at exit).
# ---------------------------------------------------------------------------

_default: ShardedExecutor | None = None

#: ceiling on the default pool's process count — shard counts above it
#: over-subscribe (round-robin queueing), they never fork more workers.
POOL_CAP = max(8, os.cpu_count() or 1)


def default_executor(workers: int) -> ShardedExecutor | None:
    """The shared process pool behind ``decode_with_pool(backend="process")``.

    Lazily created, kept across calls (pool startup is the expensive
    part), regrown when a caller asks for more workers than it has
    (up to :data:`POOL_CAP` processes — larger shard counts
    over-subscribe the pool), and replaced if broken.  Returns ``None``
    when sharding is unavailable on this host — callers fall back to
    the thread backend.
    """
    global _default
    if not sharding_available():
        return None
    size = min(workers, POOL_CAP)
    if _default is not None and (_default.broken or _default.closed):
        _default.close()
        _default = None
    if _default is None or _default.workers < size:
        if _default is not None:
            _default.close()
        try:
            _default = ShardedExecutor(size)
        except ParallelismError:
            return None
    return _default


@atexit.register
def _close_default() -> None:  # pragma: no cover - interpreter exit
    global _default
    if _default is not None:
        _default.close()
        _default = None
