"""Parallel execution substrate.

- :mod:`repro.parallel.simd` — the numpy lane engine: decodes a batch
  of decoder threads, each with 32 interleaved lanes, as dense array
  operations (the reproduction's stand-in for AVX vectors and CUDA
  warps).
- :mod:`repro.parallel.executor` — process/thread-pool execution of
  decode tasks on real OS threads.
- :mod:`repro.parallel.costmodel` — analytical device profiles used to
  project Figure-7-style GB/s numbers from counted work.
- :mod:`repro.parallel.workload` — work accounting helpers.
"""

from repro.parallel.simd import LaneEngine, ThreadTask, EngineStats
from repro.parallel.costmodel import DeviceProfile, project_throughput
from repro.parallel.workload import WorkloadSummary, summarize_tasks

__all__ = [
    "LaneEngine",
    "ThreadTask",
    "EngineStats",
    "DeviceProfile",
    "project_throughput",
    "WorkloadSummary",
    "summarize_tasks",
]
