"""Parallel execution substrate.

- :mod:`repro.parallel.simd` — the lane-engine front end: a batch of
  decoder threads, each with 32 interleaved lanes, as dense array
  operations (the reproduction's stand-in for AVX vectors and CUDA
  warps).  ``run`` routes through the fused kernel; ``run_reference``
  keeps the original masked loop for differential testing.
- :mod:`repro.parallel.fused` — the fused wide-lane decode kernel
  (DESIGN.md §8): one flat state vector across all partitions, an
  analytically-planned steady-state fast path, zero per-iteration
  allocation; ``fused_run_multi`` extends it to tasks spanning
  multiple word buffers (cross-request fusion, DESIGN.md §12).
- :mod:`repro.parallel.fused_encode` — the encode-side twin
  (DESIGN.md §10): blocked trajectory staging, in-kernel split-event
  recording, independent encodes fused into one wide state vector.
- :mod:`repro.parallel.buffers` — the scratch-buffer arena backing the
  kernels (DESIGN.md §9).
- :mod:`repro.parallel.executor` — pooled execution of decode tasks
  on real OS threads or shard processes, cost-balanced via the cost
  model (``backend={"thread","process"}``).
- :mod:`repro.parallel.shards` — the sharded multi-process executor
  (DESIGN.md §14): persistent worker processes running the fused
  kernels zero-copy over ``multiprocessing.shared_memory``.
- :mod:`repro.parallel.costmodel` — analytical device profiles used to
  project Figure-7-style GB/s numbers from counted work, plus the
  task-assignment cost heuristics.
- :mod:`repro.parallel.workload` — work accounting helpers.
"""

from repro.parallel.buffers import ScratchArena
from repro.parallel.fused import (
    MultiRunResult,
    StreamSegment,
    fused_run_multi,
)
from repro.parallel.executor import PoolDecodeResult, decode_with_pool
from repro.parallel.shards import ShardedExecutor, sharding_available
from repro.parallel.simd import LaneEngine, ThreadTask, EngineStats
from repro.parallel.costmodel import (
    DeviceProfile,
    assign_tasks,
    estimate_task_symbols,
    project_throughput,
)
from repro.parallel.workload import WorkloadSummary, summarize_tasks

__all__ = [
    "LaneEngine",
    "MultiRunResult",
    "ScratchArena",
    "StreamSegment",
    "ThreadTask",
    "EngineStats",
    "fused_run_multi",
    "DeviceProfile",
    "assign_tasks",
    "estimate_task_symbols",
    "project_throughput",
    "WorkloadSummary",
    "summarize_tasks",
]
