"""Compiled twins of the steady-state kernel loops (DESIGN.md §19).

The fused kernels (:mod:`repro.parallel.fused`, ``fused_encode``,
:mod:`repro.tans.fused`) are numpy straight-line code: tens of numpy
dispatches per steady-state step, far from memory-bandwidth-bound.
This module provides compiled equivalents of exactly those steady
loops — nothing else: head/tail phases, planning, event
reconstruction and the stitch stay in numpy, where masks and
allocation patterns make a compiled rewrite risk without payoff.

Two toolchains are probed, in order:

- **numba** — ``@njit(nogil=True, cache=True)`` twins, compiled
  eagerly with explicit signatures at warm-up so no lazy compile can
  land inside a timed region;
- **cc** — a small C source compiled once into a shared library with
  the host C compiler and driven through :mod:`ctypes` (foreign calls
  release the GIL exactly like njit'd code).  The library is cached
  under the system temp directory keyed by a source hash, so later
  processes only pay a ``dlopen``.

When neither is available every entry point returns ``False`` (run
the numpy loop) and :func:`effective_kernel` resolves ``"compiled"``
to ``"numpy"`` with a one-time logged notice — the knob surface keeps
working everywhere, it just reports what actually ran.

Bit-identity contract: on success paths the compiled loops perform
the *same* arithmetic in the same order as the numpy loops they twin
(uint64 wraparound, descending-lane renormalization reads, truncating
output stores), so the differential suites assert identical streams,
split events and overlap stats across kernels.  On error paths
(bitstream exhaustion) both raise; intermediate buffer contents are
then unobservable and may differ.
"""

from __future__ import annotations

import ctypes
import hashlib
import logging
import os
import subprocess
import tempfile
import threading

import numpy as np

log = logging.getLogger("repro.compiled")

#: kernel implementations selectable through every ``backend=`` knob.
KERNELS = ("numpy", "compiled")

#: pool backends a composed backend string may name (mirrors
#: :data:`repro.parallel.executor.BACKENDS` plus the serve-level
#: ``"fused"`` direct path).
_POOLS = ("thread", "process", "fused")

_ENV_TOOLCHAIN = "REPRO_COMPILED_TOOLCHAIN"  # auto|numba|cc|none

_lock = threading.Lock()
_state: dict = {
    "toolchain": None,  # resolved lazily: "numba" | "cc" | "none"
    "impl": None,  # dict of callables once a toolchain is up
    "compile_events": 0,
    "warned_fallback": False,
}

# uint64 copies of narrow gather tables, keyed by id() of the source
# array; the source is kept alive in the value so ids cannot be
# recycled.  Bounded: one entry per live DecodeTables (per provider).
_U64_CACHE: dict[int, tuple[np.ndarray, np.ndarray]] = {}
_U64_CACHE_MAX = 64


# ---------------------------------------------------------------------------
# Backend-string parsing: one knob selects pool and kernel together.
# ---------------------------------------------------------------------------


def split_backend(
    backend: str, default_pool: str = "thread"
) -> tuple[str, str]:
    """Parse a ``backend`` knob into ``(pool, kernel)``.

    Accepted forms: a bare pool (``"thread"``, ``"process"``,
    ``"fused"``), the shorthand ``"compiled"`` (= ``default_pool``
    with the compiled kernel), or ``"<pool>+compiled"``.  Pool names
    are *not* validated against any particular surface here — callers
    check the pool against their own supported set so their error
    types stay unchanged.

    :raises ValueError: a ``+``-composed suffix other than
        ``compiled`` (e.g. ``"thread+gpu"``).
    """
    if backend == "compiled":
        return default_pool, "compiled"
    pool, plus, kern = backend.partition("+")
    if not plus:
        return backend, "numpy"
    if kern != "compiled":
        raise ValueError(
            f"unknown kernel suffix {kern!r} in backend {backend!r}; "
            f"expected '<pool>+compiled'"
        )
    return pool, "compiled"


def backend_choices(pools: tuple[str, ...]) -> tuple[str, ...]:
    """All backend strings valid for a surface supporting ``pools``:
    the pools themselves, ``"compiled"``, and every composed form."""
    return (
        tuple(pools)
        + ("compiled",)
        + tuple(f"{p}+compiled" for p in pools)
    )


# ---------------------------------------------------------------------------
# Toolchain detection and the compiled/numpy resolution.
# ---------------------------------------------------------------------------


def _find_cc() -> str | None:
    for name in ("cc", "gcc", "clang"):
        for d in os.environ.get("PATH", "").split(os.pathsep):
            cand = os.path.join(d, name)
            if os.path.isfile(cand) and os.access(cand, os.X_OK):
                return cand
    return None


def _detect_toolchain() -> str:
    forced = os.environ.get(_ENV_TOOLCHAIN, "auto").lower()
    if forced == "none":
        return "none"
    if forced in ("numba", "auto"):
        try:
            import numba  # noqa: F401

            return "numba"
        except Exception:
            if forced == "numba":
                return "none"
    if forced in ("cc", "auto"):
        if _find_cc() is not None:
            return "cc"
    return "none"


def toolchain() -> str:
    """The compiled toolchain in use: ``"numba"``, ``"cc"`` or
    ``"none"`` (override with ``REPRO_COMPILED_TOOLCHAIN``)."""
    with _lock:
        if _state["toolchain"] is None:
            _state["toolchain"] = _detect_toolchain()
        return _state["toolchain"]


def kernel_available() -> bool:
    """Whether ``kernel="compiled"`` can actually run here."""
    return _impl() is not None


def effective_kernel(requested: str) -> str:
    """Resolve a requested kernel to the one that will run.

    ``"compiled"`` degrades to ``"numpy"`` (with a one-time logged
    notice) when no toolchain is available or the build failed.

    :raises ValueError: a kernel name outside :data:`KERNELS`.
    """
    if requested not in KERNELS:
        raise ValueError(
            f"unknown kernel {requested!r}; expected one of {KERNELS}"
        )
    if requested == "numpy":
        return "numpy"
    if _impl() is not None:
        return "compiled"
    with _lock:
        if not _state["warned_fallback"]:
            _state["warned_fallback"] = True
            log.warning(
                "compiled kernel requested but no toolchain is available "
                "(numba not importable, no C compiler on PATH); "
                "falling back to the numpy kernels"
            )
    return "numpy"


def compile_events() -> int:
    """Monotonic count of actual kernel compilations (numba eager
    compiles and C-compiler invocations; cache hits do not count).
    Benchmarks and the serve path assert this stays constant across
    timed regions after :func:`warm_up`."""
    with _lock:
        return _state["compile_events"]


def _count_compile(n: int = 1) -> None:
    with _lock:
        _state["compile_events"] += n


def reset_for_tests() -> None:
    """Drop all cached toolchain state (tests only: lets a test force
    re-detection under a different ``REPRO_COMPILED_TOOLCHAIN``)."""
    with _lock:
        _state["toolchain"] = None
        _state["impl"] = None
        _state["warned_fallback"] = False


# ---------------------------------------------------------------------------
# The C leg.
# ---------------------------------------------------------------------------

_C_SOURCE = r"""
#include <stdint.h>

/* Steady-state rANS decode (twin of the fused.py steady loop).
   Per iteration, per task: renormalization reads in descending lane
   order, then Eq. 2 via the slot-indexed uint64 tables, then the
   truncating little-endian output store.  Returns 1 when the stream
   exhausts (caller raises), else 0. */
int64_t recoil_rans_steady(
    uint64_t *x, int64_t *pos,
    const uint64_t *words, int64_t W,
    const uint64_t *freq, const uint64_t *bias, const uint64_t *sym,
    const uint64_t *ids,  /* NULL for a static model */
    uint64_t slot_count, uint64_t slot_mask,
    uint64_t shift, uint64_t rb, uint64_t lbound,
    uint8_t *out, int64_t itemsize,
    int64_t *out_idx,
    int64_t T, int64_t K, int64_t iters)
{
    for (int64_t it = 0; it < iters; ++it) {
        for (int64_t t = 0; t < T; ++t) {
            uint64_t *xr = x + t * K;
            int64_t *oi = out_idx + t * K;
            int64_t cnt = 0;
            for (int64_t l = K - 1; l >= 0; --l) {
                if (xr[l] < lbound) {
                    int64_t src = pos[t] - cnt;
                    cnt++;
                    if (src < 0) src = 0;
                    if (src >= W) src = W - 1;
                    xr[l] = (xr[l] << rb) | words[src];
                }
            }
            pos[t] -= cnt;
            if (pos[t] < -1) return 1;
            for (int64_t l = 0; l < K; ++l) {
                uint64_t xv = xr[l];
                uint64_t slot = xv & slot_mask;
                uint64_t fl = ids
                    ? ids[oi[l]] * slot_count + slot
                    : slot;
                uint64_t sv = sym[fl];
                xr[l] = freq[fl] * (xv >> shift) + bias[fl];
                uint8_t *dst = out + oi[l] * itemsize;
                for (int64_t b = 0; b < itemsize; ++b)
                    dst[b] = (uint8_t)(sv >> (8 * b));
                oi[l] -= K;
            }
        }
    }
    return 0;
}

/* Steady-phase rANS encode sweep (twin of run_blocks' zip loop):
   stage the pre-renormalization state trajectory X and the keep
   masks; word emission is reconstructed from them by the caller. */
void recoil_rans_encode_sweep(
    uint64_t *X, const uint64_t *bb, const uint64_t *fb,
    const uint64_t *cb, const uint64_t *db, uint8_t *need,
    uint64_t rb, int64_t bg, int64_t W)
{
    for (int64_t i = 0; i < bg; ++i) {
        const uint64_t *b = bb + i * W;
        const uint64_t *f = fb + i * W;
        const uint64_t *c = cb + i * W;
        const uint64_t *d = db + i * W;
        uint8_t *n = need + i * W;
        const uint64_t *xp = X + i * W;
        uint64_t *xn = X + (i + 1) * W;
        for (int64_t w = 0; w < W; ++w) {
            uint64_t x0 = xp[w];
            uint8_t keep = x0 < b[w];
            n[w] = keep;
            uint64_t xr = keep ? x0 : (x0 >> rb);
            uint64_t q = xr / f[w];
            xn[w] = xr + q * c[w] + d[w];
        }
    }
}

/* tANS speculative-pass safe run (twin of the branch-free inner loop
   of fused_speculative_pass).  Returns the new step index. */
int64_t recoil_tans_safe_run(
    int64_t *traj_pos, int64_t *traj_state, int64_t stride,
    int64_t *pos, int64_t *state,
    const int64_t *pk, int64_t table_size,
    const int64_t *win24,
    int64_t live, int64_t step, int64_t safe)
{
    for (int64_t s = 0; s < safe; ++s) {
        int64_t *tp = traj_pos + step * stride;
        int64_t *ts = traj_state + step * stride;
        for (int64_t k = 0; k < live; ++k) {
            int64_t p = pos[k];
            int64_t xx = state[k];
            tp[k] = p;
            ts[k] = xx;
            int64_t g = pk[xx - table_size];
            int64_t nb = (g >> 17) & 31;
            int64_t sh = 24 - (p & 7) - nb;
            state[k] = (g >> 22)
                + ((win24[p >> 3] >> sh) & (g & 0x1FFFF));
            pos[k] = p + nb;
        }
        step++;
    }
    return step;
}
"""


def _build_cc_lib():
    """Compile (or reuse) the shared library and wire up ctypes."""
    digest = hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:16]
    cache_dir = os.path.join(
        tempfile.gettempdir(), f"repro-kernels-{os.getuid()}"
    )
    so_path = os.path.join(cache_dir, f"librepro-{digest}.so")
    if not os.path.exists(so_path):
        compiler = _find_cc()
        if compiler is None:
            return None
        os.makedirs(cache_dir, exist_ok=True)
        src_path = os.path.join(cache_dir, f"repro-{digest}.c")
        tmp_so = so_path + f".tmp.{os.getpid()}"
        with open(src_path, "w") as fh:
            fh.write(_C_SOURCE)
        try:
            subprocess.run(
                [compiler, "-O3", "-shared", "-fPIC", "-o", tmp_so,
                 src_path],
                check=True, capture_output=True, timeout=120,
            )
            os.replace(tmp_so, so_path)  # atomic vs concurrent builders
        except (subprocess.SubprocessError, OSError) as exc:
            log.warning("C kernel build failed: %s", exc)
            return None
        _count_compile()
    try:
        lib = ctypes.CDLL(so_path)
    except OSError as exc:
        log.warning("C kernel load failed: %s", exc)
        return None

    p = ctypes.c_void_p
    i64 = ctypes.c_int64
    u64 = ctypes.c_uint64
    lib.recoil_rans_steady.restype = i64
    lib.recoil_rans_steady.argtypes = [
        p, p, p, i64, p, p, p, p, u64, u64, u64, u64, u64,
        p, i64, p, i64, i64, i64,
    ]
    lib.recoil_rans_encode_sweep.restype = None
    lib.recoil_rans_encode_sweep.argtypes = [
        p, p, p, p, p, p, u64, i64, i64,
    ]
    lib.recoil_tans_safe_run.restype = i64
    lib.recoil_tans_safe_run.argtypes = [
        p, p, i64, p, p, p, i64, p, i64, i64, i64,
    ]

    def rans_steady(x, pos, words, freq, bias, sym, ids,
                    slot_count, slot_mask, shift, rb, lbound,
                    out8, itemsize, out_idx, iters):
        T, K = x.shape
        return int(lib.recoil_rans_steady(
            x.ctypes.data, pos.ctypes.data,
            words.ctypes.data, len(words),
            freq.ctypes.data, bias.ctypes.data, sym.ctypes.data,
            ids.ctypes.data if ids is not None else None,
            slot_count, slot_mask, shift, rb, lbound,
            out8.ctypes.data, itemsize, out_idx.ctypes.data,
            T, K, iters,
        ))

    def encode_sweep(X, bb, fb, cb, db, need, rb, bg, W):
        lib.recoil_rans_encode_sweep(
            X.ctypes.data, bb.ctypes.data, fb.ctypes.data,
            cb.ctypes.data, db.ctypes.data, need.ctypes.data,
            rb, bg, W,
        )

    def tans_safe(traj_pos, traj_state, pos, state, pk,
                  table_size, win24, live, step, safe):
        return int(lib.recoil_tans_safe_run(
            traj_pos.ctypes.data, traj_state.ctypes.data,
            traj_pos.shape[1],
            pos.ctypes.data, state.ctypes.data,
            pk.ctypes.data, table_size, win24.ctypes.data,
            live, step, safe,
        ))

    return {
        "rans_steady": rans_steady,
        "encode_sweep": encode_sweep,
        "tans_safe": tans_safe,
    }


# ---------------------------------------------------------------------------
# The numba leg.
# ---------------------------------------------------------------------------


def _build_numba_lib():
    try:
        import numba
        from numba import types
    except Exception:
        return None

    u64a = types.uint64[::1]
    u642 = types.uint64[:, ::1]
    i64a = types.int64[::1]
    i642 = types.int64[:, ::1]
    u8a = types.uint8[::1]
    b2 = types.boolean[:, ::1]
    i64 = types.int64
    u64 = types.uint64

    steady_sig = i64(
        u642, i64a, u64a, u64a, u64a, u64a, u64a, types.boolean,
        u64, u64, u64, u64, u64, u8a, i64, i642, i64,
    )
    sweep_sig = types.void(
        u642, u642, u642, u642, u642, b2, u64, i64, i64
    )
    tans_sig = i64(i642, i642, i64a, i64a, i64a, i64, i64a, i64, i64, i64)

    try:
        @numba.njit(steady_sig, nogil=True, cache=True)
        def _steady(x, pos, words, freq, bias, sym, ids, use_ids,
                    slot_count, slot_mask, shift, rb, lbound,
                    out8, itemsize, out_idx, iters):
            T, K = x.shape
            W = np.int64(len(words))
            for _ in range(iters):
                for t in range(T):
                    cnt = np.int64(0)
                    for l in range(K - 1, -1, -1):
                        if x[t, l] < lbound:
                            src = pos[t] - cnt
                            cnt += 1
                            if src < 0:
                                src = 0
                            if src >= W:
                                src = W - 1
                            x[t, l] = (x[t, l] << rb) | words[src]
                    pos[t] -= cnt
                    if pos[t] < -1:
                        return 1
                    for l in range(K):
                        xv = x[t, l]
                        slot = xv & slot_mask
                        if use_ids:
                            fl = ids[out_idx[t, l]] * slot_count + slot
                        else:
                            fl = slot
                        sv = sym[fl]
                        x[t, l] = freq[fl] * (xv >> shift) + bias[fl]
                        base = out_idx[t, l] * itemsize
                        for b in range(itemsize):
                            out8[base + b] = np.uint8(
                                sv >> np.uint64(8 * b)
                            )
                        out_idx[t, l] -= K
            return 0

        @numba.njit(sweep_sig, nogil=True, cache=True)
        def _sweep(X, bb, fb, cb, db, need, rb, bg, W):
            for i in range(bg):
                for w in range(W):
                    x0 = X[i, w]
                    keep = x0 < bb[i, w]
                    need[i, w] = keep
                    if keep:
                        xr = x0
                    else:
                        xr = x0 >> rb
                    q = xr // fb[i, w]
                    X[i + 1, w] = xr + q * cb[i, w] + db[i, w]

        @numba.njit(tans_sig, nogil=True, cache=True)
        def _tans(traj_pos, traj_state, pos, state, pk,
                  table_size, win24, live, step, safe):
            for _ in range(safe):
                for k in range(live):
                    p = pos[k]
                    xx = state[k]
                    traj_pos[step, k] = p
                    traj_state[step, k] = xx
                    g = pk[xx - table_size]
                    nb = (g >> 17) & 31
                    sh = 24 - (p & 7) - nb
                    state[k] = (g >> 22) + (
                        (win24[p >> 3] >> sh) & (g & 0x1FFFF)
                    )
                    pos[k] = p + nb
                step += 1
            return step
    except Exception as exc:  # pragma: no cover - numba version drift
        log.warning("numba kernel compilation failed: %s", exc)
        return None
    # Three eager compiles (explicit signatures) just happened.
    _count_compile(3)

    _empty_u64 = np.empty(0, dtype=np.uint64)

    def rans_steady(x, pos, words, freq, bias, sym, ids,
                    slot_count, slot_mask, shift, rb, lbound,
                    out8, itemsize, out_idx, iters):
        use_ids = ids is not None
        return _steady(
            x, pos, words, freq, bias, sym,
            ids if use_ids else _empty_u64, use_ids,
            np.uint64(slot_count), np.uint64(slot_mask),
            np.uint64(shift), np.uint64(rb), np.uint64(lbound),
            out8, itemsize, out_idx, iters,
        )

    def encode_sweep(X, bb, fb, cb, db, need, rb, bg, W):
        _sweep(X, bb, fb, cb, db, need, np.uint64(rb), bg, W)

    def tans_safe(traj_pos, traj_state, pos, state, pk,
                  table_size, win24, live, step, safe):
        return _tans(traj_pos, traj_state, pos, state, pk,
                     table_size, win24, live, step, safe)

    return {
        "rans_steady": rans_steady,
        "encode_sweep": encode_sweep,
        "tans_safe": tans_safe,
    }


def _impl() -> dict | None:
    """The active toolchain's kernel table (built once), or None."""
    with _lock:
        impl = _state["impl"]
        if impl is not None:
            return impl or None  # {} marks a failed build
        if _state["toolchain"] is None:
            _state["toolchain"] = _detect_toolchain()
        tc = _state["toolchain"]
    # Build outside the lock: compilation can take seconds and the
    # builders only touch process-wide caches idempotently.
    if tc == "numba":
        impl = _build_numba_lib()
        if impl is None:  # numba present but broken: degrade to cc
            impl = _build_cc_lib()
    elif tc == "cc":
        impl = _build_cc_lib()
    else:
        impl = None
    with _lock:
        if _state["impl"] is None:
            _state["impl"] = impl if impl is not None else {}
        return _state["impl"] or None


def warm_up() -> str:
    """Build/load every compiled kernel and run each once on tiny
    inputs, so no compilation or ``dlopen`` lands inside a timed
    region.  Returns the kernel that will actually run
    (``"compiled"`` or ``"numpy"``).  Idempotent and cheap after the
    first call."""
    impl = _impl()
    if impl is None:
        return "numpy"
    # rANS steady: 1 task x 1 lane, one iteration over a synthetic
    # always-above-threshold state (no renormalization read fires).
    words = np.zeros(1, dtype=np.uint64)
    tab = np.ones(2, dtype=np.uint64)
    out8 = np.zeros(8, dtype=np.uint8)
    for ids in (None, np.zeros(2, dtype=np.uint64)):
        x = np.full((1, 1), 1 << 16, dtype=np.uint64)
        pos = np.zeros(1, dtype=np.int64)
        oi = np.zeros((1, 1), dtype=np.int64)
        impl["rans_steady"](
            x, pos, words, tab, tab, tab, ids,
            1, 1, 1, 16, 1 << 16, out8, 1, oi, 1,
        )
    X = np.full((2, 1), 1 << 16, dtype=np.uint64)
    ops = np.ones((1, 1), dtype=np.uint64)
    need = np.zeros((1, 1), dtype=bool)
    impl["encode_sweep"](X, ops, ops, ops, ops, need, 16, 1, 1)
    tp = np.zeros((1, 1), dtype=np.int64)
    ts = np.zeros((1, 1), dtype=np.int64)
    pz = np.zeros(1, dtype=np.int64)
    sz = np.zeros(1, dtype=np.int64)
    pk = np.zeros(1, dtype=np.int64)
    win = np.zeros(4, dtype=np.int64)
    impl["tans_safe"](tp, ts, pz, sz, pk, 0, win, 1, 0, 1)
    return "compiled"


# ---------------------------------------------------------------------------
# Kernel entry points used by the numpy kernels.  Each returns a
# "did it run compiled" verdict; False means "use the numpy loop".
# ---------------------------------------------------------------------------


def _u64_view(arr: np.ndarray) -> np.ndarray:
    """A cached C-contiguous uint64 copy of a gather table."""
    arr = np.ascontiguousarray(arr)
    if arr.dtype == np.uint64:
        return arr
    # Key on the owning buffer (kept alive in the value, so the id
    # cannot be recycled) plus the view geometry.
    owner = arr.base if arr.base is not None else arr
    key = (id(owner), arr.shape, str(arr.dtype), arr.ctypes.data)
    hit = _U64_CACHE.get(key)
    if hit is not None:
        return hit[1]
    if len(_U64_CACHE) >= _U64_CACHE_MAX:
        _U64_CACHE.clear()
    conv = arr.astype(np.uint64)
    _U64_CACHE[key] = (arr, conv)
    return conv


def rans_steady(
    x: np.ndarray,
    pos: np.ndarray,
    words_u64: np.ndarray,
    freq: np.ndarray,
    bias: np.ndarray,
    sym: np.ndarray,
    ids: np.ndarray | None,
    slot_count: int,
    slot_mask: int,
    quant_bits: int,
    renorm_bits: int,
    lbound: int,
    out: np.ndarray,
    out_idx: np.ndarray,
    iters: int,
) -> bool:
    """Run the full steady-state decode window compiled.

    Mutates ``x``, ``pos``, ``out`` and ``out_idx`` exactly as
    ``iters`` passes of the numpy steady loop would.  Returns False
    (nothing mutated) when no toolchain is up or a buffer layout is
    unsupported; raises :class:`~repro.errors.DecodeError` on stream
    exhaustion like the numpy loop.
    """
    impl = _impl()
    if impl is None or iters <= 0:
        return iters <= 0 and impl is not None
    if not (
        out.flags["C_CONTIGUOUS"]
        and x.flags["C_CONTIGUOUS"]
        and out_idx.flags["C_CONTIGUOUS"]
        and words_u64.flags["C_CONTIGUOUS"]
        and out.dtype.kind in "ui"
    ):
        return False
    freq = _u64_view(freq)
    bias = _u64_view(bias)
    sym = _u64_view(sym)
    if ids is not None:
        ids = _u64_view(ids)
    err = impl["rans_steady"](
        x, pos, words_u64, freq, bias, sym, ids,
        slot_count, slot_mask, quant_bits, renorm_bits, lbound,
        out.view(np.uint8), out.dtype.itemsize, out_idx, iters,
    )
    if err:
        from repro.errors import DecodeError

        raise DecodeError("bitstream exhausted during renormalization")
    return True


def encode_sweep(
    X: np.ndarray,
    bb: np.ndarray,
    fb: np.ndarray,
    cb: np.ndarray,
    db: np.ndarray,
    need: np.ndarray,
    renorm_bits: int,
) -> bool:
    """Run one staged encode block compiled (twin of the sequential
    sweep in ``fused_encode.run_blocks``).  ``X[0]`` must hold the
    incoming states; on success ``X[1:]`` and ``need`` are filled."""
    impl = _impl()
    if impl is None:
        return False
    bg, W = need.shape
    if not (
        X.flags["C_CONTIGUOUS"]
        and need.flags["C_CONTIGUOUS"]
        and bb.flags["C_CONTIGUOUS"]
        and fb.flags["C_CONTIGUOUS"]
        and cb.flags["C_CONTIGUOUS"]
        and db.flags["C_CONTIGUOUS"]
    ):
        return False
    impl["encode_sweep"](X, bb, fb, cb, db, need, renorm_bits, bg, W)
    return True


def tans_safe_run(
    traj_pos: np.ndarray,
    traj_state: np.ndarray,
    pos: np.ndarray,
    state: np.ndarray,
    pk: np.ndarray,
    table_size: int,
    win24: np.ndarray,
    step: int,
    safe: int,
) -> int | None:
    """Run ``safe`` branch-free speculative steps compiled (twin of
    the inner loop of ``fused_speculative_pass``).  Returns the new
    step index, or None when the caller must run the numpy loop."""
    impl = _impl()
    if impl is None:
        return None
    if not (
        traj_pos.flags["C_CONTIGUOUS"]
        and traj_state.flags["C_CONTIGUOUS"]
        and pos.flags["C_CONTIGUOUS"]
        and state.flags["C_CONTIGUOUS"]
        and pk.flags["C_CONTIGUOUS"]
        and win24.flags["C_CONTIGUOUS"]
    ):
        return None
    return impl["tans_safe"](
        traj_pos, traj_state, pos, state, pk,
        table_size, win24, len(pos), step, safe,
    )
