"""Executing decode tasks on real OS threads.

The batched :class:`~repro.parallel.simd.LaneEngine` already *models*
massive parallelism faithfully (work, sync overhead, stragglers); this
module additionally runs the same tasks on a real thread pool so the
examples can demonstrate genuine concurrent decoding.  numpy kernels
release the GIL for large array operations, so multi-thread speedups
are real, if modest, in pure Python.

Recoil threads are fully independent by construction (paper §3.1:
"These decoders are completely independent of each other since they do
not share either states or bitstream starting offsets") — each worker
gets a disjoint subset of tasks and writes to disjoint slices of the
shared output array, so no locking is needed.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.errors import ParallelismError
from repro.parallel.costmodel import assign_tasks
from repro.parallel.simd import EngineStats, LaneEngine, ThreadTask
from repro.rans.adaptive import AdaptiveModelProvider


@dataclass
class PoolDecodeResult:
    """Output of a pooled decode."""

    symbols: np.ndarray
    per_worker_stats: list[EngineStats]
    workers: int

    @property
    def total_symbols_decoded(self) -> int:
        return sum(s.symbols_decoded for s in self.per_worker_stats)


def decode_with_pool(
    provider: AdaptiveModelProvider,
    lanes: int,
    words: np.ndarray,
    tasks: list[ThreadTask],
    num_symbols: int,
    out_dtype,
    workers: int,
    strategy: str = "cost",
) -> PoolDecodeResult:
    """Decode ``tasks`` on ``workers`` real threads.

    Each worker runs its own :class:`LaneEngine` (the fused wide-lane
    kernel, with a private scratch arena) over a task subset; commit
    ranges are disjoint so the shared output needs no locks.  Tasks
    are spread by estimated cost (walked symbols) via
    :func:`repro.parallel.costmodel.assign_tasks`; pass
    ``strategy="round_robin"`` for the historical blind dealing.
    """
    if workers < 1:
        raise ParallelismError(f"workers must be >= 1, got {workers}")
    out = np.empty(num_symbols, dtype=out_dtype)
    buckets = assign_tasks(tasks, workers, strategy=strategy)

    def run(bucket: list[ThreadTask]) -> EngineStats:
        return LaneEngine(provider, lanes).run(words, bucket, out)

    if len(buckets) == 1:
        stats = [run(buckets[0])]
    else:
        with ThreadPoolExecutor(max_workers=len(buckets)) as pool:
            stats = list(pool.map(run, buckets))
    return PoolDecodeResult(
        symbols=out, per_worker_stats=stats, workers=len(buckets)
    )
