"""Executing decode tasks on real OS threads or sharded processes.

The batched :class:`~repro.parallel.simd.LaneEngine` already *models*
massive parallelism faithfully (work, sync overhead, stragglers); this
module additionally runs the same tasks on a real worker pool so the
examples can demonstrate genuine concurrent decoding.  Two backends
share one interface:

- ``"thread"`` — a :class:`~concurrent.futures.ThreadPoolExecutor`.
  numpy kernels release the GIL for large array operations, but at
  serving widths the per-op arrays are small and the GIL-held numpy
  *dispatch* dominates, so threads convoy (docs/BENCHMARKS.md).
- ``"process"`` — the sharded multi-process executor
  (:mod:`repro.parallel.shards`): worker processes run the same fused
  kernels zero-copy over shared memory, immune to the convoy.

Recoil threads are fully independent by construction (paper §3.1:
"These decoders are completely independent of each other since they do
not share either states or bitstream starting offsets") — each worker
gets a disjoint subset of tasks and writes to disjoint slices of the
shared output array, so no locking is needed, and the two backends
produce bit-identical output.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.errors import ParallelismError
from repro.parallel import compiled
from repro.parallel.costmodel import assign_tasks
from repro.parallel.simd import EngineStats, LaneEngine, ThreadTask
from repro.rans.adaptive import AdaptiveModelProvider

BACKENDS = ("thread", "process")


@dataclass
class PoolDecodeResult:
    """Output of a pooled decode."""

    symbols: np.ndarray
    per_worker_stats: list[EngineStats]
    workers: int
    #: backend that actually ran (``"thread"`` after a graceful
    #: fallback from an unavailable ``"process"`` request).
    backend: str = "thread"
    #: inner-loop kernel that actually ran (``"numpy"`` after a
    #: graceful fallback from an unavailable ``"compiled"`` request).
    kernel: str = "numpy"

    @property
    def total_symbols_decoded(self) -> int:
        return sum(s.symbols_decoded for s in self.per_worker_stats)


def decode_with_pool(
    provider: AdaptiveModelProvider,
    lanes: int,
    words: np.ndarray,
    tasks: list[ThreadTask],
    num_symbols: int,
    out_dtype,
    workers: int,
    strategy: str = "cost",
    backend: str = "thread",
    executor=None,
) -> PoolDecodeResult:
    """Decode ``tasks`` on ``workers`` real threads or shard processes.

    Each worker runs the fused wide-lane kernel (with a private
    scratch arena) over a task subset; commit ranges are disjoint so
    the shared output needs no locks.  Tasks are spread by estimated
    cost (walked symbols) via
    :func:`repro.parallel.costmodel.assign_tasks` — the same LPT plan
    for both backends.

    :param provider: model provider shared by all tasks.
    :param lanes: interleaved rANS lanes per task (``K``).
    :param words: the shared 16-bit word stream.
    :param tasks: decode tasks with disjoint commit ranges.
    :param num_symbols: length of the output sequence.
    :param out_dtype: output symbol dtype.
    :param workers: maximum worker count (buckets never exceed it).
    :param strategy: ``"cost"`` (LPT, default), ``"round_robin"``
        (historical blind dealing), or ``"sharded"`` — an alias for
        ``strategy="cost"`` + ``backend="process"``.
    :param backend: ``"thread"`` or ``"process"``, optionally with a
        ``"+compiled"`` suffix (``"thread+compiled"``) to run the
        compiled inner-loop kernel; bare ``"compiled"`` means
        ``"thread+compiled"``.  A ``"compiled"`` request silently
        degrades to the numpy kernel when no toolchain is available
        (check ``result.kernel``).  A ``"process"`` request falls
        back to threads when shared memory is unavailable on the
        host (check ``result.backend`` for what actually ran).  The first ``"process"`` call lazily starts
        the shared worker pool; if the calling process has live
        non-main threads at that point, the pool uses the ``spawn``
        start method (slower startup) instead of ``fork``, which
        would risk deadlocking the children on locks held by those
        threads — latency-sensitive callers should pre-build the
        pool while single-threaded (as the serve dispatcher does)
        via :func:`repro.parallel.shards.default_executor`.
    :param executor: optional pre-built
        :class:`repro.parallel.shards.ShardedExecutor` to dispatch on
        (the serve dispatcher passes its own); by default the shared
        module-level pool is used.
    :returns: the decoded symbols plus per-worker engine stats.
    :raises ParallelismError: ``workers < 1`` or unknown backend.  A
        shard-worker death mid-job does NOT raise: the identical plan
        is transparently re-run on threads (bit-identical output,
        ``result.backend == "thread"``) while the pool self-heals.
    :raises DecodeError: corrupt stream/metadata (either backend).
    :raises ValueError: unknown assignment strategy.
    """
    if workers < 1:
        raise ParallelismError(f"workers must be >= 1, got {workers}")
    if strategy == "sharded":
        strategy, backend = "cost", "process"
    try:
        backend, kernel = compiled.split_backend(backend)
    except ValueError as exc:
        raise ParallelismError(str(exc)) from None
    if backend not in BACKENDS:
        raise ParallelismError(
            f"unknown backend {backend!r}; expected one of "
            f"{compiled.backend_choices(BACKENDS)}"
        )
    kernel = compiled.effective_kernel(kernel)

    if backend == "process":
        from repro.parallel import shards

        pool = executor if executor is not None else (
            shards.default_executor(workers)
        )
        if pool is not None and not pool.broken and not pool.closed:
            try:
                return pool.decode(
                    provider, lanes, words, tasks, num_symbols, out_dtype,
                    workers=workers, strategy=strategy, kernel=kernel,
                )
            except ParallelismError:
                # Infrastructure failure mid-job (worker death, shm
                # exhaustion, respawn backoff): the shard plan is
                # deterministic and side-effect-free, so re-running it
                # on threads below yields bit-identical output.  Real
                # decode failures (DecodeError) propagate — a retry
                # cannot fix corrupt data.  Callers see
                # ``result.backend == "thread"`` and may re-promote
                # later (the serve dispatcher does).
                pass
        # Graceful fallback: no shared memory on this host (or the
        # default pool could not start) — run the same plan on threads.

    out = np.empty(num_symbols, dtype=out_dtype)
    buckets = assign_tasks(tasks, workers, strategy=strategy)
    if not buckets:  # zero tasks: nothing to decode, nothing to commit
        return PoolDecodeResult(
            symbols=out, per_worker_stats=[], workers=0,
            backend="thread", kernel=kernel,
        )

    def run(bucket: list[ThreadTask]) -> EngineStats:
        return LaneEngine(provider, lanes, kernel=kernel).run(
            words, bucket, out
        )

    if len(buckets) == 1:
        stats = [run(buckets[0])]
    else:
        with ThreadPoolExecutor(max_workers=len(buckets)) as pool:
            stats = list(pool.map(run, buckets))
    return PoolDecodeResult(
        symbols=out,
        per_worker_stats=stats,
        workers=len(buckets),
        backend="thread",
        kernel=kernel,
    )
