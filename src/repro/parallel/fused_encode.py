"""Fused wide-lane rANS encode kernel.

The encode-side sibling of :mod:`repro.parallel.fused` (DESIGN.md §10).
The reference loop (:meth:`~repro.rans.interleaved.InterleavedEncoder.
encode_reference`) advances one interleave group per iteration with
per-group participation masks, boolean fancy indexing, and Python-level
event bookkeeping — at 32 lanes the numpy *dispatch* dominates the
arithmetic.  This kernel keeps the exact same stream semantics (forward
symbol walk, one word per renormalization, increasing-lane emission
order inside a group) while restructuring the work:

1. **Symbol-indexed gather tables** — every per-group operand
   (``f``, ``2**n - f``, ``F``, the Eq. 3 threshold) is one gather from
   provider-cached :class:`~repro.rans.adaptive.EncodeTables`, done for
   a whole block of groups at once, outside the sequential loop.
2. **Trajectory staging** — the sequential loop only advances the lane
   states, writing each group's *pre-renormalization* state vector into
   a block-sized trajectory buffer: 7 in-place vectorized ops per
   group, no masks, no data-dependent branches, no allocation.
3. **In-kernel event recording** — words and split events are
   reconstructed from the staged trajectory *after* the block's
   sequential sweep, as bulk vectorized writes (a renormalizing lane's
   word is the pre-state's low 16 bits, its recorded state the high
   bits), so recording costs the same whether or not it is enabled.
4. **Multi-task fusion** — independent encodes (e.g. Conventional
   partitions) advance as one flat ``(T*K,)`` state vector; the
   per-group dispatch cost is amortized ``T``-fold exactly as the
   decode kernel amortizes it across decoder threads.

rANS is a stack: within the single stream each group's state depends on
the previous group, so one task's walk is irreducibly sequential and
only widens across *independent* tasks — the paper's "Recoil encoding
cannot be done in parallel" (§6) shows up here as the fixed
``K``-wide vector of the single-stream case.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import EncodeError, ModelError
from repro.parallel import compiled
from repro.parallel.buffers import ScratchArena
from repro.rans.adaptive import AdaptiveModelProvider
from repro.rans.constants import L_BOUND, RENORM_BITS, RENORM_MASK

#: Steady-phase staging target, in symbols per block.  Blocks bound the
#: trajectory/operand scratch to a few MB regardless of task count and
#: keep the working set cache-resident.
_BLOCK_SYMBOLS = 1 << 16


@dataclass
class EncodeTask:
    """One independent K-lane interleaved encode.

    ``start_index`` is the 1-based index of ``data[0]`` in the
    provider's global symbol-index space: 1 for a standalone stream,
    ``partition_start + 1`` for a Conventional partition.  Adaptive
    providers resolve per-symbol models through it directly — no
    per-partition provider slicing.

    Event indices in the result are local to the task (1-based, like
    the reference encoder's).
    """

    data: np.ndarray
    start_index: int = 1
    record_events: bool = False


@dataclass
class EncodeTaskOut:
    """Kernel output for one task (fresh arrays, never arena scratch)."""

    words: np.ndarray  # uint16, emission order
    final_states: np.ndarray  # (K,) uint64
    event_symbol: np.ndarray | None = None  # uint64, 1-based local
    event_lane: np.ndarray | None = None  # uint16
    event_state: np.ndarray | None = None  # uint16


def _zero_freq_error(
    task: EncodeTask, local_pos: int, symbol: int
) -> ModelError:
    """Match the reference path's gather_freq_cdf diagnostics."""
    return ModelError(
        f"symbol {symbol} at index {task.start_index + local_pos} "
        "has zero quantized frequency"
    )


def fused_encode_run(
    provider: AdaptiveModelProvider,
    lanes: int,
    tasks: list[EncodeTask],
    arena: ScratchArena,
    kernel: str = "numpy",
) -> list[EncodeTaskOut]:
    """Encode every task, bit-identical to the reference loop.

    Tasks are independent; their lane states advance together through
    the fused steady phase (full interleave groups present in every
    task), then each task finishes its remaining groups alone.  The
    caller owns ``arena`` (not thread-safe, DESIGN.md §9).

    ``kernel="compiled"`` routes the sequential trajectory sweep — the
    only data-dependent chain — through the compiled twin
    (:mod:`repro.parallel.compiled`); gathers, word emission and event
    reconstruction stay vectorized numpy either way.  Bit-identical,
    silently numpy when no toolchain is available.
    """
    K = lanes
    T = len(tasks)
    if T == 0:
        return []

    n = provider.quant_bits
    rb = np.uint64(RENORM_BITS)
    mask16 = np.uint64(RENORM_MASK)
    tables = provider.encode_tables
    A = tables.alphabet
    static = provider.is_static
    if static:
        f_tab = tables.freq_sym[0]
        c_tab = tables.comp_sym[0]
        d_tab = tables.cdf_sym[0]
        b_tab = tables.bound_sym[0]
        ids_full = None
    else:
        f_tab = tables.freq_sym.ravel()
        c_tab = tables.comp_sym.ravel()
        d_tab = tables.cdf_sym.ravel()
        b_tab = tables.bound_sym.ravel()

    datas: list[np.ndarray] = []
    for ti, t in enumerate(tasks):
        d = np.ascontiguousarray(t.data)
        if d.ndim != 1:
            raise EncodeError(
                f"task {ti}: data must be 1-D, got shape {d.shape}"
            )
        if t.start_index < 1:
            raise EncodeError(
                f"task {ti}: start_index must be >= 1, got {t.start_index}"
            )
        datas.append(d)
    sizes = [len(d) for d in datas]

    if not static:
        total = max(
            t.start_index - 1 + sz for t, sz in zip(tasks, sizes)
        )
        ids_dense = provider.dense_model_ids(total)
        ids_views = [
            ids_dense[t.start_index - 1 : t.start_index - 1 + sz]
            for t, sz in zip(tasks, sizes)
        ]

    # ---- per-task output buffers (<= 1 word per symbol) -----------------
    words_bufs = [np.empty(sz + 8, dtype=np.uint16) for sz in sizes]
    wcs = [0] * T
    ev_sym_bufs: list[np.ndarray | None] = []
    ev_lane_bufs: list[np.ndarray | None] = []
    ev_state_bufs: list[np.ndarray | None] = []
    for t, sz in zip(tasks, sizes):
        if t.record_events:
            ev_sym_bufs.append(np.empty(sz + 8, dtype=np.uint64))
            ev_lane_bufs.append(np.empty(sz + 8, dtype=np.uint16))
            ev_state_bufs.append(np.empty(sz + 8, dtype=np.uint16))
        else:
            ev_sym_bufs.append(None)
            ev_lane_bufs.append(None)
            ev_state_bufs.append(None)

    x2d = arena.get("enc_x", (T, K), np.uint64)
    x2d[:] = L_BOUND

    two_n = np.uint64(1 << n)
    bshift = np.uint64(RENORM_BITS + 16 - n)  # Eq. 3: bound = f << (32 - n)

    # ------------------------------------------------------------------
    def run_blocks(sel: list[int], g_from: int, g_to: int) -> None:
        """Advance the selected tasks over full groups [g_from, g_to).

        Every selected task must own all those groups in full, and
        ``sel`` must be a contiguous run of task ids.  The selected
        rows of ``x2d`` advance in place; words and events are
        reconstructed from the staged trajectory per block.
        """
        Tb = len(sel)
        if Tb == 0 or g_to <= g_from:
            return
        W = Tb * K  # the fused vector width: every row below is (W,)
        xv = x2d[sel[0] : sel[0] + Tb].reshape(W)
        block = max(1, _BLOCK_SYMBOLS // W)
        # Scratch keyed by width so steady/tail phases don't thrash.
        suffix = f"_{W}"
        symb_f = arena.get("enc_sym" + suffix, (block, W), np.intp)
        fb_f = arena.get("enc_f" + suffix, (block, W), np.uint64)
        cb_f = arena.get("enc_c" + suffix, (block, W), np.uint64)
        db_f = arena.get("enc_d" + suffix, (block, W), np.uint64)
        bb_f = arena.get("enc_b" + suffix, (block, W), np.uint64)
        X_f = arena.get("enc_X" + suffix, (block + 1, W), np.uint64)
        need_f = arena.get("enc_need" + suffix, (block, W), bool)
        xr = arena.get("enc_xr" + suffix, (W,), np.uint64)
        q = arena.get("enc_q" + suffix, (W,), np.uint64)
        tmp = arena.get("enc_tmp" + suffix, (W,), np.uint64)

        less = np.less
        right_shift = np.right_shift
        copyto = np.copyto
        floor_divide = np.floor_divide
        multiply = np.multiply
        add = np.add

        g0 = g_from
        while g0 < g_to:
            bg = min(block, g_to - g0)
            lo, hi = g0 * K, (g0 + bg) * K
            fb = fb_f[:bg]
            cb = cb_f[:bg]
            db = db_f[:bg]
            bb = bb_f[:bg]
            if static and Tb == 1:
                # Single stream: gather straight off the data view.
                sym = datas[sel[0]][lo:hi].reshape(bg, K)
                f_tab.take(sym, None, fb)
                d_tab.take(sym, None, db)
            else:
                symb = symb_f[:bg]
                s3 = symb.reshape(bg, Tb, K)
                for j, ti in enumerate(sel):
                    s3[:, j, :] = datas[ti][lo:hi].reshape(bg, K)
                if not static:
                    for j, ti in enumerate(sel):
                        s3[:, j, :] += (
                            ids_views[ti][lo:hi]
                            .reshape(bg, K)
                            .astype(np.intp)
                            * A
                        )
                f_tab.take(symb, None, fb)
                d_tab.take(symb, None, db)
            if not int(fb.min()):
                g, w = np.argwhere(fb == 0)[0]
                ti = sel[int(w) // K]
                pos = (g0 + int(g)) * K + int(w) % K
                raise _zero_freq_error(
                    tasks[ti], pos, int(datas[ti][pos])
                )
            # comp and bound are one elementwise op each — cheaper
            # than two more table gathers.
            np.subtract(two_n, fb, cb)
            np.left_shift(fb, bshift, bb)

            # ---- the sequential sweep: 7 in-place ops per group ----
            # ``need`` rows collect the *keep* mask (state below the
            # Eq. 3 threshold); inverted in bulk afterwards.
            X = X_f[: bg + 1]
            X[0] = xv
            ran_compiled = kernel == "compiled" and compiled.encode_sweep(
                X, bb, fb, cb, db, need_f[:bg], RENORM_BITS
            )
            if not ran_compiled:
                xprev = X[0]
                for b_row, f_row, c_row, d_row, n_row, xnext in zip(
                    bb, fb, cb, db, need_f, X[1:]
                ):
                    less(xprev, b_row, n_row)
                    right_shift(xprev, rb, xr)
                    copyto(xr, xprev, where=n_row)
                    floor_divide(xr, f_row, q)
                    multiply(q, c_row, tmp)
                    add(tmp, d_row, tmp)
                    add(xr, tmp, xnext)
                    xprev = xnext
            xv[:] = X[bg]

            # ---- bulk word emission + event recording --------------
            need = need_f[:bg]
            np.logical_not(need, need)
            n3 = need.reshape(bg, Tb, K)
            for j, ti in enumerate(sel):
                rows, cols = np.nonzero(n3[:, j, :])
                e = len(rows)
                if not e:
                    continue
                pre = X[rows, j * K + cols]
                wc = wcs[ti]
                words_bufs[ti][wc : wc + e] = pre & mask16
                if tasks[ti].record_events:
                    ev_sym_bufs[ti][wc : wc + e] = (
                        (rows + g0) * K + cols + 1
                    )
                    ev_lane_bufs[ti][wc : wc + e] = cols
                    ev_state_bufs[ti][wc : wc + e] = pre >> rb
                wcs[ti] = wc + e
            g0 += bg

    # ------------------------------------------------------------------
    def run_partial(ti: int, g: int, cnt: int) -> None:
        """The task's final partial group: lanes 0..cnt-1 only."""
        base = g * K
        sym = datas[ti][base : base + cnt]
        if static:
            idx = np.asarray(sym, dtype=np.intp)
        else:
            idx = (
                np.asarray(ids_views[ti][base : base + cnt], dtype=np.intp)
                * A
                + sym
            )
        f1 = f_tab[idx]
        if not int(f1.min()):
            k = int(np.flatnonzero(f1 == 0)[0])
            raise _zero_freq_error(tasks[ti], base + k, int(sym[k]))
        xs = x2d[ti, :cnt]
        pre = xs.copy()
        ren = pre >= b_tab[idx]
        lanes_idx = np.flatnonzero(ren)
        e = len(lanes_idx)
        if e:
            emitted = pre[lanes_idx]
            wc = wcs[ti]
            words_bufs[ti][wc : wc + e] = emitted & mask16
            if tasks[ti].record_events:
                ev_sym_bufs[ti][wc : wc + e] = base + lanes_idx + 1
                ev_lane_bufs[ti][wc : wc + e] = lanes_idx
                ev_state_bufs[ti][wc : wc + e] = emitted >> rb
            wcs[ti] = wc + e
            pre[lanes_idx] = emitted >> rb
        quot = pre // f1
        xs[:] = pre + quot * c_tab[idx] + d_tab[idx]

    # ---- steady fused phase, then per-task remainders -------------------
    g_min = min(sz // K for sz in sizes)
    run_blocks(list(range(T)), 0, g_min)
    for ti, sz in enumerate(sizes):
        g_full = sz // K
        run_blocks([ti], g_min, g_full)
        cnt = sz - g_full * K
        if cnt:
            run_partial(ti, g_full, cnt)

    # ---- compact results (fresh arrays; scratch never escapes) ----------
    results: list[EncodeTaskOut] = []
    for ti, t in enumerate(tasks):
        wc = wcs[ti]
        out = EncodeTaskOut(
            words=words_bufs[ti][:wc].copy(),
            final_states=x2d[ti].copy(),
        )
        if t.record_events:
            out.event_symbol = ev_sym_bufs[ti][:wc].copy()
            out.event_lane = ev_lane_bufs[ti][:wc].copy()
            out.event_state = ev_state_bufs[ti][:wc].copy()
        results.append(out)
    return results
