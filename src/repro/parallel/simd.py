"""Batched lane engine: many decoder threads as numpy arrays.

This module is the reproduction's substitute for the paper's SIMD and
CUDA decoders (DESIGN.md substitution table).  A *thread task* is one
logical decoder thread: a group of ``K`` interleaved rANS lanes walking
a symbol-index range backwards over a shared word stream.  The engine
advances **all tasks simultaneously**, one interleave group per
iteration, with every per-lane operation expressed as dense
``(tasks, lanes)`` array arithmetic — exactly the data layout a GPU
implementation uses (one warp per task, one CUDA lane per rANS lane).

Walk semantics (DESIGN.md §7): per symbol index ``i`` (descending),
lane ``j = (i-1) % K`` first performs its renormalization read (Eq. 4
fires iff the lane's state is below ``L``), then decodes symbol ``i``
(Eq. 2).  A lane *activates* when the walk reaches its metadata index:
its recorded state is installed, the pending read executes, and the
lane decodes that very symbol — the Synchronization Phase of §4.1.1
falls out of the masking for free, as do the Decoding and
Cross-Boundary phases (they differ only in whether the output is
committed).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DecodeError
from repro.rans.adaptive import AdaptiveModelProvider
from repro.rans.constants import L_BOUND, RENORM_BITS


@dataclass
class ThreadTask:
    """One logical decoder thread.

    Indices are *local* to the task (1-based); the global symbol index
    is ``local + global_offset`` and output position
    ``global_offset + local - 1``.  For Recoil threads over one shared
    stream the offset is 0 and local == global; for Conventional
    partitions each task gets its own offset and stream region.

    Exactly one of ``initial_states`` (all lanes live from the start,
    e.g. a full-stream decode from final states) or ``activations``
    (lanes come alive mid-walk, the Recoil synchronization mechanism)
    populates the lanes; both may be combined if a task needs it.
    """

    start_pos: int
    walk_hi: int
    walk_lo: int
    commit_hi: int
    commit_lo: int
    global_offset: int = 0
    initial_states: np.ndarray | None = None
    activations: list[tuple[int, int, int]] = field(default_factory=list)
    #: verify the walk drains the stream region back to the initial
    #: coder states (only meaningful when ``walk_lo == 1``).
    check_terminal: bool = False
    #: expected stream position after the terminal drain (one before
    #: the task's region start).
    terminal_pos: int = -1


@dataclass
class EngineStats:
    """Work counters from one engine run (feeds the cost model)."""

    iterations: int = 0
    symbols_decoded: int = 0  # includes discarded sync-section symbols
    words_read: int = 0
    tasks: int = 0
    max_task_iterations: int = 0

    @property
    def lane_utilization(self) -> float:
        """Decoded symbols per (iteration x task x lane) slot."""
        denom = self.iterations * max(self.tasks, 1)
        return self.symbols_decoded / denom if denom else 0.0


class LaneEngine:
    """Vectorized executor for batches of :class:`ThreadTask`.

    :meth:`run` routes through the fused wide-lane kernel
    (:mod:`repro.parallel.fused`) — one flat state vector across all
    tasks, scratch buffers reused across calls.  :meth:`run_reference`
    is the original masked per-group loop, kept as the differential-
    testing reference (both are validated against each other and the
    pure-Python decoders in the test suite).

    An engine owns its scratch arena and is therefore **not**
    thread-safe; use one engine per worker thread (as
    :func:`~repro.parallel.executor.decode_with_pool` does).
    """

    def __init__(
        self,
        provider: AdaptiveModelProvider,
        lanes: int,
        kernel: str = "numpy",
    ) -> None:
        self.provider = provider
        self.lanes = lanes
        #: steady-loop implementation (``"numpy"`` or ``"compiled"``,
        #: DESIGN.md §19); silently numpy when no toolchain is up.
        self.kernel = kernel
        self._arena = None  # created lazily; see `arena`

    @property
    def arena(self):
        if self._arena is None:
            from repro.parallel.buffers import ScratchArena

            self._arena = ScratchArena()
        return self._arena

    # ------------------------------------------------------------------

    def run(
        self,
        words: np.ndarray,
        tasks: list[ThreadTask],
        out: np.ndarray,
    ) -> EngineStats:
        """Decode every task, writing committed symbols into ``out``.

        ``out`` must be preallocated with the full sequence length;
        each output position is written by exactly one task (the
        commit ranges partition the sequence).
        """
        from repro.parallel.fused import fused_run

        return fused_run(
            self.provider, self.lanes, words, tasks, out, self.arena,
            kernel=self.kernel,
        )

    # ------------------------------------------------------------------

    def run_reference(
        self,
        words: np.ndarray,
        tasks: list[ThreadTask],
        out: np.ndarray,
    ) -> EngineStats:
        """The original masked per-group loop (differential reference).

        Semantically identical to :meth:`run`, including the
        :class:`EngineStats` counters; kept unoptimized on purpose.
        """
        provider = self.provider
        K = self.lanes
        T = len(tasks)
        stats = EngineStats(tasks=T)
        if T == 0:
            return stats

        n = provider.quant_bits
        n64 = np.uint64(n)
        rb = np.uint64(RENORM_BITS)
        slot_mask = np.uint64((1 << n) - 1)
        lbound = np.uint64(L_BOUND)
        words = np.asarray(words, dtype=np.uint16)

        static = provider.is_static
        if static:
            lut1 = provider.models[0].slot_to_symbol
            freq1 = provider.models[0].freqs.astype(np.uint64)
            cdf1 = provider.models[0].cdf[:-1].astype(np.uint64)
        else:
            lut_t = provider.lut_table
            freq_t = provider.freq_table.astype(np.uint64)
            cdf_t = provider.cdf_table[:, :-1].astype(np.uint64)
            ids_arr = self._dense_ids(len(out))

        # ---- task state arrays ---------------------------------------
        for ti, t in enumerate(tasks):
            if t.start_pos >= len(words):
                raise DecodeError(
                    f"task {ti}: start position {t.start_pos} beyond "
                    f"stream of {len(words)} words"
                )
        pos = np.array([t.start_pos for t in tasks], dtype=np.int64)
        cur = np.array([t.walk_hi for t in tasks], dtype=np.int64)
        lo = np.array([t.walk_lo for t in tasks], dtype=np.int64)
        c_hi = np.array([t.commit_hi for t in tasks], dtype=np.int64)
        c_lo = np.array([t.commit_lo for t in tasks], dtype=np.int64)
        offs = np.array([t.global_offset for t in tasks], dtype=np.int64)

        x = np.full((T, K), L_BOUND, dtype=np.uint64)
        active = np.zeros((T, K), dtype=bool)
        for ti, t in enumerate(tasks):
            if t.initial_states is not None:
                st = np.asarray(t.initial_states, dtype=np.uint64)
                if st.shape != (K,):
                    raise DecodeError(
                        f"task {ti}: initial_states must have shape ({K},)"
                    )
                x[ti] = st
                active[ti] = True

        # ---- activation schedule -------------------------------------
        # Activation (local_index, lane, state) installs at iteration
        # r = group(walk_hi) - group(local_index): each iteration
        # advances every live task exactly one interleave group.
        act_task: list[int] = []
        act_lane: list[int] = []
        act_state: list[int] = []
        act_iter: list[int] = []
        for ti, t in enumerate(tasks):
            g0 = (t.walk_hi - 1) // K
            for idx, lane, state in t.activations:
                if not t.walk_lo <= idx <= t.walk_hi:
                    raise DecodeError(
                        f"task {ti}: activation index {idx} outside walk "
                        f"range [{t.walk_lo}, {t.walk_hi}]"
                    )
                act_task.append(ti)
                act_lane.append(lane)
                act_state.append(state)
                act_iter.append(g0 - (idx - 1) // K)
        if act_task:
            a_iter = np.array(act_iter)
            order = np.argsort(a_iter, kind="stable")
            a_iter = a_iter[order]
            a_task = np.array(act_task)[order]
            a_lane = np.array(act_lane)[order]
            a_state = np.array(act_state, dtype=np.uint64)[order]
        else:
            a_iter = np.empty(0, dtype=np.int64)
            a_task = a_lane = np.empty(0, dtype=np.int64)
            a_state = np.empty(0, dtype=np.uint64)
        a_ptr = 0

        lane_col = np.arange(K, dtype=np.int64)[None, :]
        out_dtype = out.dtype
        r = 0
        per_task_iters = np.zeros(T, dtype=np.int64)

        # ---- main loop ------------------------------------------------
        while True:
            alive = cur >= lo
            if not alive.any():
                break
            # Install activations scheduled for this iteration.
            while a_ptr < len(a_iter) and a_iter[a_ptr] <= r:
                end = a_ptr
                while end < len(a_iter) and a_iter[end] <= r:
                    end += 1
                x[a_task[a_ptr:end], a_lane[a_ptr:end]] = a_state[a_ptr:end]
                active[a_task[a_ptr:end], a_lane[a_ptr:end]] = True
                a_ptr = end

            base = ((cur - 1) // K) * K
            sl = np.maximum(lo, base + 1)
            la = (sl - base - 1)[:, None]
            lb = (cur - base - 1)[:, None]
            part = (
                (lane_col >= la)
                & (lane_col <= lb)
                & alive[:, None]
                & active
            )

            # Renormalization reads (Eq. 4), before decoding: a lane
            # reads iff its pre-decode state underflows L.  Reads occur
            # in descending lane order within each task.
            need = part & (x < lbound)
            counts = need.sum(axis=1)
            if counts.any():
                rank = need[:, ::-1].cumsum(axis=1)[:, ::-1] - need
                rpos = pos[:, None] - rank
                src = rpos[need]
                if src.min() < 0 or src.max() >= len(words):
                    raise DecodeError(
                        "stream read out of range during renormalization "
                        "(corrupt metadata or truncated payload)"
                    )
                w = words[src].astype(np.uint64)
                x[need] = (x[need] << rb) | w
                pos -= counts
                stats.words_read += int(counts.sum())

            # Decode (Eq. 2) across all participating lanes at once.
            slot = x & slot_mask
            if static:
                sym = lut1[slot]
                f = freq1[sym]
                start = cdf1[sym]
            else:
                g_idx = offs[:, None] + base[:, None] + lane_col  # 0-based
                g_idx = np.clip(g_idx, 0, len(ids_arr) - 1)
                ids = ids_arr[g_idx]
                sym = lut_t[ids, slot]
                f = freq_t[ids, sym]
                start = cdf_t[ids, sym]
            new_x = f * (x >> n64) + (slot - start)
            x = np.where(part, new_x, x)

            local_index = base[:, None] + lane_col + 1
            commit = (
                part
                & (local_index >= c_lo[:, None])
                & (local_index <= c_hi[:, None])
            )
            if commit.any():
                out_pos = offs[:, None] + local_index - 1
                out[out_pos[commit]] = sym[commit].astype(
                    out_dtype, copy=False
                )

            stats.symbols_decoded += int(part.sum())
            per_task_iters[alive] += 1
            cur = np.where(alive, sl - 1, cur)
            r += 1

        stats.iterations = r
        stats.max_task_iterations = int(per_task_iters.max()) if T else 0

        # ---- terminal drain & checks ----------------------------------
        for ti, t in enumerate(tasks):
            if not t.check_terminal:
                continue
            p = int(pos[ti])
            for lane in range(K - 1, -1, -1):
                xv = int(x[ti, lane])
                while xv < L_BOUND:
                    if p <= t.terminal_pos:
                        raise DecodeError(
                            f"task {ti}: stream exhausted in terminal drain"
                        )
                    xv = (xv << RENORM_BITS) | int(words[p])
                    p -= 1
                    stats.words_read += 1
                x[ti, lane] = xv
            if p != t.terminal_pos:
                raise DecodeError(
                    f"task {ti}: stream region not fully consumed "
                    f"(pos {p}, expected {t.terminal_pos})"
                )
            if np.any(x[ti] != L_BOUND):
                raise DecodeError(
                    f"task {ti}: lanes did not return to the initial "
                    f"state L"
                )
        return stats

    # ------------------------------------------------------------------

    def _dense_ids(self, total_symbols: int) -> np.ndarray:
        """Per-global-index model ids for adaptive providers."""
        ids = self.provider.model_ids_for_range(1, total_symbols + 1)
        return np.ascontiguousarray(ids, dtype=np.intp)
