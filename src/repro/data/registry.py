"""Dataset registry matching the paper's Table 4.

Every dataset of §5.1 has a spec here: its kind, generator
parameters, and the paper's uncompressed size.  Sizes scale by
profile — the full paper sizes (up to 1 GB for enwik9) are available
via the ``paper`` profile, while ``default`` and ``ci`` shrink them to
keep pure-Python runtimes sane.  Absolute per-split overheads are size
independent, so shapes (who wins, where the crossover lies) are
preserved at any scale; EXPERIMENTS.md reports the scale used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.data.images import LatentPlane, synthesize_latents
from repro.data.synthetic import exponential_bytes
from repro.data.textgen import text_surrogate

#: Fraction of the paper's dataset size per profile.  enwik9 is
#: additionally capped (1 GB of pure-Python encoding is impractical).
SCALE_PROFILES: dict[str, float] = {
    "paper": 1.0,
    "default": 0.4,
    "ci": 0.02,
}

_MAX_BYTES = {"paper": None, "default": 48_000_000, "ci": 1_000_000}


@dataclass(frozen=True)
class DatasetSpec:
    """One evaluation dataset."""

    name: str
    kind: str  # "rand" | "text" | "image"
    paper_bytes: int  # uncompressed size in the paper (1 KB = 1000 B)
    param: float  # λ for rand, H0 target for text, log-scale mean for image
    seed: int

    def size_for(self, profile: str) -> int:
        scale = SCALE_PROFILES[profile]
        size = int(self.paper_bytes * scale)
        cap = _MAX_BYTES[profile]
        if cap is not None:
            size = min(size, cap)
        return max(size, 64_000)

    def generate(self, profile: str = "default"):
        """Materialize the dataset.

        Returns a ``uint8`` array for byte datasets and a
        :class:`~repro.data.images.LatentPlane` for image datasets.
        """
        size = self.size_for(profile)
        if self.kind == "rand":
            return exponential_bytes(size, self.param, seed=self.seed)
        if self.kind == "text":
            return text_surrogate(size, self.param, seed=self.seed)
        if self.kind == "image":
            return synthesize_latents(
                size // 2, log_scale_mean=self.param, seed=self.seed
            )
        raise ValueError(f"unknown dataset kind {self.kind!r}")


# Order-0 entropy targets for the text surrogates are derived from
# Table 4 (compressed(a, n=11) / uncompressed * 8 bits).
DATASETS: dict[str, DatasetSpec] = {
    "rand_10": DatasetSpec("rand_10", "rand", 10_000_000, 10.0, 101),
    "rand_50": DatasetSpec("rand_50", "rand", 10_000_000, 50.0, 102),
    "rand_100": DatasetSpec("rand_100", "rand", 10_000_000, 100.0, 103),
    "rand_200": DatasetSpec("rand_200", "rand", 10_000_000, 200.0, 104),
    "rand_500": DatasetSpec("rand_500", "rand", 10_000_000, 500.0, 105),
    "dickens": DatasetSpec("dickens", "text", 10_192_000, 4.92, 201),
    "webster": DatasetSpec("webster", "text", 41_459_000, 5.28, 202),
    "enwik8": DatasetSpec("enwik8", "text", 100_000_000, 5.29, 203),
    "enwik9": DatasetSpec("enwik9", "text", 1_000_000_000, 5.38, 204),
    # log-scale means tuned so model cross-entropy / 16 bits lands on
    # the paper's compressed ratios (801: 0.29, 803: 0.41, 805: 0.19).
    "div2k801": DatasetSpec("div2k801", "image", 7_209_000, 1.8, 301),
    "div2k803": DatasetSpec("div2k803", "image", 7_864_000, 3.1, 302),
    "div2k805": DatasetSpec("div2k805", "image", 7_864_000, 0.68, 303),
}

BYTE_DATASETS = [
    "rand_10", "rand_50", "rand_100", "rand_200", "rand_500",
    "dickens", "webster", "enwik8", "enwik9",
]
IMAGE_DATASETS = ["div2k801", "div2k803", "div2k805"]


def load_dataset(name: str, profile: str = "default"):
    """Generate a dataset by name (see :data:`DATASETS`)."""
    try:
        spec = DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        ) from None
    return spec.generate(profile)
