"""Synthetic byte datasets (paper §5.1's ``rand_*`` family).

"10-Megabyte files generated with random exponentially distributed
bytes, with λ = 10, 50, 100, 200, 500 respectively representing
different compression rates."  Larger λ means a more concentrated
distribution, i.e. *more* compressible data — matching the paper's
Table 4 (rand_10 least, rand_500 most compressible).
"""

from __future__ import annotations

import numpy as np


def exponential_bytes(
    num_bytes: int, lam: float, seed: int = 0
) -> np.ndarray:
    """Exponentially distributed bytes: ``min(floor(Exp(256/λ)), 255)``.

    The scale ``256/λ`` reproduces the paper's compressibility ladder:
    λ=10 gives ≈6.1 bits/byte of order-0 entropy, λ=500 ≈0.9 —
    bracketing the paper's measured 6.26 … 1.12 bits/byte.
    """
    if lam <= 0:
        raise ValueError(f"lambda must be positive, got {lam}")
    rng = np.random.default_rng(seed)
    values = np.floor(rng.exponential(256.0 / lam, num_bytes))
    return np.minimum(values, 255).astype(np.uint8)
