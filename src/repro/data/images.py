"""Synthetic image-latent planes (div2k / mbt2018-mean surrogate).

The paper transforms DIV2K images through the mbt2018-mean learned
codec into 16-bit latent symbols and codes each with a Gaussian whose
scale comes from a transmitted hyperprior (§5.1).  Offline, we
synthesize the same *coding problem*:

1. a smooth spatial scale field (low-pass filtered log-normal noise)
   plays the hyperprior's role — neighbouring latents share similar
   scales, most scales are tiny (sparse latents), a few are large
   (edges/texture);
2. scales quantize onto a :class:`~repro.rans.adaptive.GaussianModelBank`
   table, giving every symbol index its model id;
3. symbols are drawn *from the quantized models themselves* via their
   slot LUTs, so the data matches the adaptive models exactly — the
   ideal-modelling regime the learned codec approximates.

This exercises the identical code path (16-bit symbols, n=16, per-index
adaptive models) with controllable compressibility.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.ndimage import gaussian_filter

from repro.rans.adaptive import GaussianModelBank, IndexedModelProvider


@dataclass
class LatentPlane:
    """A synthetic latent tensor plus its entropy models."""

    symbols: np.ndarray  # uint16, flattened latent plane
    scale_ids: np.ndarray  # per-symbol model ids (the "hyperprior")
    bank: GaussianModelBank

    @property
    def provider(self) -> IndexedModelProvider:
        return self.bank.provider_for_ids(self.scale_ids)

    @property
    def num_symbols(self) -> int:
        return len(self.symbols)

    @property
    def uncompressed_bytes(self) -> int:
        return 2 * len(self.symbols)

    def ideal_bits(self) -> float:
        """Model cross-entropy of the plane (the rate target)."""
        total = 0.0
        probs = [m.probabilities for m in self.bank.models]
        quant = self.bank.quant_bits
        for mid in np.unique(self.scale_ids):
            mask = self.scale_ids == mid
            p = probs[int(mid)][self.symbols[mask]]
            total += float(-np.log2(np.maximum(p, 2.0 ** -quant)).sum())
        return total


def synthesize_latents(
    num_symbols: int,
    *,
    quant_bits: int = 16,
    alphabet_size: int = 65536,
    num_scales: int = 64,
    log_scale_mean: float = -1.2,
    log_scale_sigma: float = 1.1,
    smoothness: float = 24.0,
    seed: int = 0,
) -> LatentPlane:
    """Build a latent plane with hyperprior-style scale structure.

    ``log_scale_mean``/``log_scale_sigma`` control compressibility:
    lower mean → more near-zero scales → fewer bits per symbol (the
    div2k805-like regime); higher → div2k803-like.
    """
    rng = np.random.default_rng(seed)
    bank = GaussianModelBank(
        quant_bits, alphabet_size=alphabet_size, num_scales=num_scales
    )
    # Smooth log-scale field: filtered white noise, normalized back to
    # unit variance so `smoothness` does not change the marginal.
    noise = rng.normal(size=num_symbols)
    field = gaussian_filter(noise, sigma=smoothness, mode="wrap")
    std = field.std()
    if std > 0:
        field = field / std
    scales = np.exp(log_scale_mean + log_scale_sigma * field)
    scales = np.clip(scales, bank.SCALE_MIN, bank.SCALE_MAX)
    scale_ids = bank.scale_to_id(scales)

    # Sample each symbol from its quantized model via the slot LUT:
    # a uniform slot in [0, 2**n) maps through slot_to_symbol to an
    # exact draw from the quantized pmf.
    symbols = np.empty(num_symbols, dtype=np.uint16)
    slots = rng.integers(0, 1 << quant_bits, size=num_symbols)
    for mid in np.unique(scale_ids):
        mask = scale_ids == mid
        lut = bank.models[int(mid)].slot_to_symbol
        symbols[mask] = lut[slots[mask]]
    return LatentPlane(symbols=symbols, scale_ids=scale_ids, bank=bank)
