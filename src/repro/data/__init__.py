"""Dataset generators mirroring the paper's evaluation corpora.

Offline substitutes (DESIGN.md substitution table):

- ``rand_λ`` — exponentially distributed bytes, exactly as §5.1.
- text surrogates (``dickens``, ``webster``, ``enwik8``, ``enwik9``) —
  byte-histogram surrogates whose order-0 entropy matches the real
  corpora (the experiments use static order-0 models, so the histogram
  is the only property that matters; sizes are scaled down by default).
- ``div2k*`` — synthetic 16-bit latent planes with hyperprior-style
  spatially varying Gaussian scales, standing in for mbt2018-mean
  latents of DIV2K images.
"""

from repro.data.registry import (
    DATASETS,
    DatasetSpec,
    SCALE_PROFILES,
    load_dataset,
)
from repro.data.synthetic import exponential_bytes
from repro.data.textgen import text_surrogate
from repro.data.images import LatentPlane, synthesize_latents

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "SCALE_PROFILES",
    "load_dataset",
    "exponential_bytes",
    "text_surrogate",
    "LatentPlane",
    "synthesize_latents",
]
