"""Text-corpus surrogates with matched order-0 entropy.

The compression experiments model text with *static order-0* symbol
statistics (paper §5.1), so the only property of dickens / webster /
enwik8 / enwik9 that the codecs observe is the byte histogram.  We
synthesize i.i.d. bytes from a realistic English-plus-markup
distribution blended with a uniform floor, with the blend weight tuned
by bisection so the order-0 entropy hits the target derived from the
paper's Table 4 (compressed/uncompressed x 8 bits).

This substitution is exact for every compression-rate experiment and
preserves the (near-uniform) entropy-rate profile the split heuristic
relies on (§4.3: "most real-world data has a mostly uniform
distribution of entropy").
"""

from __future__ import annotations

import numpy as np

# Relative frequencies of English text characters (letters, space,
# punctuation) — approximate newspaper English, good enough as the
# skeleton distribution.
_ENGLISH = {
    " ": 18.0, "e": 10.2, "t": 7.5, "a": 6.5, "o": 6.2, "i": 5.7,
    "n": 5.7, "s": 5.3, "h": 4.3, "r": 4.8, "d": 3.4, "l": 3.3,
    "u": 2.3, "c": 2.3, "m": 2.0, "w": 1.7, "f": 1.9, "g": 1.6,
    "y": 1.4, "p": 1.6, "b": 1.3, "v": 0.8, "k": 0.6, "x": 0.14,
    "j": 0.13, "q": 0.08, "z": 0.06, "\n": 1.8, ",": 1.0, ".": 1.0,
    "'": 0.3, '"': 0.3, ";": 0.1, "-": 0.2, "(": 0.1, ")": 0.1,
    "0": 0.4, "1": 0.4, "2": 0.25, "3": 0.15, "4": 0.12, "5": 0.15,
    "6": 0.1, "7": 0.1, "8": 0.12, "9": 0.3, "<": 0.6, ">": 0.6,
    "/": 0.5, "=": 0.3, "&": 0.2, "[": 0.3, "]": 0.3, "|": 0.2,
    ":": 0.3, "_": 0.1, "#": 0.05, "A": 0.35, "B": 0.2, "C": 0.3,
    "D": 0.2, "E": 0.25, "F": 0.15, "G": 0.15, "H": 0.2, "I": 0.45,
    "J": 0.1, "K": 0.07, "L": 0.15, "M": 0.3, "N": 0.2, "O": 0.2,
    "P": 0.25, "Q": 0.03, "R": 0.2, "S": 0.35, "T": 0.45, "U": 0.1,
    "V": 0.07, "W": 0.25, "X": 0.03, "Y": 0.1, "Z": 0.03,
}


def _base_distribution() -> np.ndarray:
    p = np.zeros(256, dtype=np.float64)
    for ch, w in _ENGLISH.items():
        p[ord(ch)] = w
    return p / p.sum()


def _entropy(p: np.ndarray) -> float:
    q = p[p > 0]
    return float(-(q * np.log2(q)).sum())


def blended_distribution(target_entropy: float) -> np.ndarray:
    """English skeleton blended with a uniform floor to hit a target
    order-0 entropy (bits/byte), found by bisection on the blend
    weight.  Raises if the target is outside the achievable range."""
    base = _base_distribution()
    uniform = np.full(256, 1.0 / 256)
    lo_h = _entropy(base)
    hi_h = _entropy(uniform)
    if not lo_h <= target_entropy <= hi_h:
        raise ValueError(
            f"target entropy {target_entropy:.2f} outside "
            f"[{lo_h:.2f}, {hi_h:.2f}] bits/byte"
        )
    lo, hi = 0.0, 1.0
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        p = (1 - mid) * base + mid * uniform
        if _entropy(p) < target_entropy:
            lo = mid
        else:
            hi = mid
    return (1 - lo) * base + lo * uniform


def text_surrogate(
    num_bytes: int, target_entropy: float, seed: int = 0
) -> np.ndarray:
    """Generate ``num_bytes`` of text-like bytes at a target order-0
    entropy (see module docstring for why i.i.d. suffices)."""
    p = blended_distribution(target_entropy)
    rng = np.random.default_rng(seed)
    # Inverse-CDF sampling (vectorized; rng.choice is slow at size).
    cdf = np.cumsum(p)
    cdf[-1] = 1.0
    u = rng.random(num_bytes)
    return np.searchsorted(cdf, u, side="right").astype(np.uint8)
