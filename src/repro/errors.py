"""Exception hierarchy for the Recoil reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type.  Sub-classes distinguish model problems,
bitstream corruption, metadata problems, and API misuse.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ModelError(ReproError):
    """A probability model is malformed (zero frequencies, bad
    quantization level, PDF does not sum to 2**n, ...)."""


class EncodeError(ReproError):
    """Encoding failed (symbol outside the model alphabet, state
    overflow, ...)."""


class DecodeError(ReproError):
    """Decoding failed (bitstream exhausted, state desynchronized,
    checksum mismatch, ...)."""


class MetadataError(ReproError):
    """Recoil split metadata is inconsistent with the bitstream or was
    corrupted in serialization."""


class ContainerError(ReproError):
    """A serialized container (Recoil or Conventional) is malformed:
    bad magic, truncated section, unsupported version."""


class ParallelismError(ReproError):
    """Invalid parallel-execution request (zero workers, more workers
    than splits where forbidden, ...)."""


class ServeError(ReproError):
    """Content-delivery service failure (unknown asset, request
    against a closed service, duplicate asset name, ...)."""


class ProtocolError(ServeError):
    """A network peer violated the wire protocol: bad magic, unknown
    frame type, an implausible declared length, a malformed request
    body, or a corrupted response stream.  Server-side it is answered
    with a typed error frame and the connection is closed (after a
    framing violation the byte stream cannot be trusted); client-side
    it means the server's response failed validation."""


class IntegrityError(ServeError):
    """A persisted asset failed verification: a CRC-32 mismatch, a
    truncated or malformed on-disk record, or a manifest entry whose
    bytes cannot be proven intact.  The store never serves bytes that
    fail verification — the offending file is moved to the store's
    ``quarantine/`` directory (preserved for inspection, not deleted)
    and this error is raised instead."""


class AdmissionError(ServeError):
    """A request was refused by the service's admission control: the
    in-flight work bound stayed saturated past the admission
    timeout (backpressure)."""


class DeadlineError(ServeError):
    """A request's deadline expired before the service executed it.
    Raised by the dispatcher (an expired request never occupies
    kernel time) or by ``submit`` when the deadline passes while the
    request is still blocked on admission."""


class TraceError(ReproError):
    """A trace document failed schema validation (:mod:`repro.trace`):
    missing required fields, unbalanced begin/end events, negative
    durations, or worker spans sharing the serve process id."""


class FaultInjected(ReproError):
    """An armed fault point fired (:mod:`repro.faults`).  Only the
    fault-injection harness raises this — seeing it outside a chaos
    run means a fault rule leaked out of its context manager."""
