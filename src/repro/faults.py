"""Deterministic fault injection for the serve/shard stack.

The resilience layer (DESIGN.md §15) is only trustworthy if every
failure path it promises to survive can be *driven on demand*: a worker
segfault, a dropped pipe, an exhausted ``/dev/shm``, a poison request.
This module provides the registry of named **fault points** — the real
failure surfaces, instrumented in place — and seeded, context-scoped
**rules** that make a chosen point fail on the nth hit or with
probability ``p``.

Design rules:

- **Central registry.**  Every fault point is declared here
  (:data:`POINTS`), not at the instrumentation site, so the chaos
  suite can enumerate and drive all of them and a typo in a test or a
  ``--faults`` spec is an error, not a silent no-op.
- **Deterministic.**  A rule owns a private ``random.Random(seed)``;
  the same seed against the same call sequence fires at the same
  hits.  Nothing reads global random state.
- **Context-scoped.**  Rules arm inside a ``with faults.inject(...)``
  block and disarm on exit, even on error — a leaked rule cannot
  outlive its test.
- **Near-zero overhead when disabled.**  :func:`fire` and
  :func:`triggered` first test a module-level "any rules armed?" flag
  without taking the lock; production traffic pays one attribute load
  and one branch per instrumented operation (the points sit at coarse
  operations — a segment allocation, a batch dispatch — never inside
  kernel loops).
- **Realistic exceptions.**  Each point has a default exception type
  matching what the real failure would raise at that site (``OSError``
  for pipe/shm surfaces, :class:`~repro.errors.FaultInjected`
  elsewhere), so the injected failure exercises the same ``except``
  clauses production failures do.

Worker-process points (``worker.crash``, ``worker.job``,
``shm.attach``) are *evaluated in the parent* at dispatch time — the
verdict ships with the job and the worker merely executes it — so one
registry, one seed, and one counter sequence govern the whole run even
across process boundaries.
"""

from __future__ import annotations

import random
import threading
from contextlib import ExitStack, contextmanager

from repro.errors import FaultInjected

# ---------------------------------------------------------------------------
# Fault-point registry.
# ---------------------------------------------------------------------------

#: parent-side shared-memory segment allocation (``shards._new_shm``).
SHM_ALLOC = "shm.alloc"
#: worker-side attach of a parent-owned segment (verdict shipped).
SHM_ATTACH = "shm.attach"
#: worker job execution fails with :class:`FaultInjected` (shipped).
WORKER_JOB = "worker.job"
#: worker process dies mid-job — ``os._exit``, no reply (shipped).
WORKER_CRASH = "worker.crash"
#: parent→worker job send (``ShardedExecutor._dispatch``).
PIPE_SEND = "pipe.send"
#: worker→parent reply receive (``ShardedExecutor._recv``).
PIPE_RECV = "pipe.recv"
#: asset encode in :meth:`repro.serve.store.AssetStore.put`.
STORE_ENCODE = "store.encode"
#: batch hand-off in :meth:`repro.serve.service.RecoilService._run_batch`.
BATCH_DISPATCH = "batch.dispatch"
#: per-request execution on the dispatcher (keyed by asset name —
#: arm with ``key=`` to poison one asset's requests).
SERVE_REQUEST = "serve.request"
#: fused multi-buffer kernel entry (:func:`~repro.parallel.fused.fused_run_multi`).
KERNEL_EXEC = "kernel.exec"
#: a just-accepted connection fails before registration
#: (:class:`repro.serve.net.NetServer` accept loop).
NET_ACCEPT = "net.accept"
#: a connection's frame read fails mid-request (peer reset).
NET_READ = "net.read"
#: a connection's response write fails (peer reset).
NET_WRITE = "net.write"
#: the server stalls before writing a response (consumed via
#: :func:`triggered`, not :func:`fire`: the connection thread *sleeps*
#: for the configured stall duration instead of raising — the injected
#: failure is lateness, which drives client-side timeouts and the
#: drain/force-close machinery).
NET_STALL = "net.stall"
#: a chunk write while persisting an asset record
#: (:meth:`repro.serve.disk.DiskStore.put` — fires per chunk, so a
#: rule can tear the write at any byte offset).
DISK_WRITE = "disk.write"
#: an fsync on the durable-write path (record file, manifest, or the
#: containing directory after an atomic rename).
DISK_FSYNC = "disk.fsync"
#: an asset record read (hydration or recovery scan).
DISK_READ = "disk.read"
#: read-side bit rot: consumed via :func:`triggered` — the store
#: flips one bit in the bytes it just read (keyed by asset name), so
#: verification MUST catch it and quarantine the record.
DISK_CORRUPT = "disk.corrupt"


def _oserror(point: str) -> BaseException:
    return OSError(f"injected fault at {point}")


def _fault(point: str) -> BaseException:
    return FaultInjected(f"injected fault at {point}")


#: every known fault point: ``name -> (doc, default exception factory)``.
POINTS: dict[str, tuple[str, object]] = {
    SHM_ALLOC: ("shared-memory segment allocation (parent)", _oserror),
    SHM_ATTACH: ("shared-memory segment attach (worker)", _oserror),
    WORKER_JOB: ("worker job execution raises", _fault),
    WORKER_CRASH: ("worker process dies mid-job", _fault),
    PIPE_SEND: ("parent-to-worker job send", _oserror),
    PIPE_RECV: ("worker-to-parent reply receive", _oserror),
    STORE_ENCODE: ("asset encode in AssetStore.put", _fault),
    BATCH_DISPATCH: ("fused batch hand-off on the dispatcher", _fault),
    SERVE_REQUEST: ("per-request execution (key = asset name)", _fault),
    KERNEL_EXEC: ("fused multi-buffer kernel entry", _fault),
    NET_ACCEPT: ("accepted connection fails before registration", _oserror),
    NET_READ: ("connection frame read fails (peer reset)", _oserror),
    NET_WRITE: ("connection response write fails (peer reset)", _oserror),
    NET_STALL: ("server stalls before writing a response", _fault),
    DISK_WRITE: ("asset record chunk write (torn write)", _oserror),
    DISK_FSYNC: ("fsync on the durable-write path", _oserror),
    DISK_READ: ("asset record read (hydration/recovery)", _oserror),
    DISK_CORRUPT: ("read-side bit flip (key = asset name)", _fault),
}


def registered_points() -> dict[str, str]:
    """``{point: description}`` for every instrumented fault point."""
    return {name: doc for name, (doc, _) in POINTS.items()}


# ---------------------------------------------------------------------------
# Rules.
# ---------------------------------------------------------------------------


class FaultRule:
    """One armed rule against one fault point.

    Exactly one of ``p`` (fire each hit with probability ``p``) or
    ``nth`` (fire on the nth hit, 1-based) selects the trigger.
    ``times`` caps total fires (default: 1 for ``nth`` rules,
    unlimited for ``p`` rules).  ``key`` restricts the rule to
    :func:`fire` calls carrying an equal key (poison targeting).
    Counters (``hits``, ``fires``) are readable after the run for
    assertions.
    """

    def __init__(
        self,
        point: str,
        p: float | None = None,
        nth: int | None = None,
        times: int | None = None,
        key: str | None = None,
        seed: int = 0,
        exc=None,
    ) -> None:
        if point not in POINTS:
            known = ", ".join(sorted(POINTS))
            raise ValueError(
                f"unknown fault point {point!r}; known points: {known}"
            )
        if (p is None) == (nth is None):
            raise ValueError("exactly one of p= or nth= must be given")
        if p is not None and not 0.0 < p <= 1.0:
            raise ValueError(f"p must be in (0, 1], got {p}")
        if nth is not None and nth < 1:
            raise ValueError(f"nth must be >= 1, got {nth}")
        if times is not None and times < 1:
            raise ValueError(f"times must be >= 1, got {times}")
        self.point = point
        self.p = p
        self.nth = nth
        self.times = times if times is not None else (1 if nth else None)
        self.key = key
        self.seed = seed
        self._exc = exc if exc is not None else POINTS[point][1]
        self._rng = random.Random(seed)
        self.hits = 0
        self.fires = 0

    # Called under the module lock.
    def _check(self, key: str | None) -> bool:
        if self.key is not None and key != self.key:
            return False
        if self.times is not None and self.fires >= self.times:
            return False
        self.hits += 1
        if self.nth is not None:
            fire = self.hits == self.nth
        else:
            fire = self._rng.random() < self.p
        if fire:
            self.fires += 1
        return fire

    def make_exception(self) -> BaseException:
        exc = self._exc
        if isinstance(exc, type) and issubclass(exc, BaseException):
            return exc(f"injected fault at {self.point}")
        return exc(self.point)

    def describe(self) -> dict:
        return {
            "point": self.point,
            "trigger": (
                {"p": self.p, "seed": self.seed}
                if self.p is not None
                else {"nth": self.nth}
            ),
            "times": self.times,
            "key": self.key,
            "hits": self.hits,
            "fires": self.fires,
        }

    def __repr__(self) -> str:
        trig = f"p={self.p}" if self.p is not None else f"nth={self.nth}"
        return (
            f"FaultRule({self.point!r}, {trig}, times={self.times}, "
            f"key={self.key!r}, hits={self.hits}, fires={self.fires})"
        )


_lock = threading.Lock()
_rules: list[FaultRule] = []
#: lock-free fast-path flag: True iff any rule is armed.
_armed = False


def enabled() -> bool:
    """Whether any fault rule is currently armed (lock-free)."""
    return _armed


@contextmanager
def inject(
    point: str,
    p: float | None = None,
    nth: int | None = None,
    times: int | None = None,
    key: str | None = None,
    seed: int = 0,
    exc=None,
):
    """Arm one rule for the dynamic extent of the ``with`` block.

    Yields the :class:`FaultRule` so callers can assert on its
    ``hits``/``fires`` counters.  Multiple rules (same or different
    points) may be armed concurrently; each keeps private counters
    and a private seeded RNG.
    """
    rule = FaultRule(
        point, p=p, nth=nth, times=times, key=key, seed=seed, exc=exc
    )
    global _armed
    with _lock:
        _rules.append(rule)
        _armed = True
    try:
        yield rule
    finally:
        with _lock:
            try:
                _rules.remove(rule)
            except ValueError:  # pragma: no cover - double-exit guard
                pass
            _armed = bool(_rules)


def _consume(point: str, key: str | None) -> FaultRule | None:
    with _lock:
        for rule in _rules:
            if rule.point == point and rule._check(key):
                return rule
    return None


def fire(point: str, key: str | None = None) -> None:
    """Raise the armed rule's exception if one triggers at ``point``.

    The no-rules fast path is a single module-global test.
    """
    if not _armed:
        return
    rule = _consume(point, key)
    if rule is not None:
        raise rule.make_exception()


def triggered(point: str, key: str | None = None) -> bool:
    """Consume and report a verdict instead of raising.

    Used where the failure is not an exception at the evaluation site
    — e.g. the parent decides a *worker* must crash and ships the
    verdict with the job.
    """
    if not _armed:
        return False
    return _consume(point, key) is not None


def snapshot() -> list[dict]:
    """Describe every armed rule (point, trigger, counters)."""
    with _lock:
        return [rule.describe() for rule in _rules]


def reset() -> None:
    """Disarm everything (test hygiene)."""
    global _armed
    with _lock:
        _rules.clear()
        _armed = False


# ---------------------------------------------------------------------------
# Spec strings (the CLI's ``--faults`` knob).
# ---------------------------------------------------------------------------


def parse_spec(spec: str) -> list[dict]:
    """Parse a chaos spec into :func:`inject` keyword dicts.

    Format: comma-separated rules, each
    ``point[:opt=value]*`` with options ``p`` (float), ``nth``,
    ``times``, ``seed`` (ints) and ``key`` (string), e.g.::

        worker.crash:nth=3,shm.alloc:p=0.05:seed=7,serve.request:p=1:key=bad

    :raises ValueError: malformed spec or unknown point/option.
    """
    rules: list[dict] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        fields = part.split(":")
        point = fields[0].strip()
        kwargs: dict = {"point": point}
        for opt in fields[1:]:
            if "=" not in opt:
                raise ValueError(
                    f"malformed fault option {opt!r} in {part!r} "
                    "(expected opt=value)"
                )
            name, _, value = opt.partition("=")
            name = name.strip()
            value = value.strip()
            if name == "p":
                kwargs["p"] = float(value)
            elif name in ("nth", "times", "seed"):
                kwargs[name] = int(value)
            elif name == "key":
                kwargs["key"] = value
            else:
                raise ValueError(
                    f"unknown fault option {name!r} in {part!r}"
                )
        # Validate eagerly so a bad spec fails before anything runs.
        FaultRule(**kwargs)
        rules.append(kwargs)
    if not rules:
        raise ValueError(f"empty fault spec {spec!r}")
    return rules


def inject_spec(spec: str) -> ExitStack:
    """Arm every rule in ``spec``; returns the controlling
    :class:`~contextlib.ExitStack` (close it to disarm)."""
    stack = ExitStack()
    try:
        for kwargs in parse_spec(spec):
            stack.enter_context(inject(**kwargs))
    except BaseException:
        stack.close()
        raise
    return stack
