"""The Recoil encoder (paper §4: encode once, record split metadata).

Wraps the interleaved encoder with event recording and split
selection.  The output of :meth:`RecoilEncoder.encode` contains the
*unmodified* interleaved rANS bitstream — Recoil's compatibility claim
(§1): metadata is independent, so the stream remains decodable by any
standard interleaved decoder.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.metadata import RecoilMetadata
from repro.core.splitter import SplitSelector, SplitterStats
from repro.rans.adaptive import AdaptiveModelProvider, StaticModelProvider
from repro.rans.constants import DEFAULT_LANES
from repro.rans.interleaved import InterleavedEncoder
from repro.rans.model import SymbolModel


@dataclass
class RecoilEncoded:
    """An encoded stream plus everything needed to decode it."""

    words: np.ndarray  # uint16 payload stream
    final_states: np.ndarray  # uint64, shape (lanes,)
    num_symbols: int
    lanes: int
    quant_bits: int
    metadata: RecoilMetadata
    splitter_stats: SplitterStats

    @property
    def payload_bytes(self) -> int:
        return 2 * len(self.words)

    def with_metadata(self, md: RecoilMetadata) -> "RecoilEncoded":
        """Same stream, different (e.g. combined) metadata."""
        return RecoilEncoded(
            words=self.words,
            final_states=self.final_states,
            num_symbols=self.num_symbols,
            lanes=self.lanes,
            quant_bits=self.quant_bits,
            metadata=md,
            splitter_stats=self.splitter_stats,
        )


class RecoilEncoder:
    """Encode a symbol sequence once, with decoder-adaptive metadata.

    Parameters
    ----------
    provider:
        Model provider (or a bare :class:`SymbolModel` for static
        coding).
    lanes:
        Interleave width ``K`` (Table 3 recommends 32).
    window:
        Candidate search window for the split heuristic (§4.2).
    """

    def __init__(
        self,
        provider: AdaptiveModelProvider | SymbolModel,
        lanes: int = DEFAULT_LANES,
        window: int = 48,
    ) -> None:
        if isinstance(provider, SymbolModel):
            provider = StaticModelProvider(provider)
        self.provider = provider
        self.lanes = lanes
        self.window = window
        # One long-lived interleaved encoder per Recoil encoder, so the
        # fused kernel's scratch arena survives across encode calls
        # (DESIGN.md §9); therefore not shareable between threads.
        self._encoder = InterleavedEncoder(provider, lanes)

    def encode(
        self, data: np.ndarray, num_threads: int, kernel: str = "numpy"
    ) -> RecoilEncoded:
        """Encode ``data`` and select up to ``num_threads - 1`` splits.

        ``num_threads`` is the *maximum parallelism the server intends
        to support* (§3.3); decoders with less capability receive
        combined (subsampled) metadata at serve time.  The interleaved
        pass runs on the fused wide-lane encode kernel, which records
        the renormalization events in-kernel; the split selector
        consumes the preassembled event arrays directly.  ``kernel``
        selects the numpy (default) or compiled sweep loop — both
        produce bit-identical streams and events (DESIGN.md §19).
        """
        enc = self._encoder.encode(
            data, record_events=True, kernel=kernel
        )
        selector = SplitSelector(
            enc.events, self.lanes, enc.num_symbols, window=self.window
        )
        metadata, stats = selector.select(num_threads)
        return RecoilEncoded(
            words=enc.words,
            final_states=enc.final_states,
            num_symbols=enc.num_symbols,
            lanes=self.lanes,
            quant_bits=self.provider.quant_bits,
            metadata=metadata,
            splitter_stats=stats,
        )
