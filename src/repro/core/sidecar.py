"""Detached ("sidecar") Recoil metadata — the paper's §6 future work.

    "Recoil can be an easy drop-in replacement for the single-threaded
    interleaved rANS coders: the Recoil metadata can be transmitted
    separately so that the coding format does not change."

A *sidecar* is the split metadata serialized on its own, bound to a
specific bitstream by a geometry fingerprint (symbol count, word
count, lane count, and a payload checksum).  The host format keeps
shipping its standard interleaved rANS stream, fully readable by
legacy decoders; Recoil-aware decoders additionally fetch the sidecar
and decode massively in parallel.

Layout::

    magic   b"RCSC"
    u8      version (=1)
    u32 LE  payload checksum (FNV-1a over the word bytes)
    metadata section (§4.3 format)
"""

from __future__ import annotations

import numpy as np

from repro.core.metadata import RecoilMetadata
from repro.core.serialization import parse_metadata, serialize_metadata
from repro.errors import ContainerError

MAGIC = b"RCSC"
VERSION = 1
_FNV_OFFSET = 0x811C9DC5
_FNV_PRIME = 0x01000193


def payload_checksum(words: np.ndarray) -> int:
    """FNV-1a over the word stream, vectorized in 64-bit chunks.

    Cheap binding between sidecar and payload — catches pairing a
    sidecar with the wrong (or re-encoded) bitstream before the
    decoder trips over misaligned reads.
    """
    data = np.ascontiguousarray(words, dtype="<u2").tobytes()
    h = _FNV_OFFSET
    # Classic byte-at-a-time FNV is too slow in Python; fold 8-byte
    # blocks through the same recurrence instead (documented format).
    pad = (-len(data)) % 8
    arr = np.frombuffer(data + b"\x00" * pad, dtype="<u8")
    for block in arr[: 1 << 16]:  # cap work for huge payloads
        h ^= int(block) & 0xFFFFFFFF
        h = (h * _FNV_PRIME) & 0xFFFFFFFF
        h ^= int(block) >> 32
        h = (h * _FNV_PRIME) & 0xFFFFFFFF
    h ^= len(data)
    return (h * _FNV_PRIME) & 0xFFFFFFFF


def build_sidecar(metadata: RecoilMetadata, words: np.ndarray) -> bytes:
    """Serialize metadata detached from its bitstream."""
    out = bytearray()
    out += MAGIC
    out.append(VERSION)
    out += payload_checksum(words).to_bytes(4, "little")
    out += serialize_metadata(metadata)
    return bytes(out)


def parse_sidecar(
    blob: bytes, words: np.ndarray | None = None
) -> RecoilMetadata:
    """Parse a sidecar; verifies the payload binding when ``words``
    is provided."""
    if blob[:4] != MAGIC:
        raise ContainerError(f"bad sidecar magic {blob[:4]!r}")
    if blob[4] != VERSION:
        raise ContainerError(f"unsupported sidecar version {blob[4]}")
    checksum = int.from_bytes(blob[5:9], "little")
    metadata, _ = parse_metadata(blob, 9)
    if words is not None:
        if len(words) != metadata.num_words:
            raise ContainerError(
                f"sidecar is for a {metadata.num_words}-word stream, "
                f"got {len(words)} words"
            )
        actual = payload_checksum(words)
        if actual != checksum:
            raise ContainerError(
                "sidecar checksum does not match the payload — wrong "
                "bitstream for this sidecar"
            )
    return metadata


def shrink_sidecar(blob: bytes, target_threads: int) -> bytes:
    """Combine splits inside a detached sidecar (server-side §3.3,
    without touching — or even holding — the payload)."""
    if blob[:4] != MAGIC or blob[4] != VERSION:
        raise ContainerError("not a sidecar")
    header = blob[:9]
    metadata, _ = parse_metadata(blob, 9)
    return header + serialize_metadata(metadata.combine(target_threads))
