"""Recoil core: the paper's primary contribution.

Encode once with a single group of interleaved rANS encoders, record
renormalization-point metadata, pick balanced split points, and decode
massively in parallel with the 3-phase procedure — scaling metadata to
each decoder's capability by simply dropping entries.
"""

from repro.core.api import (
    RecoilCodec,
    recoil_compress,
    recoil_decompress,
    recoil_service,
    recoil_shrink,
)
from repro.core.container import (
    ParsedContainer,
    build_container,
    parse_container,
    shrink_container,
)
from repro.core.decoder import (
    RecoilDecodeResult,
    RecoilDecoder,
    build_thread_tasks,
)
from repro.core.encoder import RecoilEncoded, RecoilEncoder
from repro.core.metadata import RecoilMetadata, SplitEntry
from repro.core.serialization import (
    metadata_size_bytes,
    parse_metadata,
    serialize_metadata,
)
from repro.core.sidecar import (
    build_sidecar,
    parse_sidecar,
    payload_checksum,
    shrink_sidecar,
)
from repro.core.splitter import SplitSelector, SplitterStats

__all__ = [
    "RecoilCodec",
    "recoil_compress",
    "recoil_decompress",
    "recoil_service",
    "recoil_shrink",
    "RecoilEncoder",
    "RecoilEncoded",
    "RecoilDecoder",
    "RecoilDecodeResult",
    "build_thread_tasks",
    "RecoilMetadata",
    "SplitEntry",
    "SplitSelector",
    "SplitterStats",
    "serialize_metadata",
    "parse_metadata",
    "metadata_size_bytes",
    "ParsedContainer",
    "build_container",
    "parse_container",
    "shrink_container",
    "build_sidecar",
    "parse_sidecar",
    "shrink_sidecar",
    "payload_checksum",
]
