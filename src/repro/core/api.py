"""High-level Recoil API.

The three verbs of the paper's content-delivery story:

- :func:`recoil_compress` — *encode once* with metadata for the
  maximum parallelism the server intends to support;
- :func:`recoil_shrink` — per-request, real-time metadata reduction to
  a client's advertised capacity (no re-encoding);
- :func:`recoil_decompress` — massively parallel 3-phase decoding.

:class:`RecoilCodec` bundles the same operations around a fixed model
provider for repeated use (and is what the benchmarks drive).
"""

from __future__ import annotations

import numpy as np

from repro.core.container import (
    build_container,
    parse_container,
    shrink_container,
)
from repro.core.decoder import RecoilDecodeResult, RecoilDecoder
from repro.core.encoder import RecoilEncoded, RecoilEncoder
from repro.errors import EncodeError
from repro.rans.adaptive import AdaptiveModelProvider, StaticModelProvider
from repro.rans.constants import DEFAULT_LANES
from repro.rans.model import SymbolModel


class RecoilCodec:
    """Recoil compressor/decompressor around one model provider."""

    def __init__(
        self,
        provider: AdaptiveModelProvider | SymbolModel,
        lanes: int = DEFAULT_LANES,
    ) -> None:
        if isinstance(provider, SymbolModel):
            provider = StaticModelProvider(provider)
        self.provider = provider
        self.lanes = lanes
        self._encoder = RecoilEncoder(provider, lanes)
        self._decoder = RecoilDecoder(provider, lanes)

    # -- encoding -------------------------------------------------------

    def encode(self, data: np.ndarray, num_splits: int) -> RecoilEncoded:
        """Encode with up to ``num_splits`` parallel decode segments.

        :param data: symbol array inside the provider's alphabet.
        :param num_splits: decoder parallelism the metadata supports.
        :returns: the encoded stream, final states, and metadata.
        :raises EncodeError: ``num_splits < 1``, or a symbol outside
            the model alphabet (zero quantized frequency).
        """
        if num_splits < 1:
            raise EncodeError(
                f"num_splits must be >= 1, got {num_splits}"
            )
        return self._encoder.encode(data, num_splits)

    def compress(self, data: np.ndarray, num_splits: int) -> bytes:
        """Encode and wrap in a container (static providers embed the
        model; adaptive providers travel out of band).

        :returns: self-contained container bytes (for static
            providers) servable via :meth:`shrink`.
        :raises EncodeError: see :meth:`encode`.
        """
        encoded = self.encode(data, num_splits)
        return build_container(
            encoded,
            provider=self.provider,
            embed_model=self.provider.is_static,
        )

    # -- decoding -------------------------------------------------------

    def decompress(
        self, blob: bytes, max_threads: int | None = None
    ) -> np.ndarray:
        """Decode a container encoded with this codec's provider.

        :param max_threads: optionally combine splits client-side
            before decoding (caps decoder parallelism).
        :returns: the decoded symbol array.
        :raises ContainerError: malformed container bytes.
        :raises MetadataError: corrupt/inconsistent split metadata, or
            ``max_threads < 1``.
        :raises DecodeError: bitstream corruption (exhausted stream,
            lanes not returning to the initial state).
        """
        return self.decompress_with_stats(blob, max_threads).symbols

    def decompress_with_stats(
        self, blob: bytes, max_threads: int | None = None
    ) -> RecoilDecodeResult:
        """Like :meth:`decompress`, also returning the engine work
        counters and workload summary that feed the Figure 7 cost
        model (same raises)."""
        parsed = parse_container(blob, provider=self.provider)
        return self._decoder.decode(
            parsed.words(blob),
            parsed.final_states,
            parsed.metadata,
            max_threads=max_threads,
        )

    # -- serving ----------------------------------------------------------

    def shrink(self, blob: bytes, target_threads: int) -> bytes:
        """Real-time split combining before transmission (§3.3).

        :param target_threads: the client's decoder parallelism.
        :returns: container bytes with combined metadata — the payload
            is byte-identical to the input's, never re-encoded.
        :raises ContainerError: malformed container bytes.
        :raises MetadataError: ``target_threads < 1``.
        """
        return shrink_container(blob, target_threads)


# ---------------------------------------------------------------------------
# Free functions: the one-shot convenience layer.
# ---------------------------------------------------------------------------


def _default_model(data: np.ndarray, quant_bits: int) -> SymbolModel:
    data = np.asarray(data)
    if data.size == 0:
        raise EncodeError("cannot compress an empty sequence")
    alphabet = 256 if int(data.max()) < 256 else 65536
    return SymbolModel.from_data(data, quant_bits, alphabet_size=alphabet)


def recoil_compress(
    data: np.ndarray,
    num_splits: int = 64,
    quant_bits: int = 11,
    model: SymbolModel | None = None,
    lanes: int = DEFAULT_LANES,
) -> bytes:
    """Compress ``data`` into a Recoil container.

    When ``model`` is omitted a static model is fitted to the data
    (and embedded in the container).

    :param data: symbol array (bytes or 16-bit symbols).
    :param num_splits: decoder parallelism the metadata supports.
    :param quant_bits: probability quantization level ``n`` (≤ 16).
    :param model: explicit symbol model; must cover every symbol in
        ``data``.
    :param lanes: interleaved rANS lanes per decoder thread.
    :returns: self-contained container bytes.
    :raises EncodeError: empty input, ``num_splits < 1``, or a symbol
        with zero quantized frequency.
    :raises ModelError: invalid ``quant_bits`` or malformed ``model``.
    """
    if model is None:
        model = _default_model(data, quant_bits)
    return RecoilCodec(model, lanes=lanes).compress(data, num_splits)


def recoil_decompress(
    blob: bytes,
    max_parallelism: int | None = None,
    provider: AdaptiveModelProvider | None = None,
) -> np.ndarray:
    """Decompress a Recoil container.

    ``max_parallelism`` caps the number of decoder threads by
    combining splits client-side; ``provider`` is required for
    containers encoded with adaptive (out-of-band) models.

    :returns: the decoded symbol array.
    :raises ContainerError: malformed container bytes.
    :raises MetadataError: corrupt split metadata, a missing
        out-of-band model, or ``max_parallelism < 1``.
    :raises DecodeError: bitstream corruption.
    """
    parsed = parse_container(blob, provider=provider)
    decoder = RecoilDecoder(parsed.provider, lanes=parsed.lanes)
    result = decoder.decode(
        parsed.words(blob),
        parsed.final_states,
        parsed.metadata,
        max_threads=max_parallelism,
    )
    return result.symbols


def recoil_shrink(blob: bytes, target_threads: int) -> bytes:
    """Combine splits in a container without re-encoding (§3.3).

    :returns: container bytes with metadata for ``target_threads``
        decoder threads (payload byte-identical to the input's).
    :raises ContainerError: malformed container bytes.
    :raises MetadataError: ``target_threads < 1``.
    """
    return shrink_container(blob, target_threads)


def recoil_service(
    assets: dict[str, np.ndarray] | None = None,
    num_splits: int = 1024,
    config=None,
):
    """Build a batched content-delivery service (:mod:`repro.serve`).

    The system-level counterpart of the three verbs above: assets are
    compressed once at ``num_splits`` parallelism, ``serve`` answers
    per-client shrinks from an LRU cache, and concurrent
    ``decompress`` requests are fused into single wide-lane kernel
    dispatches.  ``config`` is a
    :class:`repro.serve.ServiceConfig`; the returned
    :class:`repro.serve.RecoilService` is a context manager — close it
    to stop the dispatcher thread.

    :param assets: name → symbol array, each encoded on ingest.
    :param num_splits: encode-side parallelism for every asset.
    :param config: service tunables (batch window, admission bound,
        ``decode_backend``/``decode_workers`` fan-out knobs).
    :returns: a running :class:`repro.serve.RecoilService`.
    :raises EncodeError: an asset failed to encode (the service is
        closed before re-raising).
    :raises ServeError: invalid ``config`` values.
    """
    from repro.serve import RecoilService

    service = RecoilService(config=config)
    try:
        for name, data in (assets or {}).items():
            service.put_asset(name, data, num_splits=num_splits)
    except BaseException:
        service.close()
        raise
    return service
