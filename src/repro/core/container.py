"""Recoil container format.

A self-contained byte layout for an encoded stream::

    magic   b"RCL1"
    u8      version (=1)
    u8      flags   (bit 0: static model embedded)
    u8      quant_bits
    uvarint lanes
    uvarint num_symbols
    uvarint num_words
    u32 LE  final_states        (lanes entries)
    [model blob]                (when flag bit 0; SymbolModel format)
    metadata section            (§4.3 format, self-delimiting)
    payload                     (num_words x u16 LE)

The *payload never moves*: server-side shrinking
(:func:`shrink_container`) re-serializes only the metadata section and
splices the identical payload back — the real-time, no-re-encoding
operation of paper §3.3.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.bitio.varint import decode_uvarint, encode_uvarint
from repro.core.encoder import RecoilEncoded
from repro.core.metadata import RecoilMetadata
from repro.core.serialization import parse_metadata, serialize_metadata
from repro.errors import ContainerError, MetadataError, ModelError
from repro.rans.adaptive import AdaptiveModelProvider, StaticModelProvider
from repro.rans.model import SymbolModel

MAGIC = b"RCL1"
VERSION = 1
FLAG_STATIC_MODEL = 0x01


@dataclass
class ParsedContainer:
    """Decoded view of a container's sections."""

    quant_bits: int
    lanes: int
    num_symbols: int
    num_words: int
    final_states: np.ndarray
    metadata: RecoilMetadata
    provider: AdaptiveModelProvider | None
    payload_offset: int  # byte offset of the word payload
    header_bytes: int  # everything before the payload

    def words(self, blob: bytes) -> np.ndarray:
        return np.frombuffer(
            blob,
            dtype="<u2",
            count=self.num_words,
            offset=self.payload_offset,
        )


def build_container(
    encoded: RecoilEncoded,
    provider: AdaptiveModelProvider | None = None,
    embed_model: bool = True,
) -> bytes:
    """Assemble the container bytes for an encoded stream.

    ``provider`` must be given when ``embed_model`` is set; adaptive
    providers are never embedded (their side information travels in
    the enclosing format, e.g. an image codec's hyperprior) — pass
    ``embed_model=False`` for those.
    """
    flags = 0
    model_blob = b""
    if embed_model:
        if provider is None or not provider.is_static:
            raise ContainerError(
                "embed_model requires a static provider; adaptive "
                "model banks travel out of band"
            )
        flags |= FLAG_STATIC_MODEL
        model_blob = provider.models[0].to_bytes()

    out = bytearray()
    out += MAGIC
    out.append(VERSION)
    out.append(flags)
    out.append(encoded.quant_bits)
    out += encode_uvarint(encoded.lanes)
    out += encode_uvarint(encoded.num_symbols)
    out += encode_uvarint(len(encoded.words))
    out += np.asarray(encoded.final_states, dtype="<u4").tobytes()
    out += model_blob
    out += serialize_metadata(encoded.metadata)
    out += np.asarray(encoded.words, dtype="<u2").tobytes()
    return bytes(out)


def parse_container(
    blob: bytes,
    provider: AdaptiveModelProvider | None = None,
    require_model: bool = True,
) -> ParsedContainer:
    """Parse a container; builds a static provider from the embedded
    model when present, else requires ``provider`` (unless
    ``require_model`` is false — metadata-only operations like
    :func:`shrink_container` need no model).

    The error surface is strict: any malformed input — truncation, bit
    flips, nonsense length fields — raises :class:`ContainerError` or
    :class:`MetadataError`, never a builtin like ``IndexError`` or
    ``struct.error``.  Ingest paths (``AssetStore.put_container``,
    ``recoil info``) rely on this to treat untrusted bytes uniformly.
    """
    try:
        return _parse_container(blob, provider, require_model)
    except (ContainerError, MetadataError):
        raise
    except ModelError as exc:
        raise ContainerError(f"embedded model invalid: {exc}") from exc
    except (
        ValueError,
        IndexError,
        KeyError,
        OverflowError,
        MemoryError,
        struct.error,
    ) as exc:
        raise ContainerError(
            f"malformed container ({type(exc).__name__}: {exc})"
        ) from exc


def _parse_container(
    blob: bytes,
    provider: AdaptiveModelProvider | None,
    require_model: bool,
) -> ParsedContainer:
    if blob[:4] != MAGIC:
        raise ContainerError(f"bad magic {blob[:4]!r}")
    if len(blob) < 7:
        raise ContainerError("truncated header")
    version = blob[4]
    if version != VERSION:
        raise ContainerError(f"unsupported container version {version}")
    flags = blob[5]
    quant_bits = blob[6]
    pos = 7
    lanes, pos = decode_uvarint(blob, pos)
    num_symbols, pos = decode_uvarint(blob, pos)
    num_words, pos = decode_uvarint(blob, pos)
    if pos + 4 * lanes > len(blob):
        raise ContainerError("truncated final states")
    final_states = np.frombuffer(
        blob, dtype="<u4", count=lanes, offset=pos
    ).astype(np.uint64)
    pos += 4 * lanes

    if flags & FLAG_STATIC_MODEL:
        model, pos = SymbolModel.from_bytes(blob, pos)
        if model.quant_bits != quant_bits:
            raise ContainerError(
                "embedded model quantization disagrees with header"
            )
        provider = StaticModelProvider(model)
    elif provider is None and require_model:
        raise ContainerError(
            "container has no embedded model; pass the adaptive "
            "provider used for encoding"
        )

    metadata, pos = parse_metadata(blob, pos)
    if (
        metadata.num_symbols != num_symbols
        or metadata.num_words != num_words
        or metadata.lanes != lanes
    ):
        raise ContainerError("metadata geometry disagrees with header")
    if pos + 2 * num_words > len(blob):
        raise ContainerError("truncated payload")
    return ParsedContainer(
        quant_bits=quant_bits,
        lanes=lanes,
        num_symbols=num_symbols,
        num_words=num_words,
        final_states=final_states,
        metadata=metadata,
        provider=provider,
        payload_offset=pos,
        header_bytes=pos,
    )


def shrink_container(blob: bytes, target_threads: int) -> bytes:
    """Server-side real-time metadata shrinking (§3.3).

    Combines splits down to ``target_threads`` by dropping metadata
    entries; the payload (and embedded model, if any) are spliced
    through untouched.  This is the operation a content server runs
    per request, keyed by the client's advertised parallel capacity.
    """
    if target_threads < 1:
        raise MetadataError(
            f"target_threads must be >= 1, got {target_threads}"
        )
    parsed = parse_container(blob, require_model=False)
    combined = parsed.metadata.combine(target_threads)
    md_old = serialize_metadata(parsed.metadata)
    md_new = serialize_metadata(combined)
    # The metadata section sits immediately before the payload.
    md_start = parsed.payload_offset - len(md_old)
    return blob[:md_start] + md_new + blob[parsed.payload_offset :]
