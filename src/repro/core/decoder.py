"""The Recoil 3-phase parallel decoder (paper §4.1).

Builds one :class:`~repro.parallel.simd.ThreadTask` per split segment
from the metadata's thread plan and executes them on the batched lane
engine.  The three phases of §4.1 map onto the task fields:

- **Synchronization Phase** (§4.1.1): the walk between the split index
  and the sync-complete index, where lanes activate one by one at
  their recorded renormalization points.  Output in this range is not
  committed (``commit_hi = C - 1``).
- **Decoding Phase** (§4.1.2): the committed stretch down to the
  previous split's boundary.
- **Cross-Boundary Decoding Phase** (§4.1.3): the walk continues past
  the previous split's position through *its* synchronization section,
  committing those symbols, and terminates at its sync-complete point.

Because all three phases are just index ranges of one uniform walk,
the engine needs no per-phase logic — only the commit mask changes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.metadata import RecoilMetadata
from repro.errors import DecodeError
from repro.parallel.simd import EngineStats, LaneEngine, ThreadTask
from repro.parallel.workload import WorkloadSummary, summarize_tasks
from repro.rans.adaptive import AdaptiveModelProvider, StaticModelProvider
from repro.rans.constants import DEFAULT_LANES
from repro.rans.model import SymbolModel


@dataclass
class RecoilDecodeResult:
    """Decoded output plus measured work (feeds Figure 7)."""

    symbols: np.ndarray
    engine_stats: EngineStats
    workload: WorkloadSummary


def build_thread_tasks(
    metadata: RecoilMetadata,
    num_words: int,
    final_states: np.ndarray,
) -> list[ThreadTask]:
    """Translate a metadata thread plan into engine tasks."""
    tasks: list[ThreadTask] = []
    for item in metadata.thread_plan():
        entry = item["entry"]
        if entry is None:
            # The final segment decodes from the transmitted final
            # states, fully initialized (no synchronization needed).
            tasks.append(
                ThreadTask(
                    start_pos=num_words - 1,
                    walk_hi=item["walk_hi"],
                    walk_lo=item["walk_lo"],
                    commit_hi=item["commit_hi"],
                    commit_lo=item["commit_lo"],
                    initial_states=np.asarray(
                        final_states, dtype=np.uint64
                    ),
                    check_terminal=item["walk_lo"] == 1,
                    terminal_pos=-1,
                )
            )
        else:
            activations = [
                (int(idx), lane, int(state))
                for lane, (idx, state) in enumerate(
                    zip(entry.lane_indices, entry.lane_states)
                )
            ]
            tasks.append(
                ThreadTask(
                    start_pos=entry.word_offset,
                    walk_hi=item["walk_hi"],
                    walk_lo=item["walk_lo"],
                    commit_hi=item["commit_hi"],
                    commit_lo=item["commit_lo"],
                    activations=activations,
                    check_terminal=item["walk_lo"] == 1,
                    terminal_pos=-1,
                )
            )
    return tasks


class RecoilDecoder:
    """Massively parallel decoder for Recoil streams.

    A decoder instance owns one lane engine whose scratch buffers are
    reused across :meth:`decode` calls (DESIGN.md §9) — cheap repeated
    decodes, but an instance must not be shared between concurrently
    decoding threads; give each thread its own decoder.
    """

    def __init__(
        self,
        provider: AdaptiveModelProvider | SymbolModel,
        lanes: int = DEFAULT_LANES,
    ) -> None:
        if isinstance(provider, SymbolModel):
            provider = StaticModelProvider(provider)
        self.provider = provider
        self.lanes = lanes
        # One engine for the decoder's lifetime: its scratch arena is
        # reused across decode calls (DESIGN.md §9).
        self._engine = LaneEngine(provider, lanes)
        # Built on first ``engine="compiled"`` decode (DESIGN.md §19).
        self._compiled_engine: LaneEngine | None = None

    def _out_dtype(self):
        return self.provider.out_dtype

    def decode(
        self,
        words: np.ndarray,
        final_states: np.ndarray,
        metadata: RecoilMetadata,
        max_threads: int | None = None,
        engine: str = "fused",
    ) -> RecoilDecodeResult:
        """Decode using every split in ``metadata``.

        ``max_threads`` optionally combines splits first (client-side
        equivalent of the server's shrinking — useful when the decoder
        received more metadata than it has cores).  ``engine`` selects
        the fused wide-lane kernel (default), the ``"compiled"``
        variant of its steady-state loop (DESIGN.md §19 — falls back
        to numpy without a toolchain), or the ``"reference"`` masked
        loop for differential testing.
        """
        if metadata.lanes != self.lanes:
            raise DecodeError(
                f"metadata is for {metadata.lanes}-way interleaving, "
                f"decoder configured for {self.lanes}"
            )
        if engine not in ("fused", "reference", "compiled"):
            raise DecodeError(f"unknown engine {engine!r}")
        if max_threads is not None:
            metadata = metadata.combine(max_threads)
        tasks = build_thread_tasks(metadata, len(words), final_states)
        out = np.empty(metadata.num_symbols, dtype=self._out_dtype())
        if engine == "compiled":
            if self._compiled_engine is None:
                self._compiled_engine = LaneEngine(
                    self.provider, self.lanes, kernel="compiled"
                )
            run = self._compiled_engine.run
        else:
            run = (
                self._engine.run
                if engine == "fused"
                else self._engine.run_reference
            )
        stats = run(words, tasks, out)
        return RecoilDecodeResult(
            symbols=out,
            engine_stats=stats,
            workload=summarize_tasks(tasks),
        )
