"""Split-point selection (paper §4.1 backward scan + §4.2 heuristic).

Given the renormalization-event log of an encode pass, pick split
events so that per-thread workloads are balanced and Synchronization
Sections stay short, optimizing Definition 4.1's

    H(t, ts) = |t - T| + |t - ts - T|,      T = ceil(N / M)

where ``t`` counts the symbols between the previous and current split
points (including the sync section) and ``ts`` the sync section alone.

Terminology bridge to the implementation: an encoder event recorded at
A-index ``i`` (the symbol about to be encoded when the lane
renormalized) initializes its lane at metadata index ``m = i - K`` —
the lane reads the event's word and then decodes symbol ``m`` (see
DESIGN.md §7).  All indices below are metadata (``m``) indices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.metadata import RecoilMetadata, SplitEntry
from repro.errors import MetadataError
from repro.rans.interleaved import RenormEvents


@dataclass
class SplitterStats:
    """Diagnostics from a selection pass."""

    requested_threads: int
    achieved_threads: int
    total_sync_symbols: int
    mean_heuristic_cost: float


class SplitSelector:
    """Selects split events for a recorded encode pass.

    Parameters
    ----------
    events:
        The encoder's renormalization log (one entry per stream word).
    lanes:
        Interleave width ``K``.
    num_symbols:
        Sequence length ``N``.
    window:
        How many candidate events to examine around each ideal split
        position (the heuristic's search neighbourhood).
    """

    def __init__(
        self,
        events: RenormEvents,
        lanes: int,
        num_symbols: int,
        window: int = 48,
    ) -> None:
        self.events = events
        self.lanes = lanes
        self.num_symbols = num_symbols
        self.window = window
        # Per-lane event positions (indices into the event log), used
        # for the vectorized backward scan.
        ev_lane = np.asarray(events.lane)
        self._lane_positions = [
            np.flatnonzero(ev_lane == j) for j in range(lanes)
        ]
        self._ev_sym = np.asarray(events.symbol_index, dtype=np.int64)

    # ------------------------------------------------------------------

    def _scan_candidates(
        self, cand: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Backward scan (§4.1) for a batch of candidate event ids.

        For every candidate event and every lane, find the lane's most
        recent event at or before the candidate.  Returns
        ``(lane_event_ids, lane_indices, valid)`` where
        ``lane_event_ids`` is ``(C, K)`` int64 (event-log ids, -1 when
        the lane has no prior event), ``lane_indices`` the metadata
        init indices ``m = A-index - K``, and ``valid`` marks
        candidates where every lane has a usable event (``m >= 1``).
        """
        K = self.lanes
        C = len(cand)
        lane_event_ids = np.full((C, K), -1, dtype=np.int64)
        for j in range(K):
            pos_j = self._lane_positions[j]
            if len(pos_j) == 0:
                continue
            # Last event of lane j with event id <= candidate id.
            k = np.searchsorted(pos_j, cand, side="right") - 1
            have = k >= 0
            lane_event_ids[have, j] = pos_j[k[have]]
        valid = (lane_event_ids >= 0).all(axis=1)
        lane_indices = np.full((C, K), 0, dtype=np.int64)
        ids_flat = lane_event_ids[valid]
        lane_indices[valid] = self._ev_sym[ids_flat] - K
        valid &= (lane_indices >= 1).all(axis=1)
        return lane_event_ids, lane_indices, valid

    def _entry_from_scan(
        self, cand_id: int, lane_event_ids: np.ndarray
    ) -> SplitEntry:
        """Materialize a :class:`SplitEntry` from one scan row."""
        states = np.asarray(self.events.state_after)[
            lane_event_ids
        ].astype(np.uint32)
        indices = self._ev_sym[lane_event_ids] - self.lanes
        return SplitEntry(
            word_offset=int(cand_id),
            lane_indices=indices,
            lane_states=states,
        )

    # ------------------------------------------------------------------

    def select(self, num_threads: int) -> tuple[RecoilMetadata, SplitterStats]:
        """Choose up to ``num_threads - 1`` split entries.

        Walks the ideal boundaries left to right; at each, evaluates
        ``window`` nearby candidate events with Definition 4.1 and
        keeps the cheapest valid one.  Returns possibly fewer entries
        than requested when the stream is too short or events too
        sparse — the metadata then simply supports fewer threads.
        """
        if num_threads < 1:
            raise MetadataError(f"num_threads must be >= 1, got {num_threads}")
        N = self.num_symbols
        E = len(self.events)
        entries: list[SplitEntry] = []
        costs: list[float] = []
        if num_threads == 1 or E == 0 or N <= self.lanes:
            md = RecoilMetadata(N, E, self.lanes, [])
            return md, SplitterStats(num_threads, 1, 0, 0.0)

        T = -(-N // num_threads)  # ceil: expected symbols per split
        # Metadata init index of each event (for searchsorted); events
        # are symbol-ordered so this array is strictly increasing.
        ev_m = self._ev_sym - self.lanes

        prev_S = 0
        for t in range(1, num_threads):
            ideal = t * T
            if ideal >= N:
                break
            center = int(np.searchsorted(ev_m, ideal))
            lo = max(0, center - self.window // 2)
            hi = min(E, lo + self.window)
            cand = np.arange(lo, hi)
            if len(cand) == 0:
                continue
            lane_ids, lane_idx, valid = self._scan_candidates(cand)
            S = lane_idx.max(axis=1)
            Cc = lane_idx.min(axis=1)
            # Reject overlaps with the previous split and non-advancing
            # candidates.
            valid &= (Cc > prev_S) & (S > prev_S) & (S < N)
            if not valid.any():
                continue
            t_sym = S - prev_S
            ts = S - Cc + 1
            cost = np.abs(t_sym - T) + np.abs(t_sym - ts - T)
            cost = np.where(valid, cost, np.iinfo(np.int64).max)
            best = int(np.argmin(cost))
            entries.append(self._entry_from_scan(int(cand[best]), lane_ids[best]))
            costs.append(float(cost[best]))
            prev_S = int(S[best])

        md = RecoilMetadata(N, E, self.lanes, entries)
        stats = SplitterStats(
            requested_threads=num_threads,
            achieved_threads=md.num_threads,
            total_sync_symbols=md.sync_overhead_symbols(),
            mean_heuristic_cost=float(np.mean(costs)) if costs else 0.0,
        )
        return md, stats
