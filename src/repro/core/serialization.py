"""Efficient metadata storage (paper §4.3, Tables 1–2).

Only differences from expectations are stored:

- the ``i``-th split's bitstream offset is expected at ``i * ceil(B/M)``;
- the ``i``-th split's anchor (max Symbol Group ID) is expected at
  ``i * ceil(G/M)`` where ``G = ceil(N/K)`` is the total group count;
- per-lane Symbol Group IDs are stored as non-negative differences
  from the split's anchor (dropping the sign bit, since the anchor is
  the maximum);
- intermediate states are stored as-is in 16 bits each (Lemma 3.1).

Difference series are bit-packed: a width field holding ``width - 1``
followed by fixed-width values (paper's
``max floor(log2(v_i + 1)) - 1`` scheme, with one bit used even for
all-zero series).  Deviation from the paper, documented in DESIGN.md:
we use a 5-bit width field everywhere (the paper uses 4 bits for the
group-ID series), buying robustness for one extra bit per series.

Signed series carry one leading flag bit: when 0, no per-element sign
bits follow (the common case of all-non-negative offsets diffs).
"""

from __future__ import annotations

import numpy as np

from repro.bitio import (
    BitReader,
    BitWriter,
    decode_uvarint,
    encode_uvarint,
    gather_bits,
)
from repro.core.metadata import RecoilMetadata, SplitEntry
from repro.errors import MetadataError

_WIDTH_FIELD_BITS = 5
_MAX_WIDTH = 1 << _WIDTH_FIELD_BITS  # widths 1..32


def _series_width(values: np.ndarray) -> int:
    """Bits needed per magnitude (>= 1 even for all-zero series)."""
    if len(values) == 0:
        return 1
    top = int(np.abs(values).max())
    return max(1, top.bit_length())


def write_unsigned_series(writer: BitWriter, values: np.ndarray) -> None:
    """Width field + fixed-width non-negative values."""
    values = np.asarray(values, dtype=np.int64)
    if np.any(values < 0):
        raise MetadataError("unsigned series contains negative values")
    width = _series_width(values)
    if width > _MAX_WIDTH:
        raise MetadataError(f"series value too large for {_MAX_WIDTH} bits")
    writer.write_bits(width - 1, _WIDTH_FIELD_BITS)
    writer.write_bits_array(values, width)


def read_unsigned_series(reader: BitReader, count: int) -> np.ndarray:
    width = reader.read_bits(_WIDTH_FIELD_BITS) + 1
    return reader.read_bits_array(count, width)


def write_signed_series(writer: BitWriter, values: np.ndarray) -> None:
    """Width field + sign-presence flag + values.

    When every value is non-negative the per-element sign bits are
    omitted entirely (flag bit 0).
    """
    values = np.asarray(values, dtype=np.int64)
    width = _series_width(values)
    if width > _MAX_WIDTH:
        raise MetadataError(f"series value too large for {_MAX_WIDTH} bits")
    has_neg = bool(np.any(values < 0))
    writer.write_bits(width - 1, _WIDTH_FIELD_BITS)
    writer.write_bit(1 if has_neg else 0)
    if has_neg:
        # sign bit + magnitude per element == one (width + 1)-bit field.
        combined = ((values < 0).astype(np.int64) << width) | np.abs(values)
        writer.write_bits_array(combined, width + 1)
    else:
        writer.write_bits_array(values, width)


def read_signed_series(reader: BitReader, count: int) -> np.ndarray:
    width = reader.read_bits(_WIDTH_FIELD_BITS) + 1
    has_neg = reader.read_bit()
    if not has_neg:
        return reader.read_bits_array(count, width)
    combined = reader.read_bits_array(count, width + 1)
    mag = combined & ((1 << width) - 1)
    return np.where(combined >> width, -mag, mag)


# ---------------------------------------------------------------------------


def serialize_metadata(md: RecoilMetadata) -> bytes:
    """Render :class:`RecoilMetadata` into the compact §4.3 format."""
    head = bytearray()
    head += encode_uvarint(md.lanes)
    head += encode_uvarint(md.num_symbols)
    head += encode_uvarint(md.num_words)
    head += encode_uvarint(len(md.entries))
    if not md.entries:
        return bytes(head)

    M = md.num_threads
    expected_off = -(-md.num_words // M)
    total_groups = -(-md.num_symbols // md.lanes)
    expected_grp = -(-total_groups // M)

    offsets = np.array([e.word_offset for e in md.entries], dtype=np.int64)
    anchors = np.array(
        [int(e.group_ids(md.lanes).max()) for e in md.entries],
        dtype=np.int64,
    )
    i = np.arange(1, len(md.entries) + 1, dtype=np.int64)
    off_diffs = offsets - i * expected_off
    grp_diffs = anchors - i * expected_grp

    w = BitWriter()
    write_signed_series(w, off_diffs)
    write_signed_series(w, grp_diffs)
    for e, anchor in zip(md.entries, anchors.tolist()):
        states = e.lane_states
        if np.any(states >= 1 << 16):
            raise MetadataError(
                "entry state exceeds 16 bits — Lemma 3.1 violated?"
            )
        w.write_bits_array(states, 16)
        lane_grp = e.group_ids(md.lanes)
        write_unsigned_series(w, anchor - lane_grp)
    return bytes(head) + w.to_bytes()


def parse_metadata(blob: bytes, offset: int = 0) -> tuple[RecoilMetadata, int]:
    """Inverse of :func:`serialize_metadata`.

    Returns ``(metadata, next_offset)`` where ``next_offset`` points
    just past the metadata section (byte-aligned).
    """
    lanes, pos = decode_uvarint(blob, offset)
    num_symbols, pos = decode_uvarint(blob, pos)
    num_words, pos = decode_uvarint(blob, pos)
    num_entries, pos = decode_uvarint(blob, pos)
    if num_entries == 0:
        return RecoilMetadata(num_symbols, num_words, lanes, []), pos
    # Every entry consumes at least one bit of the section; a count
    # beyond that is a corrupt length field, not a real container —
    # refuse before sizing arrays (or looping) on it.
    if num_entries > 8 * max(len(blob) - pos, 0):
        raise MetadataError(
            f"implausible metadata entry count {num_entries} for "
            f"{len(blob) - pos} remaining bytes"
        )

    M = num_entries + 1
    expected_off = -(-num_words // M)
    total_groups = -(-num_symbols // lanes)
    expected_grp = -(-total_groups // M)

    body = blob[pos:]
    r = BitReader(body)
    off_diffs = read_signed_series(r, num_entries)
    grp_diffs = read_signed_series(r, num_entries)
    i = np.arange(1, num_entries + 1, dtype=np.int64)
    offsets = off_diffs + i * expected_off
    anchors = grp_diffs + i * expected_grp

    # Entry records are [lanes x 16-bit states][5-bit width field]
    # [lanes x width-bit diffs].  Only the tiny width fields chain
    # record offsets sequentially; scan those with scalar reads, then
    # gather every record's state and diff payloads in two vectorized
    # passes (the PR 2 bulk-bit-I/O path) instead of per-entry reader
    # calls.
    base = r.bit_position
    total_bits = 8 * len(body)
    starts = np.empty(num_entries, dtype=np.int64)
    widths = np.empty(num_entries, dtype=np.int64)
    b = base
    states_bits = 16 * lanes
    for k in range(num_entries):
        wf = b + states_bits
        if wf + _WIDTH_FIELD_BITS > total_bits:
            raise MetadataError("metadata truncated inside entry records")
        byte = wf >> 3
        chunk = int.from_bytes(body[byte : byte + 2].ljust(2, b"\0"), "big")
        width = ((chunk >> (16 - (wf & 7) - _WIDTH_FIELD_BITS)) & 31) + 1
        starts[k] = b
        widths[k] = width
        b = wf + _WIDTH_FIELD_BITS + width * lanes
    if b > total_bits:
        raise MetadataError("metadata truncated inside entry records")

    # The gathers build bit windows over their whole buffer, and
    # ``body`` extends through the words payload — trim it to the
    # metadata extent (known once the width scan fixed ``b``).
    section = body[: (b + 7) // 8]
    lane_idx = np.arange(lanes, dtype=np.int64)
    state_pos = starts[:, None] + 16 * lane_idx
    states_all = gather_bits(section, state_pos, 16).astype(np.uint32)
    diff_pos = (
        starts[:, None]
        + states_bits
        + _WIDTH_FIELD_BITS
        + widths[:, None] * lane_idx
    )
    diffs_all = gather_bits(section, diff_pos, widths[:, None])
    group_ids_all = anchors[:, None] - diffs_all

    entries = [
        SplitEntry.from_group_ids(
            int(offsets[k]), group_ids_all[k], states_all[k]
        )
        for k in range(num_entries)
    ]
    consumed = (b + 7) // 8
    md = RecoilMetadata(num_symbols, num_words, lanes, entries)
    return md, pos + consumed


def metadata_size_bytes(md: RecoilMetadata) -> int:
    """Serialized size, for compression-rate accounting."""
    return len(serialize_metadata(md))
