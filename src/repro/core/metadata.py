"""Recoil split metadata (paper §3.3, §4.1, Tables 1–2).

A :class:`SplitEntry` carries everything one decoder thread needs to
start mid-stream:

- ``word_offset`` — the stream position of the split event's word; the
  thread's first renormalization read happens there, reading downward.
- per-lane ``lane_indices`` — the 1-based symbol index at which each
  interleaved lane initializes (the paper's "Symbol Indices" row of
  Table 2, recoverable from Symbol Group IDs).
- per-lane ``lane_states`` — the bounded post-renormalization states
  (< L, Lemma 3.1), stored in 16 bits each.

The *split index* ``S = max(lane_indices)`` is where the thread's walk
starts; the *sync-complete index* ``C = min(lane_indices)`` is where
all lanes are initialized.  The Synchronization Section is ``[C, S]``.

Decoder-adaptive scalability (§3.3) is :meth:`RecoilMetadata.combine`:
dropping entries merges splits, and nothing else changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import MetadataError


@dataclass(frozen=True)
class SplitEntry:
    """Metadata for one split point (one decoder thread boundary)."""

    word_offset: int
    lane_indices: np.ndarray  # int64, shape (K,), 1-based symbol indices
    lane_states: np.ndarray  # uint32, shape (K,); < 2**16 unless full

    def __post_init__(self) -> None:
        li = np.ascontiguousarray(self.lane_indices, dtype=np.int64)
        ls = np.ascontiguousarray(self.lane_states, dtype=np.uint32)
        if li.shape != ls.shape or li.ndim != 1:
            raise MetadataError("lane arrays must be 1-D and equal length")
        if np.any(li < 1):
            raise MetadataError("lane indices must be >= 1")
        object.__setattr__(self, "lane_indices", li)
        object.__setattr__(self, "lane_states", ls)

    @property
    def lanes(self) -> int:
        return len(self.lane_indices)

    @property
    def split_index(self) -> int:
        """``S``: the highest symbol index this entry initializes."""
        return int(self.lane_indices.max())

    @property
    def sync_complete_index(self) -> int:
        """``C``: index at which all lanes are initialized."""
        return int(self.lane_indices.min())

    @property
    def sync_section_length(self) -> int:
        """Symbols in the Synchronization Section ``[C, S]``."""
        return self.split_index - self.sync_complete_index + 1

    def group_ids(self, lanes: int) -> np.ndarray:
        """Symbol Group IDs (Table 2): 1-based group of each lane index.

        Lane ``j`` owns symbol indices congruent to ``j + 1`` mod ``K``,
        so ``index = (group - 1) * K + j + 1`` is exactly invertible.
        """
        j = np.arange(lanes)
        g, rem = np.divmod(self.lane_indices - j - 1, lanes)
        if np.any(rem != 0):
            raise MetadataError(
                "lane index does not belong to its lane (corrupt entry)"
            )
        return g + 1

    @classmethod
    def from_group_ids(
        cls,
        word_offset: int,
        group_ids: np.ndarray,
        lane_states: np.ndarray,
    ) -> "SplitEntry":
        """Inverse of :meth:`group_ids` (used by deserialization)."""
        group_ids = np.asarray(group_ids, dtype=np.int64)
        lanes = len(group_ids)
        indices = (group_ids - 1) * lanes + np.arange(lanes) + 1
        return cls(word_offset, indices, np.asarray(lane_states))


@dataclass
class RecoilMetadata:
    """Ordered collection of split entries plus stream geometry.

    ``num_threads = len(entries) + 1``: the final segment (the back of
    the stream) is decoded from the container's final states and needs
    no entry.
    """

    num_symbols: int
    num_words: int
    lanes: int
    entries: list[SplitEntry] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Check ordering/consistency invariants of the entries."""
        prev_S = 0
        prev_off = -1
        for k, e in enumerate(self.entries):
            if e.lanes != self.lanes:
                raise MetadataError(
                    f"entry {k} has {e.lanes} lanes, expected {self.lanes}"
                )
            if not 0 <= e.word_offset < max(self.num_words, 1):
                raise MetadataError(
                    f"entry {k} word offset {e.word_offset} outside "
                    f"stream of {self.num_words} words"
                )
            if e.word_offset <= prev_off:
                raise MetadataError("entries must be offset-ordered")
            if e.sync_complete_index <= prev_S:
                raise MetadataError(
                    f"entry {k}: sync section reaches into the previous "
                    f"split (C={e.sync_complete_index} <= S={prev_S})"
                )
            if e.split_index > self.num_symbols:
                raise MetadataError(
                    f"entry {k} split index {e.split_index} beyond "
                    f"sequence of {self.num_symbols} symbols"
                )
            prev_S = e.split_index
            prev_off = e.word_offset

    # ------------------------------------------------------------------

    @property
    def num_threads(self) -> int:
        return len(self.entries) + 1

    def thread_plan(self) -> list[dict]:
        """Per-thread walk/commit ranges (see DESIGN.md §7).

        Thread ``t`` (0-based, ascending symbol ranges) walks
        ``[C_{t-1}, S_t]`` and commits ``[C_{t-1}, C_t - 1]``; the final
        thread walks ``[C_T, N]`` and commits the same.
        """
        plan: list[dict] = []
        prev_c = 1
        for e in self.entries:
            plan.append(
                {
                    "walk_hi": e.split_index,
                    "walk_lo": prev_c,
                    "commit_hi": e.sync_complete_index - 1,
                    "commit_lo": prev_c,
                    "entry": e,
                }
            )
            prev_c = e.sync_complete_index
        plan.append(
            {
                "walk_hi": self.num_symbols,
                "walk_lo": prev_c,
                "commit_hi": self.num_symbols,
                "commit_lo": prev_c,
                "entry": None,
            }
        )
        return plan

    def sync_overhead_symbols(self) -> int:
        """Total symbols decoded twice (all Synchronization Sections)."""
        return sum(e.sync_section_length for e in self.entries)

    # ------------------------------------------------------------------
    # Decoder-adaptive scalability (§3.3): combining splits.
    # ------------------------------------------------------------------

    def combine(self, target_threads: int) -> "RecoilMetadata":
        """Shrink to at most ``target_threads`` by dropping entries.

        This is the server-side real-time operation: no re-encoding,
        no bitstream change — entries are subsampled so the surviving
        splits cover near-equal symbol counts (paper: "sending every
        other ``N/M``-th split metadata is good enough").
        """
        if target_threads < 1:
            raise MetadataError(
                f"target_threads must be >= 1, got {target_threads}"
            )
        keep = target_threads - 1
        if keep >= len(self.entries):
            return RecoilMetadata(
                self.num_symbols, self.num_words, self.lanes,
                list(self.entries),
            )
        if keep == 0:
            return RecoilMetadata(
                self.num_symbols, self.num_words, self.lanes, []
            )
        # Pick entries whose split indices best match the ideal
        # equal-symbol boundaries k * N / target.
        splits = np.array([e.split_index for e in self.entries])
        targets = (
            np.arange(1, target_threads)
            * (self.num_symbols / target_threads)
        )
        chosen: list[int] = []
        last = -1
        for tgt in targets:
            k = int(np.searchsorted(splits, tgt))
            best = None
            for cand in (k - 1, k):
                if cand <= last or cand < 0 or cand >= len(splits):
                    continue
                if best is None or abs(splits[cand] - tgt) < abs(
                    splits[best] - tgt
                ):
                    best = cand
            if best is None:
                # All nearby entries already taken; take the next free.
                nxt = last + 1
                if nxt >= len(splits):
                    break
                best = nxt
            chosen.append(best)
            last = best
        return RecoilMetadata(
            self.num_symbols,
            self.num_words,
            self.lanes,
            [self.entries[i] for i in chosen],
        )
