"""Package version, kept in sync with ``pyproject.toml``."""

__version__ = "1.0.0"
