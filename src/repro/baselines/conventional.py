"""The Conventional "partitioning symbols" baseline (paper §2.3).

The input symbol sequence is split into ``P`` near-equal contiguous
sub-sequences *before* encoding; each is coded by an independent
32-way interleaved rANS codec.  The bitstreams are merged by
concatenation with an offset table.  Per-partition overhead:

- 32 final states x 32 bits  (128 bytes),
- one 32-bit word-offset table entry (4 bytes).

This is the irreversibility the paper attacks: ``P`` is frozen at
encode time, partitions cannot be combined, and a low-parallelism
decoder still downloads all ``P`` partitions' overhead.

Container layout::

    magic   b"RCVC"
    u8      version (=1)
    u8      flags   (bit 0: static model embedded)
    u8      quant_bits
    uvarint lanes
    uvarint num_symbols
    uvarint num_partitions
    u32 LE  word offset table   (P entries: end offset of each region)
    u32 LE  final states        (P x lanes entries)
    [model blob]
    payload (all partitions' words, concatenated, u16 LE)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bitio.varint import decode_uvarint, encode_uvarint
from repro.errors import ContainerError, EncodeError
from repro.parallel.simd import EngineStats, LaneEngine, ThreadTask
from repro.parallel.workload import WorkloadSummary, summarize_tasks
from repro.rans.adaptive import (
    AdaptiveModelProvider,
    IndexedModelProvider,
    StaticModelProvider,
)
from repro.rans.constants import DEFAULT_LANES
from repro.rans.interleaved import InterleavedEncoder
from repro.rans.model import SymbolModel

MAGIC = b"RCVC"
VERSION = 1
FLAG_STATIC_MODEL = 0x01


def partition_bounds(num_symbols: int, partitions: int) -> list[tuple[int, int]]:
    """Near-equal contiguous [start, end) 0-based partition bounds."""
    if partitions < 1:
        raise EncodeError(f"partitions must be >= 1, got {partitions}")
    size = -(-num_symbols // partitions)
    bounds = []
    start = 0
    while start < num_symbols:
        end = min(start + size, num_symbols)
        bounds.append((start, end))
        start = end
    return bounds or [(0, 0)]


def _slice_provider(
    provider: AdaptiveModelProvider, start: int, end: int
) -> AdaptiveModelProvider:
    """Provider for a partition's local index space (1-based).

    Only the reference (per-partition loop) encode path needs this;
    the fused kernel resolves adaptive models through each task's
    ``start_index`` directly.
    """
    if provider.is_static:
        return provider
    ids = provider.model_ids_for_range(start + 1, end + 1)
    return IndexedModelProvider(provider.models, ids)


@dataclass
class ConventionalEncoded:
    """All partitions of one conventional encode."""

    words: np.ndarray  # concatenated uint16 payload
    word_offsets: np.ndarray  # int64 (P,): end offset of each region
    final_states: np.ndarray  # uint64 (P, lanes)
    bounds: list[tuple[int, int]]
    num_symbols: int
    lanes: int
    quant_bits: int

    @property
    def num_partitions(self) -> int:
        return len(self.bounds)

    @property
    def payload_bytes(self) -> int:
        return 2 * len(self.words)

    @property
    def per_partition_overhead_bytes(self) -> int:
        """States + offset entry, per partition."""
        return 4 * self.lanes + 4


class ConventionalCodec:
    """Encoder/decoder for the partitioning-symbols baseline.

    A codec instance reuses one lane engine (and scratch arena) across
    :meth:`decode` calls, so it must not be shared between
    concurrently decoding threads (DESIGN.md §9).
    """

    def __init__(
        self,
        provider: AdaptiveModelProvider | SymbolModel,
        lanes: int = DEFAULT_LANES,
    ) -> None:
        if isinstance(provider, SymbolModel):
            provider = StaticModelProvider(provider)
        self.provider = provider
        self.lanes = lanes
        # Reused across decode calls so the fused kernel's scratch
        # arena amortizes (DESIGN.md §9).
        self._engine = LaneEngine(provider, lanes)
        self._encode_arena = None  # fused encode scratch, lazy

    # -- encoding -------------------------------------------------------

    def encode(
        self, data: np.ndarray, partitions: int
    ) -> ConventionalEncoded:
        """Encode all partitions in one fused multi-task kernel call.

        Partitions are independent interleaved coders, so their lane
        states advance as a single ``(P * lanes,)``-wide vector — the
        encode-side twin of the batched decode, and the path where the
        fused kernel's width actually scales (a lone stream is
        sequentially dependent group-to-group).  Bit-identical to
        encoding each partition with the reference loop.
        """
        from repro.parallel.fused_encode import EncodeTask, fused_encode_run

        data = np.ascontiguousarray(data)
        bounds = partition_bounds(len(data), partitions)
        tasks = [
            EncodeTask(data[start:end], start_index=start + 1)
            for start, end in bounds
        ]
        if self._encode_arena is None:
            from repro.parallel.buffers import ScratchArena

            self._encode_arena = ScratchArena()
        outs = fused_encode_run(
            self.provider, self.lanes, tasks, self._encode_arena
        )
        finals = np.empty((len(bounds), self.lanes), dtype=np.uint64)
        offsets = np.empty(len(bounds), dtype=np.int64)
        total = 0
        for k, out in enumerate(outs):
            finals[k] = out.final_states
            total += len(out.words)
            offsets[k] = total
        words = (
            np.concatenate([o.words for o in outs])
            if outs
            else np.empty(0, dtype=np.uint16)
        )
        return ConventionalEncoded(
            words=words,
            word_offsets=offsets,
            final_states=finals,
            bounds=bounds,
            num_symbols=len(data),
            lanes=self.lanes,
            quant_bits=self.provider.quant_bits,
        )

    def encode_reference(
        self, data: np.ndarray, partitions: int
    ) -> ConventionalEncoded:
        """Per-partition reference-loop encode (differential baseline)."""
        data = np.ascontiguousarray(data)
        bounds = partition_bounds(len(data), partitions)
        word_chunks: list[np.ndarray] = []
        finals = np.empty((len(bounds), self.lanes), dtype=np.uint64)
        offsets = np.empty(len(bounds), dtype=np.int64)
        total = 0
        for k, (start, end) in enumerate(bounds):
            sub_provider = _slice_provider(self.provider, start, end)
            enc = InterleavedEncoder(
                sub_provider, self.lanes
            ).encode_reference(data[start:end])
            word_chunks.append(enc.words)
            finals[k] = enc.final_states
            total += len(enc.words)
            offsets[k] = total
        words = (
            np.concatenate(word_chunks)
            if word_chunks
            else np.empty(0, dtype=np.uint16)
        )
        return ConventionalEncoded(
            words=words,
            word_offsets=offsets,
            final_states=finals,
            bounds=bounds,
            num_symbols=len(data),
            lanes=self.lanes,
            quant_bits=self.provider.quant_bits,
        )

    def compress(self, data: np.ndarray, partitions: int) -> bytes:
        return self.build_container(self.encode(data, partitions))

    # -- decoding -------------------------------------------------------

    def build_tasks(self, encoded: ConventionalEncoded) -> list[ThreadTask]:
        """One engine task per partition (all lanes live from start)."""
        tasks = []
        region_start = 0
        for k, (start, end) in enumerate(encoded.bounds):
            n_local = end - start
            region_end = int(encoded.word_offsets[k])
            tasks.append(
                ThreadTask(
                    start_pos=region_end - 1,
                    walk_hi=n_local,
                    walk_lo=1,
                    commit_hi=n_local,
                    commit_lo=1,
                    global_offset=start,
                    initial_states=encoded.final_states[k],
                    check_terminal=True,
                    terminal_pos=region_start - 1,
                )
            )
            region_start = region_end
        return tasks

    def decode(
        self, encoded: ConventionalEncoded
    ) -> tuple[np.ndarray, EngineStats, WorkloadSummary]:
        """Decode all partitions in one batched engine run."""
        tasks = self.build_tasks(encoded)
        out = np.empty(encoded.num_symbols, dtype=self.provider.out_dtype)
        stats = self._engine.run(encoded.words, tasks, out)
        return out, stats, summarize_tasks(tasks)

    # -- container ------------------------------------------------------

    def build_container(self, encoded: ConventionalEncoded) -> bytes:
        out = bytearray()
        out += MAGIC
        out.append(VERSION)
        flags = FLAG_STATIC_MODEL if self.provider.is_static else 0
        out.append(flags)
        out.append(encoded.quant_bits)
        out += encode_uvarint(encoded.lanes)
        out += encode_uvarint(encoded.num_symbols)
        out += encode_uvarint(encoded.num_partitions)
        out += encoded.word_offsets.astype("<u4").tobytes()
        out += encoded.final_states.astype("<u4").tobytes()
        if self.provider.is_static:
            out += self.provider.models[0].to_bytes()
        out += np.asarray(encoded.words, dtype="<u2").tobytes()
        return bytes(out)

    def parse_container(self, blob: bytes) -> ConventionalEncoded:
        if blob[:4] != MAGIC:
            raise ContainerError(f"bad magic {blob[:4]!r}")
        if blob[4] != VERSION:
            raise ContainerError(f"unsupported version {blob[4]}")
        flags = blob[5]
        quant_bits = blob[6]
        pos = 7
        lanes, pos = decode_uvarint(blob, pos)
        num_symbols, pos = decode_uvarint(blob, pos)
        partitions, pos = decode_uvarint(blob, pos)
        offsets = np.frombuffer(
            blob, dtype="<u4", count=partitions, offset=pos
        ).astype(np.int64)
        pos += 4 * partitions
        finals = (
            np.frombuffer(
                blob, dtype="<u4", count=partitions * lanes, offset=pos
            )
            .astype(np.uint64)
            .reshape(partitions, lanes)
        )
        pos += 4 * partitions * lanes
        if flags & FLAG_STATIC_MODEL:
            model, pos = SymbolModel.from_bytes(blob, pos)
            if not self.provider.is_static or model != self.provider.models[0]:
                raise ContainerError(
                    "embedded model disagrees with codec provider"
                )
        num_words = int(offsets[-1]) if partitions else 0
        words = np.frombuffer(blob, dtype="<u2", count=num_words, offset=pos)
        return ConventionalEncoded(
            words=words,
            word_offsets=offsets,
            final_states=finals,
            bounds=partition_bounds(num_symbols, partitions),
            num_symbols=num_symbols,
            lanes=lanes,
            quant_bits=quant_bits,
        )

    def decompress(self, blob: bytes) -> np.ndarray:
        return self.decode(self.parse_container(blob))[0]
