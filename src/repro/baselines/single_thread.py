"""Baseline (A): Single-Thread 32-way interleaved rANS.

Exactly the Conventional codec with one partition — matching the
paper, where the Single-Thread baseline is the standard 32-way
interleaved coder and serves as the compression-rate reference
(variation (a), Table 4).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.conventional import ConventionalCodec
from repro.rans.adaptive import AdaptiveModelProvider
from repro.rans.constants import DEFAULT_LANES
from repro.rans.interleaved import InterleavedDecoder
from repro.rans.model import SymbolModel


class SingleThreadCodec(ConventionalCodec):
    """One partition, serial decode; the compression-rate baseline."""

    def __init__(
        self,
        provider: AdaptiveModelProvider | SymbolModel,
        lanes: int = DEFAULT_LANES,
    ) -> None:
        super().__init__(provider, lanes)

    def compress(self, data: np.ndarray, partitions: int = 1) -> bytes:
        if partitions != 1:
            raise ValueError("SingleThreadCodec always uses one partition")
        return super().compress(data, 1)

    def decompress_serial(self, blob: bytes) -> np.ndarray:
        """Decode with the plain serial interleaved decoder (the
        paper's Single-Thread timing path, no task batching)."""
        encoded = self.parse_container(blob)
        dec = InterleavedDecoder(self.provider, self.lanes)
        return dec.decode(
            encoded.words, encoded.final_states[0], encoded.num_symbols
        )
