"""Baseline codecs from the paper's evaluation (§5.1).

- (A) **Single-Thread**: one 32-way interleaved rANS stream, decoded
  serially (:mod:`repro.baselines.single_thread`).
- (B) **Conventional**: the "partitioning symbols" approach of §2.3 —
  the input is split into P independent sub-sequences, each with its
  own interleaved codec, merged by concatenation plus an offset table
  (DietGPU-style) (:mod:`repro.baselines.conventional`).
- (C) **multians** lives in :mod:`repro.tans.multians` (it is built on
  the tANS substrate).

As in the paper, (A) and (B) are built from the same building blocks
as Recoil so comparisons isolate the algorithmic differences.
"""

from repro.baselines.conventional import (
    ConventionalCodec,
    ConventionalEncoded,
)
from repro.baselines.single_thread import SingleThreadCodec

__all__ = [
    "ConventionalCodec",
    "ConventionalEncoded",
    "SingleThreadCodec",
]
