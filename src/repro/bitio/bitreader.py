"""MSB-first bit reader, the inverse of :class:`repro.bitio.BitWriter`."""

from __future__ import annotations

import numpy as np

from repro.errors import DecodeError


def gather_bits(
    data: bytes | np.ndarray,
    positions: np.ndarray,
    widths: int | np.ndarray,
) -> np.ndarray:
    """Vectorized fixed-width reads at arbitrary bit positions.

    The positional cousin of :meth:`BitReader.read_bits_array`: where
    the reader unpacks *consecutive* equal-width fields, this gathers
    a ``widths``-bit big-endian field starting at every (absolute) bit
    offset in ``positions`` — the access pattern of record layouts
    whose field offsets are computed up front.  ``positions`` and
    ``widths`` broadcast against each other; widths up to 32 are
    supported (7 skew bits + 32 payload bits fit the 40-bit windows
    built per byte offset).  Returns int64 values in the broadcast
    shape.
    """
    buf = np.frombuffer(bytes(data), dtype=np.uint8) if isinstance(
        data, (bytes, bytearray, memoryview)
    ) else np.asarray(data, dtype=np.uint8)
    positions = np.asarray(positions, dtype=np.int64)
    widths = np.asarray(widths, dtype=np.int64)
    if positions.size == 0:
        return np.zeros(
            np.broadcast_shapes(positions.shape, widths.shape),
            dtype=np.int64,
        )
    if widths.min() < 0 or widths.max() > 32:
        raise ValueError("gather widths must be in [0, 32]")
    if positions.min() < 0 or int((positions + widths).max()) > 8 * len(buf):
        raise DecodeError(
            "bit gather out of range: field extends past the buffer"
        )
    padded = np.zeros(len(buf) + 5, dtype=np.int64)
    padded[: len(buf)] = buf
    win40 = (
        (padded[:-4] << np.int64(32))
        | (padded[1:-3] << np.int64(24))
        | (padded[2:-2] << np.int64(16))
        | (padded[3:-1] << np.int64(8))
        | padded[4:]
    )
    sh = 40 - (positions & 7) - widths
    return (win40[positions >> 3] >> sh) & ((np.int64(1) << widths) - 1)


class BitReader:
    """Reads bits MSB-first from a ``bytes``-like object.

    Reading past the end raises :class:`repro.errors.DecodeError`
    rather than silently returning zeros, so corruption is detected at
    the earliest possible point.
    """

    __slots__ = ("_data", "_pos")

    def __init__(self, data: bytes, start_bit: int = 0) -> None:
        self._data = bytes(data)
        if start_bit < 0 or start_bit > 8 * len(self._data):
            raise ValueError(f"start_bit {start_bit} out of range")
        self._pos = start_bit  # absolute bit position

    @property
    def bit_position(self) -> int:
        """Current absolute bit offset from the start of the buffer."""
        return self._pos

    @property
    def bits_remaining(self) -> int:
        return 8 * len(self._data) - self._pos

    def read_bit(self) -> int:
        if self._pos >= 8 * len(self._data):
            raise DecodeError("bit reader exhausted")
        byte = self._data[self._pos >> 3]
        bit = (byte >> (7 - (self._pos & 7))) & 1
        self._pos += 1
        return bit

    def read_bits(self, width: int) -> int:
        """Read ``width`` bits as an unsigned integer (MSB first).

        ``width == 0`` is allowed and returns 0 without consuming input.
        """
        if width < 0:
            raise ValueError(f"width must be >= 0, got {width}")
        if width == 0:
            return 0
        if width > self.bits_remaining:
            raise DecodeError(
                f"bit reader exhausted: need {width} bits, "
                f"have {self.bits_remaining}"
            )
        pos = self._pos
        end = pos + width
        first_byte = pos >> 3
        last_byte = (end - 1) >> 3
        chunk = int.from_bytes(self._data[first_byte : last_byte + 1], "big")
        total_bits = 8 * (last_byte - first_byte + 1)
        chunk >>= total_bits - (end - 8 * first_byte)
        self._pos = end
        return chunk & ((1 << width) - 1)

    def read_bits_array(self, count: int, width: int) -> np.ndarray:
        """Read ``count`` consecutive ``width``-bit fields at once.

        Equivalent to ``[read_bits(width) for _ in range(count)]`` but
        unpacked with one vectorized pass; returns an int64 array.
        """
        if width < 0:
            raise ValueError(f"width must be >= 0, got {width}")
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if width == 0 or count == 0:
            return np.zeros(count, dtype=np.int64)
        if width > 62:  # int64 dot product would overflow
            return np.array(
                [self.read_bits(width) for _ in range(count)],
                dtype=np.int64,
            )
        total = count * width
        if total > self.bits_remaining:
            raise DecodeError(
                f"bit reader exhausted: need {total} bits, "
                f"have {self.bits_remaining}"
            )
        start = self._pos
        first = start >> 3
        last = (start + total - 1) >> 3
        span = np.frombuffer(self._data, np.uint8, last - first + 1, first)
        bits = np.unpackbits(span)[start - 8 * first :][:total]
        powers = np.left_shift(
            np.int64(1), np.arange(width - 1, -1, -1, dtype=np.int64)
        )
        self._pos = start + total
        return bits.reshape(count, width) @ powers

    def read_unary(self) -> int:
        """Read one-bits until a zero terminator; return their count."""
        count = 0
        while self.read_bit():
            count += 1
        return count

    def read_signed(self, width: int) -> int:
        """Inverse of :meth:`BitWriter.write_signed`."""
        negative = self.read_bit()
        magnitude = self.read_bits(width)
        return -magnitude if negative else magnitude

    def align_to_byte(self) -> None:
        """Skip padding bits up to the next byte boundary."""
        rem = self._pos & 7
        if rem:
            self._pos += 8 - rem
