"""MSB-first bit reader, the inverse of :class:`repro.bitio.BitWriter`."""

from __future__ import annotations

import numpy as np

from repro.errors import DecodeError


class BitReader:
    """Reads bits MSB-first from a ``bytes``-like object.

    Reading past the end raises :class:`repro.errors.DecodeError`
    rather than silently returning zeros, so corruption is detected at
    the earliest possible point.
    """

    __slots__ = ("_data", "_pos")

    def __init__(self, data: bytes, start_bit: int = 0) -> None:
        self._data = bytes(data)
        if start_bit < 0 or start_bit > 8 * len(self._data):
            raise ValueError(f"start_bit {start_bit} out of range")
        self._pos = start_bit  # absolute bit position

    @property
    def bit_position(self) -> int:
        """Current absolute bit offset from the start of the buffer."""
        return self._pos

    @property
    def bits_remaining(self) -> int:
        return 8 * len(self._data) - self._pos

    def read_bit(self) -> int:
        if self._pos >= 8 * len(self._data):
            raise DecodeError("bit reader exhausted")
        byte = self._data[self._pos >> 3]
        bit = (byte >> (7 - (self._pos & 7))) & 1
        self._pos += 1
        return bit

    def read_bits(self, width: int) -> int:
        """Read ``width`` bits as an unsigned integer (MSB first).

        ``width == 0`` is allowed and returns 0 without consuming input.
        """
        if width < 0:
            raise ValueError(f"width must be >= 0, got {width}")
        if width == 0:
            return 0
        if width > self.bits_remaining:
            raise DecodeError(
                f"bit reader exhausted: need {width} bits, "
                f"have {self.bits_remaining}"
            )
        pos = self._pos
        end = pos + width
        first_byte = pos >> 3
        last_byte = (end - 1) >> 3
        chunk = int.from_bytes(self._data[first_byte : last_byte + 1], "big")
        total_bits = 8 * (last_byte - first_byte + 1)
        chunk >>= total_bits - (end - 8 * first_byte)
        self._pos = end
        return chunk & ((1 << width) - 1)

    def read_bits_array(self, count: int, width: int) -> np.ndarray:
        """Read ``count`` consecutive ``width``-bit fields at once.

        Equivalent to ``[read_bits(width) for _ in range(count)]`` but
        unpacked with one vectorized pass; returns an int64 array.
        """
        if width < 0:
            raise ValueError(f"width must be >= 0, got {width}")
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if width == 0 or count == 0:
            return np.zeros(count, dtype=np.int64)
        if width > 62:  # int64 dot product would overflow
            return np.array(
                [self.read_bits(width) for _ in range(count)],
                dtype=np.int64,
            )
        total = count * width
        if total > self.bits_remaining:
            raise DecodeError(
                f"bit reader exhausted: need {total} bits, "
                f"have {self.bits_remaining}"
            )
        start = self._pos
        first = start >> 3
        last = (start + total - 1) >> 3
        span = np.frombuffer(self._data, np.uint8, last - first + 1, first)
        bits = np.unpackbits(span)[start - 8 * first :][:total]
        powers = np.left_shift(
            np.int64(1), np.arange(width - 1, -1, -1, dtype=np.int64)
        )
        self._pos = start + total
        return bits.reshape(count, width) @ powers

    def read_unary(self) -> int:
        """Read one-bits until a zero terminator; return their count."""
        count = 0
        while self.read_bit():
            count += 1
        return count

    def read_signed(self, width: int) -> int:
        """Inverse of :meth:`BitWriter.write_signed`."""
        negative = self.read_bit()
        magnitude = self.read_bits(width)
        return -magnitude if negative else magnitude

    def align_to_byte(self) -> None:
        """Skip padding bits up to the next byte boundary."""
        rem = self._pos & 7
        if rem:
            self._pos += 8 - rem
