"""MSB-first bit writer.

Bits are accumulated into a growing byte buffer; the first bit written
lands in the most-significant bit of the first byte.  This matches the
layout in paper §4.3, where a 4-bit width header is followed by packed
fixed-width values (read back in the same order).

Bulk entry points (:meth:`BitWriter.write_bits` for arbitrarily wide
values, :meth:`BitWriter.write_bits_array` for fixed-width series)
render whole byte runs at once instead of looping bit-by-bit, so the
serialization hot paths never pay per-bit Python dispatch.
"""

from __future__ import annotations

import numpy as np


class BitWriter:
    """Accumulates bits MSB-first and renders them as ``bytes``.

    Example::

        w = BitWriter()
        w.write_bits(0b101, 3)
        w.write_bit(1)
        w.to_bytes()          # b'\\xb0'  (1011 0000)
    """

    __slots__ = ("_buf", "_acc", "_nbits")

    def __init__(self) -> None:
        self._buf = bytearray()
        self._acc = 0  # bit accumulator, < 2**8 once flushed
        self._nbits = 0  # bits currently held in _acc (0..7)

    def __len__(self) -> int:
        """Total number of bits written so far."""
        return 8 * len(self._buf) + self._nbits

    @property
    def bit_length(self) -> int:
        """Alias for ``len(self)``."""
        return len(self)

    @property
    def byte_length(self) -> int:
        """Number of bytes ``to_bytes`` would return right now."""
        return len(self._buf) + (1 if self._nbits else 0)

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit!r}")
        self._acc = (self._acc << 1) | bit
        self._nbits += 1
        if self._nbits == 8:
            self._buf.append(self._acc)
            self._acc = 0
            self._nbits = 0

    def write_bits(self, value: int, width: int) -> None:
        """Append ``width`` bits of ``value`` (MSB of the field first).

        ``value`` must be a non-negative integer < 2**width.  A width of
        zero is allowed and writes nothing (used for all-zero series).
        """
        if width < 0:
            raise ValueError(f"width must be >= 0, got {width}")
        if value < 0 or (width < value.bit_length()):
            raise ValueError(f"value {value} does not fit in {width} bits")
        if width == 0:
            return
        # Render every complete byte in one int.to_bytes call (C-level
        # regardless of width) and keep only the remainder bits.
        acc = (self._acc << width) | value
        nbits = self._nbits + width
        rem = nbits & 7
        nbytes = nbits >> 3
        if nbytes:
            self._buf += (acc >> rem).to_bytes(nbytes, "big")
            acc &= (1 << rem) - 1
        self._acc = acc
        self._nbits = rem

    def write_bits_array(self, values, width: int) -> None:
        """Append each of ``values`` as a ``width``-bit field.

        Bit-stream layout is identical to calling :meth:`write_bits`
        per element; the packing itself is vectorized (one
        ``np.packbits`` for the whole series).
        """
        if width < 0:
            raise ValueError(f"width must be >= 0, got {width}")
        values = np.asarray(values)
        if values.ndim != 1:
            raise ValueError("values must be 1-D")
        if len(values) == 0:
            return
        if values.dtype.kind not in "ui":
            raise ValueError("values must be integers")
        if values.dtype.kind == "i" and int(values.min()) < 0:
            raise ValueError("negative value in bit series")
        top = int(values.max())
        if width < top.bit_length():
            raise ValueError(f"value {top} does not fit in {width} bits")
        if width == 0:
            return
        if width > 57:  # keep the shift matrix inside uint64
            for v in values.tolist():
                self.write_bits(int(v), width)
            return
        if len(values) <= 256:
            # Short series: folding into one Python int and rendering
            # it with a single write_bits beats numpy's fixed setup
            # cost (the fold is quadratic, so long series take the
            # vectorized path below).
            big = 0
            for v in values.tolist():
                big = (big << width) | v
            self.write_bits(big, len(values) * width)
            return
        shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
        bits = (
            (values.astype(np.uint64)[:, None] >> shifts) & np.uint64(1)
        ).astype(np.uint8)
        head = self._nbits
        if head:
            acc_bits = (
                (np.uint64(self._acc)
                 >> np.arange(head - 1, -1, -1, dtype=np.uint64))
                & np.uint64(1)
            ).astype(np.uint8)
            stream = np.concatenate([acc_bits, bits.ravel()])
        else:
            stream = bits.ravel()
        rem = len(stream) & 7
        whole = len(stream) - rem
        if whole:
            self._buf += np.packbits(stream[:whole]).tobytes()
        acc = 0
        for b in stream[whole:].tolist():
            acc = (acc << 1) | int(b)
        self._acc = acc
        self._nbits = rem

    def write_unary(self, value: int) -> None:
        """Append ``value`` one-bits followed by a terminating zero."""
        if value < 0:
            raise ValueError("unary value must be >= 0")
        # One bulk write: `value` ones then the terminating zero.
        self.write_bits((1 << (value + 1)) - 2, value + 1)

    def write_signed(self, value: int, width: int) -> None:
        """Append a sign bit (1 = negative) then ``width`` magnitude bits."""
        self.write_bit(1 if value < 0 else 0)
        self.write_bits(abs(value), width)

    def align_to_byte(self) -> None:
        """Zero-pad to the next byte boundary."""
        if self._nbits:
            self._acc <<= 8 - self._nbits
            self._buf.append(self._acc & 0xFF)
            self._acc = 0
            self._nbits = 0

    def to_bytes(self) -> bytes:
        """Render the written bits, zero-padding the final partial byte.

        The writer remains usable afterwards (rendering is
        non-destructive), but note that further writes after rendering a
        partial byte continue from the *unpadded* position.
        """
        if self._nbits:
            tail = (self._acc << (8 - self._nbits)) & 0xFF
            return bytes(self._buf) + bytes([tail])
        return bytes(self._buf)
