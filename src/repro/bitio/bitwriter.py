"""MSB-first bit writer.

Bits are accumulated into a growing byte buffer; the first bit written
lands in the most-significant bit of the first byte.  This matches the
layout in paper §4.3, where a 4-bit width header is followed by packed
fixed-width values (read back in the same order).
"""

from __future__ import annotations


class BitWriter:
    """Accumulates bits MSB-first and renders them as ``bytes``.

    Example::

        w = BitWriter()
        w.write_bits(0b101, 3)
        w.write_bit(1)
        w.to_bytes()          # b'\\xb0'  (1011 0000)
    """

    __slots__ = ("_buf", "_acc", "_nbits")

    def __init__(self) -> None:
        self._buf = bytearray()
        self._acc = 0  # bit accumulator, < 2**8 once flushed
        self._nbits = 0  # bits currently held in _acc (0..7)

    def __len__(self) -> int:
        """Total number of bits written so far."""
        return 8 * len(self._buf) + self._nbits

    @property
    def bit_length(self) -> int:
        """Alias for ``len(self)``."""
        return len(self)

    @property
    def byte_length(self) -> int:
        """Number of bytes ``to_bytes`` would return right now."""
        return len(self._buf) + (1 if self._nbits else 0)

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit!r}")
        self._acc = (self._acc << 1) | bit
        self._nbits += 1
        if self._nbits == 8:
            self._buf.append(self._acc)
            self._acc = 0
            self._nbits = 0

    def write_bits(self, value: int, width: int) -> None:
        """Append ``width`` bits of ``value`` (MSB of the field first).

        ``value`` must be a non-negative integer < 2**width.  A width of
        zero is allowed and writes nothing (used for all-zero series).
        """
        if width < 0:
            raise ValueError(f"width must be >= 0, got {width}")
        if value < 0 or (width < value.bit_length()):
            raise ValueError(f"value {value} does not fit in {width} bits")
        if width == 0:
            return
        # Fast path: fill the accumulator byte-at-a-time.
        nbits = self._nbits
        acc = (self._acc << width) | value
        nbits += width
        buf = self._buf
        while nbits >= 8:
            nbits -= 8
            buf.append((acc >> nbits) & 0xFF)
        self._acc = acc & ((1 << nbits) - 1)
        self._nbits = nbits

    def write_unary(self, value: int) -> None:
        """Append ``value`` one-bits followed by a terminating zero."""
        if value < 0:
            raise ValueError("unary value must be >= 0")
        for _ in range(value):
            self.write_bit(1)
        self.write_bit(0)

    def write_signed(self, value: int, width: int) -> None:
        """Append a sign bit (1 = negative) then ``width`` magnitude bits."""
        self.write_bit(1 if value < 0 else 0)
        self.write_bits(abs(value), width)

    def align_to_byte(self) -> None:
        """Zero-pad to the next byte boundary."""
        if self._nbits:
            self._acc <<= 8 - self._nbits
            self._buf.append(self._acc & 0xFF)
            self._acc = 0
            self._nbits = 0

    def to_bytes(self) -> bytes:
        """Render the written bits, zero-padding the final partial byte.

        The writer remains usable afterwards (rendering is
        non-destructive), but note that further writes after rendering a
        partial byte continue from the *unpadded* position.
        """
        if self._nbits:
            tail = (self._acc << (8 - self._nbits)) & 0xFF
            return bytes(self._buf) + bytes([tail])
        return bytes(self._buf)
