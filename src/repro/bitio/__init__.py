"""Bit-level I/O substrate.

The Recoil metadata format (paper §4.3) packs difference series with a
per-series bit width; this subpackage provides the MSB-first bit writer
and reader used for that, plus LEB128 varints for container headers.
"""

from repro.bitio.bitwriter import BitWriter
from repro.bitio.bitreader import BitReader, gather_bits
from repro.bitio.varint import (
    decode_uvarint,
    decode_varint,
    encode_uvarint,
    encode_varint,
    read_uvarint,
    read_varint,
)

__all__ = [
    "BitWriter",
    "BitReader",
    "gather_bits",
    "encode_uvarint",
    "decode_uvarint",
    "encode_varint",
    "decode_varint",
    "read_uvarint",
    "read_varint",
]
