"""LEB128 varints used in container headers.

Unsigned values are encoded 7 bits at a time, little-endian groups,
high bit as continuation flag.  Signed values use zigzag mapping.
"""

from __future__ import annotations

from repro.errors import ContainerError


def encode_uvarint(value: int) -> bytes:
    """Encode a non-negative integer as LEB128."""
    if value < 0:
        raise ValueError(f"uvarint requires value >= 0, got {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_uvarint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a LEB128 integer from ``data[offset:]``.

    Returns ``(value, new_offset)``.
    """
    value = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(data):
            raise ContainerError("truncated uvarint")
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7
        if shift > 63:
            raise ContainerError("uvarint too long (>64 bits)")


def encode_varint(value: int) -> bytes:
    """Zigzag-encode a signed integer then LEB128 it."""
    zz = ((-value) << 1) - 1 if value < 0 else value << 1
    return encode_uvarint(zz)


def decode_varint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Inverse of :func:`encode_varint`."""
    zz, pos = decode_uvarint(data, offset)
    value = (zz + 1) >> 1 if zz & 1 else zz >> 1
    return (-value if zz & 1 else value), pos


def read_uvarint(stream) -> int:
    """Read a LEB128 integer from a file-like object."""
    value = 0
    shift = 0
    while True:
        chunk = stream.read(1)
        if not chunk:
            raise ContainerError("truncated uvarint in stream")
        byte = chunk[0]
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value
        shift += 7
        if shift > 63:
            raise ContainerError("uvarint too long (>64 bits)")


def read_varint(stream) -> int:
    """Read a zigzag varint from a file-like object."""
    zz = read_uvarint(stream)
    value = (zz + 1) >> 1 if zz & 1 else zz >> 1
    return -value if zz & 1 else value
