#!/usr/bin/env python3
"""Sidecar metadata: Recoil as a drop-in for standardized codecs (§6).

The paper's conclusion proposes shipping Recoil metadata *separately*
from a standard rANS bitstream so the coding format itself never
changes.  This example plays a host format (say, a video container
with an rANS-coded plane) and three consumers:

1. a legacy decoder that knows nothing about Recoil and decodes the
   plain interleaved stream serially;
2. a Recoil-aware decoder that fetches the sidecar and decodes with
   64 threads;
3. a CDN edge that shrinks the sidecar per client *without ever
   holding the payload*.

Run:  python examples/sidecar_dropin.py
"""

import numpy as np

from repro.core import build_sidecar, parse_sidecar, shrink_sidecar
from repro.core.decoder import RecoilDecoder
from repro.core.encoder import RecoilEncoder
from repro.data import exponential_bytes
from repro.rans.interleaved import InterleavedDecoder
from repro.rans.model import SymbolModel

# ---- host format encodes one plane with standard interleaved rANS ---
plane = exponential_bytes(3_000_000, lam=80, seed=17)
model = SymbolModel.from_data(plane, 11, alphabet_size=256)
encoded = RecoilEncoder(model).encode(plane, num_threads=64)
print(f"host bitstream: {encoded.payload_bytes:,} bytes "
      "(standard interleaved rANS, format unchanged)")

# The sidecar travels out of band (a separate track / HTTP resource).
sidecar = build_sidecar(encoded.metadata, encoded.words)
print(f"sidecar:        {len(sidecar):,} bytes "
      f"({encoded.metadata.num_threads - 1} split entries)\n")

# ---- consumer 1: legacy decoder, no Recoil knowledge ----------------
legacy = InterleavedDecoder(model).decode(
    encoded.words, encoded.final_states, encoded.num_symbols
)
assert np.array_equal(legacy, plane)
print("legacy decoder:       serial decode OK (sidecar ignored)")

# ---- consumer 2: Recoil-aware decoder -------------------------------
metadata = parse_sidecar(sidecar, encoded.words)  # checksum-bound
result = RecoilDecoder(model).decode(
    encoded.words, encoded.final_states, metadata
)
assert np.array_equal(result.symbols, plane)
print(f"recoil decoder:       {result.workload.num_tasks}-thread decode "
      f"OK ({result.workload.overhead_symbols:,} sync symbols re-decoded)")

# ---- consumer 3: CDN edge shrinking metadata only -------------------
edge_copy = shrink_sidecar(sidecar, 8)  # payload never touches the edge
metadata8 = parse_sidecar(edge_copy, encoded.words)
result = RecoilDecoder(model).decode(
    encoded.words, encoded.final_states, metadata8
)
assert np.array_equal(result.symbols, plane)
print(f"edge-shrunk sidecar:  {len(edge_copy):,} bytes for an 8-thread "
      "client, decode OK")

# Wrong pairing is detected before any decoding happens.
other = RecoilEncoder(model).encode(plane[::2].copy(), num_threads=8)
try:
    parse_sidecar(sidecar, other.words)
except Exception as exc:
    print(f"mismatched payload:   rejected ({type(exc).__name__})")
