#!/usr/bin/env python3
"""Quickstart: compress, shrink, decompress.

Demonstrates the three verbs of the Recoil content-delivery story on a
synthetic payload:

1. the server encodes ONCE with metadata for 256-way parallelism;
2. per request, it shrinks the metadata to the client's capacity in
   real time (no re-encoding — watch the payload bytes stay identical);
3. the client decodes with its parallel capacity.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import recoil_compress, recoil_decompress, recoil_shrink
from repro.core import parse_container

rng = np.random.default_rng(7)
# A mildly compressible payload: exponential bytes, ~2.8 bits/byte.
data = np.minimum(np.floor(rng.exponential(2.56, 2_000_000)), 255).astype(
    np.uint8
)

# -- 1. encode once, with headroom for a 256-way parallel decoder ------
blob = recoil_compress(data, num_splits=256, quant_bits=11)
parsed = parse_container(blob)
print(f"input:            {len(data):>9,} bytes")
print(f"container:        {len(blob):>9,} bytes "
      f"({len(blob) / len(data):.1%})")
print(f"payload words:    {parsed.num_words:>9,}")
print(f"split entries:    {parsed.metadata.num_threads - 1:>9,}")

# -- 2. serve a weaker client: shrink metadata, not the payload --------
for capacity in (64, 16, 4, 1):
    served = recoil_shrink(blob, capacity)
    saved = len(blob) - len(served)
    out = recoil_decompress(served)
    assert np.array_equal(out, data)
    print(
        f"client with {capacity:>3} threads: served {len(served):,} bytes "
        f"(saved {saved:,}), decode OK"
    )

# -- 3. or cap parallelism client-side ---------------------------------
out = recoil_decompress(blob, max_parallelism=8)
assert np.array_equal(out, data)
print("client-side combine to 8 threads: decode OK")
