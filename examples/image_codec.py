#!/usr/bin/env python3
"""Adaptive (hyperprior) image-latent coding — the div2k scenario.

Learned image codecs (mbt2018-mean & friends) entropy-code 16-bit
latents where *every symbol has its own Gaussian*, parameterized by a
transmitted hyperprior.  Recoil supports this because split metadata
records symbol indices (paper §3.1 advantage (3)): any decoder thread
knows which per-index model to use.

This example synthesizes a latent plane, codes it with a 64-scale
Gaussian model bank at n=16, verifies the rate is close to the model
cross-entropy, and decodes in parallel.

Run:  python examples/image_codec.py
"""

import numpy as np

from repro.core import RecoilCodec, build_container, parse_container
from repro.data import synthesize_latents

# A ~1 MP-equivalent latent plane (mbt2018-mean: 192 ch x H/16 x W/16).
plane = synthesize_latents(
    1_000_000, quant_bits=16, log_scale_mean=1.2, seed=42
)
provider = plane.provider

print(f"latents:        {plane.num_symbols:,} x 16-bit symbols")
print(f"uncompressed:   {plane.uncompressed_bytes:,} bytes")
ideal = plane.ideal_bits() / 8
print(f"model ideal:    {ideal:,.0f} bytes "
      f"({plane.ideal_bits() / plane.num_symbols:.2f} bits/symbol)")

codec = RecoilCodec(provider)
encoded = codec.encode(plane.symbols, num_splits=512)
blob = build_container(encoded, provider=provider, embed_model=False)
overhead = 100.0 * (len(blob) - ideal) / ideal
print(f"recoil container: {len(blob):,} bytes ({overhead:+.2f}% vs ideal; "
      "hyperprior travels out of band)")

# Decode with the hyperprior-derived provider (out-of-band side info).
parsed = parse_container(blob, provider=provider)
result = codec.decompress_with_stats(blob)
assert np.array_equal(result.symbols, plane.symbols)
ov = result.workload
print(
    f"parallel decode OK: {ov.num_tasks} threads, "
    f"{ov.overhead_symbols:,} sync-section symbols re-decoded "
    f"({100 * ov.overhead_fraction:.2f}% overhead)"
)

# Scale down for a weaker decoder — same bitstream, fewer entries.
small = codec.shrink(blob, 8)
out = codec.decompress(small)
assert np.array_equal(out, plane.symbols)
print(f"shrunk to 8 threads: {len(small):,} bytes "
      f"(-{len(blob) - len(small):,}), decode OK")
