#!/usr/bin/env python3
"""Content-delivery scenario (paper §1 and §3.3), served for real.

A server hosts one compressed asset, encoded once with Recoil metadata
for the most parallel decoder it intends to support (a big GPU).
Clients attach their parallel capacity to each request; the server
shrinks the metadata *in real time* (answered from the service's LRU
shrink cache after the first request per client class) and serves the
identical payload.  Concurrent decode requests are fused into single
wide-lane kernel dispatches by the request batcher.

The script contrasts this with the Conventional partitioning approach,
which must either store one variation per client class or ship the
GPU-sized overhead to everyone — the paper's central trade-off.

Run:  python examples/content_delivery.py
"""

import numpy as np

from repro.baselines import ConventionalCodec
from repro.core import parse_container, recoil_service
from repro.data import text_surrogate
from repro.rans.model import SymbolModel

GPU_THREADS = 1024  # the "Large" variation target
CLIENT_CLASSES = {
    "datacenter GPU": 1024,
    "workstation CPU": 16,
    "laptop": 4,
    "embedded": 1,
}

data = text_surrogate(4_000_000, target_entropy=5.29, seed=11)
model = SymbolModel.from_data(data, 11, alphabet_size=256)

# ---- Recoil server: encode ONCE, serve every class ------------------
service = recoil_service(num_splits=GPU_THREADS)
asset = service.put_asset("hero", data, model=model)
master = asset.blob
print(f"asset: {len(data):,} bytes -> master container {len(master):,} bytes")
print(f"server storage (Recoil): {len(master):,} bytes (one variation)\n")

print(f"{'client':<18} {'served bytes':>14} {'vs master':>10}  decode")
requests = [
    (name, capacity, service.submit("hero", capacity))
    for name, capacity in CLIENT_CLASSES.items()
]
for name, capacity, request in requests:
    served = service.serve(name="hero", capacity=capacity)
    out = request.result(timeout=300)
    assert np.array_equal(out, data)
    print(
        f"{name:<18} {len(served):>14,} "
        f"{len(served) - len(master):>+10,}  OK ({capacity} threads)"
    )

# ---- Conventional server: stuck with encode-time choices ------------
conv = ConventionalCodec(model)
print("\nConventional alternatives:")
big = conv.compress(data, GPU_THREADS)
embedded_blob = service.serve("hero", CLIENT_CLASSES["embedded"])
print(
    f"  serve the GPU variation to everyone: {len(big):,} bytes/request "
    f"(+{len(big) - len(embedded_blob):,} vs Recoil embedded client)"
)
storage = 0
for name, capacity in CLIENT_CLASSES.items():
    blob = conv.compress(data, capacity)
    storage += len(blob)
    print(f"  dedicated {name} variation: {len(blob):,} bytes")
print(
    f"  server storage for all variations: {storage:,} bytes "
    f"({storage / len(master):.2f}x Recoil's single master)"
)

# ---- the knob is metadata only ---------------------------------------
laptop_blob = service.serve("hero", CLIENT_CLASSES["laptop"])  # cache hit
p_full = parse_container(master)
p_small = parse_container(laptop_blob)
assert np.array_equal(p_full.words(master), p_small.words(laptop_blob))
print(
    "\npayload words identical across served variations — only metadata "
    "changes (Recoil §3.3)"
)

m = service.metrics_snapshot()
print(
    f"service: {m['requests']['completed']} decodes in "
    f"{m['batches']['dispatched']} fused batches (largest "
    f"{m['batches']['largest_requests']} requests); shrink cache "
    f"{m['shrink']['cache_hits']} hits / {m['shrink']['cache_misses']} "
    "misses"
)
service.close()
