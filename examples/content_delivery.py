#!/usr/bin/env python3
"""Content-delivery scenario (paper §1 and §3.3).

A server hosts one compressed asset, encoded once with Recoil metadata
for the most parallel decoder it intends to support (a big GPU).
Clients attach their parallel capacity to each request; the server
shrinks the metadata *in real time* and serves the identical payload.

The script contrasts this with the Conventional partitioning approach,
which must either store one variation per client class or ship the
GPU-sized overhead to everyone — the paper's central trade-off.

Run:  python examples/content_delivery.py
"""

import numpy as np

from repro.baselines import ConventionalCodec
from repro.core import RecoilCodec, parse_container, recoil_shrink
from repro.data import text_surrogate
from repro.rans.model import SymbolModel

GPU_THREADS = 1024  # the "Large" variation target
CLIENT_CLASSES = {
    "datacenter GPU": 1024,
    "workstation CPU": 16,
    "laptop": 4,
    "embedded": 1,
}

data = text_surrogate(4_000_000, target_entropy=5.29, seed=11)
model = SymbolModel.from_data(data, 11, alphabet_size=256)

# ---- Recoil server: encode ONCE -------------------------------------
recoil = RecoilCodec(model)
master = recoil.compress(data, GPU_THREADS)
print(f"asset: {len(data):,} bytes -> master container {len(master):,} bytes")
print(f"server storage (Recoil): {len(master):,} bytes (one variation)\n")

print(f"{'client':<18} {'served bytes':>14} {'vs master':>10}  decode")
total_recoil = 0
for name, capacity in CLIENT_CLASSES.items():
    served = recoil_shrink(master, capacity)
    out = recoil.decompress(served)
    assert np.array_equal(out, data)
    total_recoil += len(served)
    print(
        f"{name:<18} {len(served):>14,} "
        f"{len(served) - len(master):>+10,}  OK ({capacity} threads)"
    )

# ---- Conventional server: stuck with encode-time choices ------------
conv = ConventionalCodec(model)
print("\nConventional alternatives:")
big = conv.compress(data, GPU_THREADS)
print(
    f"  serve the GPU variation to everyone: {len(big):,} bytes/request "
    f"(+{len(big) - len(recoil_shrink(master, 1)):,} vs Recoil embedded "
    "client)"
)
storage = 0
for name, capacity in CLIENT_CLASSES.items():
    blob = conv.compress(data, capacity)
    storage += len(blob)
    print(f"  dedicated {name} variation: {len(blob):,} bytes")
print(
    f"  server storage for all variations: {storage:,} bytes "
    f"({storage / len(master):.2f}x Recoil's single master)"
)

# ---- the knob is metadata only ---------------------------------------
p_full = parse_container(master)
p_small = parse_container(recoil_shrink(master, 4))
assert np.array_equal(p_full.words(master), p_small.words(recoil_shrink(master, 4)))
print(
    "\npayload words identical across served variations — only metadata "
    "changes (Recoil §3.3)"
)
