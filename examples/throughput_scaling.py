#!/usr/bin/env python3
"""Decoder-side scaling: batching, real threads, projected devices.

Three views of the same decode workload (paper §5.3 / Figure 7):

1. **Task batching** (the SIMD/CUDA analog): Recoil's decoder threads
   are data-parallel, so the lane engine can advance *all of them at
   once* as (tasks x lanes) numpy arrays.  Batching 512 tasks into one
   engine run is dramatically faster than decoding them one-by-one —
   in Python as on a GPU, and for the same reason (amortized
   instruction overhead across parallel work).
2. **Real OS threads**: the tasks are genuinely independent (disjoint
   stream regions, disjoint outputs), so a thread pool decodes them
   concurrently and correctly.  Note: in CPython the batched engine
   already saturates the interpreter, so wall-clock gains from
   *threads* are limited by the GIL — the honest takeaway is that
   parallel correctness is free, parallel speed in Python comes from
   batching.
3. **Projected device throughput**: the measured work (symbols,
   renormalization reads, sync overhead, imbalance) drives the
   calibrated AVX2/AVX512/Turing cost model.

Run:  python examples/throughput_scaling.py
"""

import time

import numpy as np

from repro.core import RecoilCodec, parse_container
from repro.core.decoder import build_thread_tasks
from repro.data import exponential_bytes
from repro.parallel.costmodel import PROFILES, project_throughput
from repro.parallel.executor import decode_with_pool
from repro.parallel.simd import LaneEngine
from repro.rans.model import SymbolModel

data = exponential_bytes(6_000_000, lam=100, seed=3)
model = SymbolModel.from_data(data, 11, alphabet_size=256)
codec = RecoilCodec(model)
blob = codec.compress(data, num_splits=512)
parsed = parse_container(blob)
words = parsed.words(blob)
tasks = build_thread_tasks(parsed.metadata, len(words), parsed.final_states)
print(f"{len(data):,} bytes, {len(tasks)} decoder tasks\n")


def run_engine(task_subsets):
    out = np.empty(parsed.num_symbols, dtype=np.uint8)
    for subset in task_subsets:
        LaneEngine(parsed.provider, parsed.lanes).run(words, subset, out)
    return out


# ---- 1. batching is the parallel win ---------------------------------
print("task batching (the SIMD/CUDA analog):")
for label, subsets in [
    ("one task per engine run (serial decode)", [[t] for t in tasks[:32]]),
    ("32 tasks in one batch", [tasks[:32]]),
]:
    n_syms = sum(t.walk_hi - t.walk_lo + 1 for s in subsets for t in s)
    t0 = time.perf_counter()
    run_engine(subsets)
    wall = time.perf_counter() - t0
    print(f"  {label:<42} {wall:6.2f}s  "
          f"({n_syms / wall / 1e6:6.1f} Msym/s)")

t0 = time.perf_counter()
out = run_engine([tasks])
wall_batched = time.perf_counter() - t0
assert np.array_equal(out, data)
print(f"  {'all 512 tasks in one batch':<42} {wall_batched:6.2f}s  "
      f"({len(data) / wall_batched / 1e6:6.1f} Msym/s)\n")

# ---- 2. real threads: correct, GIL-bound -----------------------------
print("real OS threads (correctness demo; GIL caps the speedup):")
for workers in (1, 4):
    t0 = time.perf_counter()
    result = decode_with_pool(
        parsed.provider, parsed.lanes, words, tasks,
        parsed.num_symbols, np.uint8, workers,
    )
    wall = time.perf_counter() - t0
    assert np.array_equal(result.symbols, data)
    print(f"  {workers} worker(s): {wall:5.2f}s, decode OK")

# ---- 3. projected device throughput ----------------------------------
print("\nprojected throughput for the measured workload:")
res = codec.decompress_with_stats(blob)
assert np.array_equal(res.symbols, data)
for name in ("cpu-single-thread", "cpu-avx2", "cpu-avx512", "gpu-turing"):
    gbps = project_throughput(
        PROFILES[name], res.workload, res.engine_stats.words_read,
        11, len(data),
    ) / 1e9
    print(f"  {name:<18} {gbps:>7.2f} GB/s")
print(
    f"\nsync-section overhead actually decoded twice: "
    f"{res.workload.overhead_symbols:,} symbols "
    f"({100 * res.workload.overhead_fraction:.3f}% of payload)"
)
