#!/usr/bin/env python3
"""Paper §3 / Figure 4: the single-coder proof of concept.

Before extending to interleaved rANS, the paper demonstrates
intermediate decodability on a plain, non-interleaved rANS bitstream:

- encode normally, recording intermediate states at renormalization
  points (each provably < L, so 16 bits suffice — Lemma 3.1);
- pick a recorded split point; "thread 2" decodes from the end to the
  split, "thread 1" decodes from the split to the start — completely
  independently.

Run:  python examples/single_coder_poc.py
"""

import numpy as np

from repro.rans.constants import L_BOUND
from repro.rans.model import SymbolModel
from repro.rans.scalar import ScalarDecoder, ScalarEncoder

rng = np.random.default_rng(4)
data = np.minimum(np.floor(rng.exponential(8.0, 100_000)), 255).astype(
    np.uint8
)
model = SymbolModel.from_data(data, 11, alphabet_size=256)

# ---- encode, recording renormalization points ------------------------
enc = ScalarEncoder(model, record_renorms=True)
res = enc.encode(data)
print(f"encoded {len(data):,} symbols -> {res.num_words:,} words, "
      f"{len(res.renorm_records):,} renormalization points")

# Lemma 3.1: every recorded state fits in 16 bits.
assert all(r.state_after < L_BOUND for r in res.renorm_records)
print(f"all intermediate states < L = 2^16  (Lemma 3.1) — storable in "
      f"16 bits instead of 32")

# ---- pick a split near the middle ------------------------------------
record = min(
    res.renorm_records,
    key=lambda r: abs(r.symbol_index - len(data) // 2),
)
split = record.symbol_index
print(f"\nsplit chosen at symbol index {split:,} "
      f"(bitstream offset {record.word_position:,})")

dec = ScalarDecoder(model)

# Thread 2: from the transmitted final state down to the split.
upper = dec.decode(
    res.words,
    res.final_state,
    num_symbols=len(data) - (split - 1),
    check_terminal=False,
)
# Thread 1: from the recorded intermediate state down to symbol 1.
lower = dec.decode_from_record(res.words, record)

reassembled = np.array(lower + upper, dtype=np.uint8)
assert np.array_equal(reassembled, data)
print(f"thread 1 decoded symbols 1..{split - 1}, "
      f"thread 2 decoded {split}..{len(data)} — reassembly matches input")
