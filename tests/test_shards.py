"""Differential and lifecycle tests for the sharded process executor.

The hard requirement of DESIGN.md §14: every sharded decode is
bit-identical to the single-process fused path, across worker counts,
ragged shard plans, multi-segment fusion, and adaptive models — and a
worker crash must fail cleanly (no leaked shared-memory segments, no
wedged pool).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.decoder import RecoilDecoder, build_thread_tasks
from repro.core.encoder import RecoilEncoder
from repro.errors import DecodeError, ParallelismError, ServeError
from repro.parallel.buffers import ScratchArena
from repro.parallel.fused import StreamSegment, fused_run_multi
from repro.parallel.shards import (
    _SHM_PREFIX,
    ShardedExecutor,
    combine_stats,
    sharding_available,
)
from repro.rans.adaptive import IndexedModelProvider, StaticModelProvider
from repro.rans.model import SymbolModel

from conftest import needs_compiled

pytestmark = pytest.mark.skipif(
    not sharding_available(), reason="no shared memory on this host"
)


def _leaked_segments() -> list[str]:
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):
        return []
    return [f for f in os.listdir(shm_dir) if f.startswith(_SHM_PREFIX)]


@pytest.fixture(scope="module")
def executor():
    with ShardedExecutor(8) as ex:
        ex.warm()
        yield ex


@pytest.fixture(scope="module")
def encoded(skewed_bytes, model11):
    return RecoilEncoder(model11).encode(skewed_bytes, num_threads=24)


class TestShardedDecode:
    @pytest.mark.parametrize("workers", [1, 2, 8])
    @pytest.mark.parametrize("combine", [7, 24])  # 7 => ragged plan
    def test_bit_identical_to_fused(
        self, executor, encoded, provider11, skewed_bytes, workers, combine,
        kernel_backend,
    ):
        md = encoded.metadata.combine(combine)
        tasks = build_thread_tasks(
            md, len(encoded.words), encoded.final_states
        )
        reference = RecoilDecoder(provider11).decode(
            encoded.words, encoded.final_states, md
        )
        res = executor.decode(
            provider11, 32, encoded.words, tasks,
            encoded.num_symbols, np.uint8, workers=workers,
            kernel=kernel_backend,
        )
        assert np.array_equal(res.symbols, reference.symbols)
        assert np.array_equal(res.symbols, skewed_bytes)
        assert res.workers == min(workers, len(tasks))
        assert res.backend == "process"

    def test_stats_match_single_process(
        self, executor, encoded, provider11
    ):
        tasks = build_thread_tasks(
            encoded.metadata, len(encoded.words), encoded.final_states
        )
        res = executor.decode(
            provider11, 32, encoded.words, tasks,
            encoded.num_symbols, np.uint8, workers=4,
        )
        combined = combine_stats(res.per_worker_stats)
        assert combined.tasks == len(tasks)
        assert combined.symbols_decoded >= encoded.num_symbols

    def test_adaptive_provider_round_trip(self, executor):
        r = np.random.default_rng(5)
        payload = np.minimum(
            np.floor(r.exponential(9.0, 6_000)), 255
        ).astype(np.uint8)
        sym = np.arange(256, dtype=np.float64)
        models = [
            SymbolModel.from_counts(np.exp(-sym / s) * 1_000 + 1, 10)
            for s in (4.0, 12.0, 40.0)
        ]
        ids = (np.arange(len(payload)) // 7) % 3
        provider = IndexedModelProvider(models, ids)
        enc = RecoilEncoder(provider).encode(payload, num_threads=4)
        tasks = build_thread_tasks(
            enc.metadata, len(enc.words), enc.final_states
        )
        res = executor.decode(
            provider, 32, enc.words, tasks, enc.num_symbols,
            provider.out_dtype, workers=2,
        )
        assert np.array_equal(res.symbols, payload)

    def test_zero_tasks(self, executor, encoded, provider11):
        res = executor.decode(
            provider11, 32, encoded.words, [], 0, np.uint8
        )
        assert res.workers == 0
        assert res.symbols.shape == (0,)

    def test_corrupt_metadata_raises_decode_error(
        self, executor, encoded, provider11
    ):
        from dataclasses import replace

        tasks = build_thread_tasks(
            encoded.metadata, len(encoded.words), encoded.final_states
        )
        bad = [replace(tasks[0], start_pos=len(encoded.words) + 5)]
        with pytest.raises(DecodeError):
            executor.decode(
                provider11, 32, encoded.words, bad,
                encoded.num_symbols, np.uint8,
            )
        assert not executor.broken  # a decode error is not a crash
        assert _leaked_segments() == []


class TestRunMulti:
    def test_matches_fused_run_multi(
        self, executor, provider11, model11, skewed_bytes
    ):
        payloads = [
            skewed_bytes[:9_000],
            skewed_bytes[20_000:24_000],
            skewed_bytes[30_000:45_000],
        ]
        segments = []
        for p in payloads:
            enc = RecoilEncoder(model11).encode(p, num_threads=6)
            tasks = build_thread_tasks(
                enc.metadata, len(enc.words), enc.final_states
            )
            segments.append(
                StreamSegment(
                    words=enc.words, tasks=tasks, num_symbols=len(p)
                )
            )
        reference = fused_run_multi(
            provider11, 32, segments, ScratchArena(), out_dtype=np.uint8
        )
        res = executor.run_multi(
            provider11, 32, segments, out_dtype=np.uint8
        )
        assert np.array_equal(res.out, reference.out)
        assert res.slices == reference.slices
        for seg_out, payload in zip(res.segment_outputs(), payloads):
            assert np.array_equal(seg_out, payload)
        assert res.stats.tasks == reference.stats.tasks

    def test_multi_segment_adaptive_rejected(self, executor):
        sym = np.arange(256, dtype=np.float64)
        models = [
            SymbolModel.from_counts(np.exp(-sym / s) * 100 + 1, 10)
            for s in (9.0, 30.0)
        ]
        provider = IndexedModelProvider(
            models, np.zeros(10, dtype=np.int64)
        )
        seg = StreamSegment(
            words=np.zeros(4, np.uint16), tasks=[], num_symbols=0
        )
        with pytest.raises(DecodeError):
            executor.run_multi(provider, 32, [seg, seg])


class TestLifecycle:
    def test_worker_crash_respawns(self, encoded, provider11, skewed_bytes):
        tasks = build_thread_tasks(
            encoded.metadata, len(encoded.words), encoded.final_states
        )
        with ShardedExecutor(2, respawn_backoff_s=0.01) as ex:
            ex.warm()
            ex._workers[1].proc.terminate()
            ex._workers[1].proc.join(timeout=5)
            # The dispatch that discovers the crash fails...
            with pytest.raises(ParallelismError):
                ex.decode(
                    provider11, 32, encoded.words, tasks,
                    encoded.num_symbols, np.uint8,
                )
            # ...but the pool self-heals: the dead worker is respawned
            # (after its backoff) and the next decode succeeds.
            assert not ex.broken
            deadline = time.monotonic() + 10
            while True:
                try:
                    res = ex.decode(
                        provider11, 32, encoded.words, tasks,
                        encoded.num_symbols, np.uint8,
                    )
                    break
                except ParallelismError:
                    if time.monotonic() > deadline:
                        raise
            assert np.array_equal(res.symbols, skewed_bytes)
            assert ex.respawns >= 1
            assert ex.dead_workers() == 0
        # The parent unlinked every segment it created for the job.
        assert _leaked_segments() == []

    def test_worker_crash_no_respawn_breaks_pool(
        self, encoded, provider11
    ):
        tasks = build_thread_tasks(
            encoded.metadata, len(encoded.words), encoded.final_states
        )
        with ShardedExecutor(2, respawn=False) as ex:
            ex.warm()
            ex._workers[1].proc.terminate()
            ex._workers[1].proc.join(timeout=5)
            with pytest.raises(ParallelismError):
                ex.decode(
                    provider11, 32, encoded.words, tasks,
                    encoded.num_symbols, np.uint8,
                )
            # With respawn disabled the old fail-fast contract holds:
            # the pool is terminally broken and refuses further work.
            assert ex.broken
            with pytest.raises(ParallelismError):
                ex.decode(
                    provider11, 32, encoded.words, tasks,
                    encoded.num_symbols, np.uint8,
                )
        assert _leaked_segments() == []

    def test_default_executor_replaces_broken_pool(self):
        from repro.parallel import shards

        pool = shards.default_executor(2)
        assert pool is not None
        pool.broken = True
        fresh = shards.default_executor(2)
        assert fresh is not None and not fresh.broken
        assert fresh is not pool

    def test_close_is_idempotent_and_final(self, encoded, provider11):
        ex = ShardedExecutor(1)
        ex.close()
        ex.close()
        with pytest.raises(ParallelismError):
            ex.decode(provider11, 32, encoded.words, [], 0, np.uint8)

    def test_invalid_worker_count(self):
        with pytest.raises(ParallelismError):
            ShardedExecutor(0)


class TestServeBackend:
    @pytest.mark.parametrize(
        "backend",
        [
            "thread",
            "process",
            pytest.param("thread+compiled", marks=needs_compiled),
            pytest.param("process+compiled", marks=needs_compiled),
        ],
    )
    def test_service_round_trip(self, backend):
        from repro.parallel import compiled
        from repro.serve import RecoilService, ServiceConfig

        r = np.random.default_rng(23)
        data = np.minimum(np.floor(r.exponential(11.0, 30_000)), 255).astype(
            np.uint8
        )
        cfg = ServiceConfig(decode_backend=backend, decode_workers=4)
        pool, kernel = compiled.split_backend(backend, default_pool="fused")
        with RecoilService(config=cfg) as svc:
            assert svc.decode_backend == pool
            assert svc.decode_kernel == kernel
            svc.put_asset("a", data, num_splits=64)
            requests = [svc.submit("a", c) for c in (1, 4, 16, 4, 1)]
            for req in requests:
                assert np.array_equal(req.result(120), data)
            snap = svc.metrics_snapshot()
            assert snap["resilience"]["kernel"] == {
                "configured": kernel,
                "effective": kernel,
            }

    def test_invalid_backend_config_rejected(self):
        from repro.serve import ServiceConfig

        with pytest.raises(ServeError):
            ServiceConfig(decode_backend="quantum")
        with pytest.raises(ServeError):
            ServiceConfig(decode_workers=0)

    def test_worker_crash_degrades_then_repromotes(self):
        from repro.serve import RecoilService, ServiceConfig

        r = np.random.default_rng(29)
        data = np.minimum(np.floor(r.exponential(11.0, 20_000)), 255).astype(
            np.uint8
        )
        cfg = ServiceConfig(
            decode_backend="process",
            decode_workers=2,
            repromote_cooldown_s=0.2,
        )
        with RecoilService(config=cfg) as svc:
            svc.put_asset("a", data, num_splits=32)
            assert np.array_equal(svc.decompress("a", 8), data)
            assert svc.decode_backend == "process"
            for w in svc._shards._workers:
                w.proc.terminate()
                w.proc.join(timeout=5)
            # The batch that discovers the crash is transparently
            # re-run on threads — the client never sees the failure,
            # only the metrics do.
            assert np.array_equal(svc.decompress("a", 8), data)
            assert svc.decode_backend == "thread"
            snap = svc.metrics_snapshot()
            assert snap["resilience"]["degradations"] == 1
            assert snap["requests"]["failed"] == 0
            # After the cooldown the dispatcher probes the pool (the
            # executor respawned the dead workers) and promotes back.
            deadline = time.monotonic() + 15
            while svc.decode_backend != "process":
                time.sleep(0.05)
                assert np.array_equal(svc.decompress("a", 8), data)
                if time.monotonic() > deadline:
                    pytest.fail("service never re-promoted to process")
            snap = svc.metrics_snapshot()
            assert snap["resilience"]["promotions"] >= 1
            assert snap["resilience"]["promotion_probes"] >= 1
            assert snap["resilience"]["backend"] == {
                "configured": "process",
                "effective": "process",
            }
            assert np.array_equal(svc.decompress("a", 8), data)
        assert _leaked_segments() == []

    def test_process_service_falls_back_gracefully(self, monkeypatch):
        from repro.parallel import shards
        from repro.serve import RecoilService, ServiceConfig

        monkeypatch.setattr(shards, "_AVAILABLE", False)
        cfg = ServiceConfig(decode_backend="process", decode_workers=2)
        with RecoilService(config=cfg) as svc:
            assert svc.decode_backend == "thread"
