"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rans.adaptive import StaticModelProvider
from repro.rans.model import SymbolModel


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def skewed_bytes() -> np.ndarray:
    """50 k exponential bytes — the workhorse payload."""
    r = np.random.default_rng(1)
    return np.minimum(np.floor(r.exponential(12.0, 50_000)), 255).astype(
        np.uint8
    )


@pytest.fixture(scope="session")
def uniformish_bytes() -> np.ndarray:
    r = np.random.default_rng(2)
    return r.integers(0, 256, 20_000).astype(np.uint8)


@pytest.fixture(scope="session")
def model11(skewed_bytes) -> SymbolModel:
    return SymbolModel.from_data(skewed_bytes, 11, alphabet_size=256)


@pytest.fixture(scope="session")
def model16(skewed_bytes) -> SymbolModel:
    return SymbolModel.from_data(skewed_bytes, 16, alphabet_size=256)


@pytest.fixture(scope="session")
def provider11(model11) -> StaticModelProvider:
    return StaticModelProvider(model11)
