"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel import compiled
from repro.rans.adaptive import StaticModelProvider
from repro.rans.model import SymbolModel

#: skip marker for tests that need a working compiled-kernel toolchain
#: (numba or a C compiler) — CI's fallback leg runs with
#: ``REPRO_COMPILED_TOOLCHAIN=none`` and must skip these cleanly.
needs_compiled = pytest.mark.skipif(
    not compiled.kernel_available(),
    reason="no compiled-kernel toolchain (numba or cc) available",
)

#: inner-loop kernels to parametrize differential suites over.  Every
#: test taking the ``kernel_backend`` fixture runs once per entry and
#: must produce bit-identical streams/outputs on both.
KERNELS = ["numpy", pytest.param("compiled", marks=needs_compiled)]


@pytest.fixture(params=KERNELS)
def kernel_backend(request) -> str:
    """``"numpy"`` or ``"compiled"`` — with the compiled library
    warmed up front so no test ever times a first-use build."""
    if request.param == "compiled":
        assert compiled.warm_up() == "compiled"
    return request.param


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def skewed_bytes() -> np.ndarray:
    """50 k exponential bytes — the workhorse payload."""
    r = np.random.default_rng(1)
    return np.minimum(np.floor(r.exponential(12.0, 50_000)), 255).astype(
        np.uint8
    )


@pytest.fixture(scope="session")
def uniformish_bytes() -> np.ndarray:
    r = np.random.default_rng(2)
    return r.integers(0, 256, 20_000).astype(np.uint8)


@pytest.fixture(scope="session")
def model11(skewed_bytes) -> SymbolModel:
    return SymbolModel.from_data(skewed_bytes, 11, alphabet_size=256)


@pytest.fixture(scope="session")
def model16(skewed_bytes) -> SymbolModel:
    return SymbolModel.from_data(skewed_bytes, 16, alphabet_size=256)


@pytest.fixture(scope="session")
def provider11(model11) -> StaticModelProvider:
    return StaticModelProvider(model11)
