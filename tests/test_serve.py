"""Tests for the batched content-delivery subsystem (repro.serve)."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core import recoil_decompress, recoil_service, recoil_shrink
from repro.core.decoder import build_thread_tasks
from repro.core.encoder import RecoilEncoder
from repro.errors import AdmissionError, MetadataError, ServeError
from repro.parallel.buffers import ScratchArena
from repro.parallel.fused import StreamSegment, fused_run_multi
from repro.serve import (
    AssetStore,
    BatchPolicy,
    RecoilService,
    RequestBatcher,
    ServiceConfig,
    ShrinkCache,
)
from repro.serve.batcher import DecodeRequest, geometry_bucket


@pytest.fixture(scope="module")
def payload(skewed_bytes):
    return skewed_bytes[:30_000]


@pytest.fixture(scope="module")
def store(payload, model11):
    store = AssetStore(default_num_splits=64)
    store.put("hero", payload, model=model11)
    return store


@pytest.fixture()
def service(store):
    svc = RecoilService(store=store)
    yield svc
    svc.close()


# ---------------------------------------------------------------------------
# Kernel layer: multi-buffer fusion
# ---------------------------------------------------------------------------


class TestFusedMulti:
    def test_mixed_assets_and_capacities_bit_exact(
        self, skewed_bytes, provider11
    ):
        enc = RecoilEncoder(provider11)
        a = enc.encode(skewed_bytes[:20_000], num_threads=16)
        b = enc.encode(skewed_bytes[20_000:29_000], num_threads=8)
        segments = []
        for encoded, caps in ((a, (1, 3, 16)), (b, (2, 8))):
            for cap in caps:
                md = encoded.metadata.combine(cap)
                tasks = build_thread_tasks(
                    md, len(encoded.words), encoded.final_states
                )
                segments.append(
                    StreamSegment(
                        encoded.words, tasks, encoded.num_symbols
                    )
                )
        expected = [skewed_bytes[:20_000]] * 3 + [
            skewed_bytes[20_000:29_000]
        ] * 2

        result = fused_run_multi(
            provider11, 32, segments, ScratchArena()
        )
        for segment_out, exp in zip(result.segment_outputs(), expected):
            assert np.array_equal(segment_out, exp)
        assert result.stats.tasks == sum(len(s.tasks) for s in segments)

    def test_single_segment_matches_plain_run(
        self, skewed_bytes, provider11
    ):
        enc = RecoilEncoder(provider11).encode(
            skewed_bytes[:10_000], num_threads=4
        )
        tasks = build_thread_tasks(
            enc.metadata, len(enc.words), enc.final_states
        )
        result = fused_run_multi(
            provider11,
            32,
            [StreamSegment(enc.words, tasks, enc.num_symbols)],
            ScratchArena(),
        )
        assert np.array_equal(result.out, skewed_bytes[:10_000])

    def test_empty_batch(self, provider11):
        result = fused_run_multi(provider11, 32, [], ScratchArena())
        assert result.out.size == 0
        assert result.slices == []

    def test_shared_word_buffer_deduped(self, skewed_bytes, provider11):
        from repro.parallel.fused import fuse_segments

        enc = RecoilEncoder(provider11).encode(
            skewed_bytes[:10_000], num_threads=8
        )
        segments = []
        for cap in (2, 4, 4):
            md = enc.metadata.combine(cap)
            tasks = build_thread_tasks(
                md, len(enc.words), enc.final_states
            )
            segments.append(
                StreamSegment(enc.words, tasks, enc.num_symbols)
            )
        words, _, _, _ = fuse_segments(segments)
        assert len(words) == len(enc.words)  # one copy, not three
        result = fused_run_multi(
            provider11, 32, segments, ScratchArena()
        )
        for sl in result.slices:
            assert np.array_equal(result.out[sl], skewed_bytes[:10_000])


# ---------------------------------------------------------------------------
# Store layer
# ---------------------------------------------------------------------------


class TestAssetStore:
    def test_unknown_asset(self, store):
        with pytest.raises(ServeError):
            store.get("nope")
        with pytest.raises(ServeError):
            store.shrunk("nope", 4)

    def test_shrunk_blob_matches_recoil_shrink(self, store):
        master = store.get("hero").blob
        for cap in (1, 4, 16):
            variant, _ = store.shrunk("hero", cap)
            assert variant.blob == recoil_shrink(master, cap)

    def test_cache_hit_on_repeat(self, store):
        v1, hit1 = store.shrunk("hero", 7)
        v2, hit2 = store.shrunk("hero", 7)
        assert v2 is v1 and hit2
        assert v1.tasks and v1.cost_symbols > 0

    def test_capacity_clamped_to_master(self, store):
        asset = store.get("hero")
        v_huge, _ = store.shrunk("hero", 10_000)
        v_max, hit = store.shrunk("hero", asset.max_capacity)
        assert v_max is v_huge and hit  # one cache entry for both

    def test_invalid_capacity(self, store):
        with pytest.raises(MetadataError):
            store.shrunk("hero", 0)

    def test_replacing_asset_invalidates_cache(self, payload, model11):
        store = AssetStore(default_num_splits=16)
        store.put("a", payload[:5_000], model=model11)
        v1, _ = store.shrunk("a", 2)
        store.put("a", payload[5_000:12_000], model=model11)
        v2, hit = store.shrunk("a", 2)
        assert not hit and v2 is not v1
        # Variants pin the asset they were derived from.
        assert v2.asset is store.get("a")
        assert v1.asset is not v2.asset

    def test_put_rejects_zero_splits(self, payload, model11):
        from repro.errors import EncodeError

        store = AssetStore()
        with pytest.raises(EncodeError):
            store.put("a", payload[:5_000], num_splits=0, model=model11)

    def test_lru_eviction(self, payload, model11):
        store = AssetStore(shrink_cache_entries=2, default_num_splits=32)
        store.put("a", payload[:5_000], model=model11)
        for cap in (1, 2, 3):
            store.shrunk("a", cap)
        assert len(store.cache) == 2
        assert store.cache.evictions == 1
        _, hit = store.shrunk("a", 1)  # evicted: recomputed
        assert not hit


class TestShrinkCache:
    def test_lru_order(self):
        cache = ShrinkCache(max_entries=2)
        cache.put(("a", 1), "x")
        cache.put(("a", 2), "y")
        assert cache.get(("a", 1)) == "x"  # refresh (a, 1)
        cache.put(("a", 3), "z")  # evicts (a, 2)
        assert cache.get(("a", 2)) is None
        assert cache.get(("a", 1)) == "x"

    def test_rejects_zero_capacity(self):
        with pytest.raises(ServeError):
            ShrinkCache(max_entries=0)
        with pytest.raises(ServeError):
            ShrinkCache(max_bytes=0)

    def test_byte_bound_evicts_lru(self, store):
        v1, _ = store.shrunk("hero", 1)
        v2, _ = store.shrunk("hero", 2)
        budget = max(len(v1.blob), len(v2.blob)) + 1  # fits one
        cache = ShrinkCache(max_entries=64, max_bytes=budget)
        cache.put(("hero", 1), v1)
        cache.put(("hero", 2), v2)  # over bytes: (hero, 1) goes
        assert cache.get(("hero", 1)) is None
        assert cache.get(("hero", 2)) is v2
        snap = cache.snapshot()
        assert snap["bytes"] == len(v2.blob) == cache.bytes
        assert snap["evictions"] == {
            "total": 1, "capacity": 0, "bytes": 1,
        }

    def test_invalidate_restores_byte_accounting(self, store):
        v1, _ = store.shrunk("hero", 1)
        cache = ShrinkCache(max_entries=4, max_bytes=10 * len(v1.blob))
        cache.put(("hero", 1), v1)
        cache.invalidate("hero")
        assert cache.bytes == 0 and len(cache) == 0

    def test_service_snapshot_exposes_cache_bytes(self, service):
        snap = service.metrics_snapshot()
        cache = snap["store"]["shrink_cache"]
        assert cache["bytes"] >= 0
        assert set(cache["evictions"]) == {"total", "capacity", "bytes"}


# ---------------------------------------------------------------------------
# Batcher layer
# ---------------------------------------------------------------------------


def _request(store, capacity):
    variant, _ = store.shrunk("hero", capacity)
    return DecodeRequest(store.get("hero"), variant)


class TestBatcher:
    def test_geometry_bucket_separates_capacities(self, store):
        r1 = _request(store, 1)
        r16 = _request(store, 16)
        r16b = _request(store, 16)
        assert r1.fuse_key != r16.fuse_key
        assert r16.fuse_key == r16b.fuse_key
        asset = store.get("hero")
        assert geometry_bucket(r1.variant.tasks, asset.lanes) > (
            geometry_bucket(r16.variant.tasks, asset.lanes)
        )

    def test_same_model_different_assets_share_fuse_key(
        self, payload, model11
    ):
        # Every put parses its own provider from the embedded model;
        # the content fingerprint must still let equal models fuse.
        store = AssetStore(default_num_splits=16)
        store.put("a", payload[:8_000], model=model11)
        store.put("b", payload[8_000:16_000], model=model11)
        va, _ = store.shrunk("a", 4)
        vb, _ = store.shrunk("b", 4)
        ra = DecodeRequest(va.asset, va)
        rb = DecodeRequest(vb.asset, vb)
        assert ra.asset.provider is not rb.asset.provider
        assert ra.fuse_key == rb.fuse_key

    def test_pop_batch_keeps_foreign_keys_queued(self, store):
        batcher = RequestBatcher(BatchPolicy(window_s=0.0))
        reqs = [_request(store, c) for c in (16, 1, 16, 1, 16)]
        for r in reqs:
            batcher.add(r)
        first = batcher.pop_batch()
        assert first == [reqs[0], reqs[2], reqs[4]]
        second = batcher.pop_batch()
        assert second == [reqs[1], reqs[3]]
        assert len(batcher) == 0

    def test_lane_budget_saturates_batch(self, store):
        policy = BatchPolicy(window_s=60.0, max_task_lanes=40)
        batcher = RequestBatcher(policy)
        for _ in range(4):
            batcher.add(_request(store, 16))  # 16 tasks each
        assert batcher.ready(now=batcher._pending[0].enqueued_at)
        batch = batcher.pop_batch()
        assert len(batch) == 2  # 32 lanes fit, 48 would not
        assert len(batcher) == 2

    def test_oversized_single_request_dispatches_alone(self, store):
        policy = BatchPolicy(window_s=0.0, max_task_lanes=4)
        batcher = RequestBatcher(policy)
        batcher.add(_request(store, 16))
        assert batcher.pop_batch()  # never starves

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_requests=0)
        with pytest.raises(ValueError):
            BatchPolicy(max_task_lanes=0)


# ---------------------------------------------------------------------------
# Service layer
# ---------------------------------------------------------------------------


class TestService:
    @pytest.mark.parametrize("capacity", [1, 3, 16, 1024])
    def test_decompress_bit_exact(self, service, payload, capacity):
        out = service.decompress("hero", capacity, timeout=120)
        assert np.array_equal(out, payload)

    def test_serve_bytes_decodable(self, service, payload):
        blob = service.serve("hero", 4)
        assert np.array_equal(recoil_decompress(blob), payload)

    def test_concurrent_submits_fuse(self, store, payload):
        config = ServiceConfig(batch_window_s=0.05)
        with RecoilService(store=store, config=config) as svc:
            requests = [svc.submit("hero", 8) for _ in range(6)]
            for request in requests:
                assert np.array_equal(request.result(120), payload)
            snap = svc.metrics_snapshot()
        assert snap["batches"]["largest_requests"] >= 2
        assert snap["requests"]["completed"] == 6

    def test_unbatched_mode_serves_singly(self, store, payload):
        config = ServiceConfig(batching=False)
        with RecoilService(store=store, config=config) as svc:
            requests = [svc.submit("hero", 4) for _ in range(3)]
            for request in requests:
                assert np.array_equal(request.result(120), payload)
            snap = svc.metrics_snapshot()
        assert snap["batches"]["largest_requests"] == 1
        assert snap["batches"]["dispatched"] == 3

    def test_unknown_asset(self, service):
        with pytest.raises(ServeError):
            service.decompress("nope", 4)

    def test_admission_backpressure_times_out(self, store):
        # Stall the dispatcher with a huge batch window so the first
        # request pins the in-flight budget; the second must then hit
        # the admission timeout.
        config = ServiceConfig(
            batch_window_s=60.0,
            max_inflight_symbols=1,
            admission_timeout_s=0.05,
        )
        svc = RecoilService(store=store, config=config)
        try:
            first = svc.submit("hero", 2)
            with pytest.raises(AdmissionError):
                svc.submit("hero", 2)
        finally:
            svc.close()
        # close() fails the still-pending first request.
        with pytest.raises(ServeError):
            first.result(1)
        snap = svc.metrics_snapshot()
        assert snap["admission"]["rejected"] == 1
        assert snap["admission"]["waits"] == 1

    def test_submit_after_close(self, store):
        svc = RecoilService(store=store)
        svc.close()
        assert svc.closed
        with pytest.raises(ServeError):
            svc.submit("hero", 2)
        svc.close()  # idempotent
        # A refused submit leaves the counters reconciled.
        snap = svc.metrics_snapshot()
        assert snap["requests"]["submitted"] == 0
        assert snap["shrink"]["cache_hits"] + (
            snap["shrink"]["cache_misses"]
        ) == 0

    def test_facade_builds_and_owns_assets(self, payload):
        svc = recoil_service({"a": payload[:4_000]}, num_splits=8)
        try:
            assert np.array_equal(
                svc.decompress("a", 4, timeout=120), payload[:4_000]
            )
        finally:
            svc.close()

    def test_sixteen_thread_stress_bit_exact(self, store, payload):
        """Satellite: hammer one service from 16 client threads."""
        config = ServiceConfig(batch_window_s=0.005)
        capacities = (1, 2, 4, 8, 16, 64)
        errors: list[Exception] = []

        with RecoilService(store=store, config=config) as svc:
            barrier = threading.Barrier(16)

            def client(worker: int) -> None:
                try:
                    barrier.wait(timeout=30)
                    for i in range(3):
                        cap = capacities[(worker + i) % len(capacities)]
                        out = svc.decompress("hero", cap, timeout=120)
                        if not np.array_equal(out, payload):
                            raise AssertionError(
                                f"bit mismatch (worker {worker}, "
                                f"capacity {cap})"
                            )
                except Exception as exc:  # propagate to main thread
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(w,))
                for w in range(16)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=300)
            assert not any(t.is_alive() for t in threads)
            snap = svc.metrics_snapshot()

        assert not errors, errors
        assert snap["requests"]["completed"] == 48
        assert snap["requests"]["failed"] == 0
        assert snap["batches"]["largest_requests"] >= 2  # fusion happened


class TestMetricsUnderConcurrency:
    """Satellite: ServeMetrics must stay consistent while clients and
    snapshot readers race (no torn reads, counters reconcile)."""

    def test_snapshots_consistent_while_submitters_race(
        self, store, payload
    ):
        clients, per_client = 8, 4
        config = ServiceConfig(batch_window_s=0.005)
        errors: list[Exception] = []
        violations: list[str] = []
        done = threading.Event()

        with RecoilService(store=store, config=config) as svc:

            def client(worker: int) -> None:
                try:
                    for i in range(per_client):
                        cap = (worker + i) % 16 + 1
                        out = svc.decompress("hero", cap, timeout=120)
                        if not np.array_equal(out, payload):
                            raise AssertionError("bit mismatch")
                except Exception as exc:
                    errors.append(exc)

            def watcher() -> None:
                # Snapshot continuously while traffic flows; every
                # view must be internally consistent.
                while not done.is_set():
                    snap = svc.metrics_snapshot()
                    reqs = snap["requests"]
                    if reqs["completed"] + reqs["failed"] > reqs[
                        "submitted"
                    ]:
                        violations.append(
                            f"finished > submitted: {reqs}"
                        )
                    flat = [
                        v
                        for section in snap.values()
                        for v in (
                            section.values()
                            if isinstance(section, dict)
                            else [section]
                        )
                        if isinstance(v, (int, float))
                    ]
                    if any(v < 0 for v in flat):
                        violations.append(f"negative counter: {snap}")

            threads = [
                threading.Thread(target=client, args=(w,))
                for w in range(clients)
            ]
            watchers = [
                threading.Thread(target=watcher, daemon=True)
                for _ in range(2)
            ]
            for t in watchers + threads:
                t.start()
            for t in threads:
                t.join(timeout=300)
            done.set()
            for t in watchers:
                t.join(timeout=30)
            snap = svc.metrics_snapshot()

        assert not errors, errors
        assert not violations, violations[:3]
        total = clients * per_client
        assert snap["requests"]["submitted"] == total
        assert snap["requests"]["completed"] == total
        assert snap["requests"]["failed"] == 0
        # The resilience section exists and is all-zero on a clean run.
        res = dict(snap["resilience"])
        res.pop("backend")
        res.pop("kernel")
        assert all(v == 0 for v in res.values()), res


class TestNetworkSnapshotInvariants:
    """Satellite: with a network front-end attached,
    ``metrics_snapshot()["network"]`` must stay internally consistent
    while connections churn — every snapshot taken mid-storm obeys the
    NetMetrics invariants, and the final one reconciles exactly."""

    def test_no_network_section_without_frontend(self, service):
        assert service.metrics_snapshot()["network"] is None

    def test_invariants_under_concurrent_connections(self, store, payload):
        from repro.serve import NetConfig, NetServer, RecoilClient

        clients, per_client = 6, 3
        errors: list[Exception] = []
        violations: list[str] = []
        done = threading.Event()

        def check(net: dict) -> None:
            conns = net["connections"]
            if conns["opened"] != conns["closed"] + conns["active"]:
                violations.append(f"opened != closed + active: {conns}")
            if conns["peak_active"] < conns["active"]:
                violations.append(f"peak < active: {conns}")
            kills = net["deadline_kills"]
            if kills["total"] != kills["read"] + kills["write"]:
                violations.append(f"kill total torn: {kills}")
            flat = [
                v
                for section in net.values()
                for v in (
                    section.values()
                    if isinstance(section, dict)
                    else [section]
                )
                if isinstance(v, (int, float))
            ]
            if any(v < 0 for v in flat):
                violations.append(f"negative counter: {net}")

        config = ServiceConfig(batch_window_s=0.005)
        with RecoilService(store=store, config=config) as svc:
            with NetServer(svc, NetConfig(port=0)) as server:
                host, port = server.address

                def client(worker: int) -> None:
                    try:
                        with RecoilClient(host, port, timeout_s=60) as c:
                            for i in range(per_client):
                                out = c.decompress("hero", 1 + (worker + i) % 4)
                                if not np.array_equal(out, payload):
                                    raise AssertionError("bit mismatch")
                    except Exception as exc:  # propagate to main thread
                        errors.append(exc)

                def watcher() -> None:
                    # Snapshot continuously while connections churn.
                    while not done.is_set():
                        check(svc.metrics_snapshot()["network"])

                threads = [
                    threading.Thread(target=client, args=(w,))
                    for w in range(clients)
                ]
                watchers = [
                    threading.Thread(target=watcher, daemon=True)
                    for _ in range(2)
                ]
                for t in watchers + threads:
                    t.start()
                for t in threads:
                    t.join(timeout=300)
                assert not any(t.is_alive() for t in threads)
                done.set()
                for t in watchers:
                    t.join(timeout=30)
            net = svc.metrics_snapshot()["network"]

        assert not errors, errors
        assert not violations, violations[:3]
        check(net)  # the final view obeys the same invariants...
        # ... and reconciles exactly after shutdown.
        assert net["connections"]["active"] == 0
        assert net["connections"]["opened"] == net["connections"]["closed"]
        assert net["connections"]["opened"] == clients
        assert net["requests"]["ok"] == clients * per_client
        assert net["requests"]["failed"] == 0
        assert net["protocol_errors"] == 0


class TestCloseReentrancy:
    """Satellite fix: ``RecoilService.close()`` is reachable from
    signal handlers and racing threads (the network front-end's drain
    path) — it must be idempotent, safe under a racing double-close,
    and re-entrant on the winner's own thread."""

    def test_racing_closers_none_raise(self, store):
        svc = RecoilService(store=store)
        barrier = threading.Barrier(4)
        errors: list[Exception] = []

        def closer() -> None:
            try:
                barrier.wait(timeout=30)
                svc.close()
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=closer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not any(t.is_alive() for t in threads)
        assert not errors, errors
        assert svc.closed

    def test_second_closer_waits_for_winner(self, store):
        # The loser must not return before the winner's teardown is
        # done (a drain path that proceeds while the service is only
        # half-closed would race the dispatcher).
        svc = RecoilService(store=store)
        in_teardown = threading.Event()
        release = threading.Event()
        real_drain = svc._batcher.drain

        def slow_drain():
            in_teardown.set()
            release.wait(30)
            return real_drain()

        svc._batcher.drain = slow_drain
        loser_returned = threading.Event()
        winner = threading.Thread(target=svc.close)
        winner.start()
        assert in_teardown.wait(10)

        def loser() -> None:
            svc.close()
            loser_returned.set()

        t = threading.Thread(target=loser)
        t.start()
        # While the winner is wedged in teardown, the loser waits.
        assert not loser_returned.wait(0.2)
        release.set()
        winner.join(30)
        t.join(30)
        assert loser_returned.is_set()
        assert svc.closed

    def test_reentrant_close_on_winner_thread_returns(self, store):
        # A signal handler interrupting the winner's own teardown
        # re-enters close() on the same thread: it must return
        # immediately (any wait would deadlock the teardown it is
        # waiting for).
        svc = RecoilService(store=store)
        reentered: list[bool] = []
        real_drain = svc._batcher.drain

        def drain_and_reenter():
            svc.close()  # re-entrant on the winner's thread
            reentered.append(True)
            return real_drain()

        svc._batcher.drain = drain_and_reenter
        svc.close()  # must complete despite the re-entry
        assert reentered
        assert svc.closed
        svc.close()  # still idempotent afterwards
