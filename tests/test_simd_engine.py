"""Low-level tests for the batched lane engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.decoder import build_thread_tasks
from repro.core.encoder import RecoilEncoder
from repro.errors import DecodeError
from repro.parallel.simd import LaneEngine, ThreadTask
from repro.rans.adaptive import StaticModelProvider
from repro.rans.interleaved import InterleavedEncoder


@pytest.fixture(scope="module")
def enc(skewed_bytes, model11):
    return InterleavedEncoder(model11, lanes=32).encode(
        skewed_bytes[:10_000], record_events=True
    )


def full_task(enc, check=True) -> ThreadTask:
    return ThreadTask(
        start_pos=len(enc.words) - 1,
        walk_hi=enc.num_symbols,
        walk_lo=1,
        commit_hi=enc.num_symbols,
        commit_lo=1,
        initial_states=enc.final_states,
        check_terminal=check,
        terminal_pos=-1,
    )


class TestEngineBasics:
    def test_full_stream_task(self, enc, provider11, skewed_bytes):
        out = np.empty(enc.num_symbols, dtype=np.uint8)
        stats = LaneEngine(provider11, 32).run(
            enc.words, [full_task(enc)], out
        )
        assert np.array_equal(out, skewed_bytes[:10_000])
        assert stats.symbols_decoded == enc.num_symbols
        assert stats.words_read == len(enc.words)
        assert stats.tasks == 1

    def test_empty_task_list(self, enc, provider11):
        out = np.empty(0, dtype=np.uint8)
        stats = LaneEngine(provider11, 32).run(enc.words, [], out)
        assert stats.iterations == 0

    def test_commit_window(self, enc, provider11, skewed_bytes):
        """Only the commit range is written."""
        t = full_task(enc, check=False)
        t.commit_lo, t.commit_hi = 101, 200
        out = np.zeros(enc.num_symbols, dtype=np.uint8)
        LaneEngine(provider11, 32).run(enc.words, [t], out)
        assert np.array_equal(out[100:200], skewed_bytes[100:200])
        assert np.all(out[200:] == 0)

    def test_bad_initial_states_shape(self, enc, provider11):
        t = full_task(enc)
        t.initial_states = np.zeros(7, dtype=np.uint64)
        with pytest.raises(DecodeError):
            LaneEngine(provider11, 32).run(
                enc.words, [t], np.empty(enc.num_symbols, dtype=np.uint8)
            )

    def test_start_pos_out_of_range(self, enc, provider11):
        t = full_task(enc)
        t.start_pos = len(enc.words)
        with pytest.raises(DecodeError):
            LaneEngine(provider11, 32).run(
                enc.words, [t], np.empty(enc.num_symbols, dtype=np.uint8)
            )

    def test_activation_outside_walk_rejected(self, enc, provider11):
        t = ThreadTask(
            start_pos=10, walk_hi=100, walk_lo=50,
            commit_hi=100, commit_lo=50,
            activations=[(101, 0, 1234)],
        )
        with pytest.raises(DecodeError):
            LaneEngine(provider11, 32).run(
                enc.words, [t], np.empty(enc.num_symbols, dtype=np.uint8)
            )

    def test_terminal_check_catches_bad_state(self, enc, provider11):
        t = full_task(enc)
        bad = np.asarray(enc.final_states).copy()
        bad[3] ^= 0x77
        t.initial_states = bad
        with pytest.raises(DecodeError):
            LaneEngine(provider11, 32).run(
                enc.words, [t],
                np.empty(enc.num_symbols, dtype=np.uint8),
            )


class TestEngineStats:
    def test_lane_utilization(self, skewed_bytes, model11):
        """Batched tasks keep lanes busy; utilization reflects it."""
        enc = RecoilEncoder(model11).encode(
            skewed_bytes[:20_000], num_threads=16
        )
        tasks = build_thread_tasks(
            enc.metadata, len(enc.words), enc.final_states
        )
        out = np.empty(enc.num_symbols, dtype=np.uint8)
        stats = LaneEngine(StaticModelProvider(model11), 32).run(
            enc.words, tasks, out
        )
        assert 0 < stats.lane_utilization <= 32
        assert stats.max_task_iterations <= stats.iterations

    def test_batched_iterations_far_below_serial(
        self, skewed_bytes, model11
    ):
        """The GPU effect: iterations shrink ~linearly with tasks."""
        provider = StaticModelProvider(model11)
        data = skewed_bytes[:20_000]
        enc1 = RecoilEncoder(model11).encode(data, num_threads=1)
        enc16 = RecoilEncoder(model11).encode(data, num_threads=16)
        out = np.empty(len(data), dtype=np.uint8)
        s1 = LaneEngine(provider, 32).run(
            enc1.words,
            build_thread_tasks(enc1.metadata, len(enc1.words),
                               enc1.final_states),
            out,
        )
        s16 = LaneEngine(provider, 32).run(
            enc16.words,
            build_thread_tasks(enc16.metadata, len(enc16.words),
                               enc16.final_states),
            out,
        )
        assert s16.iterations < s1.iterations / 8


class TestSynchronizationPhase:
    def test_uninitialized_lanes_never_read(self, skewed_bytes, model11):
        """Offset-alignment invariant (§4.1.1): total reads by a split
        thread equal the encode-side words in its region — if an
        uninitialized lane ever read, terminal checks downstream would
        explode.  We verify by decoding each thread alone."""
        enc = RecoilEncoder(model11).encode(
            skewed_bytes[:20_000], num_threads=8
        )
        tasks = build_thread_tasks(
            enc.metadata, len(enc.words), enc.final_states
        )
        provider = StaticModelProvider(model11)
        out = np.empty(enc.num_symbols, dtype=np.uint8)
        for t in tasks:
            LaneEngine(provider, 32).run(enc.words, [t], out)
        # After running all tasks separately, every commit range is
        # present and correct.
        assert np.array_equal(out, skewed_bytes[:20_000])

    def test_threads_decode_independently_any_order(
        self, skewed_bytes, model11
    ):
        """Recoil threads share nothing: running them in reverse order
        (or any order) yields identical output."""
        enc = RecoilEncoder(model11).encode(
            skewed_bytes[:20_000], num_threads=8
        )
        tasks = build_thread_tasks(
            enc.metadata, len(enc.words), enc.final_states
        )
        provider = StaticModelProvider(model11)
        out = np.empty(enc.num_symbols, dtype=np.uint8)
        for t in reversed(tasks):
            LaneEngine(provider, 32).run(enc.words, [t], out)
        assert np.array_equal(out, skewed_bytes[:20_000])
