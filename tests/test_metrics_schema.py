"""Snapshot-schema drift guard for the metrics layer.

The failure mode this prevents: someone adds a ``record_*`` counter to
:class:`~repro.serve.metrics.ServeMetrics` or ``NetMetrics`` but
forgets to surface it in ``snapshot()`` — the number is collected,
locked, and then silently invisible to ``recoil serve-bench --json``,
``OP_METRICS`` and every dashboard built on them.

Both directions are checked:

- **forward**: every public numeric counter attribute, stamped with a
  unique sentinel, must appear among the snapshot's numeric leaves;
- **reverse**: every numeric leaf of the snapshot must either be one
  of those sentinels (i.e. backed by a counter) or a key on the
  explicit *derived-values* allowlist — so derived values stay
  deliberate, not accidental.
"""

from __future__ import annotations

import pytest

from repro.serve.metrics import NetMetrics, ServeMetrics

#: snapshot keys computed from counters rather than stored (adding a
#: derived value means adding it here — that is the point).
DERIVED_KEYS = {
    ServeMetrics: {"mean_latency_s", "mean_requests", "hit_rate"},
    NetMetrics: {"active", "total"},
}


def _counter_attrs(metrics) -> dict[str, int | float]:
    """Public numeric counter attributes (the lock and the stage
    histogram dict are not counters)."""
    return {
        name: value
        for name, value in vars(metrics).items()
        if not name.startswith("_")
        and isinstance(value, (int, float))
        and not isinstance(value, bool)
    }


def _numeric_leaves(tree, prefix="") -> dict[str, int | float]:
    """Flatten a snapshot dict to ``path -> numeric value`` leaves,
    skipping the stage histogram subtree (histograms are sampled
    distributions, not counters)."""
    leaves: dict[str, int | float] = {}
    for key, value in tree.items():
        if key == "stage_latency_ms":
            continue
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            leaves.update(_numeric_leaves(value, prefix=f"{path}."))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            leaves[path] = value
    return leaves


def _stamp(metrics) -> dict[str, int | float]:
    """Give every counter a unique sentinel value (type-preserving)."""
    sentinels = {}
    for i, (name, value) in enumerate(sorted(_counter_attrs(metrics).items())):
        sentinel = 100_003 + 7 * i + (0.5 if isinstance(value, float) else 0)
        setattr(metrics, name, sentinel)
        sentinels[name] = sentinel
    return sentinels


@pytest.mark.parametrize("cls", [ServeMetrics, NetMetrics])
class TestSnapshotSchema:
    def test_every_counter_surfaces_in_snapshot(self, cls):
        metrics = cls()
        sentinels = _stamp(metrics)
        assert sentinels, "no counters found — enumeration broke"
        leaf_values = set(_numeric_leaves(metrics.snapshot()).values())
        missing = {
            name: sentinel
            for name, sentinel in sentinels.items()
            if sentinel not in leaf_values
        }
        assert not missing, (
            f"{cls.__name__} counters not visible in snapshot(): "
            f"{sorted(missing)} — add them to snapshot() (or drop the "
            "counter)"
        )

    def test_every_leaf_is_counter_backed_or_declared_derived(self, cls):
        metrics = cls()
        sentinels = set(_stamp(metrics).values())
        allowlist = DERIVED_KEYS[cls]
        unexplained = {
            path
            for path, value in _numeric_leaves(metrics.snapshot()).items()
            if value not in sentinels
            and path.rsplit(".", 1)[-1] not in allowlist
        }
        assert not unexplained, (
            f"{cls.__name__}.snapshot() leaves backed by no counter and "
            f"not declared derived: {sorted(unexplained)} — either back "
            "them with a counter attribute or add them to DERIVED_KEYS"
        )

    def test_stage_histograms_in_snapshot(self, cls):
        metrics = cls()
        metrics.record_stage(next(iter(metrics.stages)), 0.01)
        stages = metrics.snapshot()["stage_latency_ms"]
        assert set(stages) == set(metrics.stages)
        recorded = next(iter(metrics.stages))
        assert stages[recorded]["count"] == 1
        assert stages[recorded]["p99_ms"] == pytest.approx(10.0, rel=0.1)


def test_record_methods_feed_snapshot_smoke():
    """Light behavioral pass: drive each record_* method once and
    confirm the obvious leaves move."""
    m = ServeMetrics()
    m.record_submit()
    m.record_completion(0.5, ok=True)
    m.record_batch(num_requests=3, num_tasks=4, symbols=100, seconds=0.1)
    m.record_shrink(1000, cache_hit=True)
    snap = m.snapshot()
    assert snap["requests"]["submitted"] == 1
    assert snap["requests"]["completed"] == 1
    assert snap["batches"]["dispatched"] == 1
    assert snap["shrink"]["bytes_served"] == 1000

    n = NetMetrics()
    n.connection_opened()
    n.record_request(ok=True)
    n.record_stage("e2e", 0.02)
    snap = n.snapshot()
    assert snap["connections"]["opened"] == 1
    assert snap["connections"]["active"] == 1
    assert snap["requests"]["ok"] == 1
    assert snap["stage_latency_ms"]["e2e"]["count"] == 1
