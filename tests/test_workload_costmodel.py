"""Tests for work accounting and the device cost model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel.costmodel import (
    DeviceProfile,
    PROFILES,
    project_throughput,
)
from repro.parallel.simd import ThreadTask
from repro.parallel.workload import WorkloadSummary, summarize_tasks


def make_summary(per_task) -> WorkloadSummary:
    per = np.asarray(per_task, dtype=np.int64)
    return WorkloadSummary(
        num_tasks=len(per),
        payload_symbols=int(per.sum()),
        overhead_symbols=0,
        per_task_symbols=per,
    )


class TestWorkload:
    def test_summarize_tasks(self):
        tasks = [
            ThreadTask(0, walk_hi=100, walk_lo=1, commit_hi=80,
                       commit_lo=1),
            ThreadTask(0, walk_hi=220, walk_lo=81, commit_hi=220,
                       commit_lo=81),
        ]
        s = summarize_tasks(tasks)
        assert s.num_tasks == 2
        assert s.payload_symbols == 80 + 140
        assert s.total_symbols == 100 + 140
        assert s.overhead_symbols == 20

    def test_makespan_single_worker(self):
        s = make_summary([10, 20, 30])
        assert s.makespan_symbols(1) == 60

    def test_makespan_enough_workers(self):
        s = make_summary([10, 20, 30])
        assert s.makespan_symbols(3) == 30
        assert s.makespan_symbols(10) == 30

    def test_makespan_lpt(self):
        """LPT packs 4 tasks of 3,3,2,2 onto 2 workers as 5/5."""
        s = make_summary([3, 3, 2, 2])
        assert s.makespan_symbols(2) == 5

    def test_makespan_monotone_in_workers(self):
        r = np.random.default_rng(0)
        s = make_summary(r.integers(1, 100, 50))
        spans = [s.makespan_symbols(w) for w in (1, 2, 4, 8, 16)]
        assert spans == sorted(spans, reverse=True)

    def test_makespan_bad_workers(self):
        with pytest.raises(ValueError):
            make_summary([1]).makespan_symbols(0)

    def test_imbalance(self):
        assert make_summary([10, 10, 10]).imbalance == pytest.approx(1.0)
        assert make_summary([30, 10, 20]).imbalance == pytest.approx(1.5)

    def test_empty(self):
        s = make_summary([])
        assert s.makespan_symbols(4) == 0.0
        assert s.imbalance == 1.0
        assert s.overhead_fraction == 0.0


class TestCostModel:
    def test_profiles_exist(self):
        for name in (
            "cpu-avx512", "cpu-avx2", "cpu-single-thread",
            "cpu-single-thread-avx2", "gpu-turing", "gpu-turing-multians",
        ):
            assert name in PROFILES

    def test_parallel_beats_serial(self):
        s = make_summary([1000] * 16)
        fast = PROFILES["cpu-avx512"].seconds_for(s, 0, 11)
        slow = PROFILES["cpu-single-thread"].seconds_for(s, 0, 11)
        assert slow > 10 * fast

    def test_n16_penalty(self):
        s = make_summary([10_000] * 16)
        p = PROFILES["cpu-avx512"]
        assert p.seconds_for(s, 0, 16) > p.seconds_for(s, 0, 11)

    def test_word_reads_cost(self):
        s = make_summary([10_000] * 16)
        p = PROFILES["cpu-avx512"]
        assert p.seconds_for(s, 100_000, 11) > p.seconds_for(s, 0, 11)

    def test_avx512_beats_avx2(self):
        s = make_summary([10_000] * 16)
        assert (
            PROFILES["cpu-avx512"].seconds_for(s, 0, 11)
            < PROFILES["cpu-avx2"].seconds_for(s, 0, 11)
        )

    def test_projection_by_name_or_object(self):
        s = make_summary([1000] * 4)
        a = project_throughput("cpu-avx2", s, 0, 11, 4000)
        b = project_throughput(PROFILES["cpu-avx2"], s, 0, 11, 4000)
        assert a == b
        assert a > 0

    def test_straggler_hurts(self):
        """One long task caps throughput even with many workers —
        exactly why the split heuristic balances symbol counts."""
        balanced = make_summary([100_000] * 16)
        straggler = make_summary([100_000] * 15 + [800_000])
        p = PROFILES["cpu-avx512"]
        assert (
            p.seconds_for(straggler, 0, 11)
            > 3 * p.seconds_for(balanced, 0, 11)
        )

    def test_calibration_anchors(self):
        """Sanity-pin the paper-scale anchors: 10 MB text decodes at
        ~0.7 GB/s single-thread and ~8-13 GB/s on 16 cores (AVX512)."""
        n = 10_000_000
        single = make_summary([n])
        st = project_throughput(
            "cpu-single-thread", single, int(0.33 * n), 11, n
        )
        assert 0.4e9 < st < 1.3e9
        sixteen = make_summary([n // 16] * 16)
        cpu = project_throughput(
            "cpu-avx512", sixteen, int(0.33 * n), 11, n
        )
        assert 6e9 < cpu < 14e9
        gpu_tasks = make_summary([n // 2176] * 2176)
        gpu = project_throughput(
            "gpu-turing", gpu_tasks, int(0.33 * n), 11, n
        )
        assert 50e9 < gpu < 130e9
