"""Failure injection: corrupted inputs must fail *controlled*.

A decoder facing random corruption may either (a) raise a library
error (:class:`~repro.errors.ReproError` — preferred), (b) raise a
bounded builtin (`ValueError`/`OverflowError`/`MemoryError` from a
nonsense length field hitting numpy), or (c) decode to output that
differs from the original.  What it must never do is hang, crash the
interpreter, or silently return the *right* data from wrong bytes
when integrity checks could have caught it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import RecoilCodec, parse_container, recoil_shrink
from repro.errors import (
    ContainerError,
    MetadataError,
    ModelError,
    ReproError,
)
from repro.tans import MultiansCodec, TansTable

ACCEPTABLE = (ReproError, ValueError, OverflowError, MemoryError, IndexError)


@pytest.fixture(scope="module")
def codec(model11):
    return RecoilCodec(model11)


@pytest.fixture(scope="module")
def blob(codec, skewed_bytes):
    return codec.compress(skewed_bytes[:20_000], 16)


def _flip(blob: bytes, pos: int, mask: int = 0xFF) -> bytes:
    b = bytearray(blob)
    b[pos] ^= mask
    return bytes(b)


class TestContainerFuzz:
    @pytest.mark.parametrize("seed", range(24))
    def test_random_byte_corruption(self, codec, blob, skewed_bytes, seed):
        r = np.random.default_rng(seed)
        pos = int(r.integers(0, len(blob)))
        bad = _flip(blob, pos, int(r.integers(1, 256)))
        try:
            out = codec.decompress(bad)
        except ACCEPTABLE:
            return
        assert not np.array_equal(out, skewed_bytes[:20_000]) or bad == blob

    @pytest.mark.parametrize("cut", [1, 7, 64, 1000])
    def test_truncation(self, codec, blob, cut):
        with pytest.raises(ACCEPTABLE):
            codec.decompress(blob[:-cut])

    def test_empty_blob(self, codec):
        with pytest.raises(ACCEPTABLE):
            codec.decompress(b"")

    def test_garbage_blob(self, codec):
        r = np.random.default_rng(0)
        with pytest.raises(ACCEPTABLE):
            codec.decompress(bytes(r.integers(0, 256, 500, dtype=np.uint8)))

    @pytest.mark.parametrize("seed", range(8))
    def test_shrink_of_corrupt_blob(self, blob, seed):
        r = np.random.default_rng(100 + seed)
        pos = int(r.integers(0, min(len(blob), 400)))
        bad = _flip(blob, pos)
        try:
            small = recoil_shrink(bad, 4)
            parse_container(small, require_model=False)
        except ACCEPTABLE:
            pass

    def test_header_field_corruption_each_byte(self, codec, blob,
                                               skewed_bytes):
        """Flip every byte of the fixed header individually."""
        for pos in range(12):
            bad = _flip(blob, pos)
            try:
                out = codec.decompress(bad)
            except ACCEPTABLE:
                continue
            assert not np.array_equal(out, skewed_bytes[:20_000])


class TestMultiansFuzz:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_corruption(self, skewed_bytes, seed):
        table = TansTable.from_data(skewed_bytes, 11, alphabet_size=256)
        mc = MultiansCodec(table)
        blob = mc.compress(skewed_bytes[:5_000])
        r = np.random.default_rng(seed)
        bad = _flip(blob, int(r.integers(0, len(blob))))
        try:
            out, _ = mc.decompress(bad, num_threads=8)
        except ACCEPTABLE:
            return
        # tANS self-synchronizes, so payload corruption yields locally
        # wrong output rather than an error — that is expected.
        assert len(out) == 5_000


#: the ONLY errors the ingest surfaces may raise on malformed bytes.
STRICT = (ContainerError, MetadataError)


class TestIngestStrictErrorSurface:
    """`put_container` and `recoil info` face untrusted bytes directly:
    they must raise ContainerError/MetadataError, never a builtin
    (IndexError, struct.error, ValueError) leaking from a parser."""

    @pytest.mark.parametrize("cut", [1, 2, 5, 9, 17, 33, 100, 999])
    def test_truncation_through_put_container(self, blob, cut):
        from repro.serve import AssetStore

        store = AssetStore()
        with pytest.raises(STRICT):
            store.put_container("x", blob[: len(blob) - cut])

    @pytest.mark.parametrize("length", [0, 1, 3, 4, 5, 6, 7, 11])
    def test_tiny_blobs_through_put_container(self, blob, length):
        from repro.serve import AssetStore

        store = AssetStore()
        with pytest.raises(STRICT):
            store.put_container("x", blob[:length])

    @pytest.mark.parametrize("seed", range(48))
    def test_bit_flips_through_put_container(self, blob, seed):
        from repro.serve import AssetStore

        r = np.random.default_rng(1000 + seed)
        # Bias half the flips into the header/metadata region where
        # the parsers live; payload flips parse fine by design.
        hi = len(blob) if seed % 2 else min(len(blob), 600)
        bad = _flip(blob, int(r.integers(0, hi)), int(r.integers(1, 256)))
        store = AssetStore()
        try:
            store.put_container("x", bad)
        except STRICT:
            pass  # typed rejection is the contract

    @pytest.mark.parametrize("seed", range(24))
    def test_bit_flips_through_parse_container(self, blob, seed):
        r = np.random.default_rng(2000 + seed)
        bad = _flip(
            blob,
            int(r.integers(0, min(len(blob), 600))),
            int(r.integers(1, 256)),
        )
        try:
            parse_container(bad)
        except STRICT:
            pass

    def test_implausible_alphabet_rejected_typed(self):
        # A model blob claiming a 2^40-symbol alphabet must refuse
        # with a typed error, not allocate its way to MemoryError.
        from repro.bitio.varint import encode_uvarint
        from repro.core.container import MAGIC, VERSION
        from repro.rans.model import SymbolModel

        with pytest.raises(ModelError):
            SymbolModel.from_bytes(
                encode_uvarint(11) + encode_uvarint(1 << 40)
            )
        # Through the container surface the same corruption converts
        # to the strict ingest error type.
        lanes = 4
        evil = (
            MAGIC
            + bytes([VERSION, 0x01, 11])  # flags: embedded model
            + encode_uvarint(lanes)
            + encode_uvarint(100)  # num_symbols
            + encode_uvarint(50)  # num_words
            + b"\0" * (4 * lanes)  # final states
            + encode_uvarint(11)  # model quant_bits
            + encode_uvarint(1 << 40)  # model alphabet: absurd
        )
        with pytest.raises(ContainerError, match="model"):
            parse_container(evil)

    def test_implausible_entry_count_rejected_typed(self):
        from repro.bitio.varint import encode_uvarint
        from repro.core.serialization import parse_metadata

        bogus = (
            encode_uvarint(32)  # lanes
            + encode_uvarint(1000)  # num_symbols
            + encode_uvarint(100)  # num_words
            + encode_uvarint(1 << 50)  # entry count >> section size
        )
        with pytest.raises(MetadataError, match="implausible"):
            parse_metadata(bogus)

    @pytest.mark.parametrize("cut", [1, 8, 64])
    def test_cli_info_fails_controlled(self, blob, cut, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.rcl"
        bad.write_bytes(blob[: len(blob) - cut])
        rc = main(["info", str(bad)])
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_cli_info_garbage_file(self, tmp_path, capsys):
        from repro.cli import main

        r = np.random.default_rng(3)
        bad = tmp_path / "junk.rcl"
        bad.write_bytes(bytes(r.integers(0, 256, 800, dtype=np.uint8)))
        rc = main(["info", str(bad)])
        assert rc == 1
        assert "error:" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Wire-protocol fuzzing (DESIGN.md §16).
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def net_server():
    """One hardened server shared by every fuzz case — surviving the
    whole gauntlet on a single instance IS the test."""
    import repro.data as data_mod
    from repro.serve import NetConfig, NetServer, RecoilService

    payload = data_mod.text_surrogate(10_000, target_entropy=5.29, seed=11)
    with RecoilService() as service:
        service.put_asset("a", payload, num_splits=16)
        config = NetConfig(
            port=0, idle_timeout_s=5.0, read_timeout_s=2.0
        )
        with NetServer(service, config) as server:
            yield server, payload


def _assert_server_healthy(server, payload) -> None:
    """A fresh, well-formed request must succeed bit-identically."""
    from repro.serve import RecoilClient

    host, port = server.address
    with RecoilClient(host, port, timeout_s=30) as client:
        out = client.decompress("a", 4)
    assert np.array_equal(out, payload)


class TestWireProtocolFuzz:
    """Hostile bytes at the socket: every case must end in a typed
    ``ST_ERROR`` frame or a clean close — never a crash, never a hang
    — and the server must then serve a fresh well-formed request
    bit-identically."""

    def _open(self, server):
        import socket

        host, port = server.address
        sock = socket.create_connection((host, port), timeout=10)
        sock.settimeout(10)
        return sock

    def _expect_error_or_close(self, sock) -> None:
        from repro.serve import protocol

        buf = bytearray()
        try:
            while len(buf) < protocol.HEADER_BYTES:
                chunk = sock.recv(protocol.HEADER_BYTES - len(buf))
                if not chunk:
                    return  # clean close: acceptable
                buf += chunk
            ftype, length = protocol.parse_header(
                bytes(buf), protocol.RESPONSE_TYPES
            )
            assert ftype == protocol.ST_ERROR
            body = bytearray()
            while len(body) < length:
                chunk = sock.recv(length - len(body))
                if not chunk:
                    return
                body += chunk
            exc = protocol.parse_error(bytes(body))
            from repro.errors import ProtocolError

            assert isinstance(exc, ProtocolError)
        except (TimeoutError, ConnectionError, OSError):
            return  # reset: also a controlled outcome
        finally:
            sock.close()

    def test_garbage_bytes(self, net_server):
        server, payload = net_server
        r = np.random.default_rng(0)
        for seed in range(8):
            sock = self._open(server)
            sock.sendall(bytes(r.integers(0, 256, 64, dtype=np.uint8)))
            self._expect_error_or_close(sock)
        _assert_server_healthy(server, payload)

    def test_bad_magic(self, net_server):
        server, payload = net_server
        sock = self._open(server)
        sock.sendall(b"XX\x01\x00\x00\x00\x00")
        self._expect_error_or_close(sock)
        _assert_server_healthy(server, payload)

    def test_unknown_frame_type(self, net_server):
        from repro.serve import protocol

        server, payload = net_server
        sock = self._open(server)
        sock.sendall(protocol.MAGIC + b"\x7f\x00\x00\x00\x00")
        self._expect_error_or_close(sock)
        _assert_server_healthy(server, payload)

    def test_response_type_as_request(self, net_server):
        from repro.serve import protocol

        server, payload = net_server
        sock = self._open(server)
        sock.sendall(protocol.encode_frame(protocol.ST_OK, b"sneaky"))
        self._expect_error_or_close(sock)
        _assert_server_healthy(server, payload)

    def test_oversized_declared_length(self, net_server):
        """A 4 GiB declared body must be rejected from the header
        alone — before any allocation, without reading the body."""
        import struct

        from repro.serve import protocol

        server, payload = net_server
        sock = self._open(server)
        sock.sendall(
            protocol.MAGIC
            + bytes([protocol.OP_PING])
            + struct.pack(">I", 0xFFFF_FFFF)
        )
        self._expect_error_or_close(sock)
        _assert_server_healthy(server, payload)

    @pytest.mark.parametrize("cut", [1, 3, 6])
    def test_truncated_header_then_disconnect(self, net_server, cut):
        from repro.serve import protocol

        server, payload = net_server
        frame = protocol.encode_decode_request("a", 4)
        sock = self._open(server)
        sock.sendall(frame[:cut])
        sock.close()  # mid-header disconnect
        _assert_server_healthy(server, payload)

    def test_midframe_disconnect(self, net_server):
        from repro.serve import protocol

        server, payload = net_server
        frame = protocol.encode_decode_request("a", 4)
        sock = self._open(server)
        sock.sendall(frame[:-3])  # declared body longer than sent
        sock.close()
        _assert_server_healthy(server, payload)

    @pytest.mark.parametrize("seed", range(12))
    def test_bit_flipped_header(self, net_server, seed):
        from repro.serve import protocol

        server, payload = net_server
        frame = bytearray(protocol.encode_decode_request("a", 4))
        r = np.random.default_rng(seed)
        pos = int(r.integers(0, protocol.HEADER_BYTES))
        frame[pos] ^= int(r.integers(1, 256))
        sock = self._open(server)
        sock.sendall(bytes(frame))
        # A flipped length byte may leave the server waiting for more
        # body than we sent — close our end rather than waiting out
        # its read deadline; the server must survive either way.
        sock.close()
        _assert_server_healthy(server, payload)

    def test_malformed_body_typed_error(self, net_server):
        """Valid header, garbage body: the cursor must reject it with
        a typed ProtocolError frame."""
        from repro.serve import protocol

        server, payload = net_server
        sock = self._open(server)
        sock.sendall(
            protocol.encode_frame(protocol.OP_DECODE, b"\x00")
        )
        self._expect_error_or_close(sock)
        _assert_server_healthy(server, payload)

    def test_zero_capacity_rejected(self, net_server):
        from repro.serve import protocol

        server, payload = net_server
        name = b"\x00\x01a"
        body = name + (0).to_bytes(4, "big") + (0).to_bytes(4, "big")
        sock = self._open(server)
        sock.sendall(protocol.encode_frame(protocol.OP_DECODE, body))
        self._expect_error_or_close(sock)
        _assert_server_healthy(server, payload)

    HOSTILE_NAMES = [
        b"",
        b".",
        b"..",
        b"../../etc/passwd",
        b"a/b",
        b"a\\b",
        b"a\x00b",
        b"a\x1fb",
        b"a\x7fb",
        b"x" * 1025,
        b"\xff\xfe",  # not UTF-8
    ]

    @pytest.mark.parametrize("raw", HOSTILE_NAMES)
    def test_hostile_asset_name_via_put(self, net_server, raw):
        """Path traversal / control chars / oversize / non-UTF-8 names
        through OP_PUT: the honest client refuses to encode these, so
        hand-build the frame.  The server must answer with a typed
        error (never create a file outside the store) and keep
        serving."""
        from repro.serve import protocol

        server, payload = net_server
        body = len(raw).to_bytes(2, "big") + raw + b"fake-container"
        sock = self._open(server)
        sock.sendall(protocol.encode_frame(protocol.OP_PUT, body))
        self._expect_error_or_close(sock)
        _assert_server_healthy(server, payload)

    def test_hostile_name_via_serve_request(self, net_server):
        from repro.serve import protocol

        server, payload = net_server
        raw = b"../steal"
        body = (
            len(raw).to_bytes(2, "big") + raw + (4).to_bytes(4, "big")
        )
        sock = self._open(server)
        sock.sendall(protocol.encode_frame(protocol.OP_SERVE, body))
        self._expect_error_or_close(sock)
        _assert_server_healthy(server, payload)

    def test_fuzz_storm_then_healthy(self, net_server):
        """A burst of random hostile connections in a row; the server
        must stay up and bit-exact throughout."""
        server, payload = net_server
        r = np.random.default_rng(99)
        for _ in range(24):
            sock = self._open(server)
            n = int(r.integers(1, 40))
            sock.sendall(bytes(r.integers(0, 256, n, dtype=np.uint8)))
            if r.integers(0, 2):
                self._expect_error_or_close(sock)
            else:
                sock.close()  # abandon mid-conversation
        _assert_server_healthy(server, payload)
        snap = server.metrics.snapshot()
        assert snap["protocol_errors"] > 0
