"""Failure injection: corrupted inputs must fail *controlled*.

A decoder facing random corruption may either (a) raise a library
error (:class:`~repro.errors.ReproError` — preferred), (b) raise a
bounded builtin (`ValueError`/`OverflowError`/`MemoryError` from a
nonsense length field hitting numpy), or (c) decode to output that
differs from the original.  What it must never do is hang, crash the
interpreter, or silently return the *right* data from wrong bytes
when integrity checks could have caught it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import RecoilCodec, parse_container, recoil_shrink
from repro.errors import ReproError
from repro.tans import MultiansCodec, TansTable

ACCEPTABLE = (ReproError, ValueError, OverflowError, MemoryError, IndexError)


@pytest.fixture(scope="module")
def codec(model11):
    return RecoilCodec(model11)


@pytest.fixture(scope="module")
def blob(codec, skewed_bytes):
    return codec.compress(skewed_bytes[:20_000], 16)


def _flip(blob: bytes, pos: int, mask: int = 0xFF) -> bytes:
    b = bytearray(blob)
    b[pos] ^= mask
    return bytes(b)


class TestContainerFuzz:
    @pytest.mark.parametrize("seed", range(24))
    def test_random_byte_corruption(self, codec, blob, skewed_bytes, seed):
        r = np.random.default_rng(seed)
        pos = int(r.integers(0, len(blob)))
        bad = _flip(blob, pos, int(r.integers(1, 256)))
        try:
            out = codec.decompress(bad)
        except ACCEPTABLE:
            return
        assert not np.array_equal(out, skewed_bytes[:20_000]) or bad == blob

    @pytest.mark.parametrize("cut", [1, 7, 64, 1000])
    def test_truncation(self, codec, blob, cut):
        with pytest.raises(ACCEPTABLE):
            codec.decompress(blob[:-cut])

    def test_empty_blob(self, codec):
        with pytest.raises(ACCEPTABLE):
            codec.decompress(b"")

    def test_garbage_blob(self, codec):
        r = np.random.default_rng(0)
        with pytest.raises(ACCEPTABLE):
            codec.decompress(bytes(r.integers(0, 256, 500, dtype=np.uint8)))

    @pytest.mark.parametrize("seed", range(8))
    def test_shrink_of_corrupt_blob(self, blob, seed):
        r = np.random.default_rng(100 + seed)
        pos = int(r.integers(0, min(len(blob), 400)))
        bad = _flip(blob, pos)
        try:
            small = recoil_shrink(bad, 4)
            parse_container(small, require_model=False)
        except ACCEPTABLE:
            pass

    def test_header_field_corruption_each_byte(self, codec, blob,
                                               skewed_bytes):
        """Flip every byte of the fixed header individually."""
        for pos in range(12):
            bad = _flip(blob, pos)
            try:
                out = codec.decompress(bad)
            except ACCEPTABLE:
                continue
            assert not np.array_equal(out, skewed_bytes[:20_000])


class TestMultiansFuzz:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_corruption(self, skewed_bytes, seed):
        table = TansTable.from_data(skewed_bytes, 11, alphabet_size=256)
        mc = MultiansCodec(table)
        blob = mc.compress(skewed_bytes[:5_000])
        r = np.random.default_rng(seed)
        bad = _flip(blob, int(r.integers(0, len(blob))))
        try:
            out, _ = mc.decompress(bad, num_threads=8)
        except ACCEPTABLE:
            return
        # tANS self-synchronizes, so payload corruption yields locally
        # wrong output rather than an error — that is expected.
        assert len(out) == 5_000
