"""Durable tiered asset store: crash-safe persistence, quarantine,
cold-start recovery (repro.serve.disk + the tiered AssetStore).

The crash-consistency property under test everywhere: a restarted
store NEVER serves a byte that fails its checksum — every asset is
either recovered bit-identical or quarantined with a typed
:class:`~repro.errors.IntegrityError`, and the store keeps serving
the survivors.
"""

from __future__ import annotations

import os
import signal
import stat as stat_mod
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro import faults
from repro.core.api import recoil_compress, recoil_decompress
from repro.data import text_surrogate
from repro.errors import IntegrityError, ProtocolError, ServeError
from repro.serve import AssetStore, DiskStore, RecoilService, ServiceConfig
from repro.serve.disk import (
    RECORD_SUFFIX,
    RecoveryReport,
    decode_record,
    encode_record,
)
from repro.serve.protocol import asset_name_problem


@pytest.fixture(scope="module")
def payloads() -> dict[str, np.ndarray]:
    return {
        f"asset{i}": text_surrogate(
            4_000, target_entropy=5.29, seed=21 + i
        )
        for i in range(3)
    }


@pytest.fixture(scope="module")
def blobs(payloads) -> dict[str, bytes]:
    return {
        name: recoil_compress(data, num_splits=8, quant_bits=11)
        for name, data in payloads.items()
    }


# ---------------------------------------------------------------------------
# Record format: self-verifying container-on-disk framing
# ---------------------------------------------------------------------------


class TestRecordFormat:
    def test_roundtrip(self):
        record = encode_record("hero", b"\x00\x01payload\xff")
        assert decode_record(record, "rec") == ("hero", b"\x00\x01payload\xff")

    def test_empty_blob_roundtrips(self):
        assert decode_record(encode_record("e", b""), "rec") == ("e", b"")

    def test_every_truncation_length_raises_typed(self):
        """Sweep EVERY prefix of the record — magic, name length, name,
        blob length, blob, and footer regions alike must all fail with
        IntegrityError, never return bytes, never raise untyped."""
        record = encode_record("trunc", b"x" * 64)
        for cut in range(len(record)):
            with pytest.raises(IntegrityError):
                decode_record(record[:cut], "rec")

    def test_trailing_garbage_raises(self):
        record = encode_record("t", b"abc")
        with pytest.raises(IntegrityError):
            decode_record(record + b"\x00", "rec")

    def test_single_bit_flips_always_caught(self):
        """CRC-32 detects every single-bit error: seeded flips across
        the whole record (header, name, blob, footer) must each raise
        IntegrityError — wrong bytes must never decode 'successfully'."""
        record = encode_record("fuzz", bytes(range(256)) * 3)
        rng = np.random.default_rng(7)
        positions = rng.integers(0, len(record), size=25)
        bits = rng.integers(0, 8, size=25)
        for pos, bit in zip(positions, bits):
            bad = bytearray(record)
            bad[int(pos)] ^= 1 << int(bit)
            with pytest.raises(IntegrityError):
                decode_record(bytes(bad), "rec")


# ---------------------------------------------------------------------------
# DiskStore: durability, recovery, quarantine
# ---------------------------------------------------------------------------


class TestDiskStore:
    def test_put_read_survives_reopen(self, tmp_path, blobs):
        store = DiskStore(tmp_path / "s")
        for name, blob in blobs.items():
            store.put(name, blob)
        reopened = DiskStore(tmp_path / "s")
        assert reopened.names() == sorted(blobs)
        for name, blob in blobs.items():
            assert reopened.read(name) == blob  # bit-identical
        rep = reopened.last_recovery
        assert isinstance(rep, RecoveryReport)
        assert sorted(rep.recovered) == sorted(blobs)
        assert rep.quarantined == [] and rep.missing == []

    def test_unknown_asset_is_typed(self, tmp_path):
        store = DiskStore(tmp_path / "s")
        with pytest.raises(ServeError):
            store.read("ghost")
        with pytest.raises(ServeError):
            store.stat("ghost")

    def test_tmp_leftover_quarantined_as_partial(self, tmp_path, blobs):
        store = DiskStore(tmp_path / "s")
        store.put("good", blobs["asset0"])
        # Simulate a crash mid-put: a .part file the rename never hit.
        (tmp_path / "s" / "tmp" / "dead.1.part").write_bytes(b"half a rec")
        reopened = DiskStore(tmp_path / "s")
        rep = reopened.last_recovery
        assert rep.recovered == ["good"]
        assert len(rep.quarantined) == 1
        assert "partial" in rep.quarantined[0]["reason"]
        assert not list((tmp_path / "s" / "tmp").iterdir())
        assert list((tmp_path / "s" / "quarantine").glob("dead*"))

    @pytest.mark.parametrize("region", ["header", "name", "blob", "footer"])
    def test_truncated_record_quarantined_survivors_served(
        self, tmp_path, blobs, region
    ):
        """Truncate a record inside each region; reopening must
        quarantine exactly that record and keep serving the rest."""
        store = DiskStore(tmp_path / "s")
        store.put("victim", blobs["asset0"])
        store.put("survivor", blobs["asset1"])
        path = store.path_for("victim")
        record = path.read_bytes()
        name_len = len(b"victim")
        cut = {
            "header": 3,                      # inside the magic
            "name": 6 + name_len - 2,         # inside the name bytes
            "blob": len(record) // 2,         # inside the payload
            "footer": len(record) - 2,        # inside the CRC
        }[region]
        path.write_bytes(record[:cut])

        reopened = DiskStore(tmp_path / "s")
        rep = reopened.last_recovery
        assert rep.recovered == ["survivor"]
        assert len(rep.quarantined) == 1
        assert "victim" in rep.quarantined[0]["file"]
        assert reopened.read("survivor") == blobs["asset1"]
        assert "victim" not in reopened
        # Quarantine preserves the evidence; nothing is deleted.
        assert list((tmp_path / "s" / "quarantine").glob("victim*"))

    def test_bit_flip_fuzz_never_serves_wrong_bytes(self, tmp_path, blobs):
        """Seeded single-bit flips in stored records: every corrupted
        record is quarantined at recovery, every intact one still reads
        bit-identically, and no read ever returns wrong bytes."""
        rng = np.random.default_rng(31)
        for trial in range(8):
            root = tmp_path / f"fuzz{trial}"
            store = DiskStore(root)
            for name, blob in blobs.items():
                store.put(name, blob)
            victim = f"asset{trial % len(blobs)}"
            path = store.path_for(victim)
            data = bytearray(path.read_bytes())
            data[int(rng.integers(0, len(data)))] ^= 1 << int(
                rng.integers(0, 8)
            )
            path.write_bytes(bytes(data))

            reopened = DiskStore(root)
            rep = reopened.last_recovery
            assert victim not in rep.recovered
            assert len(rep.quarantined) == 1
            for name, blob in blobs.items():
                if name == victim:
                    with pytest.raises(ServeError):
                        reopened.read(name)
                else:
                    assert reopened.read(name) == blob

    def test_swapped_record_name_mismatch_quarantined(
        self, tmp_path, blobs
    ):
        """A record whose embedded name disagrees with its filename
        (e.g. files swapped by an operator) must not serve under the
        wrong name."""
        store = DiskStore(tmp_path / "s")
        store.put("a", blobs["asset0"])
        store.put("b", blobs["asset1"])
        pa, pb = store.path_for("a"), store.path_for("b")
        ra, rb = pa.read_bytes(), pb.read_bytes()
        pa.write_bytes(rb)
        pb.write_bytes(ra)
        reopened = DiskStore(tmp_path / "s")
        assert reopened.last_recovery.recovered == []
        assert len(reopened.last_recovery.quarantined) == 2

    def test_manifest_corruption_rebuilt_from_records(
        self, tmp_path, blobs
    ):
        store = DiskStore(tmp_path / "s")
        store.put("a", blobs["asset0"])
        for garbage in (b"", b"{not json", b'{"version": 99}'):
            store.manifest_path.write_bytes(garbage)
            reopened = DiskStore(tmp_path / "s")
            rep = reopened.last_recovery
            assert rep.recovered == ["a"]
            assert rep.manifest_rebuilt
            assert reopened.read("a") == blobs["asset0"]
            store = reopened

    def test_missing_promised_file_reported(self, tmp_path, blobs):
        store = DiskStore(tmp_path / "s")
        store.put("a", blobs["asset0"])
        store.put("gone", blobs["asset1"])
        os.unlink(store.path_for("gone"))
        reopened = DiskStore(tmp_path / "s")
        rep = reopened.last_recovery
        assert rep.recovered == ["a"]
        assert rep.missing == ["gone"]
        assert rep.quarantined == []

    def test_scrub_finds_rot_and_exits_service(self, tmp_path, blobs):
        store = DiskStore(tmp_path / "s")
        store.put("a", blobs["asset0"])
        store.put("b", blobs["asset1"])
        clean = store.scrub()
        assert sorted(clean["verified"]) == ["a", "b"]
        assert clean["quarantined"] == []
        # Rot a record AFTER recovery: only scrub can notice.
        path = store.path_for("a")
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0x10
        path.write_bytes(bytes(data))
        dirty = store.scrub()
        assert dirty["verified"] == ["b"]
        assert len(dirty["quarantined"]) == 1
        assert "a" not in store

    def test_stat_reports_verification_verdict(self, tmp_path, blobs):
        store = DiskStore(tmp_path / "s")
        store.put("a", blobs["asset0"])
        info = store.stat("a")
        assert info["verified"] and info["blob_bytes"] == len(
            blobs["asset0"]
        )


# ---------------------------------------------------------------------------
# Name validation at every boundary
# ---------------------------------------------------------------------------


class TestNameValidation:
    HOSTILE = [
        "",
        ".",
        "..",
        "../evil",
        "a/b",
        "a\\b",
        "a\x00b",
        "a\x1fb",
        "a\x7fb",
        "x" * 1025,
    ]

    @pytest.mark.parametrize("name", HOSTILE)
    def test_problem_reported(self, name):
        assert asset_name_problem(name) is not None

    @pytest.mark.parametrize(
        "name", ["ok", "with-dash_и.v2", "dotted.name", "x" * 1024]
    )
    def test_good_names_accepted(self, name):
        assert asset_name_problem(name) is None

    @pytest.mark.parametrize("name", HOSTILE)
    def test_disk_store_rejects(self, tmp_path, name):
        store = DiskStore(tmp_path / "s")
        with pytest.raises(ServeError):
            store.put(name, b"blob")
        assert not list((tmp_path / "s" / "assets").iterdir())

    @pytest.mark.parametrize("name", ["../evil", "a/b", ""])
    def test_asset_store_rejects_before_encode(self, name):
        store = AssetStore()
        with pytest.raises(ServeError):
            store.put(name, np.zeros(16, dtype=np.uint8))
        with pytest.raises(ServeError):
            store.put_container(name, b"blob")

    def test_wire_encoder_rejects(self):
        from repro.serve import protocol

        with pytest.raises(ProtocolError):
            protocol.encode_put_request("../evil", b"x")
        with pytest.raises(ProtocolError):
            protocol.encode_serve_request("a/b", 4)


# ---------------------------------------------------------------------------
# Tiered AssetStore: resident LRU over the durable tier
# ---------------------------------------------------------------------------


class TestTieredStore:
    def test_eviction_and_hydration_bit_identical(
        self, tmp_path, payloads, blobs
    ):
        budget = max(len(b) for b in blobs.values()) + 1  # holds ~1
        store = AssetStore(
            store_dir=tmp_path / "s", resident_bytes=budget
        )
        for name, blob in blobs.items():
            store.put_container(name, blob)
        m = store.metrics()
        assert m["evictions"] >= len(blobs) - 1
        assert m["resident_bytes"] <= budget
        # Touch everything: evicted assets hydrate from disk and the
        # rehydrated master must be byte-identical to what was put.
        for name, blob in blobs.items():
            assert store.get(name).blob == blob
        m = store.metrics()
        assert m["hydrations"] >= len(blobs) - 1
        assert set(store.names()) == set(blobs)
        assert len(store) == len(blobs)

    def test_resident_hit_moves_to_mru(self, tmp_path, blobs):
        sizes = sorted(len(b) for b in blobs.values())
        budget = sizes[-1] + sizes[-2] + 1  # holds two
        store = AssetStore(
            store_dir=tmp_path / "s", resident_bytes=budget
        )
        store.put_container("a", blobs["asset0"])
        store.put_container("b", blobs["asset1"])
        store.get("a")  # refresh: a is now MRU
        store.put_container("c", blobs["asset2"])  # should evict b
        hydr0 = store.hydrations
        store.get("a")
        assert store.hydrations == hydr0  # still resident
        store.get("b")
        assert store.hydrations == hydr0 + 1  # was evicted

    def test_memory_only_store_pins_everything(self, blobs):
        store = AssetStore(resident_bytes=1)  # no disk tier
        store.put_container("a", blobs["asset0"])
        store.put_container("b", blobs["asset1"])
        # Nothing can be evicted (no durable copy): both stay resident.
        assert store.get("a").pinned and store.get("b").pinned
        assert store.evictions == 0

    def test_decode_after_hydration_matches(
        self, tmp_path, payloads, blobs
    ):
        store = AssetStore(
            store_dir=tmp_path / "s",
            resident_bytes=max(len(b) for b in blobs.values()) + 1,
        )
        for name, blob in blobs.items():
            store.put_container(name, blob)
        for name, data in payloads.items():
            variant, _ = store.shrunk(name, 2)
            assert np.array_equal(recoil_decompress(variant.blob), data)

    def test_shrink_cache_byte_bound(self, tmp_path, blobs):
        from repro.serve import ShrinkCache

        store = AssetStore(store_dir=tmp_path / "s")
        store.put_container("a", blobs["asset0"])
        v1, _ = store.shrunk("a", 1)
        v2, _ = store.shrunk("a", 2)
        budget = max(len(v1.blob), len(v2.blob)) + 1  # holds exactly one
        cache = ShrinkCache(max_entries=64, max_bytes=budget)
        cache.put(("a", 1), v1)
        assert cache.bytes == len(v1.blob)
        cache.put(("a", 2), v2)  # over byte budget: evicts (a, 1)
        snap = cache.snapshot()
        assert snap["evictions"]["bytes"] == 1
        assert snap["evictions"]["capacity"] == 0
        assert snap["evictions"]["total"] == 1
        assert cache.get(("a", 1)) is None
        assert cache.get(("a", 2)) is v2
        assert snap["bytes"] == len(v2.blob)

    def test_shrink_cache_entry_cap_counted_separately(self):
        from repro.serve import ShrinkCache

        cache = ShrinkCache(max_entries=1)
        cache.put(("a", 1), "x")
        cache.put(("a", 2), "y")
        snap = cache.snapshot()
        assert snap["evictions"] == {
            "total": 1, "capacity": 1, "bytes": 0,
        }


# ---------------------------------------------------------------------------
# Fault points and graceful degradation
# ---------------------------------------------------------------------------


class TestFaultsAndDegradation:
    def test_torn_write_keeps_previous_state(self, tmp_path, blobs):
        store = AssetStore(store_dir=tmp_path / "s")
        store.put_container("a", blobs["asset0"])
        with faults.inject(faults.DISK_WRITE, nth=1):
            store.put_container("a", blobs["asset1"])  # torn rewrite
        assert store.persist_failures == 1
        assert not store.memory_only  # one failure != degradation
        # The resident tier serves the new bytes (pinned), but disk
        # still holds the LAST durable version — never a torn one.
        assert store.get("a").blob == blobs["asset1"]
        assert store.get("a").pinned
        fresh = DiskStore(tmp_path / "s")
        assert fresh.read("a") == blobs["asset0"]
        assert fresh.last_recovery.quarantined == []

    def test_consecutive_persist_failures_degrade_sticky(
        self, tmp_path, blobs
    ):
        from repro.serve.store import PERSIST_FAILURE_LIMIT

        store = AssetStore(store_dir=tmp_path / "s")
        with faults.inject(faults.DISK_WRITE, p=1.0, seed=5):
            for i in range(PERSIST_FAILURE_LIMIT):
                assert not store.memory_only
                store.put_container(f"n{i}", blobs["asset0"])
        assert store.memory_only
        assert store.store_degradations == 1
        assert "consecutive persist failures" in store.degradation_reason
        # Sticky: later puts skip the disk without counting failures.
        store.put_container("later", blobs["asset1"])
        assert store.persist_failures == PERSIST_FAILURE_LIMIT
        assert store.get("later").pinned

    def test_fsync_fault_counts_as_persist_failure(self, tmp_path, blobs):
        store = AssetStore(store_dir=tmp_path / "s")
        with faults.inject(faults.DISK_FSYNC, nth=1):
            store.put_container("a", blobs["asset0"])
        assert store.persist_failures == 1
        assert "a" not in DiskStore(tmp_path / "s")

    def test_unwritable_dir_degrades_to_memory_only(
        self, tmp_path, blobs
    ):
        if os.geteuid() == 0:
            pytest.skip("root ignores directory permissions")
        root = tmp_path / "ro"
        root.mkdir()
        root.chmod(stat_mod.S_IRUSR | stat_mod.S_IXUSR)
        try:
            store = AssetStore(store_dir=root / "s")
            assert store.memory_only
            assert store.store_degradations == 1
            store.put_container("a", blobs["asset0"])
            assert store.get("a").blob == blobs["asset0"]
        finally:
            root.chmod(0o700)

    def test_read_fault_does_not_quarantine(self, tmp_path, blobs):
        """A transient I/O error is not evidence of rot: the record
        must stay in service and succeed on retry."""
        store = DiskStore(tmp_path / "s")
        store.put("a", blobs["asset0"])
        with faults.inject(faults.DISK_READ, nth=1):
            with pytest.raises(OSError):
                store.read("a")
        assert store.quarantines == 0
        assert store.read("a") == blobs["asset0"]

    def test_corrupt_read_quarantines_and_raises_typed(
        self, tmp_path, blobs
    ):
        """disk.corrupt flips a bit on the READ path: the store must
        raise IntegrityError, quarantine the record, and keep serving
        the survivor — a retry must not re-serve rotten bytes."""
        budget = max(len(b) for b in blobs.values()) + 1
        store = AssetStore(
            store_dir=tmp_path / "s", resident_bytes=budget
        )
        store.put_container("a", blobs["asset0"])
        store.put_container("b", blobs["asset1"])  # evicts a
        with faults.inject(faults.DISK_CORRUPT, nth=1, key="a"):
            with pytest.raises(IntegrityError):
                store.get("a")  # hydration hits the flipped bit
        assert store.disk.quarantines == 1
        with pytest.raises(ServeError):
            store.get("a")  # gone, NOT wrong bytes
        assert store.get("b").blob == blobs["asset1"]


# ---------------------------------------------------------------------------
# Service-level cold start and metrics wiring
# ---------------------------------------------------------------------------


class TestServiceColdStart:
    def test_restart_recovers_and_decodes(self, tmp_path, payloads):
        root = tmp_path / "store"
        cfg = ServiceConfig(store_dir=root, decode_workers=2)
        with RecoilService(config=cfg) as svc:
            for name, data in payloads.items():
                svc.put_asset(name, data, num_splits=8)
        with RecoilService(config=cfg) as svc:
            rep = svc.store.recovery
            assert sorted(rep.recovered) == sorted(payloads)
            for name, data in payloads.items():
                out = svc.submit(name, 2).result(120)
                assert np.array_equal(out, data)
            snap = svc.metrics_snapshot()
            assert snap["store"]["assets"] == len(payloads)
            assert snap["store"]["disk"]["quarantines"] == 0
            assert snap["resilience"]["store_memory_only"] == 0
            assert snap["resilience"]["store_degradations"] == 0

    def test_config_validation(self):
        with pytest.raises(ServeError):
            ServiceConfig(resident_bytes=0)
        with pytest.raises(ServeError):
            ServiceConfig(shrink_cache_bytes=0)

    def test_metrics_schema_has_store_section(self, tmp_path, payloads):
        cfg = ServiceConfig(store_dir=tmp_path / "s")
        with RecoilService(config=cfg) as svc:
            name, data = next(iter(payloads.items()))
            svc.put_asset(name, data, num_splits=8)
            snap = svc.metrics_snapshot()
        store = snap["store"]
        for key in (
            "assets", "resident_assets", "resident_bytes",
            "resident_hits", "hydrations", "evictions",
            "tier_hit_rate", "persist_failures", "memory_only",
            "disk", "recovery", "shrink_cache",
        ):
            assert key in store, key
        assert store["disk"]["writes"] >= 1
        assert store["shrink_cache"]["evictions"]["total"] == 0


# ---------------------------------------------------------------------------
# Kill -9 mid-ingest, restart, recover: the whole point
# ---------------------------------------------------------------------------


class TestKillRestart:
    def test_sigkill_mid_ingest_recovers_on_restart(
        self, tmp_path, payloads, blobs
    ):
        """SIGKILL the serving daemon while clients are writing; a
        restart on the same --store-dir must serve every acked asset
        bit-identically and quarantine (not serve) anything torn."""
        from repro.serve import RecoilClient

        src_dir = Path(repro.__file__).resolve().parents[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src_dir) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        root = tmp_path / "store"
        argv = [
            sys.executable, "-m", "repro.cli", "serve", "--port", "0",
            "--demo-assets", "0", "--store-dir", str(root),
        ]

        def start():
            proc = subprocess.Popen(
                argv, stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT, text=True, env=env,
            )
            banner, port = [], None
            for line in proc.stdout:
                banner.append(line)
                if "listening on " in line:
                    addr = line.split("listening on ")[1].split()[0]
                    port = int(addr.rsplit(":", 1)[1])
                    break
            assert port, "server never came up"
            return proc, port, "".join(banner)

        proc, port, _ = start()
        acked = []
        try:
            with RecoilClient("127.0.0.1", port, timeout_s=30) as client:
                for name, blob in blobs.items():
                    client.put_container(name, blob)
                    acked.append(name)
            proc.send_signal(signal.SIGKILL)  # no drain, no atexit
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
        # Plant a torn write the crash could have left behind.
        (root / "tmp" / "torn.9.part").write_bytes(b"mid-write")

        proc, port, banner = start()
        try:
            assert f"recovered {len(acked)} assets" in banner
            with RecoilClient("127.0.0.1", port, timeout_s=30) as client:
                for name in acked:
                    out = client.decompress(name, 2)
                    assert np.array_equal(out, payloads[name])
                metrics = client.metrics()
            store = metrics["store"]
            assert store["recovery"]["manifest_rebuilt"] is False
            assert sorted(store["recovery"]["recovered"]) == sorted(acked)
            assert len(store["recovery"]["quarantined"]) == 1
            proc.send_signal(signal.SIGTERM)
            stdout, _ = proc.communicate(timeout=60)
            assert proc.returncode == 0, stdout
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
