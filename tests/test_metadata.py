"""Tests for Recoil split metadata and combining (§3.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.metadata import RecoilMetadata, SplitEntry
from repro.errors import MetadataError


def make_entry(offset: int, base_index: int, lanes: int = 4) -> SplitEntry:
    """Entry whose lane indices sit in consecutive groups near
    base_index (keeping each index on its own lane)."""
    j = np.arange(lanes)
    group = base_index // lanes + 1
    indices = (group - 1) * lanes + j + 1
    # Push one lane a group back for a non-trivial sync section.
    if group >= 2:
        indices = indices.copy()
        indices[0] -= lanes
    states = np.full(lanes, 77, dtype=np.uint32)
    return SplitEntry(offset, indices, states)


class TestSplitEntry:
    def test_derived_indices(self):
        e = make_entry(40, 40)
        assert e.split_index == max(e.lane_indices)
        assert e.sync_complete_index == min(e.lane_indices)
        assert (
            e.sync_section_length
            == e.split_index - e.sync_complete_index + 1
        )

    def test_group_ids_roundtrip(self):
        e = make_entry(40, 40)
        g = e.group_ids(4)
        back = SplitEntry.from_group_ids(e.word_offset, g, e.lane_states)
        assert np.array_equal(back.lane_indices, e.lane_indices)

    def test_group_ids_reject_wrong_lane(self):
        # index 5 on lane 0 (expects indices ≡ 1 mod 4)
        e = SplitEntry(0, np.array([6, 2, 3, 4]), np.zeros(4, np.uint32))
        with pytest.raises(MetadataError):
            e.group_ids(4)

    def test_nonpositive_index_rejected(self):
        with pytest.raises(MetadataError):
            SplitEntry(0, np.array([0, 2, 3, 4]), np.zeros(4, np.uint32))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(MetadataError):
            SplitEntry(0, np.array([1, 2]), np.zeros(3, np.uint32))


class TestRecoilMetadata:
    def make_md(self, n=1000, words=500, lanes=4, bases=(100, 300, 600)):
        entries = [make_entry(10 * (i + 1), b, lanes) for i, b in enumerate(bases)]
        return RecoilMetadata(n, words, lanes, entries)

    def test_num_threads(self):
        md = self.make_md()
        assert md.num_threads == 4

    def test_thread_plan_partitions_sequence(self):
        """Commit ranges must tile [1, N] exactly, in order."""
        md = self.make_md()
        plan = md.thread_plan()
        expected_next = 1
        for item in plan:
            assert item["commit_lo"] == expected_next
            assert item["commit_hi"] >= item["commit_lo"] - 1
            expected_next = item["commit_hi"] + 1
        assert expected_next == md.num_symbols + 1

    def test_thread_plan_walks_cover_commits(self):
        md = self.make_md()
        for item in md.thread_plan():
            assert item["walk_lo"] <= item["commit_lo"]
            assert item["walk_hi"] >= item["commit_hi"]

    def test_walk_overlap_is_sync_sections(self):
        md = self.make_md()
        plan = md.thread_plan()
        total_walk = sum(p["walk_hi"] - p["walk_lo"] + 1 for p in plan)
        assert total_walk == md.num_symbols + md.sync_overhead_symbols()

    def test_entries_must_be_ordered(self):
        e1 = make_entry(20, 100)
        e2 = make_entry(10, 300)
        with pytest.raises(MetadataError):
            RecoilMetadata(1000, 500, 4, [e1, e2])

    def test_overlapping_sync_sections_rejected(self):
        e1 = make_entry(10, 100)
        e2 = make_entry(20, 100)  # same indices: C2 <= S1
        with pytest.raises(MetadataError):
            RecoilMetadata(1000, 500, 4, [e1, e2])

    def test_split_beyond_sequence_rejected(self):
        with pytest.raises(MetadataError):
            RecoilMetadata(50, 500, 4, [make_entry(10, 100)])

    def test_offset_beyond_stream_rejected(self):
        with pytest.raises(MetadataError):
            RecoilMetadata(1000, 5, 4, [make_entry(10, 100)])

    def test_lane_count_mismatch_rejected(self):
        with pytest.raises(MetadataError):
            RecoilMetadata(1000, 500, 8, [make_entry(10, 100, lanes=4)])


class TestCombine:
    def make_md(self, num_entries=20, lanes=4):
        entries = [
            make_entry(20 * (i + 1), 50 * (i + 1), lanes)
            for i in range(num_entries)
        ]
        # Entries span the sequence (last split near N) so balanced
        # combining is actually possible.
        n = 50 * num_entries + 60
        return RecoilMetadata(n, 20 * num_entries + 50, lanes, entries)

    def test_combine_to_fewer(self):
        md = self.make_md()
        small = md.combine(5)
        assert small.num_threads == 5
        # Entries must be a subset of the originals.
        original = {e.word_offset for e in md.entries}
        assert all(e.word_offset in original for e in small.entries)

    def test_combine_to_one(self):
        small = self.make_md().combine(1)
        assert small.num_threads == 1
        assert small.entries == []

    def test_combine_no_op_when_target_larger(self):
        md = self.make_md(num_entries=3)
        assert md.combine(10).num_threads == 4

    def test_combine_keeps_balance(self):
        """Chosen splits approximate equal symbol coverage."""
        md = self.make_md(num_entries=40)
        small = md.combine(5)
        splits = [e.split_index for e in small.entries]
        ideal = [md.num_symbols * k / 5 for k in range(1, 5)]
        for s, t in zip(splits, ideal):
            assert abs(s - t) < md.num_symbols / 5

    def test_combine_valid_metadata(self):
        small = self.make_md().combine(7)
        small.validate()

    def test_combine_idempotent(self):
        md = self.make_md()
        once = md.combine(6)
        twice = once.combine(6)
        assert [e.word_offset for e in once.entries] == [
            e.word_offset for e in twice.entries
        ]

    def test_combine_monotone_nesting_sizes(self):
        md = self.make_md(num_entries=30)
        sizes = [len(md.combine(t).entries) for t in (31, 16, 8, 4, 2, 1)]
        assert sizes == [30, 15, 7, 3, 1, 0]

    def test_bad_target_rejected(self):
        with pytest.raises(MetadataError):
            self.make_md().combine(0)
