"""Tests for the tANS substrate (table, codec, dump format)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DecodeError, EncodeError, ModelError
from repro.tans import TansDecoder, TansEncoder, TansTable
from repro.tans.table import spread_symbols


@pytest.fixture(scope="module")
def table12(skewed_bytes):
    return TansTable.from_data(skewed_bytes, 12, alphabet_size=256)


class TestSpread:
    def test_occupancy_matches_freqs(self, table12):
        counts = np.bincount(table12.spread, minlength=256)
        assert np.array_equal(counts, table12.freqs)

    def test_spread_scatters(self, table12):
        """Occurrences of a frequent symbol should not cluster — that
        is what buys self-synchronization."""
        s = int(np.argmax(table12.freqs))
        positions = np.flatnonzero(table12.spread == s)
        gaps = np.diff(positions)
        assert gaps.max() < 32 * table12.table_size / table12.freqs[s]

    def test_wrong_sum_rejected(self):
        with pytest.raises(ModelError):
            spread_symbols(np.array([3, 3]), 3)


class TestTableConstruction:
    def test_decode_entries_bijective_per_symbol(self, table12):
        """For each symbol, its decode transitions (base + read bits)
        tile [T, 2T) exactly once — decoding s from any next-state is
        reachable by exactly one (state, bits) pair."""
        T = table12.table_size
        for s in np.flatnonzero(table12.freqs)[:24]:
            covered = np.zeros(2 * T, dtype=np.int64)
            for p in np.flatnonzero(table12.dec_sym == s):
                nb = int(table12.dec_nb[p])
                base = int(table12.dec_base[p])
                covered[base : base + (1 << nb)] += 1
            assert np.all(covered[T:] == 1), s
            assert np.all(covered[:T] == 0), s

    def test_enc_next_inverse_of_decode(self, table12):
        """Encoding symbol s from sub-state maps to a state whose
        decode entry returns s and the sub-state."""
        T = table12.table_size
        r = np.random.default_rng(0)
        for s in r.choice(np.flatnonzero(table12.freqs), 20):
            f = int(table12.freqs[s])
            for sub in (f, 2 * f - 1):
                state = int(
                    table12.enc_next[int(table12.enc_sub_offset[s]) + sub - f]
                )
                p = state - T
                assert int(table12.dec_sym[p]) == s
                nb = int(table12.dec_nb[p])
                assert int(table12.dec_base[p]) >> nb == sub

    def test_entropy(self, table12, skewed_bytes):
        from repro.stats import empirical_entropy

        h = empirical_entropy(skewed_bytes, 256)
        assert abs(table12.entropy_bits_per_symbol - h) < 0.1


class TestTansCodec:
    def test_roundtrip(self, skewed_bytes, table12):
        data = skewed_bytes[:20_000]
        enc = TansEncoder(table12).encode(data)
        out = TansDecoder(table12).decode(enc)
        assert np.array_equal(out, data)

    def test_rate_near_entropy(self, skewed_bytes, table12):
        data = skewed_bytes[:20_000]
        enc = TansEncoder(table12).encode(data)
        per_sym = enc.bit_count / len(data)
        assert per_sym < table12.entropy_bits_per_symbol + 0.15

    def test_zero_freq_rejected(self, table12):
        missing = np.flatnonzero(table12.freqs == 0)
        if len(missing) == 0:
            pytest.skip("full support")
        with pytest.raises(EncodeError):
            TansEncoder(table12).encode(np.array([missing[0]]))

    def test_empty(self, table12):
        enc = TansEncoder(table12).encode(np.array([], dtype=np.uint8))
        out = TansDecoder(table12).decode(enc)
        assert len(out) == 0
        assert enc.initial_state == table12.table_size

    def test_single_symbol(self, table12):
        enc = TansEncoder(table12).encode(np.array([65]))
        out = TansDecoder(table12).decode(enc)
        assert out.tolist() == [65]

    def test_truncated_stream_detected(self, skewed_bytes, table12):
        enc = TansEncoder(table12).encode(skewed_bytes[:5_000])
        bad = type(enc)(
            payload=enc.payload[: len(enc.payload) // 2],
            bit_count=enc.bit_count,
            initial_state=enc.initial_state,
            num_symbols=enc.num_symbols,
        )
        with pytest.raises((DecodeError, IndexError)):
            TansDecoder(table12).decode(bad)

    def test_decode_from_mid_stream_guess_state(self, skewed_bytes, table12):
        """decode_from with a wrong state must not crash — garbage
        output is expected (the multians speculative mode)."""
        data = skewed_bytes[:5_000]
        enc = TansEncoder(table12).encode(data)
        payload = np.frombuffer(enc.payload, dtype=np.uint8)
        out, state, pos = TansDecoder(table12).decode_from(
            payload, enc.bit_count, table12.table_size,
            enc.bit_count // 2, 100,
        )
        assert len(out) == 100
        assert state >= table12.table_size


@given(
    seed=st.integers(min_value=0, max_value=2**31),
    table_bits=st.integers(min_value=6, max_value=13),
    length=st.integers(min_value=0, max_value=300),
)
@settings(max_examples=30, deadline=None)
def test_tans_roundtrip_property(seed, table_bits, length):
    r = np.random.default_rng(seed)
    alphabet = int(r.integers(2, 40))
    counts = r.integers(1, 30, alphabet)
    table = TansTable.from_counts(counts, table_bits)
    data = r.integers(0, alphabet, length)
    enc = TansEncoder(table).encode(data)
    out = TansDecoder(table).decode(enc)
    assert np.array_equal(out, data)


class TestTableDump:
    def test_dump_roundtrip_12(self, table12):
        blob = table12.to_bytes()
        back, consumed = TansTable.from_bytes(blob)
        assert consumed == len(blob)
        assert np.array_equal(back.dec_sym, table12.dec_sym)
        assert np.array_equal(back.dec_nb, table12.dec_nb)
        assert np.array_equal(back.dec_base, table12.dec_base)
        assert np.array_equal(back.freqs, table12.freqs)

    def test_dump_roundtrip_16(self, skewed_bytes):
        t16 = TansTable.from_data(skewed_bytes, 16, alphabet_size=256)
        blob = t16.to_bytes()
        back, _ = TansTable.from_bytes(blob)
        assert np.array_equal(back.dec_sym, t16.dec_sym)
        assert np.array_equal(back.dec_base, t16.dec_base)

    def test_dump_size_scales_with_table(self, skewed_bytes, table12):
        t16 = TansTable.from_data(skewed_bytes, 16, alphabet_size=256)
        assert t16.dump_bytes() > 15 * table12.dump_bytes()
        # The paper-relevant magnitude: ~256 KB at 2**16 states.
        assert 250_000 < len(t16.to_bytes()) < 450_000
