"""Tests for quantized symbol models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ModelError
from repro.rans.model import SymbolModel, quantize_counts


class TestQuantizeCounts:
    def test_sums_to_target(self):
        counts = np.array([10, 20, 30, 40])
        freqs = quantize_counts(counts, 11)
        assert freqs.sum() == 2**11

    def test_proportions_preserved(self):
        counts = np.array([1, 1, 2])
        freqs = quantize_counts(counts, 8)
        assert freqs[2] == pytest.approx(2 * freqs[0], rel=0.1)

    def test_present_symbols_nonzero(self):
        counts = np.zeros(256)
        counts[0] = 1_000_000
        counts[255] = 1  # rare symbol must stay encodable
        freqs = quantize_counts(counts, 11)
        assert freqs[255] >= 1
        assert freqs[0] > 1800

    def test_absent_symbols_zero(self):
        freqs = quantize_counts(np.array([5, 0, 5]), 8)
        assert freqs[1] == 0

    def test_too_many_symbols_rejected(self):
        with pytest.raises(ModelError):
            quantize_counts(np.ones(300), 8)  # 300 > 2**8

    def test_empty_counts_rejected(self):
        with pytest.raises(ModelError):
            quantize_counts(np.zeros(4), 8)

    def test_negative_counts_rejected(self):
        with pytest.raises(ModelError):
            quantize_counts(np.array([1, -1]), 8)

    def test_bad_quant_bits_rejected(self):
        with pytest.raises(ValueError):
            quantize_counts(np.array([1, 1]), 0)
        with pytest.raises(ValueError):
            quantize_counts(np.array([1, 1]), 17)

    def test_float_counts_accepted(self):
        freqs = quantize_counts(np.array([0.25, 0.75]), 10)
        assert freqs.sum() == 1024
        assert freqs[1] == pytest.approx(768, abs=2)

    @given(
        st.lists(st.integers(min_value=0, max_value=10**6), min_size=2,
                 max_size=64).filter(lambda c: sum(c) > 0),
        st.integers(min_value=8, max_value=16),
    )
    @settings(max_examples=60, deadline=None)
    def test_quantize_invariants_property(self, counts, n):
        counts = np.array(counts)
        freqs = quantize_counts(counts, n)
        assert int(freqs.sum()) == 2**n
        assert np.array_equal(counts > 0, freqs > 0)
        assert np.all(freqs[counts > 0] >= 1)
        assert np.all(freqs[counts == 0] == 0)


class TestQuantizeResidualBranches:
    """The two residual-correction paths of quantize_counts.

    Flooring plus the at-least-one rule can overshoot the budget
    (negative residual: the shrink loop) and the bump loop guards
    against a residual larger than one pass can place (the wrap-around
    ``i = 0`` reset).  The wrap case cannot arise from real counts —
    per-symbol floor loss is below 1, so ``residual <= num_present`` —
    which is why it is exercised by fault injection.
    """

    def test_negative_residual_shrinks_dominant_symbol(self):
        # 10 rare symbols are bumped to frequency 1, overshooting the
        # 16-slot budget; the surplus must come back from the dominant
        # symbol (largest freq per count — the cheapest place).
        counts = np.array([1000] + [1] * 10, dtype=np.int64)
        freqs = quantize_counts(counts, 4)
        assert int(freqs.sum()) == 16
        assert np.all(freqs[1:] == 1)
        assert freqs[0] == 6

    def test_negative_residual_multiple_rounds(self):
        # Only two symbols are shrinkable (freq > 1) but five slots
        # must be returned: the shrink loop has to iterate.
        counts = np.array([100, 90] + [1] * 12, dtype=np.int64)
        freqs = quantize_counts(counts, 4)
        assert int(freqs.sum()) == 16
        assert np.all(freqs[2:] == 1)
        assert np.all(freqs[:2] >= 1)

    def test_negative_residual_never_below_one(self):
        # Everything present stays encodable no matter how deep the
        # overshoot goes.
        counts = np.array([10**9, 5, 4, 3, 2, 1, 1, 1], dtype=np.int64)
        freqs = quantize_counts(counts, 3)
        assert int(freqs.sum()) == 8
        assert np.all(freqs > 0)

    def test_wrap_around_bump(self, monkeypatch):
        """Fault-injected floor that loses one extra slot per symbol,
        pushing the residual past num_present so the bump loop must
        wrap (i = 0) and distribute a second round."""
        import repro.rans.model as model_mod

        class LossyNumpy:
            def __getattr__(self, name):
                return getattr(np, name)

            @staticmethod
            def floor(x):
                return np.maximum(np.floor(x) - 1, 0)

        monkeypatch.setattr(model_mod, "np", LossyNumpy())
        counts = np.array([40, 30, 20, 10], dtype=np.int64)
        freqs = quantize_counts(counts, 4)
        assert int(freqs.sum()) == 16
        assert np.all(freqs > 0)


class TestSymbolModel:
    def test_cdf_structure(self, model11):
        assert model11.cdf[0] == 0
        assert model11.cdf[-1] == 2**11
        assert np.all(np.diff(model11.cdf.astype(np.int64)) >= 0)

    def test_lut_consistency(self, model11):
        """slot_to_symbol inverts the CDF: F(s) <= slot < F(s+1)."""
        lut = model11.slot_to_symbol
        assert len(lut) == 2**11
        slots = np.arange(2**11)
        syms = lut[slots].astype(np.int64)
        assert np.all(model11.cdf[syms] <= slots)
        assert np.all(slots < model11.cdf[syms + 1])

    def test_freq_sum_validated(self):
        with pytest.raises(ModelError):
            SymbolModel(np.array([1, 2], dtype=np.uint32), 8)

    def test_packed_lut_small_alphabet(self, model11):
        packed = model11.packed_lut
        assert packed is not None
        # Unpack and compare with the explicit tables (§4.4 layout).
        syms = packed & 0xFF
        f = (packed >> np.uint32(8)) & np.uint32(0xFFF)
        start = packed >> np.uint32(20)
        assert np.array_equal(syms, model11.slot_to_symbol)
        assert np.array_equal(f, model11.freqs[syms])
        assert np.array_equal(start, model11.cdf[:-1][syms])

    def test_packed_lut_unavailable_large_n(self, model16):
        assert model16.packed_lut is None

    def test_packed_lut_unavailable_large_alphabet(self):
        m = SymbolModel.uniform(4096, 12)
        assert m.packed_lut is None

    def test_uniform_model(self):
        m = SymbolModel.uniform(256, 11)
        assert m.freqs.sum() == 2**11
        assert m.freqs.max() - m.freqs.min() <= 1

    def test_uniform_too_large_rejected(self):
        with pytest.raises(ModelError):
            SymbolModel.uniform(512, 8)

    def test_entropy_bounds(self, model11):
        h = model11.entropy_bits_per_symbol
        assert 0 < h <= 8

    def test_cost_bits_matches_entropy(self, skewed_bytes, model11):
        cost = model11.cost_bits(skewed_bytes)
        per_sym = cost / len(skewed_bytes)
        assert abs(per_sym - model11.entropy_bits_per_symbol) < 0.2

    def test_cost_bits_zero_freq_rejected(self, model11):
        missing = int(np.flatnonzero(model11.freqs == 0)[0]) if np.any(
            model11.freqs == 0
        ) else None
        if missing is None:
            pytest.skip("model has full support")
        with pytest.raises(ModelError):
            model11.cost_bits(np.array([missing]))

    def test_serialization_roundtrip(self, model11):
        blob = model11.to_bytes()
        out, consumed = SymbolModel.from_bytes(blob)
        assert consumed == len(blob)
        assert out == model11

    def test_serialization_sparse_alphabet(self):
        counts = np.zeros(65536)
        counts[[5, 17, 40000]] = [3, 5, 9]
        m = SymbolModel.from_counts(counts, 16)
        blob = m.to_bytes()
        # Zero-run coding keeps sparse 16-bit models tiny.
        assert len(blob) < 64
        out, _ = SymbolModel.from_bytes(blob)
        assert out == m

    def test_equality_and_hash(self, model11, model16):
        clone = SymbolModel(model11.freqs.copy(), model11.quant_bits)
        assert clone == model11
        assert hash(clone) == hash(model11)
        assert model11 != model16

    def test_repr(self, model11):
        assert "SymbolModel" in repr(model11)

    def test_from_data_symbol_outside_alphabet(self):
        with pytest.raises(ModelError):
            SymbolModel.from_data(np.array([300]), 11, alphabet_size=256)

    def test_empty_data_rejected(self):
        with pytest.raises(ModelError):
            SymbolModel.from_data(np.array([], dtype=np.uint8), 11)

    def test_immutable_arrays(self, model11):
        with pytest.raises(ValueError):
            model11.freqs[0] = 1
        with pytest.raises(ValueError):
            model11.cdf[0] = 1

    @given(st.integers(min_value=2, max_value=200),
           st.integers(min_value=8, max_value=14))
    @settings(max_examples=40, deadline=None)
    def test_model_from_random_counts_property(self, alphabet, n):
        r = np.random.default_rng(alphabet * 31 + n)
        counts = r.integers(0, 1000, alphabet) + (r.random(alphabet) < 0.5)
        if counts.sum() == 0:
            counts[0] = 1
        m = SymbolModel.from_counts(counts, n)
        lut = m.slot_to_symbol
        # Every slot maps to a symbol whose CDF window contains it.
        slots = np.arange(1 << n)
        syms = lut[slots].astype(np.int64)
        assert np.all(m.cdf[syms] <= slots)
        assert np.all(slots < m.cdf[syms + 1])
