"""Tests for measurement and reporting helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats import (
    Table,
    Timer,
    empirical_entropy,
    format_bytes,
    format_delta,
    ideal_compressed_bytes,
    kl_divergence_bits,
    measure_throughput,
)


class TestEntropy:
    def test_uniform(self):
        data = np.arange(256, dtype=np.uint8)
        assert empirical_entropy(data) == pytest.approx(8.0)

    def test_constant(self):
        assert empirical_entropy(np.zeros(100, dtype=np.uint8)) == 0.0

    def test_empty(self):
        assert empirical_entropy(np.array([], dtype=np.uint8)) == 0.0

    def test_ideal_bytes(self):
        data = np.tile(np.arange(2, dtype=np.uint8), 500)
        assert ideal_compressed_bytes(data) == pytest.approx(1000 / 8)

    def test_kl_zero_for_exact(self):
        counts = np.array([1, 3])
        probs = np.array([0.25, 0.75])
        assert kl_divergence_bits(counts, probs) == pytest.approx(0.0)

    def test_kl_positive_for_mismatch(self):
        assert kl_divergence_bits(
            np.array([1, 1]), np.array([0.9, 0.1])
        ) > 0

    def test_kl_infinite_for_unencodable(self):
        assert kl_divergence_bits(
            np.array([1, 1]), np.array([1.0, 0.0])
        ) == float("inf")

    def test_kl_empty(self):
        assert kl_divergence_bits(np.zeros(2), np.array([0.5, 0.5])) == 0.0


class TestFormatting:
    def test_format_bytes(self):
        assert format_bytes(42) == "42 B"
        assert format_bytes(1500) == "1.5 KB"
        assert format_bytes(2_340_000) == "2.34 MB"

    def test_format_delta_paper_style(self):
        out = format_delta(163_670, 7_828_000)
        assert "+163.67 KB" in out
        assert "+2.09%" in out

    def test_format_delta_negative(self):
        out = format_delta(-177_660, 5_357_000)
        assert "-177.66 KB" in out
        assert "-3.32%" in out


class TestTable:
    def test_render(self):
        t = Table(headers=["a", "bb"], title="T")
        t.add_row(1, "x")
        text = t.render()
        assert "T" in text and "a" in text and "x" in text

    def test_row_width_mismatch(self):
        t = Table(headers=["a"])
        t.add_row(1, 2)
        with pytest.raises(ValueError):
            t.render()

    def test_markdown(self):
        t = Table(headers=["a", "b"])
        t.add_row("1", "2")
        md = t.render_markdown()
        assert md.splitlines()[0] == "| a | b |"
        assert "| 1 | 2 |" in md

    def test_str(self):
        t = Table(headers=["h"])
        t.add_row("v")
        assert str(t) == t.render()


class TestTiming:
    def test_timer_laps(self):
        t = Timer()
        for _ in range(3):
            with t:
                sum(range(1000))
        assert len(t.laps) == 3
        assert t.best <= t.mean <= t.elapsed

    def test_measure_throughput(self):
        stats = measure_throughput(
            lambda: sum(range(10_000)), payload_bytes=1_000_000,
            repeats=2, warmup=1,
        )
        assert stats["mean_bytes_per_second"] > 0
        assert stats["best_bytes_per_second"] >= stats["mean_bytes_per_second"]
