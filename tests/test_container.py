"""Tests for the Recoil container format and server-side shrinking."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    RecoilCodec,
    build_container,
    parse_container,
    shrink_container,
)
from repro.core.encoder import RecoilEncoder
from repro.errors import ContainerError
from repro.rans.adaptive import StaticModelProvider


@pytest.fixture(scope="module")
def blob(skewed_bytes, provider11):
    return RecoilCodec(provider11).compress(skewed_bytes, 64)


class TestContainer:
    def test_roundtrip_fields(self, blob, skewed_bytes, provider11):
        parsed = parse_container(blob)
        assert parsed.quant_bits == 11
        assert parsed.lanes == 32
        assert parsed.num_symbols == len(skewed_bytes)
        assert parsed.metadata.num_threads == 64
        assert parsed.provider is not None
        assert parsed.provider.models[0] == provider11.models[0]

    def test_payload_view_is_zero_copy(self, blob):
        parsed = parse_container(blob)
        words = parsed.words(blob)
        assert words.dtype == np.dtype("<u2")
        assert len(words) == parsed.num_words

    def test_bad_magic(self, blob):
        with pytest.raises(ContainerError):
            parse_container(b"XXXX" + blob[4:])

    def test_bad_version(self, blob):
        bad = blob[:4] + bytes([99]) + blob[5:]
        with pytest.raises(ContainerError):
            parse_container(bad)

    def test_truncated_header(self):
        with pytest.raises(ContainerError):
            parse_container(b"RCL1\x01")

    def test_truncated_payload(self, blob):
        with pytest.raises(ContainerError):
            parse_container(blob[:-10])

    def test_adaptive_requires_provider(self, skewed_bytes, provider11):
        enc = RecoilEncoder(provider11).encode(skewed_bytes, 8)
        naked = build_container(enc, embed_model=False)
        with pytest.raises(ContainerError):
            parse_container(naked)
        parsed = parse_container(naked, provider=provider11)
        assert parsed.provider is provider11
        parsed = parse_container(naked, require_model=False)
        assert parsed.provider is None

    def test_embed_adaptive_rejected(self, skewed_bytes, model11):
        from repro.rans.adaptive import IndexedModelProvider

        prov = IndexedModelProvider(
            [model11, model11], np.zeros(len(skewed_bytes), dtype=int)
        )
        enc = RecoilEncoder(prov).encode(skewed_bytes, 4)
        with pytest.raises(ContainerError):
            build_container(enc, provider=prov, embed_model=True)


class TestShrink:
    @pytest.mark.parametrize("target", [32, 16, 5, 2, 1])
    def test_shrink_decodes(self, blob, skewed_bytes, provider11, target):
        small = shrink_container(blob, target)
        codec = RecoilCodec(provider11)
        out = codec.decompress(small)
        assert np.array_equal(out, skewed_bytes)
        parsed = parse_container(small)
        assert parsed.metadata.num_threads <= target

    def test_shrink_monotone_sizes(self, blob):
        sizes = [len(shrink_container(blob, t)) for t in (64, 16, 4, 1)]
        assert sizes == sorted(sizes, reverse=True)
        assert sizes[0] <= len(blob)

    def test_payload_untouched(self, blob):
        """The whole point: shrinking rewrites metadata only."""
        small = shrink_container(blob, 4)
        p_full = parse_container(blob)
        p_small = parse_container(small)
        assert np.array_equal(p_full.words(blob), p_small.words(small))
        assert np.array_equal(p_full.final_states, p_small.final_states)

    def test_shrink_is_fast_metadata_surgery(self, blob):
        """No re-encoding: shrinking must beat encoding by orders of
        magnitude (it is a per-request server operation, §3.3)."""
        import time

        t0 = time.perf_counter()
        for _ in range(20):
            shrink_container(blob, 8)
        per_op = (time.perf_counter() - t0) / 20
        assert per_op < 0.05  # 50 ms is already generous

    def test_shrink_validates_target_before_parsing(self):
        from repro.errors import MetadataError

        # The target check fires before the (possibly expensive or
        # even impossible) container parse.
        with pytest.raises(MetadataError):
            shrink_container(b"definitely not a container", 0)

    def test_shrink_grow_is_noop(self, blob):
        same = shrink_container(blob, 10_000)
        assert parse_container(same).metadata.num_threads == 64
