"""Documentation stays honest: links resolve, quickstart runs.

The full check (executing every README/docs python block) is the CI
``docs`` job (``tools/check_docs.py``); the tier-1 suite keeps the
fast guarantees so a broken link or a bit-rotted README quickstart
fails locally too.
"""

from __future__ import annotations

import importlib.util
import os
import subprocess
import sys

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

spec = importlib.util.spec_from_file_location(
    "check_docs", os.path.join(REPO, "tools", "check_docs.py")
)
check_docs = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_docs)


def test_docs_exist():
    for path in ("README.md", "docs/REPRODUCING.md", "docs/BENCHMARKS.md"):
        assert os.path.isfile(os.path.join(REPO, path)), path


def test_intra_repo_links_resolve():
    files = check_docs._doc_files(check_docs.LINKED_DOCS)
    assert files, "no documentation files found"
    assert check_docs.check_links(files) == []


def test_pyproject_readme_is_the_readme():
    text = open(os.path.join(REPO, "pyproject.toml")).read()
    assert 'readme = "README.md"' in text


def test_readme_has_python_blocks():
    blocks = check_docs.python_blocks(os.path.join(REPO, "README.md"))
    assert len(blocks) >= 2  # quickstart + serve example


def test_readme_quickstart_block_runs():
    line, source = check_docs.python_blocks(
        os.path.join(REPO, "README.md")
    )[0]
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        os.path.join(REPO, "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    proc = subprocess.run(
        [sys.executable, "-c", source],
        cwd=REPO,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    assert "round trip OK" in proc.stdout
