"""Tests for the multians self-synchronizing parallel decoder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ContainerError
from repro.tans import MultiansCodec, TansTable
from repro.tans.multians import measure_sync_length


@pytest.fixture(scope="module")
def codec(skewed_bytes):
    table = TansTable.from_data(skewed_bytes, 11, alphabet_size=256)
    return MultiansCodec(table)


@pytest.fixture(scope="module")
def blob(codec, skewed_bytes):
    return codec.compress(skewed_bytes)


class TestMultiansCorrectness:
    @pytest.mark.parametrize("threads", [1, 2, 8, 32, 128])
    def test_roundtrip_any_thread_count(
        self, codec, blob, skewed_bytes, threads
    ):
        out, stats = codec.decompress(blob, num_threads=threads)
        assert np.array_equal(out, skewed_bytes)
        assert stats.threads <= max(threads, 1)

    def test_container_fields(self, codec, blob, skewed_bytes):
        enc, table = codec.parse(blob)
        assert enc.num_symbols == len(skewed_bytes)
        assert table.table_bits == 11

    def test_bad_magic(self, codec, blob):
        with pytest.raises(ContainerError):
            codec.parse(b"XXXX" + blob[4:])

    def test_truncated_payload(self, codec, blob):
        with pytest.raises(ContainerError):
            codec.parse(blob[: len(blob) // 2])

    def test_empty_input(self, codec):
        blob = codec.compress(np.array([], dtype=np.uint8))
        out, stats = codec.decompress(blob, num_threads=8)
        assert len(out) == 0

    def test_small_input_serial_fallback(self, codec, skewed_bytes):
        blob = codec.compress(skewed_bytes[:40])
        out, stats = codec.decompress(blob, num_threads=64)
        assert np.array_equal(out, skewed_bytes[:40])


class TestMultiansStats:
    def test_overlap_measured(self, codec, blob):
        _, stats = codec.decompress(blob, num_threads=16)
        assert len(stats.overlap_symbols) == stats.threads - 1
        assert stats.total_overlap >= 0
        # With 50k symbols / 16 threads the chunks are larger than
        # typical sync lengths — most threads must synchronize.
        assert stats.unsynced_threads < stats.threads // 2

    def test_per_thread_symbols(self, codec, blob, skewed_bytes):
        _, stats = codec.decompress(blob, num_threads=16)
        per = stats.per_thread_symbols
        assert len(per) == stats.threads
        assert per.sum() >= len(skewed_bytes)

    def test_more_threads_smaller_chunks(self, codec, blob):
        _, s8 = codec.decompress(blob, num_threads=8)
        _, s32 = codec.decompress(blob, num_threads=32)
        assert s32.chunk_symbols < s8.chunk_symbols


class TestSyncLength:
    def test_sync_length_positive(self, codec, blob):
        enc, table = codec.parse(blob)
        sync = measure_sync_length(table, enc, samples=4,
                                   window_symbols=30_000)
        assert 0 < sync < 30_000

    def test_sync_grows_with_state_count(self, skewed_bytes):
        """The n=16 collapse driver: bigger tables sync slower."""
        syncs = {}
        for tb in (10, 14):
            table = TansTable.from_data(skewed_bytes, tb, alphabet_size=256)
            mc = MultiansCodec(table)
            enc, _ = mc.parse(mc.compress(skewed_bytes))
            syncs[tb] = measure_sync_length(
                table, enc, samples=6, window_symbols=40_000
            )
        assert syncs[14] > 2 * syncs[10]
