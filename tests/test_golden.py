"""Golden-stream conformance: the corpus pins the wire format.

Every committed container under ``tests/golden/`` must be reproduced
byte-for-byte by today's encoder and decoded byte-for-byte back to its
committed payload — on EVERY kernel backend (numpy and, when a
toolchain is present, compiled).  A failure here means the wire format
moved: either fix the regression or regenerate deliberately with
``PYTHONPATH=src python tools/make_golden.py`` and review the corpus
diff as a format change.
"""

from __future__ import annotations

import hashlib
import json
import os

import numpy as np
import pytest

from repro.core.container import parse_container
from repro.core.decoder import RecoilDecoder

from golden_cases import (
    build_rans_blob,
    build_tans_blob,
    rans_cases,
    tans_cases,
)

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

RANS_CASES = {c["name"]: c for c in rans_cases()}
TANS_CASES = {c["name"]: c for c in tans_cases()}


def _read(name: str) -> bytes:
    with open(os.path.join(GOLDEN_DIR, name), "rb") as f:
        return f.read()


@pytest.fixture(scope="module")
def manifest() -> dict:
    with open(os.path.join(GOLDEN_DIR, "manifest.json")) as f:
        return json.load(f)


class TestCorpusIntegrity:
    def test_manifest_covers_all_cases(self, manifest):
        names = {e["name"] for e in manifest["cases"]}
        assert names == set(RANS_CASES) | set(TANS_CASES)
        assert len(manifest["cases"]) >= 10

    def test_files_match_manifest_hashes(self, manifest):
        """The committed bytes are what the manifest says they are —
        a corrupted or hand-edited corpus fails before any codec
        runs."""
        for entry in manifest["cases"]:
            blob = _read(f"{entry['name']}.bin")
            expected = _read(f"{entry['name']}.expected.bin")
            assert hashlib.sha256(blob).hexdigest() == entry["blob_sha256"]
            assert len(blob) == entry["blob_bytes"]
            assert (
                hashlib.sha256(expected).hexdigest()
                == entry["expected_sha256"]
            )
            assert len(expected) == entry["expected_bytes"]


@pytest.mark.parametrize("name", sorted(RANS_CASES))
class TestRansGolden:
    def test_encode_byte_exact(self, name, kernel_backend):
        """Today's encoder reproduces the committed container
        byte-for-byte on this kernel backend."""
        case = RANS_CASES[name]
        assert build_rans_blob(case, kernel=kernel_backend) == _read(
            f"{name}.bin"
        )

    def test_decode_byte_exact(self, name, kernel_backend):
        """The committed container decodes byte-for-byte back to its
        committed payload on this kernel backend."""
        case = RANS_CASES[name]
        blob = _read(f"{name}.bin")
        parsed = parse_container(blob, provider=case["provider"])
        engine = "fused" if kernel_backend == "numpy" else "compiled"
        res = RecoilDecoder(case["provider"], lanes=case["lanes"]).decode(
            parsed.words(blob),
            parsed.final_states,
            parsed.metadata,
            engine=engine,
        )
        assert res.symbols.tobytes() == _read(f"{name}.expected.bin")

    def test_decode_at_reduced_parallelism(self, name, kernel_backend):
        """Combining splits client-side never changes the bytes."""
        case = RANS_CASES[name]
        blob = _read(f"{name}.bin")
        parsed = parse_container(blob, provider=case["provider"])
        engine = "fused" if kernel_backend == "numpy" else "compiled"
        res = RecoilDecoder(case["provider"], lanes=case["lanes"]).decode(
            parsed.words(blob),
            parsed.final_states,
            parsed.metadata,
            max_threads=1,
            engine=engine,
        )
        assert res.symbols.tobytes() == _read(f"{name}.expected.bin")


@pytest.mark.parametrize("name", sorted(TANS_CASES))
class TestTansGolden:
    def test_encode_byte_exact(self, name):
        case = TANS_CASES[name]
        blob, _ = build_tans_blob(case)
        assert blob == _read(f"{name}.bin")

    def test_decode_byte_exact(self, name, kernel_backend):
        case = TANS_CASES[name]
        _, codec = build_tans_blob(case)
        blob = _read(f"{name}.bin")
        expected = _read(f"{name}.expected.bin")
        engine = "fused" if kernel_backend == "numpy" else "compiled"
        for threads in case["threads"]:
            out, _ = codec.decompress(
                blob, num_threads=threads, engine=engine
            )
            assert out.astype(np.uint8).tobytes() == expected
