"""System-level property-based tests (hypothesis).

These are the invariants DESIGN.md §4 promises, exercised over random
models, data, interleave widths, and split requests:

- Recoil roundtrips at every parallelism for arbitrary inputs;
- combining metadata never changes the decoded output;
- the Recoil payload is byte-identical to the plain interleaved
  stream (bitstream compatibility);
- Lemma 3.1 holds for every recorded event;
- container serialize/parse/shrink are lossless.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import (
    RecoilCodec,
    parse_container,
    recoil_shrink,
)
from repro.core.decoder import RecoilDecoder
from repro.core.encoder import RecoilEncoder
from repro.rans.constants import L_BOUND
from repro.rans.interleaved import InterleavedDecoder, InterleavedEncoder
from repro.rans.model import SymbolModel

from conftest import KERNELS

_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _model_and_data(seed: int, length: int, quant_bits: int):
    r = np.random.default_rng(seed)
    alphabet = int(r.integers(2, 200))
    counts = r.integers(0, 1000, alphabet)
    counts[r.integers(0, alphabet)] += 1  # never all-zero
    # Draw data from the (un-normalized) counts so skew is realistic.
    p = counts / counts.sum()
    data = r.choice(alphabet, size=length, p=p)
    present = counts > 0
    counts = np.where(present, np.maximum(counts, 1), 0)
    model = SymbolModel.from_counts(counts, quant_bits)
    return model, data.astype(np.uint16)


@given(
    seed=st.integers(min_value=0, max_value=2**31),
    length=st.integers(min_value=0, max_value=4000),
    quant_bits=st.sampled_from([8, 11, 14, 16]),
    splits=st.sampled_from([1, 2, 5, 16, 64]),
)
@settings(**_SETTINGS)
@pytest.mark.parametrize("kernel", KERNELS)
def test_recoil_roundtrip_property(seed, length, quant_bits, splits, kernel):
    model, data = _model_and_data(seed, length, quant_bits)
    enc = RecoilEncoder(model).encode(data, num_threads=splits)
    engine = "fused" if kernel == "numpy" else "compiled"
    res = RecoilDecoder(model).decode(
        enc.words, enc.final_states, enc.metadata, engine=engine
    )
    assert np.array_equal(res.symbols, data.astype(res.symbols.dtype))
    # Lemma 3.1 on the chosen entries.
    for e in enc.metadata.entries:
        assert np.all(e.lane_states < L_BOUND)


@given(
    seed=st.integers(min_value=0, max_value=2**31),
    target=st.integers(min_value=1, max_value=40),
)
@settings(**_SETTINGS)
def test_combine_never_changes_output_property(seed, target):
    model, data = _model_and_data(seed, 3000, 11)
    enc = RecoilEncoder(model).encode(data, num_threads=32)
    dec = RecoilDecoder(model)
    full = dec.decode(enc.words, enc.final_states, enc.metadata).symbols
    combined = dec.decode(
        enc.words, enc.final_states, enc.metadata.combine(target)
    ).symbols
    assert np.array_equal(full, combined)
    assert np.array_equal(full, data.astype(full.dtype))


@given(seed=st.integers(min_value=0, max_value=2**31))
@settings(**_SETTINGS)
def test_payload_identical_to_plain_interleaved_property(seed):
    """Recoil does not touch the bitstream — only metadata differs."""
    model, data = _model_and_data(seed, 2500, 11)
    plain = InterleavedEncoder(model).encode(data)
    recoil = RecoilEncoder(model).encode(data, num_threads=16)
    assert np.array_equal(plain.words, recoil.words)
    assert np.array_equal(plain.final_states, recoil.final_states)
    # And a plain decoder reads the Recoil payload.
    out = InterleavedDecoder(model).decode(
        recoil.words, recoil.final_states, len(data)
    )
    assert np.array_equal(out, data.astype(out.dtype))


@given(
    seed=st.integers(min_value=0, max_value=2**31),
    targets=st.lists(
        st.integers(min_value=1, max_value=64), min_size=1, max_size=4
    ),
)
@settings(**_SETTINGS)
def test_container_shrink_chain_property(seed, targets):
    """Any chain of shrinks keeps the container decodable and the
    payload untouched."""
    model, data = _model_and_data(seed, 2500, 11)
    if len(data) == 0:
        return
    codec = RecoilCodec(model)
    blob = codec.compress(data, 64)
    original_words = parse_container(blob).words(blob).copy()
    for t in sorted(targets, reverse=True):
        blob = recoil_shrink(blob, t)
        parsed = parse_container(blob)
        assert np.array_equal(parsed.words(blob), original_words)
        out = codec.decompress(blob)
        assert np.array_equal(out, data.astype(out.dtype))


@given(
    seed=st.integers(min_value=0, max_value=2**31),
    lanes=st.sampled_from([2, 8, 32]),
)
@settings(**_SETTINGS)
def test_recoil_any_lane_width_property(seed, lanes):
    model, data = _model_and_data(seed, 3000, 11)
    enc = RecoilEncoder(model, lanes=lanes).encode(data, num_threads=8)
    res = RecoilDecoder(model, lanes=lanes).decode(
        enc.words, enc.final_states, enc.metadata
    )
    assert np.array_equal(res.symbols, data.astype(res.symbols.dtype))


@given(seed=st.integers(min_value=0, max_value=2**31))
@settings(**_SETTINGS)
def test_thread_plan_partition_property(seed):
    """Commit ranges always tile [1, N] regardless of what the
    splitter selected."""
    model, data = _model_and_data(seed, 5000, 11)
    enc = RecoilEncoder(model).encode(data, num_threads=24)
    nxt = 1
    for item in enc.metadata.thread_plan():
        assert item["commit_lo"] == nxt
        assert item["walk_lo"] <= item["commit_lo"]
        assert item["walk_hi"] >= item["commit_hi"]
        nxt = item["commit_hi"] + 1
    assert nxt == len(data) + 1
