"""Tests for the interleaved rANS codec (§2.2, Figure 1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DecodeError, EncodeError
from repro.rans.adaptive import StaticModelProvider
from repro.rans.constants import L_BOUND
from repro.rans.interleaved import InterleavedDecoder, InterleavedEncoder
from repro.rans.model import SymbolModel
from repro.rans.scalar import ScalarEncoder


@pytest.fixture(scope="module", params=[1, 2, 7, 32])
def lanes(request):
    return request.param


@pytest.fixture(scope="module")
def enc_result(skewed_bytes, model11, lanes):
    return InterleavedEncoder(model11, lanes=lanes).encode(
        skewed_bytes[:20_000], record_events=True
    )


class TestInterleavedRoundtrip:
    def test_roundtrip(self, enc_result, skewed_bytes, model11, lanes):
        dec = InterleavedDecoder(model11, lanes=lanes)
        out = dec.decode(enc_result.words, enc_result.final_states, 20_000)
        assert np.array_equal(out, skewed_bytes[:20_000])

    def test_vectorized_matches_reference(
        self, enc_result, model11, lanes
    ):
        """The numpy engine is bit-identical to the pure-Python loop
        (the paper's debug implementation)."""
        dec = InterleavedDecoder(model11, lanes=lanes)
        fast = dec.decode(enc_result.words, enc_result.final_states, 20_000)
        ref = dec.decode_reference(
            enc_result.words, enc_result.final_states, 20_000
        )
        assert np.array_equal(fast, ref)

    def test_one_lane_matches_scalar(self, skewed_bytes, model11):
        """K=1 interleaved must produce the scalar bitstream."""
        data = skewed_bytes[:5_000]
        inter = InterleavedEncoder(model11, lanes=1).encode(data)
        scal = ScalarEncoder(model11).encode(data)
        assert inter.words.tolist() == scal.words
        assert int(inter.final_states[0]) == scal.final_state

    def test_compression_near_entropy(self, enc_result, model11, lanes):
        bits = 16 * enc_result.num_words + 32 * lanes
        assert bits / 20_000 < model11.entropy_bits_per_symbol + 0.2

    @pytest.mark.parametrize("n", [0, 1, 31, 32, 33, 63, 65])
    def test_edge_lengths(self, skewed_bytes, model11, n):
        data = skewed_bytes[:n]
        enc = InterleavedEncoder(model11, lanes=32).encode(data)
        out = InterleavedDecoder(model11, lanes=32).decode(
            enc.words, enc.final_states, n
        )
        assert np.array_equal(out, data)

    def test_n16_roundtrip(self, skewed_bytes, model16):
        """n=16 admits first-group renormalization (f=1, x=L) — the
        trickiest parameter point."""
        data = skewed_bytes[:10_000]
        enc = InterleavedEncoder(model16, lanes=32).encode(data)
        out = InterleavedDecoder(model16, lanes=32).decode(
            enc.words, enc.final_states, len(data)
        )
        assert np.array_equal(out, data)

    def test_16bit_symbols(self):
        r = np.random.default_rng(9)
        data = r.integers(0, 5000, 8_000).astype(np.uint16)
        model = SymbolModel.from_data(data, 16, alphabet_size=8192)
        enc = InterleavedEncoder(model).encode(data)
        out = InterleavedDecoder(model).decode(
            enc.words, enc.final_states, len(data)
        )
        assert out.dtype == np.uint16
        assert np.array_equal(out, data)

    def test_2d_input_rejected(self, model11):
        with pytest.raises(EncodeError):
            InterleavedEncoder(model11).encode(np.zeros((2, 2), dtype=int))

    def test_wrong_final_state_count(self, enc_result, model11, lanes):
        with pytest.raises(DecodeError):
            InterleavedDecoder(model11, lanes=lanes).decode(
                enc_result.words,
                np.concatenate([enc_result.final_states, [L_BOUND]]),
                20_000,
            )

    def test_truncated_words_detected(self, enc_result, model11, lanes):
        with pytest.raises(DecodeError):
            InterleavedDecoder(model11, lanes=lanes).decode(
                enc_result.words[: max(0, enc_result.num_words // 2)],
                enc_result.final_states,
                20_000,
            )

    def test_terminal_check_detects_extra_words(
        self, enc_result, model11, lanes
    ):
        padded = np.concatenate(
            [np.array([0xABCD], dtype=np.uint16), enc_result.words]
        )
        with pytest.raises(DecodeError):
            InterleavedDecoder(model11, lanes=lanes).decode(
                padded, enc_result.final_states, 20_000
            )


class TestRenormEvents:
    def test_event_per_word(self, enc_result):
        """b >= n: exactly one event per emitted word (paper §3.2)."""
        assert len(enc_result.events) == enc_result.num_words

    def test_lemma_3_1_vectorized(self, enc_result):
        assert np.all(
            np.asarray(enc_result.events.state_after) < L_BOUND
        )

    def test_events_strictly_increasing(self, enc_result):
        sym = np.asarray(enc_result.events.symbol_index, dtype=np.int64)
        assert np.all(np.diff(sym) > 0)

    def test_event_lane_consistency(self, enc_result, lanes):
        """Event lane must be the owner of its symbol index."""
        sym = np.asarray(enc_result.events.symbol_index, dtype=np.int64)
        lane = np.asarray(enc_result.events.lane, dtype=np.int64)
        assert np.array_equal((sym - 1) % lanes, lane)

    def test_getitem(self, enc_result):
        if len(enc_result.events) == 0:
            pytest.skip("no events")
        sym, lane, state = enc_result.events[0]
        assert state < L_BOUND
        assert sym >= 1

    def test_no_events_when_disabled(self, skewed_bytes, model11):
        enc = InterleavedEncoder(model11).encode(skewed_bytes[:1000])
        assert enc.events is None


class TestProviderHandling:
    def test_provider_wrapping(self, model11):
        enc = InterleavedEncoder(StaticModelProvider(model11))
        assert enc.provider.is_static

    def test_bad_lane_count(self, model11):
        with pytest.raises(EncodeError):
            InterleavedEncoder(model11, lanes=0)


@given(
    seed=st.integers(min_value=0, max_value=2**31),
    n=st.integers(min_value=8, max_value=16),
    lanes=st.sampled_from([1, 3, 8, 32]),
    length=st.integers(min_value=0, max_value=600),
)
@settings(max_examples=40, deadline=None)
def test_interleaved_roundtrip_property(seed, n, lanes, length):
    """Roundtrip across random models, lane counts, lengths, quant."""
    r = np.random.default_rng(seed)
    alphabet = int(r.integers(2, 64))
    counts = r.integers(1, 50, alphabet)
    model = SymbolModel.from_counts(counts, n)
    data = r.integers(0, alphabet, length)
    enc = InterleavedEncoder(model, lanes=lanes).encode(
        data, record_events=True
    )
    dec = InterleavedDecoder(model, lanes=lanes)
    out = dec.decode(enc.words, enc.final_states, length)
    assert np.array_equal(out, data.astype(out.dtype))
    if enc.events is not None:
        assert np.all(np.asarray(enc.events.state_after) < L_BOUND)
        assert len(enc.events) == enc.num_words
