"""Tests for the high-level public API."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    RecoilCodec,
    SymbolModel,
    recoil_compress,
    recoil_decompress,
    recoil_shrink,
)
from repro.data import synthesize_latents
from repro.errors import EncodeError, MetadataError, ReproError


class TestFreeFunctions:
    def test_compress_decompress(self, skewed_bytes):
        blob = recoil_compress(skewed_bytes, num_splits=32)
        out = recoil_decompress(blob)
        assert np.array_equal(out, skewed_bytes)

    def test_default_model_16bit_symbols(self):
        r = np.random.default_rng(5)
        data = r.integers(0, 40_000, 5_000).astype(np.uint16)
        blob = recoil_compress(data, num_splits=8, quant_bits=16)
        out = recoil_decompress(blob)
        assert np.array_equal(out, data)

    def test_explicit_model(self, skewed_bytes, model11):
        blob = recoil_compress(skewed_bytes, num_splits=16, model=model11)
        assert np.array_equal(recoil_decompress(blob), skewed_bytes)

    def test_empty_rejected(self):
        with pytest.raises(EncodeError):
            recoil_compress(np.array([], dtype=np.uint8))

    def test_shrink_roundtrip(self, skewed_bytes):
        blob = recoil_compress(skewed_bytes, num_splits=64)
        small = recoil_shrink(blob, 4)
        assert len(small) < len(blob)
        assert np.array_equal(recoil_decompress(small), skewed_bytes)

    def test_max_parallelism(self, skewed_bytes):
        blob = recoil_compress(skewed_bytes, num_splits=64)
        out = recoil_decompress(blob, max_parallelism=3)
        assert np.array_equal(out, skewed_bytes)

    def test_compression_beats_raw(self, skewed_bytes):
        blob = recoil_compress(skewed_bytes, num_splits=16)
        assert len(blob) < len(skewed_bytes)


class TestCodecClass:
    def test_codec_with_model(self, skewed_bytes, model11):
        codec = RecoilCodec(model11)
        blob = codec.compress(skewed_bytes, 16)
        assert np.array_equal(codec.decompress(blob), skewed_bytes)

    def test_decompress_with_stats(self, skewed_bytes, model11):
        codec = RecoilCodec(model11)
        blob = codec.compress(skewed_bytes, 16)
        res = codec.decompress_with_stats(blob)
        assert np.array_equal(res.symbols, skewed_bytes)
        assert res.workload.num_tasks == 16
        assert res.engine_stats.symbols_decoded >= len(skewed_bytes)

    def test_adaptive_end_to_end(self):
        """The image-codec path: out-of-band hyperprior models."""
        plane = synthesize_latents(30_000, seed=13)
        codec = RecoilCodec(plane.provider)
        from repro.core import build_container, parse_container

        enc = codec.encode(plane.symbols, 16)
        blob = build_container(enc, provider=plane.provider, embed_model=False)
        out = recoil_decompress(blob, provider=plane.provider)
        assert np.array_equal(out, plane.symbols)

    def test_shrink_method(self, skewed_bytes, model11):
        codec = RecoilCodec(model11)
        blob = codec.compress(skewed_bytes, 64)
        small = codec.shrink(blob, 8)
        assert np.array_equal(codec.decompress(small), skewed_bytes)

    def test_repeated_use(self, skewed_bytes, model11):
        codec = RecoilCodec(model11)
        for chunk in (skewed_bytes[:10_000], skewed_bytes[10_000:30_000]):
            blob = codec.compress(chunk, 8)
            assert np.array_equal(codec.decompress(blob), chunk)


class TestArgumentValidation:
    """Bad parallelism arguments fail fast with typed errors."""

    @pytest.mark.parametrize("num_splits", [0, -1])
    def test_encode_rejects_nonpositive_splits(
        self, skewed_bytes, model11, num_splits
    ):
        codec = RecoilCodec(model11)
        with pytest.raises(EncodeError):
            codec.encode(skewed_bytes, num_splits)
        with pytest.raises(ReproError):
            codec.compress(skewed_bytes, num_splits)

    @pytest.mark.parametrize("target", [0, -4])
    def test_shrink_rejects_nonpositive_threads(
        self, skewed_bytes, model11, target
    ):
        codec = RecoilCodec(model11)
        blob = codec.compress(skewed_bytes[:5_000], 8)
        with pytest.raises(MetadataError):
            recoil_shrink(blob, target)
        with pytest.raises(MetadataError):
            codec.shrink(blob, target)
