"""Tests for split selection (§4.1 backward scan + §4.2 heuristic)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.splitter import SplitSelector
from repro.errors import MetadataError
from repro.rans.constants import L_BOUND
from repro.rans.interleaved import InterleavedEncoder


@pytest.fixture(scope="module")
def encoded(skewed_bytes, model11):
    return InterleavedEncoder(model11, lanes=32).encode(
        skewed_bytes, record_events=True
    )


@pytest.fixture(scope="module")
def selector(encoded):
    return SplitSelector(encoded.events, 32, encoded.num_symbols)


class TestSelection:
    def test_requested_threads_achieved(self, selector):
        md, stats = selector.select(16)
        assert md.num_threads == 16
        assert stats.achieved_threads == 16

    def test_entries_validate(self, selector):
        md, _ = selector.select(32)
        md.validate()  # ordering/overlap invariants

    def test_single_thread_no_entries(self, selector):
        md, _ = selector.select(1)
        assert md.entries == []

    def test_zero_threads_rejected(self, selector):
        with pytest.raises(MetadataError):
            selector.select(0)

    def test_workload_balanced(self, selector, encoded):
        """Per-thread committed symbols within 3x of the ideal."""
        md, _ = selector.select(20)
        plan = md.thread_plan()
        sizes = [p["commit_hi"] - p["commit_lo"] + 1 for p in plan]
        ideal = encoded.num_symbols / 20
        assert max(sizes) < 3 * ideal
        assert min(sizes) > ideal / 3

    def test_sync_sections_short(self, selector, encoded):
        """Sync sections stay at a few interleave groups each — the
        heuristic's second objective (§4.2)."""
        md, stats = selector.select(32)
        mean_sync = stats.total_sync_symbols / max(len(md.entries), 1)
        assert mean_sync < 8 * 32  # a handful of groups of K=32

    def test_entry_states_bounded(self, selector):
        md, _ = selector.select(16)
        for e in md.entries:
            assert np.all(e.lane_states < L_BOUND)  # Lemma 3.1

    def test_entry_lane_indices_belong_to_lanes(self, selector):
        md, _ = selector.select(16)
        for e in md.entries:
            lanes = np.arange(32)
            assert np.array_equal((e.lane_indices - 1) % 32, lanes)

    def test_split_lane_is_max_index(self, selector, encoded):
        """The split event's own lane carries the maximum index (the
        backward scan starts there)."""
        md, _ = selector.select(16)
        ev_sym = np.asarray(encoded.events.symbol_index, dtype=np.int64)
        ev_lane = np.asarray(encoded.events.lane)
        for e in md.entries:
            k = e.word_offset  # event id == word position
            lane = int(ev_lane[k])
            assert e.lane_indices[lane] == e.split_index
            assert e.split_index == int(ev_sym[k]) - 32

    def test_more_threads_more_sync_overhead(self, selector):
        _, s8 = selector.select(8)
        _, s64 = selector.select(64)
        assert s64.total_sync_symbols > s8.total_sync_symbols

    def test_oversubscribed_request_degrades_gracefully(
        self, skewed_bytes, model11
    ):
        """Asking for more threads than events can support returns
        fewer entries, never corrupt ones."""
        tiny = skewed_bytes[:600]
        enc = InterleavedEncoder(model11, lanes=32).encode(
            tiny, record_events=True
        )
        sel = SplitSelector(enc.events, 32, enc.num_symbols)
        md, stats = sel.select(64)
        assert md.num_threads <= 64
        md.validate()

    def test_empty_events(self, model11):
        enc = InterleavedEncoder(model11, lanes=32).encode(
            np.zeros(0, dtype=np.uint8), record_events=True
        )
        sel = SplitSelector(enc.events, 32, 0)
        md, _ = sel.select(8)
        assert md.entries == []


class TestHeuristic:
    def test_heuristic_prefers_balance(self, encoded):
        """Def 4.1: chosen splits are near the ideal boundaries."""
        sel = SplitSelector(encoded.events, 32, encoded.num_symbols)
        M = 10
        md, _ = sel.select(M)
        T = encoded.num_symbols / M
        for k, e in enumerate(md.entries, start=1):
            assert abs(e.split_index - k * T) < T

    def test_wider_window_not_worse(self, encoded):
        narrow = SplitSelector(
            encoded.events, 32, encoded.num_symbols, window=8
        )
        wide = SplitSelector(
            encoded.events, 32, encoded.num_symbols, window=128
        )
        _, sn = narrow.select(16)
        _, sw = wide.select(16)
        # Greedy: wider windows win on average but not pointwise.
        assert sw.mean_heuristic_cost <= sn.mean_heuristic_cost * 1.10
