"""Tests for the composed codecs (image pipeline, framing)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codecs import (
    HyperpriorImageCodec,
    compress_frames,
    decompress_frames,
    frame_info,
)
from repro.codecs.framing import shrink_frames
from repro.data import synthesize_latents
from repro.errors import ContainerError, EncodeError


@pytest.fixture(scope="module")
def plane():
    return synthesize_latents(60_000, seed=33)


@pytest.fixture(scope="module")
def image_codec(plane):
    return HyperpriorImageCodec(plane.bank)


@pytest.fixture(scope="module")
def image_blob(image_codec, plane):
    return image_codec.compress(plane.symbols, plane.scale_ids, 64)


class TestImagePipeline:
    def test_roundtrip(self, image_codec, image_blob, plane):
        symbols, ids = image_codec.decompress(image_blob)
        assert np.array_equal(symbols, plane.symbols)
        assert np.array_equal(ids, plane.scale_ids)

    def test_rate_beats_raw(self, image_blob, plane):
        assert len(image_blob) < plane.uncompressed_bytes

    def test_rate_near_model_ideal(self, image_codec, image_blob, plane):
        """With split metadata combined away, the latent stream lands
        within ~10% of the model cross-entropy (the hyperprior stream
        is side information outside ``ideal_bits``)."""
        from repro.bitio.varint import decode_uvarint

        single = image_codec.shrink(image_blob, 1)
        pos = 5
        _, pos = decode_uvarint(single, pos)
        hyper_len, pos = decode_uvarint(single, pos)
        latent_bytes = len(single) - pos - hyper_len
        ideal = plane.ideal_bits() / 8
        assert latent_bytes < ideal * 1.10 + 512
        # And the hyperprior stream stays a modest side channel after
        # the delta transform.
        assert hyper_len < 2.5 * ideal

    def test_shrink_both_streams(self, image_codec, image_blob, plane):
        small = image_codec.shrink(image_blob, 4)
        assert len(small) < len(image_blob)
        symbols, ids = image_codec.decompress(small)
        assert np.array_equal(symbols, plane.symbols)
        assert np.array_equal(ids, plane.scale_ids)

    def test_max_parallelism(self, image_codec, image_blob, plane):
        symbols, _ = image_codec.decompress(image_blob, max_parallelism=3)
        assert np.array_equal(symbols, plane.symbols)

    def test_mismatched_lengths_rejected(self, image_codec, plane):
        with pytest.raises(EncodeError):
            image_codec.compress(
                plane.symbols, plane.scale_ids[:-1], 8
            )

    def test_bad_scale_ids_rejected(self, image_codec, plane):
        bad = plane.scale_ids.copy()
        bad[0] = 10_000
        with pytest.raises(EncodeError):
            image_codec.compress(plane.symbols, bad, 8)

    def test_bank_mismatch_rejected(self, image_blob):
        from repro.rans.adaptive import GaussianModelBank

        other = HyperpriorImageCodec(
            GaussianModelBank(16, num_scales=8)
        )
        with pytest.raises(ContainerError):
            other.decompress(image_blob)

    def test_bad_magic(self, image_codec, image_blob):
        with pytest.raises(ContainerError):
            image_codec.decompress(b"NOPE" + image_blob[4:])


class TestFraming:
    def test_roundtrip_multi_frame(self, skewed_bytes):
        blob = compress_frames(skewed_bytes, frame_symbols=12_000,
                               num_splits=16)
        out = decompress_frames(blob)
        assert np.array_equal(out, skewed_bytes)

    def test_single_frame(self, skewed_bytes):
        blob = compress_frames(skewed_bytes, frame_symbols=10**9)
        assert len(frame_info(blob)) == 1
        assert np.array_equal(decompress_frames(blob), skewed_bytes)

    def test_frame_info(self, skewed_bytes):
        blob = compress_frames(skewed_bytes, frame_symbols=12_000,
                               num_splits=16)
        infos = frame_info(blob)
        assert len(infos) == -(-len(skewed_bytes) // 12_000)
        assert sum(i.num_symbols for i in infos) == len(skewed_bytes)
        assert all(i.num_threads <= 16 for i in infos)

    def test_frames_adapt_to_content(self):
        """Per-frame models beat one global model on non-stationary
        data (a fringe benefit of framing)."""
        r = np.random.default_rng(3)
        a = np.minimum(np.floor(r.exponential(3.0, 50_000)), 255)
        b = 255 - np.minimum(np.floor(r.exponential(3.0, 50_000)), 255)
        data = np.concatenate([a, b]).astype(np.uint8)
        framed = compress_frames(data, frame_symbols=50_000, num_splits=8)
        single = compress_frames(data, frame_symbols=10**9, num_splits=8)
        assert len(framed) < len(single)
        assert np.array_equal(decompress_frames(framed), data)

    def test_shrink_frames(self, skewed_bytes):
        blob = compress_frames(skewed_bytes, frame_symbols=12_000,
                               num_splits=32)
        small = shrink_frames(blob, 4)
        assert len(small) < len(blob)
        assert np.array_equal(decompress_frames(small), skewed_bytes)
        assert all(i.num_threads <= 4 for i in frame_info(small))

    def test_max_parallelism(self, skewed_bytes):
        blob = compress_frames(skewed_bytes, frame_symbols=20_000)
        out = decompress_frames(blob, max_parallelism=2)
        assert np.array_equal(out, skewed_bytes)

    def test_empty_input(self):
        blob = compress_frames(np.array([], dtype=np.uint8))
        assert decompress_frames(blob).size == 0

    def test_corrupt_magic(self, skewed_bytes):
        blob = compress_frames(skewed_bytes[:5000])
        with pytest.raises(ContainerError):
            decompress_frames(b"XXXX" + blob[4:])

    def test_shared_model_roundtrip(self, skewed_bytes):
        """shared_model frames fingerprint-match and decode as one
        fused multi-buffer dispatch."""
        blob = compress_frames(
            skewed_bytes, frame_symbols=12_000, num_splits=16,
            shared_model=True,
        )
        assert np.array_equal(decompress_frames(blob), skewed_bytes)

    def test_shared_model_single_kernel_dispatch(self, skewed_bytes,
                                                 monkeypatch):
        from repro.parallel import fused as pf

        calls = []
        real = pf.fused_run_multi

        def spy(provider, lanes, segments, arena, out_dtype=None):
            calls.append(len(segments))
            return real(provider, lanes, segments, arena, out_dtype)

        # framing imports the entry point lazily, so patching the
        # module attribute intercepts its dispatches.
        monkeypatch.setattr(
            "repro.parallel.fused.fused_run_multi", spy
        )
        # 50k symbols in four equal 12.5k frames: same model, same
        # walk geometry -> exactly one fused dispatch.
        shared = compress_frames(
            skewed_bytes, frame_symbols=12_500, num_splits=16,
            shared_model=True,
        )
        assert np.array_equal(decompress_frames(shared), skewed_bytes)
        n_frames = len(frame_info(shared))
        assert n_frames == 4
        assert calls == [n_frames]  # one dispatch carrying every frame

        calls.clear()
        per_frame = compress_frames(
            skewed_bytes, frame_symbols=12_500, num_splits=16,
        )
        assert np.array_equal(decompress_frames(per_frame), skewed_bytes)
        # Per-frame models cannot fuse — one dispatch per frame.
        assert calls == [1] * n_frames

        calls.clear()
        # A ragged short final frame must not ride in the big frames'
        # batch (it would collapse the steady-state window): same
        # model, two dispatches.
        ragged = compress_frames(
            skewed_bytes, frame_symbols=16_000, num_splits=16,
            shared_model=True,
        )
        assert np.array_equal(decompress_frames(ragged), skewed_bytes)
        assert sorted(calls) == [1, 3]

    def test_shared_model_max_parallelism(self, skewed_bytes):
        blob = compress_frames(
            skewed_bytes, frame_symbols=12_000, num_splits=16,
            shared_model=True,
        )
        out = decompress_frames(blob, max_parallelism=3)
        assert np.array_equal(out, skewed_bytes)

    def test_truncated_frame(self, skewed_bytes):
        blob = compress_frames(skewed_bytes[:5000])
        with pytest.raises(ContainerError):
            decompress_frames(blob[:-20])

    def test_2d_rejected(self):
        with pytest.raises(EncodeError):
            compress_frames(np.zeros((4, 4), dtype=np.uint8))

    def test_bad_frame_symbols(self, skewed_bytes):
        with pytest.raises(EncodeError):
            compress_frames(skewed_bytes, frame_symbols=0)
