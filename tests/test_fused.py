"""Differential tests for the fused wide-lane decode kernel.

Every configuration pits three implementations against each other:

- ``LaneEngine.run`` — the fused kernel (head / steady-state / tail);
- ``LaneEngine.run_reference`` — the original masked per-group loop;
- ``InterleavedDecoder.decode_reference`` — the pure-Python walk.

Outputs must be bit-identical and the :class:`EngineStats` counters
must agree exactly (same iterations, same symbols decoded, same word
reads) — the fused kernel is a *re-scheduling* of the same work, not
an approximation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.decoder import RecoilDecoder, build_thread_tasks
from repro.core.encoder import RecoilEncoder
from repro.errors import DecodeError
from repro.parallel.executor import decode_with_pool
from repro.parallel.simd import LaneEngine, ThreadTask
from repro.rans.adaptive import IndexedModelProvider, StaticModelProvider
from repro.rans.interleaved import InterleavedDecoder, InterleavedEncoder
from repro.rans.model import SymbolModel

LANES = [1, 4, 32]
THREADS = [1, 2, 8]


def _stats_tuple(s):
    return (s.iterations, s.symbols_decoded, s.words_read,
            s.tasks, s.max_task_iterations)


@pytest.fixture(scope="module")
def payload():
    r = np.random.default_rng(99)
    return np.minimum(np.floor(r.exponential(9.0, 6_000)), 255).astype(
        np.uint8
    )


@pytest.fixture(scope="module")
def adaptive_provider(payload):
    """Three distinct models cycled per symbol index."""
    sym = np.arange(256, dtype=np.float64)
    models = [
        SymbolModel.from_counts(np.exp(-sym / s) * 1_000 + 1, 10)
        for s in (4.0, 12.0, 40.0)
    ]
    ids = (np.arange(len(payload)) // 7) % 3
    return IndexedModelProvider(models, ids)


def _provider(kind, payload, adaptive_provider):
    if kind == "adaptive":
        return adaptive_provider
    return StaticModelProvider(
        SymbolModel.from_data(payload, 11, alphabet_size=256)
    )


class TestFusedVsReference:
    @pytest.mark.parametrize("lanes", LANES)
    @pytest.mark.parametrize("threads", THREADS)
    @pytest.mark.parametrize("kind", ["static", "adaptive"])
    def test_recoil_tasks_bit_identical(
        self, payload, adaptive_provider, lanes, threads, kind,
        kernel_backend,
    ):
        provider = _provider(kind, payload, adaptive_provider)
        enc = RecoilEncoder(provider, lanes=lanes).encode(
            payload, num_threads=threads
        )
        tasks = build_thread_tasks(
            enc.metadata, len(enc.words), enc.final_states
        )
        engine = LaneEngine(provider, lanes, kernel=kernel_backend)
        out_f = np.empty(enc.num_symbols, dtype=np.uint8)
        out_r = np.empty(enc.num_symbols, dtype=np.uint8)
        sf = engine.run(enc.words, tasks, out_f)
        sr = engine.run_reference(enc.words, tasks, out_r)
        assert np.array_equal(out_f, payload)
        assert np.array_equal(out_r, payload)
        assert _stats_tuple(sf) == _stats_tuple(sr)

    @pytest.mark.parametrize("lanes", LANES)
    @pytest.mark.parametrize("kind", ["static", "adaptive"])
    def test_full_decode_matches_pure_python(
        self, payload, adaptive_provider, lanes, kind
    ):
        provider = _provider(kind, payload, adaptive_provider)
        enc = InterleavedEncoder(provider, lanes=lanes).encode(payload)
        dec = InterleavedDecoder(provider, lanes=lanes)
        out = dec.decode(enc.words, enc.final_states, enc.num_symbols)
        ref = dec.decode_reference(
            enc.words, enc.final_states, enc.num_symbols
        )
        assert np.array_equal(out, payload)
        assert np.array_equal(ref, payload)

    @pytest.mark.parametrize("threads", THREADS)
    @pytest.mark.parametrize("kind", ["static", "adaptive"])
    def test_recoil_decoder_engine_selector(
        self, payload, adaptive_provider, threads, kind
    ):
        provider = _provider(kind, payload, adaptive_provider)
        enc = RecoilEncoder(provider).encode(payload, num_threads=8)
        dec = RecoilDecoder(provider)
        res_f = dec.decode(
            enc.words, enc.final_states, enc.metadata,
            max_threads=threads, engine="fused",
        )
        res_r = dec.decode(
            enc.words, enc.final_states, enc.metadata,
            max_threads=threads, engine="reference",
        )
        assert np.array_equal(res_f.symbols, payload)
        assert np.array_equal(res_f.symbols, res_r.symbols)
        assert _stats_tuple(res_f.engine_stats) == _stats_tuple(
            res_r.engine_stats
        )

    def test_unknown_engine_rejected(self, payload):
        provider = _provider("static", payload, None)
        enc = RecoilEncoder(provider).encode(payload, num_threads=2)
        with pytest.raises(DecodeError):
            RecoilDecoder(provider).decode(
                enc.words, enc.final_states, enc.metadata, engine="cuda"
            )


class TestPooledFused:
    @pytest.mark.parametrize("workers", THREADS)
    @pytest.mark.parametrize("strategy", ["cost", "round_robin"])
    def test_pool_matches_single_engine(
        self, payload, workers, strategy, kernel_backend
    ):
        provider = _provider("static", payload, None)
        enc = RecoilEncoder(provider).encode(payload, num_threads=12)
        tasks = build_thread_tasks(
            enc.metadata, len(enc.words), enc.final_states
        )
        backend = (
            "thread+compiled" if kernel_backend == "compiled" else "thread"
        )
        res = decode_with_pool(
            provider, 32, enc.words, tasks, enc.num_symbols,
            np.uint8, workers, strategy=strategy, backend=backend,
        )
        assert res.kernel == kernel_backend
        assert np.array_equal(res.symbols, payload)
        assert res.workers == min(workers, len(tasks))


class TestFusedEdgeCases:
    def test_empty_stream(self):
        model = SymbolModel.from_counts(
            np.array([5, 3, 2], dtype=np.uint32), 8
        )
        enc = InterleavedEncoder(model, lanes=32).encode(
            np.empty(0, dtype=np.uint8)
        )
        dec = InterleavedDecoder(model, lanes=32)
        out = dec.decode(enc.words, enc.final_states, 0)
        assert len(out) == 0

    @pytest.mark.parametrize("n", [1, 5, 31])
    def test_shorter_than_lane_count(self, payload, n):
        """N < K: a single, partial interleave group."""
        provider = _provider("static", payload, None)
        data = payload[:n]
        enc = InterleavedEncoder(provider, lanes=32).encode(data)
        dec = InterleavedDecoder(provider, lanes=32)
        out = dec.decode(enc.words, enc.final_states, n)
        ref = dec.decode_reference(enc.words, enc.final_states, n)
        assert np.array_equal(out, data)
        assert np.array_equal(out, ref)

    def test_single_partition(self, payload):
        """threads=1 metadata has no entries: one fully-initialized
        task covering the entire walk."""
        provider = _provider("static", payload, None)
        enc = RecoilEncoder(provider).encode(payload, num_threads=1)
        assert enc.metadata.num_threads == 1
        res = RecoilDecoder(provider).decode(
            enc.words, enc.final_states, enc.metadata
        )
        assert np.array_equal(res.symbols, payload)

    def test_partial_commit_window(self, payload, kernel_backend):
        """Commit range strictly inside the walk: the steady window
        shrinks to the committed span, head/tail run masked."""
        provider = _provider("static", payload, None)
        enc = InterleavedEncoder(provider, lanes=32).encode(payload)
        task = ThreadTask(
            start_pos=len(enc.words) - 1,
            walk_hi=enc.num_symbols,
            walk_lo=1,
            commit_hi=200,
            commit_lo=101,
            initial_states=enc.final_states,
            check_terminal=False,
        )
        engine = LaneEngine(provider, 32, kernel=kernel_backend)
        out_f = np.zeros(enc.num_symbols, dtype=np.uint8)
        out_r = np.zeros(enc.num_symbols, dtype=np.uint8)
        sf = engine.run(enc.words, [task], out_f)
        sr = engine.run_reference(enc.words, [task], out_r)
        assert np.array_equal(out_f[100:200], payload[100:200])
        assert np.all(out_f[200:] == 0)
        assert np.array_equal(out_f, out_r)
        assert _stats_tuple(sf) == _stats_tuple(sr)

    def test_arena_reuse_across_stream_sizes(self, payload):
        """One engine instance decoding different geometries must not
        leak state between calls through its scratch arena."""
        provider = _provider("static", payload, None)
        dec = InterleavedDecoder(provider, lanes=32)
        for n in (4_096, 100, 6_000, 33):
            data = payload[:n]
            enc = InterleavedEncoder(provider, lanes=32).encode(data)
            out = dec.decode(enc.words, enc.final_states, n)
            assert np.array_equal(out, data)

    def test_corrupt_states_still_caught(self, payload):
        provider = _provider("static", payload, None)
        enc = InterleavedEncoder(provider, lanes=32).encode(payload)
        bad = enc.final_states.copy()
        bad[0] ^= np.uint64(0x5A5A)
        dec = InterleavedDecoder(provider, lanes=32)
        with pytest.raises(DecodeError):
            dec.decode(enc.words, bad, enc.num_symbols)
