"""Tests for detached sidecar metadata (paper §6 future work)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    build_sidecar,
    parse_sidecar,
    payload_checksum,
    shrink_sidecar,
)
from repro.core.decoder import RecoilDecoder
from repro.core.encoder import RecoilEncoder
from repro.errors import ContainerError
from repro.rans.interleaved import InterleavedDecoder, InterleavedEncoder


@pytest.fixture(scope="module")
def encoded(skewed_bytes, model11):
    return RecoilEncoder(model11).encode(skewed_bytes, num_threads=32)


@pytest.fixture(scope="module")
def sidecar(encoded):
    return build_sidecar(encoded.metadata, encoded.words)


class TestSidecar:
    def test_roundtrip(self, encoded, sidecar, skewed_bytes, model11):
        md = parse_sidecar(sidecar, encoded.words)
        res = RecoilDecoder(model11).decode(
            encoded.words, encoded.final_states, md
        )
        assert np.array_equal(res.symbols, skewed_bytes)

    def test_legacy_decoder_ignores_sidecar(
        self, encoded, skewed_bytes, model11
    ):
        """The host stream is standard interleaved rANS — legacy
        decoders need not know the sidecar exists (the §6 drop-in
        claim)."""
        out = InterleavedDecoder(model11).decode(
            encoded.words, encoded.final_states, encoded.num_symbols
        )
        assert np.array_equal(out, skewed_bytes)

    def test_parse_without_payload_skips_binding(self, sidecar):
        md = parse_sidecar(sidecar)
        assert md.num_threads == 32

    def test_wrong_payload_rejected(self, encoded, sidecar, model11):
        other = InterleavedEncoder(model11).encode(
            np.zeros(1000, dtype=np.uint8)
        )
        with pytest.raises(ContainerError):
            parse_sidecar(sidecar, other.words)

    def test_corrupt_payload_rejected(self, encoded, sidecar):
        bad = encoded.words.copy()
        bad[len(bad) // 2] ^= 0x8000
        with pytest.raises(ContainerError):
            parse_sidecar(sidecar, bad)

    def test_bad_magic(self, sidecar):
        with pytest.raises(ContainerError):
            parse_sidecar(b"WHAT" + sidecar[4:])

    def test_shrink_detached(self, encoded, sidecar, skewed_bytes, model11):
        """The server can shrink without holding the payload at all."""
        small = shrink_sidecar(sidecar, 4)
        assert len(small) < len(sidecar)
        md = parse_sidecar(small, encoded.words)
        assert md.num_threads <= 4
        res = RecoilDecoder(model11).decode(
            encoded.words, encoded.final_states, md
        )
        assert np.array_equal(res.symbols, skewed_bytes)

    def test_shrink_requires_sidecar(self):
        with pytest.raises(ContainerError):
            shrink_sidecar(b"RCL1xxxxxxxx", 4)

    def test_checksum_sensitivity(self, encoded):
        base = payload_checksum(encoded.words)
        flipped = encoded.words.copy()
        flipped[0] ^= 1
        assert payload_checksum(flipped) != base

    def test_sidecar_size_is_metadata_only(self, encoded, sidecar):
        """A sidecar costs ~80 bytes/split + 9-byte header — no
        payload duplication."""
        per_split = (len(sidecar) - 9) / max(len(encoded.metadata.entries), 1)
        assert per_split < 110
