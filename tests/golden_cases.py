"""Deterministic construction of the golden-stream corpus cases.

Shared between the generator (``tools/make_golden.py``), which writes
the committed containers and expected payloads under ``tests/golden/``,
and the conformance test (``tests/test_golden.py``), which re-derives
every provider/payload from these definitions and asserts byte-exact
encode and decode against the committed files on every kernel backend.

Everything here must stay deterministic: fixed RNG seeds, no
environment dependence.  Changing any case definition (or any code on
the wire path) shows up as a golden mismatch — that is the point; the
corpus pins the wire format.  Regenerate deliberately with
``PYTHONPATH=src python tools/make_golden.py`` and review the diff.
"""

from __future__ import annotations

import numpy as np

from repro.rans.adaptive import IndexedModelProvider, StaticModelProvider
from repro.rans.model import SymbolModel


def _exp_bytes(seed: int, n: int, scale: float = 9.0) -> np.ndarray:
    r = np.random.default_rng(seed)
    return np.minimum(np.floor(r.exponential(scale, n)), 255).astype(
        np.uint8
    )


def _static_provider(payload: np.ndarray, quant_bits: int = 11):
    return StaticModelProvider(
        SymbolModel.from_data(payload, quant_bits, alphabet_size=256)
    )


def _adaptive_provider(payload: np.ndarray):
    """Three exponential models cycled per symbol index (the same
    shape the differential suites use)."""
    sym = np.arange(256, dtype=np.float64)
    models = [
        SymbolModel.from_counts(np.exp(-sym / s) * 1_000 + 1, 10)
        for s in (4.0, 12.0, 40.0)
    ]
    ids = (np.arange(len(payload)) // 7) % 3
    return IndexedModelProvider(models, ids)


def rans_cases() -> list[dict]:
    """rANS container cases: ``(name, payload, provider, lanes,
    splits)``.  Providers are rebuilt from the payload each call, so
    generator and test construct identical wire bytes."""
    tiny_model = SymbolModel.from_counts(
        np.array([5, 3, 2, 1], dtype=np.uint32), 8
    )
    cases = []
    for lanes, n, splits in ((1, 300, 4), (4, 500, 8), (32, 800, 16)):
        payload = _exp_bytes(1000 + lanes, n)
        cases.append(
            dict(
                name=f"static_lanes{lanes}",
                payload=payload,
                provider=_static_provider(payload),
                lanes=lanes,
                splits=splits,
            )
        )
    for lanes, n, splits in ((4, 400, 8), (32, 700, 16)):
        payload = _exp_bytes(2000 + lanes, n)
        cases.append(
            dict(
                name=f"adaptive_lanes{lanes}",
                payload=payload,
                provider=_adaptive_provider(payload),
                lanes=lanes,
                splits=splits,
            )
        )
    n16_payload = _exp_bytes(3000, 600)
    cases.append(
        dict(
            name="static_n16",
            payload=n16_payload,
            provider=_static_provider(n16_payload, quant_bits=16),
            lanes=32,
            splits=8,
        )
    )
    cases.append(
        dict(
            name="static_empty",
            payload=np.empty(0, dtype=np.uint8),
            provider=StaticModelProvider(tiny_model),
            lanes=32,
            splits=1,
        )
    )
    cases.append(
        dict(
            name="static_one",
            payload=np.array([2], dtype=np.uint8),
            provider=StaticModelProvider(tiny_model),
            lanes=32,
            splits=4,
        )
    )
    return cases


def tans_cases() -> list[dict]:
    """tANS (multians) blob cases: ``(name, payload, table_bits,
    threads)`` — ``threads`` is the decode width the test sweeps."""
    return [
        dict(
            name="tans_multians",
            payload=_exp_bytes(4000, 2_000, scale=12.0),
            table_bits=12,
            threads=(1, 16, 64),
        ),
        dict(
            # A large-state table on short chunks: most chunks never
            # synchronize and are absorbed — the collapse point; output
            # must still be byte-exact.
            name="tans_collapse",
            payload=_exp_bytes(5000, 1_500, scale=12.0),
            table_bits=13,
            threads=(64,),
        ),
    ]


def build_rans_blob(case: dict, kernel: str = "numpy") -> bytes:
    """Encode one rANS case into container bytes (the wire format the
    corpus pins), on the requested inner-loop kernel."""
    from repro.core.container import build_container
    from repro.core.encoder import RecoilEncoder

    provider = case["provider"]
    encoded = RecoilEncoder(provider, lanes=case["lanes"]).encode(
        case["payload"], case["splits"], kernel=kernel
    )
    return build_container(
        encoded, provider=provider, embed_model=provider.is_static
    )


def build_tans_blob(case: dict) -> tuple[bytes, object]:
    """Compress one tANS case; returns ``(blob, codec)``."""
    from repro.tans import MultiansCodec, TansTable

    table = TansTable.from_data(
        case["payload"], case["table_bits"], alphabet_size=256
    )
    codec = MultiansCodec(table)
    return codec.compress(case["payload"]), codec
